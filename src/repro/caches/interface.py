"""The level-to-level protocol of the hierarchy.

The paper's key interface change (§3.1) is that requests between cache
levels are **word-based** and a hit may return a **partial line**. The
protocol here encodes that directly:

* an upper level calls :meth:`LineSource.fetch` naming the line *and* the
  word it actually needs (``need_word``); the response carries per-word
  availability and, for compression caches, a piggy-backed partial
  *affiliated* line that rode along in the freed bus slots;
* dirty evictions flow down through :meth:`LineSource.write_back` with a
  per-word validity mask, because CPP lines can be dirty while having
  holes.

Classic caches are a degenerate case: availability is all-ones and no
affiliated payload exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.compression.scheme import CompressionScheme, PAPER_SCHEME
from repro.compression.vectorized import packed_bus_words_vec
from repro.errors import CacheProtocolError
from repro.memory.bus import TrafficKind
from repro.memory.image import WORD_BYTES
from repro.memory.main_memory import MainMemory

__all__ = ["AccessResult", "FetchResponse", "LineSource", "MemoryPort"]


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one CPU-level data access.

    ``served_by`` identifies where the word was found:
    ``"l1" | "l1-affiliated" | "l1-buffer" | "l2" | "l2-affiliated" |
    "l2-buffer" | "memory"``. ``value`` is the loaded word (loads only);
    the Machine's verify mode checks it against the trace.
    """

    latency: int
    served_by: str
    value: int | None = None

    @property
    def l1_hit(self) -> bool:
        return self.served_by.startswith("l1")


@dataclass
class FetchResponse:
    """A (possibly partial) line returned by a lower level.

    Attributes
    ----------
    values:
        Uncompressed word values of the requested line (garbage where
        ``avail`` is False).
    avail:
        Per-word availability; the requested ``need_word`` is always
        available.
    latency:
        Cycles until the data is usable by the requester.
    served_by:
        Label of the level that supplied the data (for stats/debug).
    affil_values / affil_avail:
        The piggy-backed partial affiliated line (line XOR mask), or
        ``None`` when the source does not prefetch.
    """

    values: np.ndarray
    avail: np.ndarray
    latency: int
    served_by: str
    affil_values: np.ndarray | None = None
    affil_avail: np.ndarray | None = None

    def validate(self, n_words: int, need_word: int) -> None:
        """Check protocol invariants of the response; raises on violation."""
        if len(self.values) != n_words or len(self.avail) != n_words:
            raise CacheProtocolError("fetch response has wrong line width")
        if not self.avail[need_word]:
            raise CacheProtocolError(
                f"fetch response missing the requested word {need_word}"
            )
        if (self.affil_values is None) != (self.affil_avail is None):
            raise CacheProtocolError("inconsistent affiliated payload")
        if self.affil_values is not None and (
            len(self.affil_values) != n_words or len(self.affil_avail) != n_words
        ):
            raise CacheProtocolError("affiliated payload has wrong line width")


class LineSource(Protocol):
    """Anything an upper cache level can fetch lines from."""

    def fetch(
        self,
        addr: int,
        n_words: int,
        need_word: int,
        *,
        kind: TrafficKind = TrafficKind.FILL,
        now: int = 0,
        pair_addr: int | None = None,
    ) -> FetchResponse:
        """Request the *n_words* line at *addr* (aligned), needing word
        index *need_word* at cycle *now*.

        *pair_addr* names the requester's affiliated line: a compressing
        source piggy-backs that line's compressible words onto the
        response when it holds them. Must return at least the needed word.
        """
        ...

    def write_back(self, addr: int, values: np.ndarray, mask: np.ndarray) -> None:
        """Accept a dirty (possibly partial) line evicted by the upper level."""
        ...


class MemoryPort:
    """Adapter presenting :class:`MainMemory` as a :class:`LineSource`.

    The port owns the *transfer format* policy at the off-chip interface:

    * ``fetch_compressed`` — line fills are transferred compressed and the
      bus is charged the packed size (the BCC configuration);
    * ``writeback_compressed`` — dirty evictions transfer compressed
      (BCC and CPP);
    * :meth:`fetch_pair` — the CPP fill: the demand line plus its
      affiliated line are compressed together into one line's worth of bus
      beats, so the prefetch is free (§3.3, "the memory bandwidth is still
      the same as before").
    """

    def __init__(
        self,
        memory: MainMemory,
        *,
        fetch_compressed: bool = False,
        writeback_compressed: bool = False,
        scheme: CompressionScheme = PAPER_SCHEME,
    ) -> None:
        self.memory = memory
        self.fetch_compressed = fetch_compressed
        self.writeback_compressed = writeback_compressed
        self.scheme = scheme

    # ---- helpers ---------------------------------------------------------

    def _packed_words(self, addr: int, values: np.ndarray) -> int:
        addrs = self.memory.word_addrs(addr, len(values))
        return packed_bus_words_vec(np.asarray(values), addrs, self.scheme)

    # ---- LineSource ---------------------------------------------------------

    def fetch(
        self,
        addr: int,
        n_words: int,
        need_word: int,
        *,
        kind: TrafficKind = TrafficKind.FILL,
        now: int = 0,
        pair_addr: int | None = None,
    ) -> FetchResponse:
        """Fetch an uncompressed line from memory (packed traffic if BCC)."""
        if addr % (n_words * WORD_BYTES):
            raise CacheProtocolError(f"unaligned line fetch at {addr:#x}")
        values = self.memory.image.read_words(addr, n_words)
        bus_words = (
            self._packed_words(addr, values) if self.fetch_compressed else n_words
        )
        self.memory.bus.record(kind, bus_words)
        self.memory.n_reads += 1
        return FetchResponse(
            values=values,
            avail=np.ones(n_words, dtype=bool),
            latency=self.memory.latency,
            served_by="memory",
        )

    def fetch_pair(
        self,
        addr: int,
        n_words: int,
        affil_addr: int,
        *,
        kind: TrafficKind = TrafficKind.FILL,
    ) -> tuple[np.ndarray, np.ndarray]:
        """CPP fill: demand line + affiliated line for one line of traffic.

        Returns ``(values, affil_values)``; which affiliated words actually
        fit in the freed slots is the *cache's* packing decision — the bus
        cost is a full single-line transfer either way.
        """
        line_bytes = n_words * WORD_BYTES
        if addr % line_bytes or affil_addr % line_bytes:
            raise CacheProtocolError("unaligned pair fetch")
        values = self.memory.image.read_words(addr, n_words)
        affil_values = self.memory.image.read_words(affil_addr, n_words)
        self.memory.bus.record(kind, n_words)
        self.memory.n_reads += 1
        return values, affil_values

    def supply_prefetch(
        self, addr: int, n_words: int, now: int = 0
    ) -> tuple[np.ndarray, int]:
        """Read a line for a prefetch buffer: traffic, no installation.

        Returns ``(values, latency)`` — the prefetch completes *latency*
        cycles after *now*.
        """
        if addr % (n_words * WORD_BYTES):
            raise CacheProtocolError(f"unaligned prefetch at {addr:#x}")
        values = self.memory.image.read_words(addr, n_words)
        bus_words = (
            self._packed_words(addr, values) if self.fetch_compressed else n_words
        )
        self.memory.bus.record(TrafficKind.PREFETCH, bus_words)
        self.memory.n_reads += 1
        return values, self.memory.latency

    def write_back(self, addr: int, values: np.ndarray, mask: np.ndarray) -> None:
        """Write a (possibly partial) line to memory, packed if configured."""
        if self.writeback_compressed:
            present = np.asarray(mask, dtype=bool)
            addrs = self.memory.word_addrs(addr, len(values))
            packed = packed_bus_words_vec(
                np.asarray(values)[present], addrs[present], self.scheme
            )
            self.memory.write_line(addr, values, mask=mask, bus_words=packed)
        else:
            self.memory.write_line(addr, values, mask=mask)
