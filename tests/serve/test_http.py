"""HTTP contract of the experiment service, against a live process.

One real service (one worker, tiny workload scale) serves every test in
this module. The scenarios pin the degraded-mode contract: instant 200s
for cached cells, 202 + Retry-After while pending, corrupt records
quarantined-and-recomputed transparently, JSON errors — never a
traceback — for anything malformed.
"""

from __future__ import annotations

import http.client
import json

#: The one real cell this module computes (then leans on repeatedly).
CELL = {"workload": "olden.treeadd", "config": "BC", "seed": 1, "scale": 0.05}


def test_healthz(service):
    reply = service.client().healthz()
    assert reply.status == 200
    assert reply.data["status"] == "ok"
    assert reply.data["pid"] == service.proc.pid


def test_unknown_route_404(service):
    reply = service.client().request("GET", "/v1/nope")
    assert reply.status == 404
    assert reply.data["error"] == "NotFound"


def test_wrong_method_405(service):
    reply = service.client().request("POST", "/v1/healthz")
    assert reply.status == 405


def test_bad_params_400_not_traceback(service):
    client = service.client()
    reply = client.result("no.such.workload", "BC")
    assert reply.status == 400
    assert reply.data["error"] == "UsageError"
    assert "no.such.workload" in reply.data["message"]
    reply = client.request("GET", "/v1/result")  # missing required params
    assert reply.status == 400
    reply = client.result("olden.treeadd", "BC", seed="not-an-int")
    assert reply.status == 400


def test_malformed_http_400(service):
    conn = http.client.HTTPConnection("127.0.0.1", service.port, timeout=10)
    try:
        conn.request(
            "POST",
            "/v1/campaign",
            body=b"this is not json",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert response.status == 400
        assert payload["error"] == "BadRequest"
    finally:
        conn.close()


def test_analytic_figure_renders_immediately(service):
    reply = service.client().figure("fig3", workloads="olden.treeadd")
    assert reply.status == 200
    assert reply.data["status"] == "complete"
    output = reply.data["output"]
    assert output["figure"] == "fig3"
    assert output["rows"]


def test_unknown_figure_400(service):
    reply = service.client().figure("fig99")
    assert reply.status == 400
    assert reply.data["error"] == "UsageError"


def test_result_202_until_computed_then_200(service):
    client = service.client()
    first = client.result(**CELL)
    assert first.status in (200, 202)  # 200 if an earlier test warmed it
    if first.status == 202:
        assert first.data["status"] == "pending"
        assert float(first.headers["retry-after"]) > 0
        assert first.data["campaign"] == "matrix-seed1-scale0.05"
    final = client.wait_result(timeout=180, **CELL)
    assert final.status == 200
    assert final.data["status"] == "complete"
    assert final.data["result"]["config"]  # full SimResult payload
    # Now cached: the next GET is an instant 200.
    assert client.result(**CELL).status == 200


def test_pending_figure_202_annotates_holes(service):
    reply = service.client().figure(
        "fig12", workloads="olden.treeadd", seed=3, scale=0.05
    )
    assert reply.status == 202
    assert reply.data["status"] == "pending"
    assert len(reply.data["holes"]) == 5  # exactly which cells are missing
    assert reply.data["failed"] == []
    assert reply.data["campaign"] == "matrix-seed3-scale0.05"
    # The worker will drain these in the background; the point here is
    # the *immediate* honest 202 with the holes spelled out.


def test_campaign_post_then_poll(service):
    client = service.client()
    client.wait_result(timeout=180, **CELL)  # make the one cell cached
    posted = client.post_campaign(
        workloads=[CELL["workload"]],
        configs=[CELL["config"]],
        seed=CELL["seed"],
        scale=CELL["scale"],
    )
    assert posted.status == 202
    assert posted.data["status"] == "accepted"
    assert posted.data["reused"] == 1  # already in store: no recompute
    assert posted.data["enqueued"] == 0
    campaign = client.wait_campaign(posted.data["campaign"], timeout=60)
    assert campaign.status == 200
    assert campaign.data["drained"]


def test_campaign_unknown_404(service):
    reply = service.client().campaign("matrix-seed9-scale9")
    assert reply.status == 404


def test_corrupt_record_heals_transparently(service):
    """Bit-rot on disk → quarantine on read → 202 → recompute → 200."""
    client = service.client()
    final = client.wait_result(timeout=180, **CELL)
    assert final.status == 200
    digest = final.data["digest"]

    path = service.store / "objects" / digest[:2] / f"{digest}.json"
    record = json.loads(path.read_text())
    record["payload"]["cycles"] = -12345  # checksum now lies
    path.write_text(json.dumps(record))

    # Verify-on-read spots it: quarantined, reopened, re-enqueued — the
    # client just sees "pending", never an error.
    degraded = client.result(**CELL)
    assert degraded.status == 202
    assert degraded.data["status"] == "pending"
    quarantine = service.store / "quarantine"
    assert any(quarantine.iterdir())

    healed = client.wait_result(timeout=180, **CELL)
    assert healed.status == 200
    assert healed.data["result"]["cycles"] != -12345

    # The quarantine is ledgered and visible in /v1/stats; the second
    # compute is legitimate (the first record was destroyed), so the
    # compute log shows this digest exactly twice — explained, not a
    # double-compute.
    stats = client.stats()
    assert stats.data["store"]["quarantined"] >= 1
    from repro.store.cas import ResultStore

    computes = [
        e["digest"]
        for e in ResultStore(service.store).compute_log()
        if e.get("digest") == digest
    ]
    assert len(computes) == 2


def test_stats_and_workers(service):
    client = service.client()
    stats = client.stats()
    assert stats.status == 200
    assert "matrix-seed1-scale0.05" in stats.data["campaigns"]
    workers = client.workers()
    assert workers.status == 200
    assert workers.data["size"] == 1
    [worker] = workers.data["workers"]
    assert worker["alive"]
    assert worker["worker"].startswith("serve-")


def test_gc_endpoint_dry_run(service):
    reply = service.client().gc(dry_run=True)
    assert reply.status == 200
    assert reply.data["dry_run"] is True
    assert reply.data["scanned"] >= 1
    # The live generation is never a candidate.
    assert reply.data["candidates"] == 0
