"""Golden equivalence: the simulator must reproduce recorded results
bit for bit.

``tests/golden/golden_cells.json`` snapshots the lossless
(:func:`result_to_full_dict`) form of every (config x small workload)
cell, captured before the hot-path rewrite. These tests assert the
current code produces identical output — cycles, cache stats, bus word
counts, core metrics, the Welford accumulators behind Figure 15 —
so optimizations cannot silently change simulated behaviour.

If a cell fails after an *intentional* behaviour change, regenerate the
fixture (``PYTHONPATH=src python tools/gen_golden.py``) in the same PR
and call the change out in review.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.sim.config import SimConfig
from repro.sim.results_io import result_to_full_dict
from repro.sim.runner import run_workload

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent / "golden" / "golden_cells.json"
)


def _load_cells() -> dict[str, dict]:
    payload = json.loads(GOLDEN_PATH.read_text("utf-8"))
    return payload["cells"]


_CELLS = _load_cells()


def _parse_key(key: str) -> tuple[str, str, int, float, float]:
    workload, config, seed, scale, miss = key.split("|")
    return (
        workload,
        config,
        int(seed.removeprefix("seed")),
        float(scale.removeprefix("scale")),
        float(miss.removeprefix("x")),
    )


@pytest.mark.parametrize("backend", ["reference", "fast"])
@pytest.mark.parametrize("key", sorted(_CELLS))
def test_golden_cell_bit_identical(key: str, backend: str) -> None:
    workload, config, seed, scale, miss_scale = _parse_key(key)
    sim_config = SimConfig(cache_config=config, backend=backend).with_miss_scale(
        miss_scale
    )
    result = run_workload(
        workload, sim_config, seed=seed, scale=scale, use_cache=False
    )
    got = result_to_full_dict(result)
    want = _CELLS[key]
    # JSON round trip: exactly what the fixture stores (int/float/str
    # survive bit for bit; tuples become lists).
    got = json.loads(json.dumps(got))
    assert got == want, f"golden mismatch for {key} under backend={backend}"


def test_golden_fixture_covers_all_builders() -> None:
    from repro.caches.hierarchy import HIERARCHY_BUILDERS

    configs = {_parse_key(k)[1] for k in _CELLS}
    assert configs == set(HIERARCHY_BUILDERS)
