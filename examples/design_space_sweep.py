#!/usr/bin/env python
"""Design-space exploration around the paper's CPP configuration.

Sweeps three axes the paper fixes by design and shows why its choices
hold up:

* the compressed-slot width (paper: 16 bits, §2.1);
* the affiliated-line pairing mask (paper: 0x1 = next line, §3.1);
* the L1 size (is the win just "more effective capacity"?).

Run:  python examples/design_space_sweep.py          (takes ~1 min)
      python examples/design_space_sweep.py --quick
"""

import sys
from dataclasses import replace

from repro.caches.compression_cache import CPPPolicy
from repro.caches.hierarchy import HierarchyParams
from repro.compression.scheme import CompressionScheme
from repro.compression.vectorized import compression_summary
from repro.sim.config import SimConfig
from repro.sim.runner import get_program, run_program
from repro.utils.tables import format_table

WORKLOADS = ["olden.treeadd", "spec95.130.li", "spec2000.300.twolf"]


def run_cpp(params: HierarchyParams, scale: float) -> tuple[int, int]:
    config = SimConfig(cache_config="CPP", hierarchy=params)
    cycles = traffic = 0
    for name in WORKLOADS:
        result = run_program(get_program(name, seed=1, scale=scale), config)
        cycles += result.cycles
        traffic += result.bus_words
    return cycles, traffic


def sweep_width(scale: float) -> None:
    print("== Compressed-slot width (paper picks 16 bits) ==")
    rows = []
    for payload in (7, 11, 15, 19, 23):
        scheme = CompressionScheme(payload_bits=payload)
        fracs = []
        for name in WORKLOADS:
            program = get_program(name, seed=1, scale=scale)
            fracs.append(
                compression_summary(
                    *program.trace.accessed_values(), scheme
                ).fraction_compressible
            )
        cycles, traffic = run_cpp(HierarchyParams(scheme=scheme), scale)
        rows.append(
            [
                f"{payload + 1}-bit",
                round(100 * sum(fracs) / len(fracs), 1),
                cycles,
                traffic,
            ]
        )
    print(format_table(["slot", "compressible %", "cycles", "bus words"], rows))
    print(
        "Narrow slots compress too few values; wide slots compress more "
        "but each prefetched word costs more space. 16 bits is the knee "
        "(the balance §2.1 cites).\n"
    )


def sweep_mask(scale: float) -> None:
    print("== Affiliated-line pairing mask (paper picks 0x1) ==")
    rows = []
    for mask in (1, 2, 4, 8):
        cycles, traffic = run_cpp(
            HierarchyParams(cpp_policy=CPPPolicy(mask=mask)), scale
        )
        note = "next line (paper)" if mask == 1 else f"{mask} lines apart"
        rows.append([hex(mask), note, cycles, traffic])
    print(format_table(["mask", "pairing", "cycles", "bus words"], rows))
    print(
        "Only mask 0x1 keeps an L1 pair inside one L2 line, so only it "
        "gets the free L2-to-L1 piggyback; farther pairings also lose "
        "spatial-locality value.\n"
    )


def sweep_l1_size(scale: float) -> None:
    print("== Is CPP just extra capacity? (L1 size sweep, BC vs CPP) ==")
    rows = []
    for l1_kb in (4, 8, 16):
        params = HierarchyParams(l1_size=l1_kb * 1024)
        bc_cycles = 0
        for name in WORKLOADS:
            bc_cycles += run_program(
                get_program(name, seed=1, scale=scale),
                SimConfig(cache_config="BC", hierarchy=params),
            ).cycles
        cpp_cycles, _ = run_cpp(params, scale)
        rows.append(
            [
                f"{l1_kb} KB",
                bc_cycles,
                cpp_cycles,
                f"{100 * (1 - cpp_cycles / bc_cycles):.1f}%",
            ]
        )
    print(format_table(["L1 size", "BC cycles", "CPP cycles", "CPP speedup"], rows))
    print(
        "CPP's gain persists across sizes: it is the *prefetching* of "
        "important words, not just denser storage (paper §4.3's point "
        "against HAC).\n"
    )


def main() -> None:
    scale = 0.2 if "--quick" in sys.argv else 0.4
    sweep_width(scale)
    sweep_mask(scale)
    sweep_l1_size(scale)


if __name__ == "__main__":
    main()
