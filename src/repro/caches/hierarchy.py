"""Two-level hierarchy assembly: the five evaluated configurations.

Geometry defaults are the paper's (§4.1): 8 KB direct-mapped L1 with 64 B
lines, 64 KB 2-way L2 with 128 B lines; HAC doubles both associativities;
BCP adds 8-/32-entry prefetch buffers; latencies from Figure 9 (L1 hit 1,
L2 hit 10, memory 100).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.caches.base import Cache
from repro.caches.compression_cache import CompressionCache, CPPPolicy
from repro.caches.interface import AccessResult, MemoryPort
from repro.caches.next_line import PrefetchingCache
from repro.caches.stats import CacheStats
from repro.compression.scheme import CompressionScheme, PAPER_SCHEME
from repro.errors import ConfigurationError
from repro.memory.bus import BusMeter
from repro.memory.main_memory import MainMemory

__all__ = [
    "HierarchyParams",
    "Hierarchy",
    "build_hierarchy",
    "HIERARCHY_BUILDERS",
    "CONFIG_NAMES",
]


@dataclass(frozen=True)
class HierarchyParams:
    """Geometry and latency knobs shared by all five configurations."""

    l1_size: int = 8 * 1024
    l1_assoc: int = 1
    l1_line: int = 64
    l1_latency: int = 1
    l2_size: int = 64 * 1024
    l2_assoc: int = 2
    l2_line: int = 128
    l2_latency: int = 10
    l1_buffer_entries: int = 8
    l2_buffer_entries: int = 32
    scheme: CompressionScheme = PAPER_SCHEME
    cpp_policy: CPPPolicy = field(default_factory=CPPPolicy)

    def scaled_latencies(self, miss_scale: float) -> "HierarchyParams":
        """Scale the *miss* latencies (L2 hit latency) by *miss_scale*.

        Used by the Figure 14 methodology (halved miss penalty). The L1
        hit latency is untouched; the memory latency lives on
        :class:`MainMemory` and is scaled by the caller.
        """
        if miss_scale <= 0:
            raise ConfigurationError("miss_scale must be positive")
        return replace(self, l2_latency=max(1, round(self.l2_latency * miss_scale)))


class Hierarchy:
    """Facade the CPU drives: word loads/stores against a two-level system."""

    def __init__(
        self,
        name: str,
        l1,
        l2,
        memory: MainMemory,
        params: HierarchyParams,
    ) -> None:
        self.name = name
        self.l1 = l1
        self.l2 = l2
        self.memory = memory
        self.params = params

    def load(self, addr: int, now: int = 0) -> AccessResult:
        """CPU word load at cycle *now*; returns latency and serving level."""
        return self.l1.access(addr, False, None, now)

    def store(self, addr: int, value: int, now: int = 0) -> AccessResult:
        """CPU word store (write-back/write-allocate all the way down)."""
        return self.l1.access(addr, True, value, now)

    @property
    def bus(self) -> BusMeter:
        return self.memory.bus

    @property
    def l1_stats(self) -> CacheStats:
        return self.l1.stats

    @property
    def l2_stats(self) -> CacheStats:
        return self.l2.stats

    def check_invariants(self) -> None:
        """Audit CPP invariants (no-op for conventional levels)."""
        for level in (self.l1, self.l2):
            check = getattr(level, "check_invariants", None)
            if check is not None:
                check()

    def flush(self) -> None:
        """Drain all dirty state to memory (L1 first, then L2).

        After a flush, the backing :class:`MemoryImage` holds the exact
        architectural memory state — the equivalence the integration tests
        assert against the workload generator's image.
        """
        self.l1.flush()
        self.l2.flush()


# ---- builders -------------------------------------------------------------------


def _classic_levels(
    memory: MainMemory,
    p: HierarchyParams,
    *,
    assoc_multiplier: int = 1,
    compressed_bus: bool = False,
) -> tuple[Cache, Cache]:
    port = MemoryPort(
        memory,
        fetch_compressed=compressed_bus,
        writeback_compressed=compressed_bus,
        scheme=p.scheme,
    )
    l2 = Cache(
        "L2",
        size_bytes=p.l2_size,
        assoc=p.l2_assoc * assoc_multiplier,
        line_bytes=p.l2_line,
        hit_latency=p.l2_latency,
        downstream=port,
    )
    l1 = Cache(
        "L1",
        size_bytes=p.l1_size,
        assoc=p.l1_assoc * assoc_multiplier,
        line_bytes=p.l1_line,
        hit_latency=p.l1_latency,
        downstream=l2,
    )
    return l1, l2


def build_bc(memory: MainMemory, params: HierarchyParams | None = None) -> Hierarchy:
    """Baseline cache: conventional two-level hierarchy, uncompressed bus."""
    p = params or HierarchyParams()
    l1, l2 = _classic_levels(memory, p)
    return Hierarchy("BC", l1, l2, memory, p)


def build_bcc(memory: MainMemory, params: HierarchyParams | None = None) -> Hierarchy:
    """BC plus data compression on the off-chip bus.

    Identical hit/miss/timing behaviour to BC — "BCC only changes the
    format in which the data is stored and transmitted" — but line
    transfers are charged their packed size.
    """
    p = params or HierarchyParams()
    l1, l2 = _classic_levels(memory, p, compressed_bus=True)
    return Hierarchy("BCC", l1, l2, memory, p)


def build_hac(memory: MainMemory, params: HierarchyParams | None = None) -> Hierarchy:
    """Higher-associativity cache: 2-way L1 / 4-way L2 (doubled)."""
    p = params or HierarchyParams()
    l1, l2 = _classic_levels(memory, p, assoc_multiplier=2)
    return Hierarchy("HAC", l1, l2, memory, p)


def build_bcp(memory: MainMemory, params: HierarchyParams | None = None) -> Hierarchy:
    """BC plus next-line prefetch-on-miss with 8-/32-entry buffers."""
    p = params or HierarchyParams()
    l1_cache, l2_cache = _classic_levels(memory, p)
    l2 = PrefetchingCache(l2_cache, p.l2_buffer_entries)
    l1_cache.downstream = l2  # demand and prefetch requests route via the facade
    l1 = PrefetchingCache(l1_cache, p.l1_buffer_entries)
    return Hierarchy("BCP", l1, l2, memory, p)


def build_cpp(memory: MainMemory, params: HierarchyParams | None = None) -> Hierarchy:
    """The paper's compression-enabled partial-line prefetching hierarchy."""
    p = params or HierarchyParams()
    port = MemoryPort(
        memory,
        fetch_compressed=False,  # fills use full width: freed slots carry prefetch
        writeback_compressed=True,
        scheme=p.scheme,
    )
    l2 = CompressionCache(
        "L2",
        size_bytes=p.l2_size,
        assoc=p.l2_assoc,
        line_bytes=p.l2_line,
        hit_latency=p.l2_latency,
        downstream=port,
        scheme=p.scheme,
        policy=p.cpp_policy,
    )
    l1 = CompressionCache(
        "L1",
        size_bytes=p.l1_size,
        assoc=p.l1_assoc,
        line_bytes=p.l1_line,
        hit_latency=p.l1_latency,
        downstream=l2,
        scheme=p.scheme,
        policy=p.cpp_policy,
    )
    return Hierarchy("CPP", l1, l2, memory, p)


def build_bsp(memory: MainMemory, params: HierarchyParams | None = None) -> Hierarchy:
    """EXTENSION: BC plus Baer-Chen-style stride prefetching.

    Not one of the paper's five configurations — it implements the
    stronger prefetcher family the paper's related work (§5) points to,
    so CPP can be compared against it (``bench_extension_stride``).
    """
    from repro.caches.stride import StridePrefetchingCache

    p = params or HierarchyParams()
    l1_cache, l2_cache = _classic_levels(memory, p)
    l2 = StridePrefetchingCache(l2_cache, p.l2_buffer_entries)
    l1_cache.downstream = l2
    l1 = StridePrefetchingCache(l1_cache, p.l1_buffer_entries)
    return Hierarchy("BSP", l1, l2, memory, p)


def build_bvc(memory: MainMemory, params: HierarchyParams | None = None) -> Hierarchy:
    """EXTENSION: BC plus Jouppi victim caches at both levels.

    Isolates the conflict-miss-relief half of related work [3] (CPP's
    victim stash plays this role inside the affiliated locations). Uses
    the same 8-/32-entry budgets as BCP's prefetch buffers.
    """
    from repro.caches.victim import VictimAwareCache, VictimCache

    p = params or HierarchyParams()
    port = MemoryPort(memory, scheme=p.scheme)
    l2_cache = VictimAwareCache(
        "L2",
        size_bytes=p.l2_size,
        assoc=p.l2_assoc,
        line_bytes=p.l2_line,
        hit_latency=p.l2_latency,
        downstream=port,
        victim_entries=p.l2_buffer_entries,
    )
    l2 = VictimCache(l2_cache)
    l1_cache = VictimAwareCache(
        "L1",
        size_bytes=p.l1_size,
        assoc=p.l1_assoc,
        line_bytes=p.l1_line,
        hit_latency=p.l1_latency,
        downstream=l2,
        victim_entries=p.l1_buffer_entries,
    )
    l1 = VictimCache(l1_cache)
    return Hierarchy("BVC", l1, l2, memory, p)


HIERARCHY_BUILDERS = {
    "BC": build_bc,
    "BCC": build_bcc,
    "HAC": build_hac,
    "BCP": build_bcp,
    "CPP": build_cpp,
    "BSP": build_bsp,  # extension, see build_bsp
    "BVC": build_bvc,  # extension, see build_bvc
}

#: The paper's five evaluated configurations (BSP is an extension).
CONFIG_NAMES = ("BC", "BCC", "HAC", "BCP", "CPP")


def build_hierarchy(
    name: str, memory: MainMemory, params: HierarchyParams | None = None
) -> Hierarchy:
    """Build one of the five named configurations over *memory*."""
    try:
        builder = HIERARCHY_BUILDERS[name.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown configuration {name!r}; choose from {CONFIG_NAMES}"
        ) from None
    return builder(memory, params)
