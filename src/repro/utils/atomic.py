"""Atomic, durable file writes: no reader ever sees a truncated file.

Results exports, run manifests, matrix checkpoints and the result
store's journal are all written through :func:`atomic_write_text`: the
content goes to a ``*.tmp`` file in the *same directory* (so the final
rename never crosses a filesystem boundary) and is moved into place with
:func:`os.replace`, which POSIX guarantees to be atomic. An interrupt —
Ctrl-C, a crashed worker, an OOM kill — therefore leaves either the
previous complete file or the new complete file, never a half-written
one. This is what makes checkpoint/resume trustworthy: a checkpoint that
survived an interrupt is by construction well-formed.

Durability is part of the contract, not an afterthought: the temporary
file is fsynced before the rename and the containing directory is
fsynced after it, so a machine crash (not just a process crash) cannot
lose a rename that a caller has already observed succeeding. Failures
anywhere on that path — ENOSPC while writing, EIO on fsync, a read-only
filesystem at rename — raise a typed
:class:`~repro.errors.AtomicWriteError` after unlinking the temporary
file, so error paths never leak ``*.tmp`` litter next to the target.
"""

from __future__ import annotations

import itertools
import os
from pathlib import Path

from repro.errors import AtomicWriteError

__all__ = ["atomic_write_text", "atomic_write_bytes", "fsync_dir"]

#: Per-process uniquifier for temporary names. The pid guards against
#: *other* processes writing the same target (two campaign workers
#: enqueueing the same job must not rename each other's half-written
#: temp files away); the counter guards against threads in this one.
_TMP_SEQ = itertools.count()


def fsync_dir(path: str | Path) -> None:
    """Flush a directory's metadata (new/renamed entries) to disk.

    Platforms that cannot open directories (or filesystems that reject
    directory fsync) are silently tolerated — the rename is still atomic,
    just not guaranteed durable across a *machine* crash there.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_write(path: str | Path, data: bytes) -> Path:
    """The shared write-fsync-rename-fsync sequence behind both writers."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.{next(_TMP_SEQ)}.tmp")
    try:
        with tmp.open("wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        # Unlink must not mask the original failure — and must itself be
        # allowed to fail (the disk that broke the write may break it).
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
        raise AtomicWriteError(path, exc) from exc
    except BaseException:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
        raise
    fsync_dir(path.parent)
    return path


def atomic_write_text(path: str | Path, text: str, *, encoding: str = "utf-8") -> Path:
    """Write *text* to *path* atomically and durably.

    The temporary file lives next to the target (a process-unique
    ``<name>.<pid>.<seq>.tmp``, so concurrent writers of one path never
    disturb each other — last rename wins whole), is fsynced, renamed
    over the target in one :func:`os.replace` call, and
    the parent directory is fsynced so the rename survives power loss.
    Raises :class:`~repro.errors.AtomicWriteError` on any I/O failure;
    the temporary file is unlinked on every error path. A non-``str``
    *text* raises :class:`TypeError` before anything touches the disk.
    """
    if not isinstance(text, str):
        raise TypeError(f"atomic_write_text needs str, got {type(text).__name__}")
    return _atomic_write(path, text.encode(encoding))


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Binary twin of :func:`atomic_write_text` (same guarantees)."""
    return _atomic_write(path, data)
