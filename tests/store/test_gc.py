"""Store lifecycle GC: superseded-version eviction under pins/budget."""

from __future__ import annotations

import json

from repro.store.gc import (
    gc_ledger_entries,
    gc_store,
    load_pins,
    pin_version,
    unpin_version,
)
from store_helpers import identity_store, sample_payload


def _seed_generations(root, *, old=3, new=2):
    """Write *old* records under v1 and *new* under v2; return v2 store."""
    v1 = identity_store(root, code_version="v1")
    for n in range(old):
        assert v1.put(("cell", n), sample_payload(n))
    v2 = identity_store(root, code_version="v2")
    for n in range(new):
        assert v2.put(("cell", n), sample_payload(100 + n))
    return v2


def test_gc_evicts_superseded_keeps_current(tmp_path):
    store = _seed_generations(tmp_path / "store")
    report = gc_store(store)
    assert report.scanned == 5
    assert report.candidates == 3
    assert report.evicted == 3
    assert store.object_count() == 2
    # Current-generation records still verify and serve.
    assert store.get(("cell", 0)) == sample_payload(100)
    # The evictions are ledgered, digest by digest.
    entries = gc_ledger_entries(store.root)
    assert len(entries) == 3
    assert {e["code_version"] for e in entries} == {"v1"}


def test_gc_dry_run_touches_nothing(tmp_path):
    store = _seed_generations(tmp_path / "store")
    report = gc_store(store, dry_run=True)
    assert report.evicted == 3
    assert report.dry_run
    assert store.object_count() == 5
    assert gc_ledger_entries(store.root) == []


def test_pinned_version_survives(tmp_path):
    store = _seed_generations(tmp_path / "store")
    pin_version(store.root, "v1")
    report = gc_store(store)
    assert report.candidates == 0
    assert report.evicted == 0
    assert store.object_count() == 5
    # Unpinning releases the generation again.
    unpin_version(store.root, "v1")
    assert gc_store(store).evicted == 3


def test_pins_are_refcounts(tmp_path):
    root = tmp_path / "store"
    store = _seed_generations(root)
    pin_version(store.root, "v1")
    pin_version(store.root, "v1")
    unpin_version(store.root, "v1")
    assert load_pins(store.root) == {"v1": 1}  # one of two pins dropped
    assert gc_store(store).evicted == 0
    unpin_version(store.root, "v1")
    assert gc_store(store).evicted == 3


def test_budget_under_is_a_noop(tmp_path):
    store = _seed_generations(tmp_path / "store")
    total = sum(p.stat().st_size for p, _ in store.records())
    report = gc_store(store, budget_bytes=total + 1)
    assert report.evicted == 0
    assert report.candidates == 3  # reported, not reclaimed
    assert store.object_count() == 5


def test_budget_over_drains_to_watermark(tmp_path):
    store = _seed_generations(tmp_path / "store", old=6, new=2)
    total = sum(p.stat().st_size for p, _ in store.records())
    budget = total - 1  # just over budget
    report = gc_store(store, budget_bytes=budget)
    assert report.evicted > 0
    assert report.evicted < report.candidates  # watermark, not scorched earth
    assert report.bytes_after <= int(budget * 0.8)
    # Only superseded records went; the current generation is intact.
    for n in range(2):
        assert store.get(("cell", n)) is not None


def test_budget_unreachable_reports_problem(tmp_path):
    store = _seed_generations(tmp_path / "store")
    report = gc_store(store, budget_bytes=1)  # protected bytes alone exceed it
    assert report.evicted == report.candidates == 3
    assert any("unpin" in p or "budget" in p for p in report.problems)


def test_gc_cli_summary_and_pin_roundtrip(tmp_path, capsys):
    from repro.store.__main__ import main

    # The CLI opens the store under the *live* code version, so both
    # test generations are superseded: only pins protect them.
    store = _seed_generations(tmp_path / "store")
    assert main(["pin", "v1", "--store", str(store.root)]) == 0
    assert main(["pin", "v2", "--store", str(store.root)]) == 0
    assert main(["gc", "--store", str(store.root)]) == 0
    out = capsys.readouterr().out
    summary = json.loads(out.rsplit("GC-SUMMARY ", 1)[1].splitlines()[0])
    assert summary["evicted"] == 0
    assert summary["versions"]["v1"]["pins"] == 1

    assert main(["pin", "v1", "--remove", "--store", str(store.root)]) == 0
    assert main(["gc", "--store", str(store.root)]) == 0
    out = capsys.readouterr().out
    summary = json.loads(out.rsplit("GC-SUMMARY ", 1)[1].splitlines()[0])
    assert summary["evicted"] == 3  # v1 reclaimed, pinned v2 survives
    assert store.object_count() == 2


def test_gc_after_eviction_store_fsck_clean(tmp_path):
    store = _seed_generations(tmp_path / "store")
    gc_store(store)
    report = store.fsck()
    assert report.clean
    assert report.scanned == report.verified == 2
