"""Olden-suite workload models: pointer-intensive dynamic data structures.

The Olden benchmarks (Carlisle, Princeton 1996) build and traverse linked
structures — trees, lists, graphs — which is exactly the behaviour the
paper's compression scheme exploits: heap pointers allocated near each
other share address prefixes, and bookkeeping fields hold small values.
"""

from repro.workloads.olden import (  # noqa: F401  (re-export modules)
    bisort,
    em3d,
    health,
    mst,
    perimeter,
    power,
    treeadd,
    tsp,
)

__all__ = [
    "bisort",
    "em3d",
    "health",
    "mst",
    "perimeter",
    "power",
    "treeadd",
    "tsp",
]
