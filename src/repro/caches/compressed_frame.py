"""The CPP physical cache frame (paper Figure 7).

One frame can hold content from **two** lines:

* the **primary line** — the line a conventional cache of the same
  geometry would map to this frame; per-word ``PA`` (availability) and
  ``VCP`` (compressibility) flags, plus a dirty bit;
* the **affiliated line** — ``primary XOR mask``; per-word ``AA``
  (availability) flags. Affiliated words are, by construction, always
  compressible and always clean (a write hit in the affiliated place
  promotes the line to its primary place before writing).

The model stores *uncompressed* word values with flags describing the
storage format; space legality — an affiliated word may occupy slot ``i``
only if the primary word there is compressed or absent — is enforced by
:meth:`can_hold_affiliated` and checked by :meth:`check_legal`.

Representation: the flag vectors (``pa``, ``vcp``, ``aa``) are packed
ints — bit *i* describes word *i* — and the word values are plain lists,
so every per-access flag operation is a single int bitwise op instead of
a small-NumPy-array round trip. ``vcp`` doubles as the frame's memoized
word-compressibility mask: compressibility is a pure function of
(value, line address), so it is recomputed only where a word's value
changes (stores, fills, write-backs) and reused everywhere else.
"""

from __future__ import annotations

from repro.errors import CacheProtocolError

__all__ = ["CompressedFrame"]


class CompressedFrame:
    """One physical frame of a compression cache."""

    __slots__ = (
        "n_words",
        "full_mask",
        "line_no",
        "dirty",
        "pvals",
        "pa",
        "vcp",
        "avals",
        "aa",
    )

    def __init__(self, n_words: int) -> None:
        self.n_words = n_words
        self.full_mask = (1 << n_words) - 1
        self.line_no = -1  #: primary line number; -1 = invalid frame
        self.dirty = False  #: primary line dirty (affiliated is always clean)
        self.pvals: list[int] = [0] * n_words
        self.pa = 0
        self.vcp = 0
        self.avals: list[int] = [0] * n_words
        self.aa = 0

    # ---- state predicates ---------------------------------------------------

    @property
    def valid(self) -> bool:
        return self.line_no >= 0

    @property
    def n_primary_words(self) -> int:
        return self.pa.bit_count()

    @property
    def n_affiliated_words(self) -> int:
        return self.aa.bit_count()

    @property
    def is_partial(self) -> bool:
        """True if the primary line has holes."""
        return self.valid and self.pa != self.full_mask

    def can_hold_affiliated(self, i: int) -> bool:
        """Space rule: slot *i* is free for a (compressed) affiliated word
        iff the primary word there is absent or itself compressed."""
        bit = 1 << i
        return not (self.pa & bit) or bool(self.vcp & bit)

    def affiliated_slot_mask(self) -> int:
        """Bitmask of slots able to hold an affiliated word."""
        return (self.pa ^ self.full_mask) | self.vcp

    # ---- mutation ---------------------------------------------------------------

    def invalidate(self) -> None:
        """Empty the frame: no primary line, no affiliated words, clean."""
        self.line_no = -1
        self.dirty = False
        self.pa = 0
        self.vcp = 0
        self.aa = 0

    def install_primary(
        self, line_no: int, values: list[int], avail: int, comp: int
    ) -> None:
        """Install a fresh primary line; clears any affiliated content."""
        if line_no < 0:
            raise CacheProtocolError("cannot install a negative line number")
        self.line_no = line_no
        self.dirty = False
        self.pvals[:] = values
        self.pa = avail
        self.vcp = comp & avail
        self.aa = 0

    def clear_affiliated(self) -> None:
        """Drop all affiliated words (they are clean by invariant)."""
        self.aa = 0

    def set_affiliated_words(self, values: list[int], mask: int) -> int:
        """Replace affiliated content with *values* where *mask*; the caller
        guarantees compressibility, this method enforces the space rule.
        Returns how many words were stored."""
        legal = mask & self.affiliated_slot_mask()
        avals = self.avals
        m = legal
        while m:
            low = m & -m
            i = low.bit_length() - 1
            avals[i] = values[i]
            m ^= low
        self.aa = legal
        return legal.bit_count()

    # ---- verification -------------------------------------------------------------

    def check_legal(self) -> None:
        """Raise if the frame violates the space rule or flag consistency."""
        if not self.valid:
            if self.pa or self.aa or self.vcp or self.dirty:
                raise CacheProtocolError("invalid frame carries state")
            return
        if self.vcp & ~self.pa:
            raise CacheProtocolError("VCP set for an absent primary word")
        if self.aa & self.pa & ~self.vcp:
            raise CacheProtocolError(
                "affiliated word stored over an uncompressed primary word"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug cosmetic
        if not self.valid:
            return "<CompressedFrame invalid>"
        return (
            f"<CompressedFrame line={self.line_no:#x} "
            f"pa={self.n_primary_words}/{self.n_words} "
            f"aa={self.n_affiliated_words} dirty={self.dirty}>"
        )
