"""Named simulator configurations (paper §4.1 + Figure 9).

A :class:`SimConfig` bundles the cache configuration name (BC/BCC/HAC/
BCP/CPP), the hierarchy geometry, the core parameters and the memory
latency. ``miss_scale`` supports the Figure 14 methodology: scaling the
miss penalties (L2 hit latency and memory latency) while leaving
everything else untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.caches.hierarchy import CONFIG_NAMES as _PAPER_CONFIGS
from repro.caches.hierarchy import HIERARCHY_BUILDERS as _ALL_BUILDERS
from repro.caches.hierarchy import HierarchyParams
from repro.compression.codecs import CODEC_NAMES, DEFAULT_CODEC
from repro.cpu.pipeline import CoreConfig
from repro.errors import ConfigurationError
from repro.sim.backend import BACKEND_NAMES

__all__ = ["SimConfig", "SIM_CONFIGS", "CONFIG_NAMES", "MEMORY_LATENCY"]

MEMORY_LATENCY = 100  #: cycles (Figure 9: "Memory access latency")


@dataclass(frozen=True)
class SimConfig:
    """A complete machine configuration."""

    cache_config: str = "BC"
    hierarchy: HierarchyParams = field(default_factory=HierarchyParams)
    core: CoreConfig = field(default_factory=CoreConfig)
    memory_latency: int = MEMORY_LATENCY
    miss_scale: float = 1.0  #: scales L2-hit and memory latency (Figure 14)
    #: Simulation backend ("reference" | "fast"); "" defers to the
    #: process default (the REPRO_BACKEND environment variable). Both
    #: backends produce bit-identical results — this knob only selects
    #: the execution strategy.
    backend: str = ""
    #: Compression codec from the zoo ("cpp" | "fpc" | "bdi" | "cpack");
    #: "" defers to the process default (the REPRO_CODEC environment
    #: variable, falling back to "cpp", the paper's scheme). Unlike
    #: ``backend``, this knob *changes results*: the resolved codec's
    #: per-word facet becomes the hierarchy's compression scheme.
    #: Line-only codecs (bdi, cpack) are rejected at hierarchy-build
    #: time — they serve the ratio/timing sweeps, not full simulation.
    codec: str = ""

    def __post_init__(self) -> None:
        if self.cache_config.upper() not in _ALL_BUILDERS:
            raise ConfigurationError(
                f"unknown cache config {self.cache_config!r}; "
                f"choose from {tuple(_ALL_BUILDERS)}"
            )
        if self.backend and self.backend not in BACKEND_NAMES:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; "
                f"choose from {BACKEND_NAMES}"
            )
        if self.codec and self.codec not in CODEC_NAMES:
            raise ConfigurationError(
                f"unknown codec {self.codec!r}; choose from {CODEC_NAMES}"
            )
        if self.memory_latency < 1:
            raise ConfigurationError("memory latency must be positive")
        if self.miss_scale <= 0:
            raise ConfigurationError("miss_scale must be positive")

    @property
    def name(self) -> str:
        suffix = "" if self.miss_scale == 1.0 else f"@x{self.miss_scale:g}"
        # An explicit non-default codec changes results, so it must show
        # in the name (env-selected codecs are salted into the store's
        # code version instead — see repro.store.cas).
        if self.codec and self.codec != DEFAULT_CODEC:
            suffix += f"+{self.codec}"
        return self.cache_config.upper() + suffix

    @property
    def cache_config_key(self) -> str:
        """Cache-config identity for memo/checkpoint/cell keys.

        The *resolved* codec (explicit field, else ``REPRO_CODEC``, else
        the paper default) is salted in when it is not the default —
        codecs change results, so a ``--codec fpc`` campaign must never
        reuse cells computed under the paper's scheme from the in-process
        memo or a resumed checkpoint. Default-codec keys are unchanged,
        keeping every pre-zoo checkpoint resumable. (``backend`` is
        deliberately absent: backends are bit-identical by contract.)
        """
        from repro.compression.codecs import resolve_codec

        codec = resolve_codec(self.codec)
        if codec == DEFAULT_CODEC:
            return self.cache_config
        return f"{self.cache_config}+{codec}"

    def effective_memory_latency(self) -> int:
        """Memory latency after miss scaling (Figure 14 runs halve it)."""
        return max(1, round(self.memory_latency * self.miss_scale))

    def effective_hierarchy(self) -> HierarchyParams:
        """Hierarchy geometry with miss-scaled latencies applied."""
        return self.hierarchy.scaled_latencies(self.miss_scale)

    def with_miss_scale(self, scale: float) -> "SimConfig":
        """The same machine with miss penalties scaled (Figure 14 pairs)."""
        return replace(self, miss_scale=scale)


SIM_CONFIGS: dict[str, SimConfig] = {
    name: SimConfig(cache_config=name) for name in _PAPER_CONFIGS
}

CONFIG_NAMES = tuple(SIM_CONFIGS)
