"""Shared helpers for the result-store tests.

Most tests use an *identity codec* store (payloads are plain dicts, no
simulator involved) so the crash/corruption machinery is exercised at
full speed; the campaign integration tests use the real codec.
"""

from __future__ import annotations

from repro.store.cas import ResultStore

#: A fixed code version so digests are stable across test runs.
CODE_VERSION = "test-code-1"


def identity_store(root, **kwargs) -> ResultStore:
    """A store whose payloads are plain dicts (no SimResult codec)."""
    kwargs.setdefault("code_version", CODE_VERSION)
    return ResultStore(root, encode=lambda r: r, decode=lambda p: p, **kwargs)


def sample_payload(n: int = 0) -> dict:
    return {"cycles": 1000 + n, "ipc": 0.5 + n / 8, "rows": [n, n + 1, n + 2]}
