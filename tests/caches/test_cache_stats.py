"""CacheStats flattening and metrics publishing."""

from repro.caches.stats import CacheStats
from repro.obs.metrics import MetricsRegistry


class TestAsDict:
    def test_all_counter_fields_present(self):
        d = CacheStats(name="L1").as_dict()
        for field_name in CacheStats.COUNTER_FIELDS:
            assert field_name in d
        assert d["name"] == "L1"
        assert d["miss_rate"] == 0.0

    def test_extra_keys_are_namespaced(self):
        stats = CacheStats(name="L1")
        stats.extra["victim_hits"] = 7
        d = stats.as_dict()
        assert d["extra.victim_hits"] == 7
        assert "victim_hits" not in d

    def test_extra_cannot_shadow_base_counters(self):
        # Regression: a wrapper registering extra["misses"] used to
        # overwrite the base misses column in flattened output.
        stats = CacheStats(name="L1")
        stats.record_access(hit=False)
        stats.record_access(hit=True)
        stats.extra["misses"] = 999
        d = stats.as_dict()
        assert d["misses"] == 1
        assert d["extra.misses"] == 999
        assert d["miss_rate"] == 0.5


class TestPublish:
    def test_counters_land_with_level_label(self):
        reg = MetricsRegistry()
        stats = CacheStats(name="L1")
        stats.record_access(hit=False)
        stats.affiliated_hits = 3
        stats.extra["victim_hits"] = 2
        stats.publish(reg, workload="olden.mst", config="CPP")
        labels = {"level": "L1", "workload": "olden.mst", "config": "CPP"}
        assert reg.value("cache.accesses", **labels) == 1
        assert reg.value("cache.affiliated_hits", **labels) == 3
        assert reg.value("cache.extra.victim_hits", **labels) == 2
        assert reg.value("cache.miss_rate", **labels) == 1.0

    def test_publish_accumulates_across_runs(self):
        reg = MetricsRegistry()
        for _ in range(2):
            stats = CacheStats(name="L2")
            stats.record_access(hit=True)
            stats.publish(reg)
        assert reg.value("cache.accesses", level="L2") == 2
