"""Gate-delay model tests against the paper's §3.2 numbers."""

import pytest

from repro.compression.scheme import CompressionScheme
from repro.compression.timing import GateDelayModel


class TestPaperNumbers:
    def test_compress_is_8_gate_delays(self):
        # "Each of the checks can be performed using log(18) = 5 levels of
        # 2 input gates ... 3 levels of gates to distinguish these cases.
        # The total delay is 8 gate delays."
        assert GateDelayModel().compress_gate_delays == 8

    def test_decompress_is_2_levels(self):
        # "we need at least two levels of gates to decompress"
        assert GateDelayModel().decompress_gate_delays == 2

    def test_compression_hidden_in_typical_cycle(self):
        # A cycle comfortably fits 16+ gate levels; the compressor fits.
        assert GateDelayModel().compression_hidden(16)

    def test_decompression_hidden_under_tag_match(self):
        assert GateDelayModel().decompression_hidden(4)


class TestParameterized:
    def test_wider_payload_is_faster(self):
        # Keeping more payload bits shrinks the prefix comparators.
        wide = GateDelayModel(scheme=CompressionScheme(payload_bits=23))
        assert wide.compress_gate_delays < GateDelayModel().compress_gate_delays

    def test_widest_check_tracks_scheme(self):
        m = GateDelayModel(scheme=CompressionScheme(payload_bits=23))
        assert m.widest_check_bits == m.scheme.small_check_bits

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            GateDelayModel().compression_hidden(0)
        with pytest.raises(ValueError):
            GateDelayModel().decompression_hidden(-1)
