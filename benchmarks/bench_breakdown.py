"""Supporting analysis: three-C miss classification of the suite.

Not a numbered paper figure, but the measurement behind the paper's
§4.3 reasoning ("if conflict misses are dominant ... CPP performs better
than BCP"): classify each workload's misses in the paper's 8 KB
direct-mapped L1 as compulsory / capacity / conflict and record the
shares in extra_info.
"""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.analysis.breakdown import classify_misses
from repro.sim.runner import get_program
from repro.workloads.registry import WORKLOAD_NAMES


def run_breakdowns():
    out = {}
    for name in WORKLOAD_NAMES:
        program = get_program(name, seed=BENCH_SEED, scale=BENCH_SCALE)
        out[name] = classify_misses(program.trace)
    return out


def test_three_c_breakdown(benchmark):
    results = run_once(benchmark, run_breakdowns)
    for name, bk in results.items():
        short = name.split(".")[-1]
        benchmark.extra_info[f"{short}"] = (
            f"comp {bk.fraction('compulsory'):.2f} / "
            f"cap {bk.fraction('capacity'):.2f} / "
            f"conf {bk.fraction('conflict'):.2f}"
        )
    # Structural sanity on every workload:
    for name, bk in results.items():
        assert bk.total > 0, name
        assert bk.compulsory > 0, name
    # The suite spans the design space: at least one conflict-dominated
    # workload (the CPP-beats-BCP regime) and one that is not.
    assert any(bk.conflict_dominated for bk in results.values())
    assert any(not bk.conflict_dominated for bk in results.values())
