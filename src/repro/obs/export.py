"""Telemetry exporters: Chrome trace-event JSON and flat span JSONL.

Two interchange formats for a :class:`~repro.obs.telemetry.TelemetryStore`:

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (``{"traceEvents": [...]}``, "X" complete events),
  loadable in Perfetto / ``chrome://tracing``. Spans land on
  **per-worker tracks**: the supervisor is tid 0, each worker slot gets
  its own named tid, so a campaign renders as a swimlane per worker with
  cell attempts (and the child spans nested under them) laid out in
  wall-clock order.
* :func:`to_span_lines` / :func:`write_spans_jsonl` — one flat
  OTLP-style JSON object per line (``traceId`` / ``spanId`` /
  ``parentSpanId``, nanosecond timestamps, attributes), the shape log
  pipelines and OpenTelemetry collectors expect.

Both are pure functions of the store — exporting never mutates it.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.telemetry import TelemetryStore
from repro.utils.atomic import atomic_write_text

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "to_span_lines",
    "write_spans_jsonl",
    "CHROME_TRACE_FILENAME",
    "SPANS_FILENAME",
]

CHROME_TRACE_FILENAME = "trace.json"
SPANS_FILENAME = "spans.jsonl"

#: Synthetic pid for the whole run: Chrome groups tracks by (pid, tid),
#: and one process row keeps the per-worker swimlanes together.
_TRACE_PID = 1


def _track_of(span: dict) -> int:
    """tid for a span: worker slot + 1, supervisor/unattributed on 0."""
    worker = span.get("attrs", {}).get("worker")
    if isinstance(worker, int) and worker >= 0:
        return worker + 1
    return 0


def to_chrome_trace(store: TelemetryStore) -> dict:
    """The store as a Chrome trace-event JSON object."""
    spans = store.spans()
    base = min((s["start"] for s in spans), default=0.0)
    events: list[dict] = []
    tracks: dict[int, str] = {0: "supervisor"}
    for span in spans:
        tid = _track_of(span)
        if tid not in tracks:
            tracks[tid] = f"worker {tid - 1}"
        args = dict(span.get("attrs", {}))
        args["span_id"] = span["span_id"]
        if span.get("parent_id"):
            args["parent_id"] = span["parent_id"]
        if span.get("status", "ok") != "ok":
            args["status"] = span["status"]
        if "op_start" in span:
            args["op_start"] = span["op_start"]
            args["op_end"] = span["op_end"]
        events.append(
            {
                "name": span["name"],
                "cat": "repro",
                "ph": "X",
                "ts": round((span["start"] - base) * 1e6, 3),
                "dur": round(max(0.0, span["end"] - span["start"]) * 1e6, 3),
                "pid": _TRACE_PID,
                "tid": tid,
                "args": args,
            }
        )
    events.sort(key=lambda e: (e["tid"], e["ts"], e["name"]))
    meta = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _TRACE_PID,
            "tid": 0,
            "args": {"name": f"repro run {store.trace_id or '?'}"},
        }
    ]
    meta.extend(
        {
            "ph": "M",
            "name": "thread_name",
            "pid": _TRACE_PID,
            "tid": tid,
            "args": {"name": name},
        }
        for tid, name in sorted(tracks.items())
    )
    meta.extend(
        {
            "ph": "M",
            "name": "thread_sort_index",
            "pid": _TRACE_PID,
            "tid": tid,
            "args": {"sort_index": tid},
        }
        for tid in sorted(tracks)
    )
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(store: TelemetryStore, path: str | Path) -> Path:
    """Write the Chrome trace atomically; returns the path."""
    return atomic_write_text(
        path, json.dumps(to_chrome_trace(store), sort_keys=True) + "\n"
    )


def to_span_lines(store: TelemetryStore) -> list[dict]:
    """Flat OTLP-style span objects, one per span."""
    lines = []
    for span in store.spans():
        lines.append(
            {
                "traceId": span["trace_id"],
                "spanId": span["span_id"],
                "parentSpanId": span.get("parent_id") or "",
                "name": span["name"],
                "startTimeUnixNano": int(span["start"] * 1e9),
                "endTimeUnixNano": int(span["end"] * 1e9),
                "status": span.get("status", "ok"),
                "attributes": dict(span.get("attrs", {})),
                "pid": span.get("pid"),
            }
        )
    return lines


def write_spans_jsonl(store: TelemetryStore, path: str | Path) -> Path:
    """Write the flat span stream as JSON Lines; returns the path."""
    text = "".join(
        json.dumps(line, sort_keys=True) + "\n"
        for line in to_span_lines(store)
    )
    return atomic_write_text(path, text)
