"""A small blocking client for the experiment service.

Wraps ``http.client`` (stdlib, like the server) and speaks the service's
JSON dialect: every call returns a :class:`ServeReply` with the status
code, headers and decoded body. The ``wait_*`` helpers encode the
202-until-200 polling contract — they respect ``Retry-After`` and give
up with a :class:`~repro.errors.ServeError` after *timeout* seconds, so
scripts never hand-roll the loop (and never busy-wait).
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass, field
from urllib.parse import urlencode

from repro.errors import ServeError

__all__ = ["ServeClient", "ServeReply"]


@dataclass
class ServeReply:
    """One decoded service response."""

    status: int
    data: dict = field(default_factory=dict)
    headers: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def retry_after(self) -> float:
        try:
            return float(self.headers.get("retry-after", 1.0))
        except ValueError:
            return 1.0


class ServeClient:
    """Blocking JSON client; one connection per request (server closes)."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8765, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(
        self,
        method: str,
        path: str,
        *,
        params: dict | None = None,
        body: dict | None = None,
    ) -> ServeReply:
        """One raw request; decodes the JSON body into a ServeReply."""
        if params:
            path = f"{path}?{urlencode(params)}"
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                data = json.loads(raw.decode("utf-8")) if raw else {}
            except ValueError as exc:
                raise ServeError(
                    f"service returned non-JSON ({response.status}): "
                    f"{raw[:200]!r}"
                ) from exc
            return ServeReply(
                status=response.status,
                data=data,
                headers={k.lower(): v for k, v in response.getheaders()},
            )
        except (ConnectionError, OSError) as exc:
            raise ServeError(
                f"cannot reach service at {self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            conn.close()

    # -- one call per endpoint ------------------------------------------

    def healthz(self) -> ServeReply:
        """GET /v1/healthz."""
        return self.request("GET", "/v1/healthz")

    def stats(self) -> ServeReply:
        """GET /v1/stats."""
        return self.request("GET", "/v1/stats")

    def workers(self) -> ServeReply:
        """GET /v1/workers."""
        return self.request("GET", "/v1/workers")

    def result(self, workload: str, config: str, **params) -> ServeReply:
        """GET /v1/result for one matrix cell."""
        params.update({"workload": workload, "config": config})
        return self.request("GET", "/v1/result", params=params)

    def figure(self, name: str, **params) -> ServeReply:
        """GET /v1/figure/<name>."""
        return self.request("GET", f"/v1/figure/{name}", params=params)

    def post_campaign(self, **body) -> ServeReply:
        """POST /v1/campaign with a JSON matrix spec."""
        return self.request("POST", "/v1/campaign", body=body)

    def campaign(self, name: str) -> ServeReply:
        """GET /v1/campaign/<name> progress."""
        return self.request("GET", f"/v1/campaign/{name}")

    def gc(self, *, budget: int | None = None, dry_run: bool = True) -> ServeReply:
        """GET (dry run) or POST (real pass) /v1/gc."""
        params = {"budget": budget} if budget is not None else {}
        method = "GET" if dry_run else "POST"
        return self.request(method, "/v1/gc", params=params)

    # -- polling contracts ----------------------------------------------

    def wait_ready(self, timeout: float = 30.0, poll: float = 0.2) -> None:
        """Block until the service answers /v1/healthz (or time out)."""
        deadline = time.monotonic() + timeout
        last = "never reached"
        while time.monotonic() < deadline:
            try:
                if self.healthz().ok:
                    return
            except ServeError as exc:
                last = str(exc)
            time.sleep(poll)
        raise ServeError(
            f"service at {self.host}:{self.port} not ready after "
            f"{timeout:g}s ({last})"
        )

    def _poll(self, fetch, what: str, timeout: float) -> ServeReply:
        deadline = time.monotonic() + timeout
        while True:
            reply = fetch()
            if reply.status != 202:
                return reply
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeError(
                    f"{what} still pending after {timeout:g}s: "
                    f"{json.dumps(reply.data, default=str)[:300]}"
                )
            time.sleep(min(max(reply.retry_after, 0.05), remaining))

    def wait_result(
        self, workload: str, config: str, *, timeout: float = 300.0, **params
    ) -> ServeReply:
        """Poll /v1/result until complete/failed (raises on timeout)."""
        return self._poll(
            lambda: self.result(workload, config, **params),
            f"result {workload}/{config}",
            timeout,
        )

    def wait_figure(
        self, name: str, *, timeout: float = 600.0, **params
    ) -> ServeReply:
        """Poll /v1/figure/<name> until it renders (raises on timeout)."""
        return self._poll(
            lambda: self.figure(name, **params), f"figure {name}", timeout
        )

    def wait_campaign(self, name: str, *, timeout: float = 600.0) -> ServeReply:
        """Poll /v1/campaign/<id> until the queue drains."""
        return self._poll(
            lambda: self.campaign(name), f"campaign {name}", timeout
        )
