"""Exhaustive classification-boundary tests across scheme widths.

The width ablation sweeps ``payload_bits`` well away from the paper's 15,
and every classifier in the tree — the reference
:class:`CompressionScheme`, the inlined scalar fast path of
:mod:`repro.compression.fastscalar`, the NumPy classifier of
:mod:`repro.compression.vectorized` and the codec — must agree *at the
edges*: ``small_min``/``small_max`` and one beyond, pointer prefixes that
match exactly or differ in just the lowest prefix bit, and the
degenerate widths 1 and 30. One silent off-by-one here skews every
ablation figure, so the boundary set is enumerated per width and checked
against all four implementations.
"""

import numpy as np
import pytest

from repro.compression.codec import compress_word, decompress_word
from repro.compression.fastscalar import compressibility_fn
from repro.compression.scheme import CompressClass, CompressionScheme, PAPER_SCHEME
from repro.compression.vectorized import compressible_mask
from repro.errors import ConfigurationError
from repro.utils.bitops import MASK32

WIDTHS = [1, 2, 8, 12, 15, 20, 24, 29, 30]

ADDRS = [0x1000_0000, 0x0000_0000, 0x7FFF_FFFC, 0xFFFF_FFFC]


def boundary_values(scheme: CompressionScheme, addr: int) -> list[int]:
    """The classification edges for one (scheme, address) pair."""
    width = scheme.payload_bits
    prefix = addr & ~((1 << width) - 1) & MASK32
    values = {
        0,
        1,
        scheme.small_max,  # largest small positive
        (scheme.small_max + 1) & MASK32,  # first non-small positive
        scheme.small_min & MASK32,  # most negative small
        (scheme.small_min - 1) & MASK32,  # first non-small negative
        MASK32,  # -1: always small
        prefix,  # pointer with zero payload
        prefix | ((1 << width) - 1),  # pointer with max payload
        MASK32 & (prefix ^ (1 << width)),  # prefix off by its lowest bit
    }
    return sorted(values)


@pytest.mark.parametrize("width", WIDTHS)
class TestClassifierAgreement:
    def test_scalar_fast_path_matches_reference(self, width):
        scheme = CompressionScheme(payload_bits=width)
        fast = compressibility_fn(scheme)
        for addr in ADDRS:
            for value in boundary_values(scheme, addr):
                assert fast(value, addr) == scheme.is_compressible(value, addr), (
                    f"width={width} value={value:#010x} addr={addr:#010x}"
                )

    def test_vectorized_matches_reference(self, width):
        scheme = CompressionScheme(payload_bits=width)
        for addr in ADDRS:
            values = boundary_values(scheme, addr)
            got = compressible_mask(
                np.array(values, dtype=np.uint32),
                np.full(len(values), addr, dtype=np.uint32),
                scheme,
            )
            want = [scheme.is_compressible(v, addr) for v in values]
            assert list(got) == want, f"width={width} addr={addr:#010x}"

    def test_codec_round_trips_every_compressible_boundary(self, width):
        scheme = CompressionScheme(payload_bits=width)
        for addr in ADDRS:
            for value in boundary_values(scheme, addr):
                word = compress_word(value, addr, scheme)
                assert (word is None) == (not scheme.is_compressible(value, addr))
                if word is not None:
                    back = decompress_word(word, addr, scheme) & MASK32
                    assert back == value, (
                        f"width={width} value={value:#010x} addr={addr:#010x}"
                    )


@pytest.mark.parametrize("width", WIDTHS)
class TestSmallValueEdges:
    def test_small_range_is_exactly_the_twos_complement_window(self, width):
        scheme = CompressionScheme(payload_bits=width)
        assert scheme.is_small(scheme.small_max)
        assert not scheme.is_small(scheme.small_max + 1)
        assert scheme.is_small(scheme.small_min & MASK32)
        assert not scheme.is_small((scheme.small_min - 1) & MASK32)
        assert scheme.is_small(0)
        assert scheme.is_small(MASK32)  # -1

    def test_small_window_geometry(self, width):
        scheme = CompressionScheme(payload_bits=width)
        assert scheme.small_max == (1 << (width - 1)) - 1
        assert scheme.small_min == -(1 << (width - 1))
        assert scheme.small_check_bits == 32 - width + 1
        assert scheme.compressed_bits == width + 1
        assert scheme.pointer_prefix_bits + width == 32


@pytest.mark.parametrize("width", WIDTHS)
class TestPointerEdges:
    def test_prefix_equality_is_exact(self, width):
        scheme = CompressionScheme(payload_bits=width)
        addr = 0x7FFF_FFFC
        prefix = addr & ~((1 << width) - 1) & MASK32
        assert scheme.is_pointer(prefix, addr)
        assert scheme.is_pointer(prefix | ((1 << width) - 1), addr)
        off_by_lowest_prefix_bit = MASK32 & (prefix ^ (1 << width))
        assert not scheme.is_pointer(off_by_lowest_prefix_bit, addr)

    def test_pointer_chunk_size(self, width):
        scheme = CompressionScheme(payload_bits=width)
        assert scheme.pointer_chunk_bytes == 1 << width
        # Two addresses one chunk apart never see each other's pointers.
        a = 0x4000_0000
        b = (a + scheme.pointer_chunk_bytes) & MASK32
        assert not scheme.is_pointer(b, a) or scheme.is_small(b)


class TestAttribution:
    def test_small_wins_over_pointer(self):
        # A zero value is both small and (at a low address) prefix-equal;
        # the hardware reports SMALL.
        scheme = PAPER_SCHEME
        assert scheme.classify(0, 0x0000_0004) is CompressClass.SMALL

    def test_pointer_only_values_classify_as_pointer(self):
        scheme = PAPER_SCHEME
        addr = 0x1000_0000
        value = (addr & ~0x7FFF) | 0x1234
        assert not scheme.is_small(value)
        assert scheme.classify(value, addr) is CompressClass.POINTER

    def test_incompressible(self):
        assert (
            PAPER_SCHEME.classify(0xDEAD_BEEF, 0x1000_0000)
            is CompressClass.INCOMPRESSIBLE
        )


class TestWidthValidation:
    @pytest.mark.parametrize("bad", [0, -1, 31, 32, 64])
    def test_out_of_range_widths_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            CompressionScheme(payload_bits=bad)

    def test_paper_scheme_is_the_documented_instance(self):
        assert PAPER_SCHEME.payload_bits == 15
        assert PAPER_SCHEME.compressed_bits == 16
        assert PAPER_SCHEME.pointer_prefix_bits == 17
        assert PAPER_SCHEME.small_check_bits == 18
        assert PAPER_SCHEME.small_min == -16384
        assert PAPER_SCHEME.small_max == 16383
        assert PAPER_SCHEME.pointer_chunk_bytes == 32 * 1024
