"""Store-backed checkpoint adapter for the supervised matrix engine.

:class:`StoreCheckpoint` speaks the same interface as
:class:`repro.sim.fault.Checkpoint` (``in``, ``get``, ``add``, ``keys``,
``path``) but persists through the content-addressed store instead of a
JSONL file — so every cell the supervisor completes is committed through
the write-ahead journal with a payload checksum, and every cell resumed
is verified on read. ``repro.store migrate`` upgrades old JSONL
checkpoints into a store (see :mod:`repro.store.__main__`).
"""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.store.cas import ResultStore

__all__ = ["StoreCheckpoint"]


class StoreCheckpoint:
    """A :class:`~repro.sim.fault.Checkpoint` look-alike over a store.

    With *worker* set, every fresh :meth:`add` is also appended to the
    store's compute log — the audit trail the exactly-once lease tests
    (and the ``store-chaos`` CI job) count double-computes from.
    """

    def __init__(self, store: ResultStore, *, worker: str | None = None) -> None:
        self.store = store
        self.worker = worker
        #: Results served from the store this session (verified-on-read).
        self._seen: dict[tuple, object] = {}

    @property
    def path(self):
        """Where this checkpoint lives (the store root)."""
        return self.store.root

    def __contains__(self, key: tuple) -> bool:
        key = tuple(key)
        if key in self._seen:
            return True
        result = self.store.get(key)  # verify-on-read; corrupt => miss
        if result is None:
            return False
        self._seen[key] = result
        return True

    def __len__(self) -> int:
        return self.store.object_count()

    def keys(self) -> list[tuple]:
        """Keys verified through this adapter so far (not the whole store)."""
        return list(self._seen)

    def get(self, key: tuple):
        """The cell's verified result; :class:`ExperimentError` if absent."""
        key = tuple(key)
        if key in self._seen:
            return self._seen[key]
        result = self.store.get(key)
        if result is None:
            raise ExperimentError(f"cell {key!r} not in store {self.store.root}")
        self._seen[key] = result
        return result

    def add(self, key: tuple, result) -> None:
        """Commit one completed cell (journaled, checksummed, durable)."""
        key = tuple(key)
        fresh = self.store.put(key, result)
        self._seen[key] = result
        if fresh and self.worker is not None:
            self.store.log_compute(key, self.worker)

    def flush(self) -> None:
        """Store puts are individually durable; nothing to flush."""
