"""Value compression: the paper's 32-to-16-bit prefix compression scheme.

A 32-bit word is *compressible* when either

* its 18 high-order bits are all zeros or all ones (a small value in
  ``[-16384, 16383]``), or
* its 17 high-order bits equal the 17 high-order bits of the address the
  word is stored at (a pointer into the same 32 KB chunk).

Compressed words occupy 16 bits: a ``VT`` type bit (small value vs.
pointer) plus the 15 low-order payload bits. A separate ``VC`` flag,
stored outside the value, marks a slot as compressed (paper Figure 2).
"""

from repro.compression.flags import VC_COMPRESSED, VC_UNCOMPRESSED, VT_POINTER, VT_SMALL
from repro.compression.scheme import (
    PAPER_SCHEME,
    CompressClass,
    CompressionScheme,
)
from repro.compression.codec import (
    CompressedWord,
    LinePackResult,
    compress_word,
    decompress_word,
    pack_line,
    packed_bus_words,
)
from repro.compression.timing import GateDelayModel
from repro.compression.vectorized import (
    classify_words,
    compressible_mask,
    compression_summary,
)

__all__ = [
    "VC_COMPRESSED",
    "VC_UNCOMPRESSED",
    "VT_POINTER",
    "VT_SMALL",
    "PAPER_SCHEME",
    "CompressClass",
    "CompressionScheme",
    "CompressedWord",
    "LinePackResult",
    "compress_word",
    "decompress_word",
    "pack_line",
    "packed_bus_words",
    "GateDelayModel",
    "classify_words",
    "compressible_mask",
    "compression_summary",
]
