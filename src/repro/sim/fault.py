"""Fault-tolerant supervision of the evaluation matrix.

The (workload x configuration) matrix is the expensive artifact behind
every figure, and production experiment campaigns treat partial failure
as the normal case: one hung or crashed cell must cost *one cell*, not
the campaign. This module supplies the machinery:

* **Per-cell isolation** — every cell attempt runs in its own child
  process (:func:`run_supervised`); a segfault, ``os._exit`` or OOM kill
  takes down one attempt, never the supervisor.
* **Timeouts** — a configurable per-attempt wall-clock budget
  (:class:`FaultPolicy.timeout`); hung workers are terminated, not
  waited on.
* **Retries with backoff** — bounded retries with exponential backoff
  plus deterministic jitter, so transient host-side failures (memory
  pressure, noisy neighbours) are ridden out without thundering herds.
* **Failure classification** — every permanent failure is classified
  (``timeout`` / ``crash`` / ``error`` / ``unexpected``) into a
  :class:`CellFailure`, recorded in the process-global :data:`LEDGER`,
  counted in :data:`repro.obs.metrics.REGISTRY` (``fault.*``) and — when
  a manifest directory is configured — written as a
  :class:`~repro.obs.manifest.FailureRecord`.
* **Checkpoint/resume** — completed cells are checkpointed incrementally
  to a JSONL file (atomic write-temp-then-rename via
  :mod:`repro.sim.results_io`), so an interrupted campaign resumes from
  the checkpoint instead of re-simulating; resumed results are
  bit-identical because serialization is lossless.

Downstream, figures degrade gracefully: :func:`try_cell` consults the
ledger, so a failed cell renders as an explicit hole instead of a
traceback (see :mod:`repro.experiments._matrix`).

Determinism contract: supervision only schedules; a cell's result is
still a pure function of ``(workload, config, seed, scale)``, so a
supervised (or resumed) matrix equals the serial one bit for bit.
"""

from __future__ import annotations

import json
import os
import random
import signal
import time
import traceback
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import (
    CellCrashError,
    CellTimeoutError,
    ConfigurationError,
    ExperimentError,
    MatrixPartialFailure,
    ReproError,
)
from repro.obs import live as _live
from repro.obs import manifest as _manifest
from repro.obs import phases as _phases
from repro.obs import progress as _progress
from repro.obs import span as _span
from repro.obs import telemetry as _telemetry
from repro.obs.metrics import REGISTRY, SECONDS_BUCKETS
from repro.sim.results import SimResult
from repro.sim.results_io import (
    dump_jsonl,
    load_jsonl,
    result_from_dict,
    result_to_full_dict,
)

__all__ = [
    "FaultPolicy",
    "CellFailure",
    "FailureLedger",
    "LEDGER",
    "Checkpoint",
    "SupervisedOutcome",
    "run_supervised",
    "run_matrix_supervised",
    "matrix_task_key",
    "matrix_cell_worker",
    "cell_key",
    "try_cell",
    "default_checkpoint_path",
]

#: Failure classifications (CellFailure.kind values).
KIND_TIMEOUT = "timeout"
KIND_CRASH = "crash"
KIND_ERROR = "error"  #: a ReproError raised inside the cell
KIND_UNEXPECTED = "unexpected"  #: any other exception


@dataclass(frozen=True)
class FaultPolicy:
    """How the supervisor treats a matrix cell's lifecycle.

    ``retries`` counts *re*-attempts: a cell is tried at most
    ``retries + 1`` times. The backoff before attempt ``n+1`` is
    ``min(backoff_max, backoff_base * backoff_factor**(n-1))``, inflated
    by up to ``jitter`` (a fraction, deterministic per cell+attempt so
    runs are reproducible). ``fail_fast`` aborts the whole matrix on the
    first permanent cell failure instead of degrading to a partial
    result.
    """

    timeout: float | None = None  #: per-attempt wall-clock seconds
    retries: int = 1
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 10.0
    jitter: float = 0.1
    fail_fast: bool = False
    poll_interval: float = 0.02  #: supervisor polling granularity

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError("timeout must be positive (or None)")
        if self.retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigurationError("backoff must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")
        if self.poll_interval <= 0:
            raise ConfigurationError("poll_interval must be positive")

    def backoff_delay(self, key: tuple, attempt: int) -> float:
        """Delay before the retry following failed attempt *attempt*.

        Jitter is seeded from (key, attempt), so the schedule is
        deterministic for a given matrix — reruns behave identically.
        """
        delay = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )
        if self.jitter:
            u = random.Random(f"{key!r}:{attempt}").random()
            delay *= 1.0 + self.jitter * u
        return delay


@dataclass(frozen=True)
class CellFailure:
    """One permanently failed matrix cell (retries exhausted)."""

    key: tuple
    kind: str  #: timeout / crash / error / unexpected
    message: str
    attempts: int
    exception_type: str = ""
    exitcode: int | None = None
    timeout: float | None = None  #: the per-attempt budget, for timeouts

    def to_exception(self) -> ExperimentError:
        """The typed exception this failure classifies as."""
        if self.kind == KIND_TIMEOUT:
            return CellTimeoutError(self.key, self.timeout or 0.0, self.attempts)
        if self.kind == KIND_CRASH:
            return CellCrashError(self.key, self.exitcode, self.attempts)
        return ExperimentError(
            f"cell {self.key!r} failed after {self.attempts} attempt(s): "
            f"{self.exception_type or self.kind}: {self.message}"
        )

    def describe(self) -> str:
        """One human line: where, how, why."""
        workload, config = _key_identity(self.key)
        return (
            f"{workload} on {config}: {self.kind} after "
            f"{self.attempts} attempt(s) — {self.message}"
        )


def _key_identity(key: tuple) -> tuple[str, str]:
    """Best-effort (workload, config) labels from a cell key.

    Canonical matrix keys are ``(workload, seed, scale, cache_config,
    miss_scale)``; the parallel API uses ``(workload, config)``; generic
    supervised tasks may use anything — fall back to ``repr``.
    """
    if isinstance(key, tuple):
        if (
            len(key) == 5
            and isinstance(key[0], str)
            and isinstance(key[3], str)
            and isinstance(key[4], (int, float))
        ):
            config = key[3] if key[4] == 1.0 else f"{key[3]}@x{key[4]:g}"
            return key[0], config
        if len(key) >= 2 and isinstance(key[0], str) and isinstance(key[1], str):
            return key[0], key[1]
        if len(key) == 3 and isinstance(key[0], str) and isinstance(key[1], str):
            return key[0], f"{key[1]}@x{key[2]:g}"
    return repr(key), "?"


class FailureLedger:
    """Process-global record of permanently failed cells.

    The supervisor writes into it; figure code reads it through
    :func:`try_cell` to skip known-bad cells and render holes. Recording
    also publishes ``fault.failures`` metrics and — when a manifest
    directory is configured — a :class:`~repro.obs.manifest.FailureRecord`.
    """

    def __init__(self) -> None:
        self._failures: dict[tuple, CellFailure] = {}

    def record(self, failure: CellFailure) -> None:
        """Register one permanent failure (idempotent per key)."""
        self._failures[failure.key] = failure
        REGISTRY.inc("fault.failures", kind=failure.kind)
        if _manifest.manifest_dir() is not None:
            workload, config = _key_identity(failure.key)
            seed = scale = miss_scale = None
            if len(failure.key) == 5 and isinstance(failure.key[3], str):
                _, seed, scale, _, miss_scale = failure.key
            _manifest.write_failure(
                _manifest.FailureRecord(
                    workload=workload,
                    config=config,
                    kind=failure.kind,
                    message=failure.message,
                    attempts=failure.attempts,
                    exception_type=failure.exception_type,
                    seed=seed,
                    scale=scale,
                    miss_scale=miss_scale,
                )
            )

    def is_failed(self, key: tuple) -> bool:
        """Has *key* been recorded as permanently failed?"""
        return key in self._failures

    def get(self, key: tuple) -> CellFailure | None:
        """The failure recorded for *key* (None if absent)."""
        return self._failures.get(key)

    @property
    def failures(self) -> list[CellFailure]:
        """All recorded failures, in recording order."""
        return list(self._failures.values())

    def __len__(self) -> int:
        return len(self._failures)

    def clear(self) -> None:
        """Forget everything (fresh campaigns, tests)."""
        self._failures.clear()

    def summary(self) -> str:
        """Human-readable failure summary ('' when nothing failed)."""
        if not self._failures:
            return ""
        lines = [f"{len(self._failures)} matrix cell(s) failed permanently:"]
        lines.extend(f"  - {f.describe()}" for f in self._failures.values())
        return "\n".join(lines)


#: The process-global ledger the experiment harness consults.
LEDGER = FailureLedger()


class Checkpoint:
    """Incremental, atomic JSONL checkpoint of completed matrix cells.

    One line per completed cell: ``{"key": [...], "result": {...}}``.
    Every :meth:`add` rewrites the file through write-temp-then-rename,
    so the on-disk checkpoint is always a complete, well-formed prefix of
    the campaign — an interrupt can never corrupt it. Loading is lenient
    (malformed lines are skipped so an old or damaged checkpoint degrades
    to fewer reusable cells, not a failed resume) but never *silent*:
    skipped lines are counted in :attr:`malformed_lines`, published as
    the ``checkpoint.malformed_lines`` metric, and reported in one
    warning line — pre-migration corruption stays visible.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        encode: Callable = result_to_full_dict,
        decode: Callable = result_from_dict,
        fresh: bool = False,
    ) -> None:
        self.path = Path(path)
        self._encode = encode
        self._decode = decode
        self._records: dict[tuple, dict] = {}
        #: Lines the loader had to skip (corruption visibility).
        self.malformed_lines = 0
        if fresh:
            self.path.unlink(missing_ok=True)
        elif self.path.exists():
            bad: list[int] = []
            for record in load_jsonl(
                self.path, on_malformed=lambda lineno, _msg: bad.append(lineno)
            ):
                raw_key = record.get("key")
                if isinstance(raw_key, list) and "result" in record:
                    self._records[tuple(raw_key)] = record
                else:
                    bad.append(-1)  # well-formed JSON, wrong shape
            if bad:
                self.malformed_lines = len(bad)
                REGISTRY.inc("checkpoint.malformed_lines", len(bad))
                first = next((n for n in bad if n > 0), None)
                where = f" (first at line {first})" if first else ""
                _progress.report(
                    f"checkpoint {self.path}: skipped "
                    f"{len(bad)} malformed record(s){where} — the affected "
                    f"cells will be re-simulated",
                    event="checkpoint_malformed",
                    path=str(self.path),
                    malformed=len(bad),
                )

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: tuple) -> bool:
        return tuple(key) in self._records

    def keys(self) -> list[tuple]:
        """Keys of all checkpointed cells."""
        return list(self._records)

    def get(self, key: tuple):
        """Decoded result for *key* (ExperimentError if absent)."""
        record = self._records.get(tuple(key))
        if record is None:
            raise ExperimentError(f"cell {key!r} not in checkpoint {self.path}")
        return self._decode(record["result"])

    def add(self, key: tuple, result) -> None:
        """Record one completed cell and flush atomically."""
        self._records[tuple(key)] = {
            "key": list(key),
            "result": self._encode(result),
        }
        self.flush()

    def flush(self) -> None:
        """Rewrite the checkpoint file (atomic replace)."""
        dump_jsonl(self._records.values(), self.path)


@dataclass
class SupervisedOutcome:
    """What a supervised matrix run produced."""

    results: dict
    failures: list[CellFailure] = field(default_factory=list)
    attempts: dict[tuple, int] = field(default_factory=dict)
    reused: int = 0  #: cells satisfied from the checkpoint without running
    #: The run's telemetry store when the pipeline was armed (else None).
    telemetry: object = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_if_failed(self) -> "SupervisedOutcome":
        """Raise :class:`MatrixPartialFailure` if any cell failed."""
        if self.failures:
            raise MatrixPartialFailure(self.failures, self.results)
        return self


# --------------------------------------------------------------------------
# The supervisor
# --------------------------------------------------------------------------


def _child_entry(worker, task, conn, telem=None) -> None:
    """Child-process shell around one cell attempt.

    Sends ``("ok", result)`` or ``("err", (type, is_repro, message,
    traceback))`` back through *conn*; a hard crash sends nothing and is
    classified by the parent from the exit code. SIGINT is ignored so an
    interactive Ctrl-C unwinds through the supervisor's cleanup, which
    terminates children deliberately.

    With telemetry armed, *telem* is the supervisor's handoff
    (:mod:`repro.obs.telemetry`): the child adopts the attempt span's
    context, measures only itself, and spools spans + metrics + phases
    *before* reporting through the pipe — so when the parent sees the
    result, the spool file is already complete. Telemetry failures
    degrade to an untraced cell, never a failed one.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    if telem is not None:
        try:
            _telemetry.child_begin(telem)
        except Exception:  # noqa: BLE001 - observability must not kill cells
            telem = None

    def _spool(status: str) -> None:
        if telem is None:
            return
        try:
            _telemetry.child_finish(telem, status=status)
        except Exception:  # noqa: BLE001 - spool loss degrades to partial
            pass

    try:
        if telem is not None:
            with _span.span(
                "cell",
                cell=telem["cell"],
                attempt=telem["attempt"],
                worker=telem.get("worker"),
            ):
                result = worker(task)
        else:
            result = worker(task)
        _spool("ok")
        conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - classified by the parent
        _spool("error")
        try:
            conn.send(
                (
                    "err",
                    (
                        type(exc).__name__,
                        isinstance(exc, ReproError),
                        str(exc),
                        traceback.format_exc(),
                    ),
                )
            )
        except Exception:
            os._exit(70)  # unpicklable result/exception: report as crash
    finally:
        conn.close()


@dataclass
class _Cell:
    task: object
    key: tuple
    attempts: int = 0
    ready_at: float = 0.0


@dataclass
class _Running:
    cell: _Cell
    proc: object
    conn: object
    deadline: float | None
    started: float
    slot: int = 0  #: worker slot (occupancy tracking, trace swimlanes)
    telem: dict | None = None  #: telemetry handoff given to the child
    attempt_span: object = None  #: the supervisor-side span of this attempt


def _terminate(proc) -> None:
    """Stop a child for good (terminate, escalate to kill)."""
    if not proc.is_alive():
        proc.join()
        return
    proc.terminate()
    proc.join(1.0)
    if proc.is_alive():
        proc.kill()
        proc.join(1.0)


def run_supervised(
    tasks: Sequence,
    worker: Callable,
    *,
    key_of: Callable[[object], tuple],
    policy: FaultPolicy | None = None,
    max_workers: int | None = None,
    checkpoint: Checkpoint | None = None,
    progress: bool = False,
    phase_name: str = "supervised_matrix",
) -> SupervisedOutcome:
    """Run *tasks* through *worker*, one isolated process per attempt.

    *worker* is a picklable callable ``task -> result`` executed in a
    child process; *key_of* names each task's cell. Cells already present
    in *checkpoint* are returned without running; freshly completed cells
    are checkpointed incrementally. Failures are retried per *policy*,
    then recorded in :data:`LEDGER` and returned in the outcome — this
    function only raises for ``fail_fast`` (the failure's typed
    exception) and for ``KeyboardInterrupt`` (after terminating all
    children; the checkpoint survives).
    """
    import multiprocessing as mp

    policy = policy or FaultPolicy()
    if max_workers is None:
        from repro.sim.parallel import default_workers

        max_workers = default_workers()
    if max_workers < 1:
        raise ExperimentError("max_workers must be positive")

    ctx = mp.get_context()
    outcome = SupervisedOutcome(results={})
    pending: list[_Cell] = []
    for task in tasks:
        key = tuple(key_of(task))
        if checkpoint is not None and key in checkpoint:
            outcome.results[key] = checkpoint.get(key)
            outcome.reused += 1
            REGISTRY.inc("fault.cells_reused")
        else:
            pending.append(_Cell(task=task, key=key))
    total = len(outcome.results) + len(pending)
    view = _live.maybe_dashboard(total, max_workers) if progress else None
    if outcome.reused:
        if view is not None:
            view.resumed(outcome.reused)
        elif progress:
            _progress.report(
                f"resumed {outcome.reused}/{total} cells from checkpoint"
                + (f" {checkpoint.path}" if checkpoint is not None else ""),
                event="resumed",
                reused=outcome.reused,
                total=total,
            )

    running: list[_Running] = []
    done = outcome.reused
    free_slots = list(range(max_workers))
    telemetry_store = _telemetry.store()
    run_span = (
        _span.start_span(phase_name, cells=len(pending), reused=outcome.reused)
        if telemetry_store is not None
        else None
    )

    def _launch(cell: _Cell, now: float) -> None:
        slot = free_slots.pop(0) if free_slots else 0
        attempt_no = cell.attempts + 1
        workload, config = _key_identity(cell.key)
        telem = None
        attempt_span = None
        if telemetry_store is not None:
            cell_id = _telemetry.cell_id_of(cell.key)
            attempt_span = _span.start_span(
                "attempt",
                parent=run_span,
                cell=cell_id,
                workload=workload,
                config=config,
                attempt=attempt_no,
                worker=slot,
            )
            telem = {
                "dir": str(_telemetry.run_dir()),
                "cell": cell_id,
                "key": list(cell.key),
                "attempt": attempt_no,
                "worker": slot,
                "trace": telemetry_store.trace_id,
                "parent": attempt_span.span_id if attempt_span else None,
            }
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_child_entry,
            args=(worker, cell.task, send_conn, telem),
            daemon=True,
        )
        proc.start()
        send_conn.close()
        cell.attempts += 1
        outcome.attempts[cell.key] = cell.attempts
        REGISTRY.inc("fault.attempts")
        deadline = now + policy.timeout if policy.timeout is not None else None
        running.append(
            _Running(
                cell=cell,
                proc=proc,
                conn=recv_conn,
                deadline=deadline,
                started=now,
                slot=slot,
                telem=telem,
                attempt_span=attempt_span,
            )
        )
        if view is not None:
            view.started(cell.key, slot, f"{workload}/{config}")

    def _attempt_settled(run: _Running, kind: str) -> None:
        """Bookkeeping common to every attempt end: free the worker slot,
        close the attempt span, ingest the child's spool (a child that
        died before spooling becomes a partial-telemetry marker)."""
        free_slots.append(run.slot)
        free_slots.sort()
        _span.finish_span(
            run.attempt_span,
            status="ok" if kind == "ok" else "error",
            outcome=kind,
        )
        if run.telem is not None and telemetry_store is not None:
            telemetry_store.ingest_spool(
                run.telem["cell"], run.telem["attempt"]
            )

    def _attempt_failed(
        run: _Running, kind: str, message: str, exc_type: str = "", exitcode: int | None = None
    ) -> None:
        _attempt_settled(run, kind)
        cell = run.cell
        REGISTRY.inc("fault.attempt_failures", kind=kind)
        if kind == KIND_TIMEOUT:
            REGISTRY.inc("fault.timeouts")
        elif kind == KIND_CRASH:
            REGISTRY.inc("fault.crashes")
        if cell.attempts <= policy.retries:
            delay = policy.backoff_delay(cell.key, cell.attempts)
            REGISTRY.inc("fault.retries")
            cell.ready_at = time.monotonic() + delay
            pending.append(cell)
            if view is not None:
                view.retrying(cell.key)
            elif progress:
                workload, config = _key_identity(cell.key)
                _progress.report(
                    f"retrying {workload} on {config} in {delay:.2f}s "
                    f"(attempt {cell.attempts + 1}/{policy.retries + 1}) "
                    f"after {kind}: {message}",
                    event="cell_retry",
                    workload=workload,
                    config=config,
                    kind=kind,
                    attempt=cell.attempts,
                )
        else:
            failure = CellFailure(
                key=cell.key,
                kind=kind,
                message=message,
                attempts=cell.attempts,
                exception_type=exc_type,
                exitcode=exitcode,
                timeout=policy.timeout if kind == KIND_TIMEOUT else None,
            )
            outcome.failures.append(failure)
            LEDGER.record(failure)
            if view is not None:
                view.finished(cell.key, ok=False)
            elif progress:
                workload, config = _key_identity(cell.key)
                _progress.report(
                    f"cell failed permanently: {failure.describe()}",
                    event="cell_failed",
                    workload=workload,
                    config=config,
                    kind=kind,
                    attempts=cell.attempts,
                )
            if policy.fail_fast:
                raise failure.to_exception()

    try:
        with _phases.phase(phase_name):
            while pending or running:
                now = time.monotonic()
                # Launch every ready cell we have capacity for.
                while len(running) < max_workers:
                    idx = next(
                        (i for i, c in enumerate(pending) if c.ready_at <= now),
                        None,
                    )
                    if idx is None:
                        break
                    _launch(pending.pop(idx), now)

                progressed = False
                still: list[_Running] = []
                for run in running:
                    has_msg = run.conn.poll()
                    alive = run.proc.is_alive()
                    if not has_msg and not alive:
                        run.proc.join()
                        has_msg = run.conn.poll()  # drain a late message
                    if has_msg:
                        try:
                            status, payload = run.conn.recv()
                        except (EOFError, OSError):
                            # The pipe hit EOF without a message: the
                            # worker died before reporting (os._exit,
                            # segfault, OOM kill) — a hard crash.
                            run.proc.join()
                            run.conn.close()
                            progressed = True
                            exitcode = run.proc.exitcode
                            _attempt_failed(
                                run,
                                KIND_CRASH,
                                f"worker exited with code {exitcode} "
                                "before reporting",
                                exitcode=exitcode,
                            )
                            continue
                        run.proc.join()
                        run.conn.close()
                        progressed = True
                        REGISTRY.histogram(
                            "fault.attempt_seconds", bounds=SECONDS_BUCKETS
                        ).observe(time.monotonic() - run.started)
                        if status == "ok":
                            _attempt_settled(run, "ok")
                            outcome.results[run.cell.key] = payload
                            done += 1
                            REGISTRY.inc("fault.cells_ok")
                            if checkpoint is not None:
                                checkpoint.add(run.cell.key, payload)
                            if view is not None:
                                view.finished(run.cell.key, ok=True)
                            elif progress:
                                workload, config = _key_identity(run.cell.key)
                                _progress.report(
                                    f"completed {workload} on {config} "
                                    f"({done}/{total})",
                                    event="cell_done",
                                    workload=workload,
                                    config=config,
                                    done=done,
                                    total=total,
                                )
                        else:
                            exc_type, is_repro, message, _tb = payload
                            kind = KIND_ERROR if is_repro else KIND_UNEXPECTED
                            _attempt_failed(run, kind, message, exc_type)
                    elif run.deadline is not None and now >= run.deadline:
                        _terminate(run.proc)
                        run.conn.close()
                        progressed = True
                        _attempt_failed(
                            run,
                            KIND_TIMEOUT,
                            f"exceeded per-attempt timeout of {policy.timeout:g}s",
                        )
                    elif not alive:
                        exitcode = run.proc.exitcode
                        run.conn.close()
                        progressed = True
                        _attempt_failed(
                            run,
                            KIND_CRASH,
                            f"worker exited with code {exitcode} before reporting",
                            exitcode=exitcode,
                        )
                    else:
                        still.append(run)
                running = still
                if view is not None:
                    view.tick()
                if not progressed and (running or pending):
                    time.sleep(policy.poll_interval)
    finally:
        for run in running:
            _terminate(run.proc)
            try:
                run.conn.close()
            except OSError:
                pass
            _attempt_settled(run, "interrupted")
        if view is not None:
            view.close(
                f"{done}/{total} cells done, {len(outcome.failures)} failed"
            )
        _span.finish_span(
            run_span,
            completed=len(outcome.results),
            failed=len(outcome.failures),
        )
        if telemetry_store is not None:
            outcome.telemetry = telemetry_store
            _telemetry.finalize_run()
    return outcome


# --------------------------------------------------------------------------
# Matrix-shaped entry points
# --------------------------------------------------------------------------


def cell_key(
    workload: str,
    config,
    *,
    seed: int = 1,
    scale: float = 1.0,
) -> tuple:
    """Canonical identity of one matrix cell.

    Matches the runner's memoization key exactly:
    ``(workload, seed, scale, cache_config, miss_scale)``, where the
    cache-config slot is salted with the resolved codec when it is not
    the paper default (see ``SimConfig.cache_config_key``) — a resumed
    checkpoint must never serve cells computed under a different codec.
    """
    from repro.sim.config import SIM_CONFIGS, SimConfig

    if isinstance(config, str):
        config = SIM_CONFIGS.get(config.upper(), None) or SimConfig(
            cache_config=config
        )
    return (workload, seed, scale, config.cache_config_key, config.miss_scale)


def try_cell(
    workload: str,
    config,
    *,
    seed: int = 1,
    scale: float = 1.0,
) -> SimResult | None:
    """Run one cell, degrading to ``None`` instead of raising.

    Cells already recorded as failed in :data:`LEDGER` are skipped
    outright (no pointless re-simulation of a deterministic failure);
    a fresh failure is classified, recorded and reported as ``None`` so
    figure code renders an explicit hole.
    """
    from repro.sim.runner import run_workload

    try:
        key = cell_key(workload, config, seed=seed, scale=scale)
    except ReproError as exc:
        key = (workload, seed, scale, str(config), 1.0)
        if not LEDGER.is_failed(key):
            LEDGER.record(
                CellFailure(
                    key=key,
                    kind=KIND_ERROR,
                    message=str(exc),
                    attempts=1,
                    exception_type=type(exc).__name__,
                )
            )
        return None
    if LEDGER.is_failed(key):
        return None
    try:
        return run_workload(workload, config, seed=seed, scale=scale)
    except ReproError as exc:
        failure = CellFailure(
            key=key,
            kind=KIND_ERROR,
            message=str(exc),
            attempts=1,
            exception_type=type(exc).__name__,
        )
    except Exception as exc:  # noqa: BLE001 - degrade, never traceback
        failure = CellFailure(
            key=key,
            kind=KIND_UNEXPECTED,
            message=str(exc),
            attempts=1,
            exception_type=type(exc).__name__,
        )
    LEDGER.record(failure)
    return None


def default_checkpoint_path(seed: int, scale: float) -> Path:
    """Where the experiments CLI checkpoints a campaign's matrix."""
    return Path("results") / "checkpoints" / f"matrix-seed{seed}-scale{scale:g}.jsonl"


def _matrix_task_key(task: tuple) -> tuple:
    """Canonical cell key of one ``run_matrix_supervised`` task."""
    workload, config_name, miss_scale, seed, scale = task
    base = cell_key(workload, config_name, seed=seed, scale=scale)
    return (base[0], base[1], base[2], base[3], miss_scale)


def _matrix_cell_worker(task: tuple) -> SimResult:
    """Child entry: simulate one (workload, config, miss_scale) cell."""
    from repro.sim.config import SIM_CONFIGS, SimConfig
    from repro.sim.runner import run_workload

    workload, config_name, miss_scale, seed, scale = task
    config = SIM_CONFIGS.get(config_name.upper(), None) or SimConfig(
        cache_config=config_name
    )
    if miss_scale != 1.0:
        config = config.with_miss_scale(miss_scale)
    return run_workload(workload, config, seed=seed, scale=scale)


#: Public names for the matrix task plumbing: the queue-draining service
#: workers (:mod:`repro.serve.worker`) run the same cell function against
#: jobs whose task tuples were enqueued by ``run_matrix_store`` or the
#: HTTP API, so the computation is one code path no matter who drives it.
matrix_task_key = _matrix_task_key
matrix_cell_worker = _matrix_cell_worker


def run_matrix_supervised(
    workloads: Sequence[str],
    configs: Sequence[str],
    *,
    seed: int = 1,
    scale: float = 1.0,
    miss_scales: Sequence[float] = (1.0,),
    policy: FaultPolicy | None = None,
    max_workers: int | None = None,
    checkpoint_path: str | Path | None = None,
    resume: bool = True,
    progress: bool = False,
    prewarm_programs: bool = False,
) -> SupervisedOutcome:
    """Fault-tolerant run of the full evaluation matrix.

    Keys in the outcome are the canonical
    ``(workload, seed, scale, cache_config, miss_scale)`` tuples, ready
    for :func:`repro.sim.runner.inject_results`. With *checkpoint_path*
    set, completed cells persist across interrupts; ``resume=False``
    discards any existing checkpoint and starts fresh.

    *prewarm_programs* generates each workload trace once in the parent
    so forked workers inherit it instead of regenerating it per config.
    Leave it off when running with a timeout: parent-side generation is
    not covered by the per-cell budget, and a cell whose trace fails to
    generate must fail inside its supervised attempt to be classified.
    """
    if not workloads or not configs:
        raise ExperimentError("workloads and configs must be non-empty")
    checkpoint = None
    if checkpoint_path is not None:
        checkpoint = Checkpoint(checkpoint_path, fresh=not resume)
    tasks = [
        (workload, config, miss_scale, seed, scale)
        for workload in workloads
        for config in configs
        for miss_scale in miss_scales
    ]
    if prewarm_programs:
        from repro.sim.runner import get_program

        for workload in workloads:
            try:
                get_program(workload, seed=seed, scale=scale)
            except Exception:  # noqa: BLE001 - the supervised cell reports it
                pass
    return run_supervised(
        tasks,
        _matrix_cell_worker,
        key_of=_matrix_task_key,
        policy=policy,
        max_workers=max_workers,
        checkpoint=checkpoint,
        progress=progress,
    )
