"""Result serialization: JSON and CSV exports of simulation results.

Experiment campaigns and external plotting tools consume these; the JSON
form round-trips every counter the simulator produces, the CSV form is
the flat headline table.
"""

from __future__ import annotations

import csv
import json
from collections.abc import Iterable, Mapping
from pathlib import Path

from repro.errors import ExperimentError
from repro.sim.results import SimResult

__all__ = [
    "result_to_dict",
    "results_to_json",
    "results_to_csv",
    "load_results_json",
]


def result_to_dict(result: SimResult) -> dict:
    """Full (nested) dictionary form of one result."""
    return {
        "workload": result.workload,
        "config": result.config,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "ipc": result.ipc,
        "bus": {
            "total_words": result.bus_words,
            "fill_words": result.bus_fill_words,
            "prefetch_words": result.bus_prefetch_words,
            "writeback_words": result.bus_writeback_words,
        },
        "l1": result.l1.as_dict(),
        "l2": result.l2.as_dict(),
        "core": result.metrics.as_dict(),
        "branch_mispredicts": result.branch_mispredicts,
        "params": result.params,
    }


def results_to_json(
    results: Iterable[SimResult] | Mapping[tuple, SimResult],
    path: str | Path,
) -> Path:
    """Write results (list or run_matrix mapping) to a JSON file."""
    if isinstance(results, Mapping):
        results = list(results.values())
    path = Path(path)
    payload = [result_to_dict(r) for r in results]
    path.write_text(json.dumps(payload, indent=2, sort_keys=True), "utf-8")
    return path


def results_to_csv(
    results: Iterable[SimResult] | Mapping[tuple, SimResult],
    path: str | Path,
) -> Path:
    """Write the flat headline table (SimResult.as_dict rows) as CSV."""
    if isinstance(results, Mapping):
        results = list(results.values())
    rows = [r.as_dict() for r in results]
    if not rows:
        raise ExperimentError("no results to write")
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)
    return path


def load_results_json(path: str | Path) -> list[dict]:
    """Read back a JSON export (plain dicts; the simulator state objects
    are not reconstructed)."""
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"results file {path} does not exist")
    data = json.loads(path.read_text("utf-8"))
    if not isinstance(data, list):
        raise ExperimentError(f"{path} is not a results export")
    return data
