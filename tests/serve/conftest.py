"""Fixtures for the experiment-service tests: a real service subprocess.

The HTTP tests drive a genuine ``python -m repro.serve`` process (own
event loop, own worker pool) bound to port 0, discovered through the
``SERVE-READY`` line — the same contract scripts use.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[2] / "src"


class ServiceProc:
    """One running service subprocess plus its discovery metadata."""

    def __init__(self, proc: subprocess.Popen, port: int, store: Path):
        self.proc = proc
        self.port = port
        self.store = store

    def client(self, timeout: float = 30.0):
        from repro.serve.client import ServeClient

        return ServeClient(port=self.port, timeout=timeout)

    def stop(self, timeout: float = 30.0) -> int:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait()
        return self.proc.returncode


def launch_service(store: Path, *extra_args: str) -> ServiceProc:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            "--store",
            str(store),
            "--port",
            "0",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    for line in proc.stdout:
        if line.startswith("SERVE-READY "):
            ready = json.loads(line[len("SERVE-READY "):])
            return ServiceProc(proc, ready["port"], store)
        if proc.poll() is not None:
            break
    out = proc.stdout.read() if proc.stdout else ""
    proc.kill()
    raise RuntimeError(f"service failed to start:\n{out[-2000:]}")


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """A module-shared service with one worker over a fresh store."""
    store = tmp_path_factory.mktemp("serve") / "store"
    svc = launch_service(
        store, "--workers", "1", "--lease-ttl", "10", "--retries", "1"
    )
    yield svc
    rc = svc.stop()
    assert rc == 0, f"service exited rc={rc}"
