"""Simulation driver: configurations, the Machine, and the runner."""

from repro.sim.config import CONFIG_NAMES, SIM_CONFIGS, SimConfig
from repro.sim.machine import Machine
from repro.sim.results import SimResult
from repro.sim.runner import run_program, run_workload, run_matrix

__all__ = [
    "CONFIG_NAMES",
    "SIM_CONFIGS",
    "SimConfig",
    "Machine",
    "SimResult",
    "run_program",
    "run_workload",
    "run_matrix",
]
