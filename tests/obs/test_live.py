"""Live dashboard: activation rules, state grid, throughput/ETA."""

import io

import pytest

from repro.obs import live, progress
from repro.obs.live import LiveDashboard, maybe_dashboard, should_use


class _Tty(io.StringIO):
    def isatty(self):
        return True


@pytest.fixture(autouse=True)
def _clean_mode():
    progress.configure(None)
    yield
    progress.configure(None)


class TestActivation:
    def test_non_tty_never_uses_dashboard(self):
        assert not should_use(io.StringIO())

    def test_tty_in_auto_mode_uses_dashboard(self, monkeypatch):
        monkeypatch.setenv("TERM", "xterm-256color")
        assert should_use(_Tty())

    def test_dumb_terminal_refuses(self, monkeypatch):
        monkeypatch.setenv("TERM", "dumb")
        assert not should_use(_Tty())

    def test_plain_and_json_modes_refuse_even_on_tty(self, monkeypatch):
        monkeypatch.setenv("TERM", "xterm")
        for mode in ("plain", "json", "quiet"):
            progress.configure(mode)
            assert not should_use(_Tty())

    def test_maybe_dashboard_none_off_tty(self):
        assert maybe_dashboard(10, 2) is None


class TestRendering:
    def _board(self, total=4, workers=2):
        return LiveDashboard(total, workers, stream=_Tty())

    def test_state_grid_transitions(self):
        board = self._board()
        board.started(("a",), 0, "a/BC")
        board.started(("b",), 1, "b/BC")
        board.finished(("a",), ok=True)
        board.finished(("b",), ok=False)
        grid = board.render()[0]
        assert live._GLYPH_DONE in grid
        assert live._GLYPH_FAIL in grid
        assert "cells 2/4" in grid
        assert "1 failed" in grid

    def test_running_rows_show_worker_slots(self):
        board = self._board()
        board.started(("a",), 1, "olden.mst/CPP")
        lines = board.render()
        assert any("w1" in line and "olden.mst/CPP" in line for line in lines)

    def test_retry_returns_cell_to_pending(self):
        board = self._board()
        board.started(("a",), 0, "a/BC")
        board.retrying(("a",))
        assert board.states[("a",)] == live._GLYPH_PEND
        assert ("a",) not in board.running

    def test_resumed_counts_as_done(self):
        board = self._board(total=6)
        board.resumed(4)
        assert "cells 4/6" in board.render()[0]
        assert "4 resumed" in board.render()[0]
        grid = board._grid()
        assert grid.count(live._GLYPH_DONE) == 4

    def test_eta_appears_after_two_finishes(self):
        board = self._board(total=10)
        assert board.eta_seconds() is None
        board.started(("a",), 0, "a")
        board.finished(("a",), ok=True)
        board.started(("b",), 0, "b")
        board.finished(("b",), ok=True)
        assert board.ema_rate > 0
        assert board.eta_seconds() is not None

    def test_wide_campaign_collapses_grid(self):
        board = LiveDashboard(live._GRID_WIDTH + 1, 2, stream=_Tty())
        assert board._grid() == ""
        assert "cells 0/" in board.render()[0]

    def test_close_leaves_single_summary_line(self):
        stream = _Tty()
        board = LiveDashboard(2, 1, stream=stream)
        board.started(("a",), 0, "a")
        board.finished(("a",), ok=True)
        board.close("1/2 cells done")
        assert stream.getvalue().endswith("[repro] 1/2 cells done\n")
