"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without also
catching programming errors (``TypeError`` etc.).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "MemoryError_",
    "UnmappedAddressError",
    "AlignmentError",
    "AllocationError",
    "TraceError",
    "CacheProtocolError",
    "InvariantViolation",
    "WorkloadError",
    "ExperimentError",
    "UsageError",
    "CellTimeoutError",
    "CellCrashError",
    "MatrixPartialFailure",
    "AtomicWriteError",
    "StoreError",
    "StoreCorruptionError",
    "LeaseError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid simulator, cache or workload configuration was supplied."""


class MemoryError_(ReproError):
    """Base class for simulated-memory errors.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError` (which indicates the *host* ran out of memory).
    """


class UnmappedAddressError(MemoryError_):
    """A simulated access touched an address with no backing page."""

    def __init__(self, addr: int) -> None:
        super().__init__(f"access to unmapped simulated address {addr:#010x}")
        self.addr = addr


class AlignmentError(MemoryError_):
    """A simulated access violated the required alignment."""

    def __init__(self, addr: int, alignment: int) -> None:
        super().__init__(
            f"address {addr:#010x} is not aligned to {alignment} bytes"
        )
        self.addr = addr
        self.alignment = alignment


class AllocationError(MemoryError_):
    """The simulated heap allocator could not satisfy a request."""


class TraceError(ReproError):
    """An instruction trace is malformed or used inconsistently."""


class CacheProtocolError(ReproError):
    """An internal cache invariant was violated.

    These indicate bugs in a cache model (or an externally-driven misuse of
    the level-to-level protocol), never user error; they are raised eagerly
    so model bugs surface as failures instead of silently skewing results.
    """


class InvariantViolation(CacheProtocolError):
    """A structural cache invariant failed an explicit audit.

    Raised by :func:`repro.check.invariants.audit` (and therefore by the
    ``REPRO_CHECK=1`` runtime layer) with enough captured state to debug
    the violation offline: the invariant name, the cache level, the
    offending set index, and a serialized dump of the frames involved.
    Subclasses :class:`CacheProtocolError`, so existing callers that
    treat protocol errors as model bugs keep working.
    """

    def __init__(
        self,
        invariant: str,
        detail: str,
        *,
        level: str = "?",
        set_index: int | None = None,
        frames: list | None = None,
    ) -> None:
        where = f"{level}" + (f" set {set_index}" if set_index is not None else "")
        super().__init__(f"[{invariant}] {detail} ({where})")
        self.invariant = invariant
        self.detail = detail
        self.level = level
        self.set_index = set_index
        self.frames = list(frames or [])

    def dump(self) -> dict:
        """JSON-serializable record of the violation (for repro reports)."""
        return {
            "invariant": self.invariant,
            "detail": self.detail,
            "level": self.level,
            "set_index": self.set_index,
            "frames": self.frames,
        }


class WorkloadError(ReproError):
    """A workload generator was asked for something it cannot produce."""


class ExperimentError(ReproError):
    """An experiment harness failure (unknown figure id, bad matrix, ...)."""


class UsageError(ExperimentError):
    """A command-line invocation was invalid (bad flag value, unknown name).

    Raised by CLI front-ends *before* any work starts, and rendered as a
    one-line ``error:`` message plus the valid choices — never a
    traceback. Carries the offending ``argument`` and, when the problem
    is an unknown name, the ``choices`` that would have been accepted.
    """

    def __init__(
        self,
        message: str,
        *,
        argument: str = "",
        choices: tuple | list | None = None,
    ) -> None:
        if choices:
            message = f"{message} (valid choices: {', '.join(map(str, choices))})"
        super().__init__(message)
        self.argument = argument
        self.choices = tuple(choices) if choices else ()


class CellTimeoutError(ExperimentError):
    """A supervised matrix cell exceeded its per-attempt wall-clock budget.

    The hung worker process is terminated before this is raised/recorded,
    so a stuck cell can never wedge the whole campaign.
    """

    def __init__(self, key: tuple, timeout: float, attempts: int) -> None:
        super().__init__(
            f"cell {key!r} timed out after {timeout:g}s "
            f"({attempts} attempt{'s' if attempts != 1 else ''})"
        )
        self.key = key
        self.timeout = timeout
        self.attempts = attempts


class CellCrashError(ExperimentError):
    """A supervised matrix cell's worker process died without a result.

    Covers hard crashes (``os._exit``, segfault, OOM kill) — anything
    that ends the child before it reports back through its pipe.
    """

    def __init__(self, key: tuple, exitcode: int | None, attempts: int) -> None:
        super().__init__(
            f"cell {key!r} worker crashed (exit code {exitcode}) "
            f"({attempts} attempt{'s' if attempts != 1 else ''})"
        )
        self.key = key
        self.exitcode = exitcode
        self.attempts = attempts


class AtomicWriteError(ReproError):
    """An atomic file write could not be made durable.

    Raised by :func:`repro.utils.atomic.atomic_write_text` when the
    write, fsync or rename fails (ENOSPC, EIO, a read-only filesystem).
    The guarantee still holds: the target file is either the old complete
    content or the new complete content, and the temporary file has been
    unlinked. Carries the target ``path`` and the originating ``errno``
    (None when the failure had no errno).
    """

    def __init__(self, path, cause: OSError) -> None:
        super().__init__(f"atomic write to {path} failed: {cause}")
        self.path = path
        self.errno = getattr(cause, "errno", None)


class StoreError(ReproError):
    """A result-store operation failed (I/O, protocol or key misuse)."""


class StoreCorruptionError(StoreError):
    """A store record failed integrity verification.

    Raised (and recorded in the store's quarantine ledger) when a record's
    payload checksum, digest or structure does not match what was written:
    a flipped bit, a truncated file, or a foreign file in the object tree.
    The offending file is moved to the quarantine directory before this
    is raised, so the store never serves — or silently drops — a corrupt
    record.
    """

    def __init__(self, path, reason: str, *, digest: str = "") -> None:
        super().__init__(f"corrupt store record {path}: {reason}")
        self.path = path
        self.reason = reason
        self.digest = digest


class LeaseError(StoreError):
    """A queue lease operation failed (lost, expired or foreign lease)."""


class ServeError(ReproError):
    """The experiment service failed to start or was misconfigured."""


class MatrixPartialFailure(ExperimentError):
    """Some matrix cells failed permanently after exhausting retries.

    Carries both the completed ``results`` and the per-cell ``failures``
    (:class:`repro.sim.fault.CellFailure` records), so callers can degrade
    gracefully — render what succeeded and report the holes — instead of
    losing the whole campaign.
    """

    def __init__(self, failures: list, results: dict | None = None) -> None:
        kinds: dict[str, int] = {}
        for failure in failures:
            kinds[failure.kind] = kinds.get(failure.kind, 0) + 1
        breakdown = ", ".join(f"{n} {k}" for k, n in sorted(kinds.items()))
        super().__init__(
            f"{len(failures)} matrix cell(s) failed permanently"
            + (f" ({breakdown})" if breakdown else "")
            + f"; {len(results or {})} cell(s) completed"
        )
        self.failures = list(failures)
        self.results = dict(results or {})
