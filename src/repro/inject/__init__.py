"""Soft-error fault injection for the CPP hierarchy (``repro.inject``).

Deterministic, seeded bit-flip campaigns against cache frame data,
metadata flags (PA/AA/VCP/dirty/valid), tags, bus transfers and the
memory image — paired with protection models (none / parity / SECDED)
and recovery policies (refetch / drop-affiliated / degrade), classified
per fault as masked, detected-and-recovered, detected-uncorrectable or
silent data corruption by replaying each cell against the reference
models of :mod:`repro.check`.

Package layout:

* :mod:`~repro.inject.hooks` — the zero-cost-when-disabled gate the hot
  paths branch on (the only module the cache/memory models import);
* :mod:`~repro.inject.faults` — fault targets, specs and corruption
  records;
* :mod:`~repro.inject.protect` / :mod:`~repro.inject.recover` —
  protection models with modeled latency, and recovery policies;
* :mod:`~repro.inject.session` — the armed run-time engine;
* :mod:`~repro.inject.plan` / :mod:`~repro.inject.campaign` —
  deterministic planning and the supervised campaign runner
  (``python -m repro.inject``).

Imports are lazy: ``import repro.inject`` stays dependency-light so the
hot-path gate module can be loaded without dragging in the campaign
machinery (and its fork-engine dependencies).
"""

from __future__ import annotations

__all__ = [
    "ACTIVE",
    "activate",
    "deactivate",
    "injection_active",
    "TARGETS",
    "LEVELS",
    "FaultSpec",
    "Corruption",
    "Protection",
    "build_protection",
    "PROTECTION_NAMES",
    "RECOVERY_NAMES",
    "InjectionSession",
    "OUTCOMES",
    "build_plan",
    "build_cells",
    "run_cell",
    "run_campaign",
    "summarize",
    "format_report",
]

_LAZY = {
    "ACTIVE": ("repro.inject.hooks", "ACTIVE"),
    "activate": ("repro.inject.hooks", "activate"),
    "deactivate": ("repro.inject.hooks", "deactivate"),
    "injection_active": ("repro.inject.hooks", "injection_active"),
    "TARGETS": ("repro.inject.faults", "TARGETS"),
    "LEVELS": ("repro.inject.faults", "LEVELS"),
    "FaultSpec": ("repro.inject.faults", "FaultSpec"),
    "Corruption": ("repro.inject.faults", "Corruption"),
    "Protection": ("repro.inject.protect", "Protection"),
    "build_protection": ("repro.inject.protect", "build_protection"),
    "PROTECTION_NAMES": ("repro.inject.protect", "PROTECTION_NAMES"),
    "RECOVERY_NAMES": ("repro.inject.recover", "RECOVERY_NAMES"),
    "InjectionSession": ("repro.inject.session", "InjectionSession"),
    "OUTCOMES": ("repro.inject.session", "OUTCOMES"),
    "build_plan": ("repro.inject.plan", "build_plan"),
    "build_cells": ("repro.inject.campaign", "build_cells"),
    "run_cell": ("repro.inject.campaign", "run_cell"),
    "run_campaign": ("repro.inject.campaign", "run_campaign"),
    "summarize": ("repro.inject.campaign", "summarize"),
    "format_report": ("repro.inject.campaign", "format_report"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
