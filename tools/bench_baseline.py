#!/usr/bin/env python
"""Measure, record, and gate full-machine simulator throughput.

Schema 2 measures a ``backends x workloads x configs`` grid — both
simulation backends (``reference`` and ``fast``) over the cache-bound
SPEC cell and a pointer-chasing Olden cell, so backend wins can't be
tuned to one access pattern — and compares against the committed
baseline ``BENCH_micro.json``:

* ``--record``   — measure, (over)write the baseline file, and append
  one timestamped entry *per backend* to ``BENCH_history.jsonl`` (the
  baseline is always the latest snapshot; the history is the full
  recorded series, each row tagged with its backend);
* ``--check``    — measure and exit non-zero on regression, gating each
  backend independently: simulated cycle counts must match the baseline
  **exactly** and must agree **across backends** (the bit-identity
  contract — any drift is a correctness bug, not noise), and each
  backend's throughput must stay within ``--tolerance`` of its recorded
  insn/s (a band, since shared CI runners are noisy). Additionally
  *warns* (without failing) when a cell's last three recorded runs trend
  monotonically downward — slow leaks that never trip the tolerance band
  in one step still surface;
* ``--profile N`` — additionally run one CPP pass per backend under
  cProfile and print the N hottest functions;
* no flags       — measure and print.

Throughput is best-of-``--reps``: the maximum over repetitions estimates
the machine's true speed with the least scheduling noise.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim.backend import BACKEND_NAMES  # noqa: E402
from repro.sim.config import SimConfig  # noqa: E402
from repro.sim.machine import Machine  # noqa: E402
from repro.workloads.registry import generate  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_micro.json"
HISTORY_PATH = REPO_ROOT / "BENCH_history.jsonl"
SCHEMA_VERSION = 2

SEED = 1
#: workload name -> input scale. spec95.130.li is the historical cell;
#: olden.health is the pointer-chaser that keeps the fast backend honest
#: on irregular access streams.
WORKLOADS = {"spec95.130.li": 0.3, "olden.health": 0.5}
CONFIGS = ("BC", "CPP")
BACKENDS = BACKEND_NAMES  # ("reference", "fast")


def measure(reps: int, backends: tuple[str, ...] = BACKENDS) -> dict:
    """Best-of-*reps* insn/s and cycle counts per backend/workload/config."""
    programs = {
        name: generate(name, seed=SEED, scale=scale)
        for name, scale in WORKLOADS.items()
    }
    out: dict = {
        "schema": SCHEMA_VERSION,
        "seed": SEED,
        "reps": reps,
        "workloads": {
            name: {"scale": scale, "instructions": len(programs[name].trace)}
            for name, scale in WORKLOADS.items()
        },
        "backends": {},
    }
    for backend in backends:
        cells: dict = {}
        for name, program in programs.items():
            n = len(program.trace)
            per_config = {}
            for config in CONFIGS:
                best = 0.0
                cycles = None
                for _ in range(reps):
                    machine = Machine(
                        SimConfig(cache_config=config, backend=backend)
                    )
                    t0 = time.perf_counter()
                    result = machine.run(program)
                    elapsed = time.perf_counter() - t0
                    best = max(best, n / elapsed)
                    cycles = result.cycles
                per_config[config] = {
                    "insn_per_sec": round(best),
                    "cycles": cycles,
                }
            cells[name] = per_config
        out["backends"][backend] = cells
    return out


def iter_cells(measured: dict):
    """Yield ``(backend, workload, config, cell)`` over a schema-2 grid."""
    for backend, per_workload in measured.get("backends", {}).items():
        for workload, per_config in per_workload.items():
            for config, cell in per_config.items():
                yield backend, workload, config, cell


def render(measured: dict) -> str:
    lines = [f"seed={SEED}, best of {measured['reps']}"]
    for workload, meta in measured["workloads"].items():
        lines.append(
            f"{workload} scale={meta['scale']} ({meta['instructions']} insns)"
        )
        for backend in measured["backends"]:
            for config in CONFIGS:
                cell = measured["backends"][backend][workload][config]
                lines.append(
                    f"  {backend:>9}/{config:<4}: "
                    f"{cell['insn_per_sec']:>9,} insn/s"
                    f"  ({cell['cycles']:,} cycles)"
                )
    return "\n".join(lines)


def check(measured: dict, baseline: dict, tolerance: float) -> list[str]:
    """Regression findings (empty = pass); each backend gated independently."""
    problems = []
    if baseline.get("schema") != SCHEMA_VERSION:
        return [
            f"baseline schema {baseline.get('schema')!r} != "
            f"{SCHEMA_VERSION}; re-record"
        ]
    base_grid = baseline.get("backends", {})
    for backend, workload, config, cur in iter_cells(measured):
        base = base_grid.get(backend, {}).get(workload, {}).get(config)
        label = f"{backend}/{workload}/{config}"
        if base is None:
            problems.append(f"{label}: missing from baseline; re-record")
            continue
        if cur["cycles"] != base["cycles"]:
            problems.append(
                f"{label}: simulated cycles changed "
                f"{base['cycles']:,} -> {cur['cycles']:,} — the simulator's "
                "output drifted; fix it or re-record the baseline deliberately"
            )
        floor = base["insn_per_sec"] * (1.0 - tolerance)
        if cur["insn_per_sec"] < floor:
            problems.append(
                f"{label}: throughput {cur['insn_per_sec']:,} insn/s is below "
                f"{floor:,.0f} (baseline {base['insn_per_sec']:,} "
                f"- {tolerance:.0%} tolerance)"
            )
    # Bit-identity across backends: every backend must simulate the
    # exact same cycle count for every cell, independent of the baseline.
    ref = measured["backends"].get("reference", {})
    for backend, per_workload in measured["backends"].items():
        if backend == "reference":
            continue
        for workload, per_config in per_workload.items():
            for config, cell in per_config.items():
                expect = ref.get(workload, {}).get(config)
                if expect is not None and cell["cycles"] != expect["cycles"]:
                    problems.append(
                        f"{backend}/{workload}/{config}: cycles "
                        f"{cell['cycles']:,} != reference "
                        f"{expect['cycles']:,} — backends diverged"
                    )
    return problems


def load_history(path: Path = HISTORY_PATH) -> list[dict]:
    """Recorded baseline entries, oldest first (lenient on bad lines)."""
    if not path.exists():
        return []
    entries = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict) and ("configs" in entry or "workloads" in entry):
            entries.append(entry)
    return entries


def history_rows(measured: dict) -> list[dict]:
    """One history row per backend, each carrying a ``backend`` field."""
    rows = []
    for backend, per_workload in measured["backends"].items():
        rows.append(
            {
                "schema": SCHEMA_VERSION,
                "backend": backend,
                "seed": measured["seed"],
                "reps": measured["reps"],
                "workloads": {
                    workload: {
                        "scale": measured["workloads"][workload]["scale"],
                        "configs": per_config,
                    }
                    for workload, per_config in per_workload.items()
                },
            }
        )
    return rows


def append_history(measured: dict, path: Path = HISTORY_PATH) -> list[dict]:
    """Append timestamped per-backend rows of *measured*; returns them."""
    rows = history_rows(measured)
    stamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
    with path.open("a") as fh:
        for row in rows:
            row["recorded"] = stamp
            fh.write(json.dumps(row, sort_keys=True) + "\n")
    return rows


def _history_series(history: list[dict]) -> dict[tuple, list[int]]:
    """Flatten history rows into ``(backend, workload, config) -> series``.

    Handles both schemas: v1 rows (no backend, one implicit workload)
    map to ``("reference", "spec95.130.li", config)``.
    """
    series: dict[tuple, list[int]] = {}
    for entry in history:
        if "workloads" in entry:
            backend = entry.get("backend", "reference")
            for workload, per in entry["workloads"].items():
                for config, cell in per.get("configs", {}).items():
                    key = (backend, workload, config)
                    series.setdefault(key, []).append(cell["insn_per_sec"])
        else:  # schema 1
            for config, cell in entry.get("configs", {}).items():
                key = ("reference", "spec95.130.li", config)
                series.setdefault(key, []).append(cell["insn_per_sec"])
    return series


def trend_warnings(history: list[dict], window: int = 3) -> list[str]:
    """Cells whose last *window* recorded runs fell monotonically.

    A single noisy run stays inside the --check tolerance band; what that
    band can't see is a slow leak — each recording a little worse than
    the one before. Three strictly decreasing recordings in a row is the
    (warn-only) signal to look.
    """
    warnings = []
    for (backend, workload, config), values in sorted(
        _history_series(history).items()
    ):
        if len(values) < window:
            continue
        recent = values[-window:]
        if all(recent[i] > recent[i + 1] for i in range(window - 1)):
            trail = " -> ".join(f"{v:,}" for v in recent)
            warnings.append(
                f"{backend}/{workload}/{config}: throughput fell across the "
                f"last {window} recorded runs ({trail} insn/s)"
            )
    return warnings


def profile_top(top_n: int) -> str:
    """One CPP pass per backend under cProfile; top functions by self time."""
    import cProfile
    import io
    import pstats

    program = generate("spec95.130.li", seed=SEED, scale=WORKLOADS["spec95.130.li"])
    chunks = []
    for backend in BACKENDS:
        machine = Machine(SimConfig(cache_config="CPP", backend=backend))
        machine.run(program)  # warm kernels and disk caches
        profiler = cProfile.Profile()
        profiler.enable()
        machine.run(program)
        profiler.disable()
        buf = io.StringIO()
        pstats.Stats(profiler, stream=buf).sort_stats("tottime").print_stats(
            top_n
        )
        chunks.append(f"--- backend: {backend} ---\n{buf.getvalue()}")
    return "\n".join(chunks)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--record", action="store_true", help=f"write {BASELINE_PATH.name}"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) on regression against the committed baseline",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed fractional throughput drop for --check (default 0.5; "
        "cycle counts are always compared exactly)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=5,
        help="repetitions per cell; best is kept (default 5)",
    )
    parser.add_argument(
        "--profile",
        type=int,
        default=None,
        metavar="N",
        help="also cProfile one CPP run per backend and print the top-N "
        "functions",
    )
    parser.add_argument(
        "--backends",
        default=",".join(BACKENDS),
        metavar="NAMES",
        help="comma-separated backends to measure and gate (default: all; "
        "CI uses this to gate each backend in its own job — note the "
        "cross-backend cycle-identity check needs 'reference' included)",
    )
    args = parser.parse_args(argv)

    backends = tuple(b.strip() for b in args.backends.split(",") if b.strip())
    unknown = [b for b in backends if b not in BACKEND_NAMES]
    if unknown or not backends:
        parser.error(
            f"unknown backend(s) {unknown or args.backends!r}; "
            f"choose from {', '.join(BACKEND_NAMES)}"
        )
    if args.record and set(backends) != set(BACKENDS):
        parser.error(
            "--record needs the full backend grid; drop --backends"
        )

    measured = measure(args.reps, backends)
    print(render(measured))

    rc = 0
    if args.check:
        if not BASELINE_PATH.exists():
            print(f"no baseline at {BASELINE_PATH}; run --record first")
            rc = 1
        else:
            baseline = json.loads(BASELINE_PATH.read_text())
            problems = check(measured, baseline, args.tolerance)
            if problems:
                print("\nPERF CHECK FAILED:")
                for p in problems:
                    print(f"  - {p}")
                rc = 1
            else:
                print(
                    f"\nperf check passed (tolerance {args.tolerance:.0%}, "
                    "cycles exact, backends agree)"
                )
        for warning in trend_warnings(load_history()):
            print(f"WARNING: {warning}")
    if args.record:
        BASELINE_PATH.write_text(json.dumps(measured, indent=2) + "\n")
        append_history(measured)
        print(f"baseline written to {BASELINE_PATH}")
        print(f"history appended to {HISTORY_PATH}")
    if args.profile:
        print(profile_top(args.profile))
    return rc


if __name__ == "__main__":
    sys.exit(main())
