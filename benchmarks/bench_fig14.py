"""Figure 14 bench: miss importance via the half-penalty Amdahl method."""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments.common import GEOMEAN
from repro.experiments.fig14_importance import run as run_fig14


def test_fig14_miss_importance(benchmark):
    out = run_once(benchmark, run_fig14, seed=BENCH_SEED, scale=BENCH_SCALE)
    avg = {cfg: out.series[cfg][GEOMEAN] for cfg in ("BC", "HAC", "BCP", "CPP")}
    benchmark.extra_info.update(
        {f"avg_{k.lower()}_pct": round(v, 2) for k, v in avg.items()}
    )
    benchmark.extra_info["paper"] = "CPP reduces importance vs BC/HAC on most"
    # All fractions are valid percentages:
    for cfg, series in out.series.items():
        for value in series.values():
            assert 0.0 <= value <= 100.0, cfg
    # The figure's claim: CPP lowers the average miss importance.
    assert avg["CPP"] < avg["BC"]
    assert avg["CPP"] < avg["HAC"]
