"""Figure 11 bench: execution time, normalized to BC."""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments.common import GEOMEAN
from repro.experiments.fig11_execution_time import run as run_fig11


def test_fig11_execution_time(benchmark):
    out = run_once(benchmark, run_fig11, seed=BENCH_SEED, scale=BENCH_SCALE)
    avg = {cfg: out.series[cfg][GEOMEAN] for cfg in ("BCC", "HAC", "BCP", "CPP")}
    benchmark.extra_info.update(
        {f"avg_{k.lower()}_pct": round(v, 1) for k, v in avg.items()}
    )
    benchmark.extra_info["paper"] = "CPP ~93 (7% speedup); BCP best on 11/14"
    # BC == BCC exactly (format-only change):
    for workload, value in out.series["BCC"].items():
        if workload != GEOMEAN:
            assert value == 100.0, workload
    # CPP delivers a real average speedup, in the paper's band:
    assert 85.0 < avg["CPP"] < 99.0
    # HAC helps but less than prefetching on average:
    assert avg["HAC"] <= 101.0
    assert avg["BCP"] < 100.0
