"""Store-backed campaigns: the queue-draining experiment engine.

:func:`run_matrix_store` is the store-era twin of
:func:`repro.sim.fault.run_matrix_supervised`: the same supervised
per-cell forks, timeouts, retries and failure classification — but the
campaign's state lives in the content-addressed store and its lease
queue instead of a private JSONL file, which buys three things:

* **Any cell ever computed is never recomputed** — cells already in the
  store (verified on read) are reused before any job is enqueued.
* **Multiple processes drain one campaign** — each ``python -m
  repro.experiments ... --store DIR`` process claims jobs under
  heartbeat leases; no cell is computed twice while its lease is live,
  and a SIGKILLed worker's cells are reclaimed after lease expiry and
  completed by whoever is left.
* **Crash-anywhere recovery** — results commit through the write-ahead
  journal *before* the job's done marker, so the worst a crash costs is
  one recompute (an idempotent store put), never a torn record.

The drain loop claims up to ``max_workers`` jobs at a time, runs them as
one supervised batch (fork isolation, per-attempt timeout, bounded
retries with the PR 2 backoff policy), heartbeats every held lease from
a keeper thread while the batch runs, then completes or fails each job.
"""

from __future__ import annotations

import threading
import time

from repro.errors import LeaseError
from repro.obs import progress as _progress
from repro.sim import fault as _fault
from repro.store.cas import ResultStore
from repro.store.checkpoint import StoreCheckpoint
from repro.store.queue import (
    DEFAULT_LEASE_TTL,
    CampaignQueue,
    Job,
    default_worker_id,
)

__all__ = ["run_matrix_store", "campaign_name", "collect_results"]


def campaign_name(seed: int, scale: float) -> str:
    """Canonical queue namespace of one (seed, scale) matrix campaign."""
    return f"matrix-seed{seed}-scale{scale:g}"


class _LeaseKeeper(threading.Thread):
    """Renews the leases of a claimed batch while its cells simulate.

    Runs at a third of the lease TTL, so only a dead (or wedged-longer-
    than-TTL) worker ever expires. A lease lost anyway (reclaimed after
    a stall) is dropped from the renewal set and remembered in ``lost``.
    """

    def __init__(
        self, queue: CampaignQueue, jobs: list[Job], worker: str, ttl: float
    ) -> None:
        super().__init__(daemon=True, name="store-lease-keeper")
        self._queue = queue
        self._jobs = list(jobs)
        self._worker = worker
        self._interval = max(0.05, ttl / 3.0)
        self._halt = threading.Event()
        self.lost: set[str] = set()

    def run(self) -> None:
        while not self._halt.wait(self._interval):
            for job in self._jobs:
                if job.digest in self.lost:
                    continue
                try:
                    self._queue.heartbeat(job, worker=self._worker)
                except LeaseError:
                    self.lost.add(job.digest)

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


def _matrix_tasks(workloads, configs, miss_scales, seed, scale) -> dict:
    """{canonical cell key: task tuple} for the whole matrix."""
    tasks = {}
    for workload in workloads:
        for config in configs:
            for miss_scale in miss_scales:
                task = (workload, config, miss_scale, seed, scale)
                tasks[_fault._matrix_task_key(task)] = task
    return tasks


def _settle_batch(
    queue: CampaignQueue,
    jobs: list[Job],
    outcome,
    worker: str,
) -> list:
    """Complete/fail each claimed job from its supervised outcome."""
    failures = []
    by_key = {f.key: f for f in outcome.failures}
    for job in jobs:
        if job.key in outcome.results:
            queue.complete(job, worker=worker)
        elif job.key in by_key:
            failure = by_key[job.key]
            queue.fail(job, kind=failure.kind, message=failure.message)
            failures.append(failure)
        else:
            # Interrupted before this cell ran: give the claim back.
            queue.release(job)
    return failures


def collect_results(
    store: ResultStore, keys, *, results: dict | None = None
) -> dict:
    """Fill *results* with verified store records for the missing *keys*."""
    results = results if results is not None else {}
    for key in keys:
        if key not in results:
            record = store.get(key)
            if record is not None:
                results[key] = record
    return results


def run_matrix_store(
    workloads,
    configs,
    *,
    store_dir,
    seed: int = 1,
    scale: float = 1.0,
    miss_scales=(1.0,),
    policy: _fault.FaultPolicy | None = None,
    max_workers: int | None = None,
    progress: bool = False,
    worker_id: str | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    wait_poll: float = 0.5,
    prewarm_programs: bool = False,
) -> _fault.SupervisedOutcome:
    """Drain one matrix campaign through the store and its lease queue.

    Returns a :class:`~repro.sim.fault.SupervisedOutcome` whose
    ``results`` cover every cell *any* participating worker completed
    (collected from the store), ``reused`` counts cells served from the
    store without enqueueing, and ``failures`` covers permanent failures
    from this worker and from markers other workers left behind.
    """
    worker = worker_id or default_worker_id()
    store = ResultStore(store_dir)
    recovery = store.recover()
    if recovery.replayed and progress:
        _progress.report(
            f"store: replayed {recovery.replayed} journaled write(s) "
            f"from a previous crash",
            event="store_recovered",
            replayed=recovery.replayed,
        )
    tasks = _matrix_tasks(workloads, configs, miss_scales, seed, scale)
    queue = CampaignQueue(
        store.root / "queue", campaign_name(seed, scale), lease_ttl=lease_ttl
    )

    outcome = _fault.SupervisedOutcome(results={})
    for key, task in tasks.items():
        cached = store.get(key)  # verified; corrupt records quarantine here
        if cached is not None:
            outcome.results[key] = cached
            outcome.reused += 1
            queue.ensure_done(key, worker=worker)
        else:
            # A miss with a done marker left behind means the record was
            # quarantined since: withdraw the marker or the cell would
            # be skipped forever.
            queue.reopen(key)
            queue.enqueue(key, task)
    if outcome.reused and progress:
        _progress.report(
            f"store: {outcome.reused}/{len(tasks)} cells served from "
            f"{store.root} (verified)",
            event="store_resumed",
            reused=outcome.reused,
            total=len(tasks),
        )

    if prewarm_programs:
        from repro.sim.runner import get_program

        for workload in workloads:
            try:
                get_program(workload, seed=seed, scale=scale)
            except Exception:  # noqa: BLE001 - the supervised cell reports it
                pass

    checkpoint = StoreCheckpoint(store, worker=worker)
    batch_size = max(1, max_workers or 1)
    while True:
        jobs: list[Job] = []
        while len(jobs) < batch_size:
            job = queue.claim(worker)
            if job is None:
                break
            jobs.append(job)
        if not jobs:
            if queue.drained():
                break
            # Other workers hold live leases: wait for their completions
            # (or their leases' expiry, which claim() then reclaims).
            time.sleep(wait_poll)
            continue
        keeper = _LeaseKeeper(queue, jobs, worker, lease_ttl)
        keeper.start()
        try:
            batch = _fault.run_supervised(
                [job.task for job in jobs],
                _fault._matrix_cell_worker,
                key_of=_fault._matrix_task_key,
                policy=policy,
                max_workers=max_workers,
                checkpoint=checkpoint,
                progress=progress,
                phase_name="store_campaign",
            )
        except BaseException:
            keeper.stop()
            # Interrupt/fail-fast: keep what the store already has, give
            # the rest back so other workers (or a rerun) pick them up.
            for job in jobs:
                if store.contains(job.key):
                    queue.complete(job, worker=worker)
                else:
                    queue.release(job)
            raise
        keeper.stop()
        outcome.results.update(batch.results)
        for key, n in batch.attempts.items():
            outcome.attempts[key] = outcome.attempts.get(key, 0) + n
        outcome.failures.extend(_settle_batch(queue, jobs, batch, worker))

    # Cells other workers completed (or failed) while we drained.
    collect_results(store, tasks.keys(), results=outcome.results)
    known_failed = {f.key for f in outcome.failures}
    for record in queue.failed_records():
        key = tuple(record.get("key", ()))
        if key and key in tasks and key not in known_failed:
            failure = _fault.CellFailure(
                key=key,
                kind=str(record.get("kind", "error")),
                message=str(record.get("message", "failed in another worker")),
                attempts=int(record.get("attempts", 1) or 1),
            )
            outcome.failures.append(failure)
            if not _fault.LEDGER.is_failed(key):
                _fault.LEDGER.record(failure)
    return outcome
