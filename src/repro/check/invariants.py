"""Structural invariant audits for the compression cache (opt-in layer).

:func:`audit` verifies every structural invariant of a
:class:`~repro.caches.compression_cache.CompressionCache` against the
*slow* classifier (``scheme.is_compressible``), independently of the
inlined/memoized hot-path classifiers it is auditing. On a violation it
raises :class:`~repro.errors.InvariantViolation` carrying a serialized
dump of the frames involved, so a failure inside a long fuzz run or a
full workload cell is debuggable offline.

:func:`install_runtime_checks` arms a cache instance so that every
mutating protocol operation (``access``, ``fetch``, ``write_back``,
``flush``) re-audits on exit. It is installed per-instance at
construction when ``REPRO_CHECK=1`` (see :mod:`repro.check.runtime`), so
the disabled path pays exactly one environment lookup per cache build
and nothing per access.

Invariant list (the names appear in :class:`InvariantViolation`):

``set-shape``
    Every set holds exactly ``assoc`` distinct frames of the right width.
``home-set``
    A valid frame's primary line maps to the set that holds it.
``idle-state``
    An invalid frame carries no flags, values are ignored.
``flag-domain``
    ``VCP`` marks only present primary words (``VCP ⊆ PA``).
``space-rule``
    ``AA`` words sit only in legal slots for this scheme's width:
    absent-primary slots always; compressed-primary slots only when two
    compressed values fit one 32-bit slot.
``vcp-memo``
    The memoized ``VCP`` equals fresh classification of every present
    primary word.
``aa-compressible``
    Every affiliated word is genuinely compressible at its own address.
``unique-primary``
    No two frames claim the same primary line.
``single-copy``
    No line is simultaneously a primary line and an affiliated resident.
"""

from __future__ import annotations

from repro.errors import InvariantViolation

__all__ = ["audit", "frame_dump", "install_runtime_checks"]

#: Mutating protocol operations re-audited by the runtime layer.
_MUTATORS = ("access", "fetch", "write_back", "flush")


def frame_dump(frame) -> dict:
    """JSON-serializable state of one :class:`CompressedFrame`."""
    return {
        "line_no": frame.line_no,
        "dirty": bool(frame.dirty),
        "pa": f"{frame.pa:0{frame.n_words}b}",
        "vcp": f"{frame.vcp:0{frame.n_words}b}",
        "aa": f"{frame.aa:0{frame.n_words}b}",
        "pvals": [int(v) for v in frame.pvals],
        "avals": [int(v) for v in frame.avals],
    }


def _violation(cache, invariant: str, detail: str, set_idx: int, *frames):
    return InvariantViolation(
        invariant,
        detail,
        level=cache.name,
        set_index=set_idx,
        frames=[frame_dump(f) for f in frames],
    )


def audit(cache) -> None:
    """Verify every structural invariant of *cache*; raise on violation."""
    is_comp = cache.scheme.is_compressible
    shift = cache.line_shift
    primaries: dict[int, int] = {}  # line_no -> set index (for dumps)
    affiliated: dict[int, tuple[int, object]] = {}  # resident affiliated lines
    seen: set[int] = set()
    for set_idx, ways in enumerate(cache._sets):
        if len(ways) != cache.assoc:
            raise _violation(
                cache,
                "set-shape",
                f"set holds {len(ways)} ways, expected {cache.assoc}",
                set_idx,
            )
        for frame in ways:
            if id(frame) in seen:
                raise _violation(
                    cache, "set-shape", "frame aliased across ways", set_idx, frame
                )
            seen.add(id(frame))
            if frame.n_words != cache.line_words:
                raise _violation(
                    cache,
                    "set-shape",
                    f"frame width {frame.n_words} != line {cache.line_words}",
                    set_idx,
                    frame,
                )
            if not frame.valid:
                if frame.pa or frame.vcp or frame.aa or frame.dirty:
                    raise _violation(
                        cache, "idle-state", "invalid frame carries state", set_idx, frame
                    )
                continue
            if frame.line_no & cache.set_mask != set_idx:
                raise _violation(
                    cache,
                    "home-set",
                    f"line {frame.line_no:#x} resident in foreign set",
                    set_idx,
                    frame,
                )
            if frame.vcp & ~frame.pa:
                raise _violation(
                    cache, "flag-domain", "VCP set for an absent primary word", set_idx, frame
                )
            if frame.aa & ~cache._slot_mask(frame):
                raise _violation(
                    cache,
                    "space-rule",
                    "affiliated word in a slot the scheme width cannot share",
                    set_idx,
                    frame,
                )
            if frame.line_no in primaries:
                raise _violation(
                    cache,
                    "unique-primary",
                    f"line {frame.line_no:#x} resident twice",
                    set_idx,
                    frame,
                )
            primaries[frame.line_no] = set_idx
            base = frame.line_no << shift
            m = frame.pa
            while m:
                low = m & -m
                i = low.bit_length() - 1
                m ^= low
                fresh = bool(is_comp(frame.pvals[i], base + (i << 2)))
                memo = bool(frame.vcp & low)
                if memo != fresh:
                    raise _violation(
                        cache,
                        "vcp-memo",
                        f"word {i} of line {frame.line_no:#x}: memo says "
                        f"{'compressible' if memo else 'incompressible'}, "
                        f"value {frame.pvals[i]:#010x} is not",
                        set_idx,
                        frame,
                    )
            if frame.aa:
                aff_no = cache.affiliated_line(frame.line_no)
                aff_base = aff_no << shift
                m = frame.aa
                while m:
                    low = m & -m
                    i = low.bit_length() - 1
                    m ^= low
                    if not is_comp(frame.avals[i], aff_base + (i << 2)):
                        raise _violation(
                            cache,
                            "aa-compressible",
                            f"affiliated word {i} of line {aff_no:#x} "
                            f"({frame.avals[i]:#010x}) is incompressible",
                            set_idx,
                            frame,
                        )
                affiliated[aff_no] = (set_idx, frame)
    for aff_no, (set_idx, frame) in affiliated.items():
        if aff_no in primaries:
            raise _violation(
                cache,
                "single-copy",
                f"line {aff_no:#x} is both a primary line and an affiliated resident",
                set_idx,
                frame,
            )


def install_runtime_checks(cache) -> None:
    """Arm *cache*: re-audit after every mutating protocol operation.

    Idempotent — installing twice wraps once. The wrappers live on the
    instance, so unwrapped instances (the default) keep the plain class
    methods and pay nothing.
    """
    if getattr(cache, "_repro_check_armed", False):
        return
    cache._repro_check_armed = True
    for name in _MUTATORS:
        inner = getattr(cache, name)

        def checked(*args, __inner=inner, **kwargs):
            out = __inner(*args, **kwargs)
            audit(cache)
            return out

        checked.__name__ = f"checked_{name}"
        checked.__doc__ = inner.__doc__
        setattr(cache, name, checked)
