"""Tests for multi-seed sweep statistics."""

import pytest

from repro.errors import ExperimentError
from repro.sim.runner import clear_caches
from repro.sim.sweeps import SeedStats, compare_over_seeds, sweep_seeds


@pytest.fixture(autouse=True)
def _fresh():
    clear_caches()
    yield
    clear_caches()


class TestSeedStats:
    def test_moments(self):
        s = SeedStats("w", "BC", "cycles", (10.0, 12.0, 14.0))
        assert s.mean == pytest.approx(12.0)
        assert s.stddev == pytest.approx(2.0)
        assert s.minimum == 10.0 and s.maximum == 14.0

    def test_single_value_stddev(self):
        assert SeedStats("w", "BC", "m", (5.0,)).stddev == 0.0


class TestSweep:
    def test_runs_across_seeds(self):
        stats = sweep_seeds(
            "olden.mst", "BC", lambda r: float(r.cycles),
            seeds=(1, 2), scale=0.1, metric_name="cycles",
        )
        assert stats.n == 2
        assert all(v > 0 for v in stats.values)
        # Different seeds genuinely change the run:
        assert stats.values[0] != stats.values[1]

    def test_empty_seeds_rejected(self):
        with pytest.raises(ExperimentError):
            sweep_seeds("olden.mst", "BC", lambda r: 0.0, seeds=())


class TestComparison:
    def test_cpp_wins_on_every_seed_for_compressible_workload(self):
        cmp_ = compare_over_seeds(
            "spec95.130.li",
            baseline_config="BC",
            test_config="CPP",
            seeds=(1, 2, 3),
            scale=0.25,
        )
        assert len(cmp_.ratios) == 3
        assert cmp_.mean_ratio < 1.0
        assert cmp_.always_wins  # the speedup is not a single-seed fluke

    def test_paired_by_seed(self):
        cmp_ = compare_over_seeds(
            "olden.mst", seeds=(7,), scale=0.1, metric_name="cycles"
        )
        assert cmp_.baseline.values[0] > 0
        assert cmp_.test.values[0] > 0
        assert cmp_.wins in (0, 1)
