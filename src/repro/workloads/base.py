"""Workload-authoring infrastructure.

A :class:`ProgramBuilder` is a tiny "virtual machine" for writing
benchmark kernels: the kernel code runs as ordinary Python, but every
memory access goes through a live :class:`MemoryImage` and every emitted
operation is appended to the trace. The generated trace therefore has

* **real addresses** — from real allocations through a real allocator, so
  pointer-prefix compressibility emerges from heap layout;
* **real values** — whatever the kernel actually computed/stored;
* **real dependences** — kernels thread named virtual registers through
  loads, ALU ops and address bases, so pointer chases serialize in the
  out-of-order core exactly like the original programs;
* **real branch behaviour** — loop back-edges and data-dependent branches
  are emitted with their actual outcomes for the bimod predictor.

The simulation then *replays* the trace against an initially empty
memory: because the trace contains every store the kernel performed
(including structure building), the simulated hierarchy reconstructs the
same memory contents, which the Machine's verify mode checks load by load.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import WorkloadError
from repro.isa.opcodes import OpClass
from repro.isa.trace import Trace, TraceBuilder
from repro.memory.allocator import BumpAllocator, FreeListAllocator
from repro.memory.image import MemoryImage
from repro.utils.bitops import MASK32, to_uint32
from repro.utils.rng import make_rng

__all__ = ["Program", "ProgramBuilder", "Workload", "CODE_BASE", "GLOBAL_BASE"]

CODE_BASE = 0x0040_0000  #: synthetic text segment (PC labels)
GLOBAL_BASE = 0x0800_0000  #: synthetic globals/static data
STACK_BASE = 0x7FFF_0000  #: synthetic stack region (grows down)


@dataclass(frozen=True)
class Program:
    """A generated benchmark: the trace plus descriptive metadata.

    ``final_image`` is the memory state after the generator ran the kernel
    to completion. A simulation that replays the trace from an empty
    memory and flushes its caches must reproduce it exactly — the
    strongest end-to-end correctness check the integration tests run.
    """

    name: str
    trace: Trace
    description: str = ""
    params: dict = field(default_factory=dict)
    final_image: MemoryImage | None = None

    @property
    def n_instructions(self) -> int:
        return len(self.trace)


class ProgramBuilder:
    """Emit a dynamic instruction trace while executing a kernel."""

    def __init__(
        self,
        name: str,
        seed: int = 0,
        *,
        allocator: str = "bump",
        heap_base: int = 0x1000_0000,
        heap_limit: int = 0x3000_0000,
        alignment: int = 8,
    ) -> None:
        self.name = name
        self.rng = make_rng(seed)
        self.image = MemoryImage()
        if allocator == "bump":
            self.alloc: BumpAllocator | FreeListAllocator = BumpAllocator(
                heap_base, heap_limit, alignment=alignment
            )
        elif allocator == "freelist":
            self.alloc = FreeListAllocator(heap_base, heap_limit, alignment=alignment)
        else:
            raise WorkloadError(f"unknown allocator kind {allocator!r}")
        self._trace = TraceBuilder(name)
        self._regs: dict[str, int] = {}
        self._pcs: dict[str, int] = {}
        self._stack_next = STACK_BASE
        self._globals_next = GLOBAL_BASE

    # ---- registers & labels ------------------------------------------------

    def reg(self, regname: str) -> int:
        """Intern a virtual register name to a stable id."""
        rid = self._regs.get(regname)
        if rid is None:
            rid = len(self._regs)
            if rid > 32000:
                raise WorkloadError("too many distinct register names")
            self._regs[regname] = rid
        return rid

    def _r(self, regname: str | None) -> int:
        return -1 if regname is None else self.reg(regname)

    def pc(self, label: str) -> int:
        """Intern a static-instruction label to a synthetic PC."""
        pc = self._pcs.get(label)
        if pc is None:
            pc = CODE_BASE + 8 * len(self._pcs)
            self._pcs[label] = pc
        return pc

    # ---- data segments ---------------------------------------------------------

    def malloc(self, size: int) -> int:
        """Allocate heap bytes (layout realism; emits no instructions —
        the allocator metadata accesses of a real ``malloc`` are modeled
        by the kernels that stress them explicitly)."""
        return self.alloc.malloc(size)

    def free(self, addr: int) -> None:
        """Release a heap block (requires the freelist allocator)."""
        if not isinstance(self.alloc, FreeListAllocator):
            raise WorkloadError("free() requires the freelist allocator")
        self.alloc.free(addr)

    def static_array(self, n_words: int, *, align: int = 64) -> int:
        """Reserve a zero-initialized global array; returns its address."""
        addr = (self._globals_next + align - 1) & ~(align - 1)
        self._globals_next = addr + 4 * n_words
        return addr

    def stack_frame(self, n_words: int) -> int:
        """Push a synthetic stack frame; returns its base address."""
        self._stack_next -= 4 * n_words
        self._stack_next &= ~0x7
        return self._stack_next

    # ---- instruction emission -----------------------------------------------------

    def load(
        self,
        addr: int,
        into: str,
        *,
        base: str | None = None,
        label: str | None = None,
    ) -> int:
        """Emit a word load; returns the value read (from the live image).

        *base* names the register that computed the address — this is what
        serializes pointer chases in the out-of-order core.
        """
        value = self.image.read_word(addr)
        self._trace.append(
            self.pc(label or f"ld@{into}"),
            OpClass.LOAD,
            dest=self.reg(into),
            src1=self._r(base),
            addr=addr,
            value=value,
        )
        return value

    def store(
        self,
        addr: int,
        value: int,
        *,
        base: str | None = None,
        src: str | None = None,
        label: str | None = None,
    ) -> None:
        """Emit a word store and update the live image."""
        value = to_uint32(value)
        self.image.write_word(addr, value)
        self._trace.append(
            self.pc(label or "st"),
            OpClass.STORE,
            src1=self._r(base),
            src2=self._r(src),
            addr=addr,
            value=value,
        )

    def op(
        self,
        into: str | None,
        srcs: tuple[str | None, ...] = (),
        *,
        kind: OpClass = OpClass.IALU,
        label: str | None = None,
    ) -> None:
        """Emit a computational instruction (ALU/mult/FP...)."""
        if kind in (OpClass.LOAD, OpClass.STORE, OpClass.BRANCH):
            raise WorkloadError("op() is for computational instructions")
        s = tuple(srcs) + (None, None)
        self._trace.append(
            self.pc(label or f"op@{kind.name}"),
            kind,
            dest=self._r(into),
            src1=self._r(s[0]),
            src2=self._r(s[1]),
        )

    def branch(
        self,
        label: str,
        taken: bool,
        *,
        srcs: tuple[str | None, ...] = (),
    ) -> None:
        """Emit a conditional branch with its actual outcome."""
        s = tuple(srcs) + (None, None)
        self._trace.append(
            self.pc(label),
            OpClass.BRANCH,
            src1=self._r(s[0]),
            src2=self._r(s[1]),
            taken=taken,
        )

    # ---- control-flow sugar -----------------------------------------------------------

    def for_range(
        self, label: str, n: int, *, cond_srcs: tuple[str | None, ...] = ()
    ) -> Iterator[int]:
        """Iterate 0..n-1, emitting the loop back-edge branch each time
        (taken on every iteration but the last, like a compiled loop)."""
        for i in range(n):
            yield i
            self.branch(label, taken=i < n - 1, srcs=cond_srcs)

    def while_cond(
        self, label: str, cond: bool, *, srcs: tuple[str | None, ...] = ()
    ) -> bool:
        """Emit a loop-continuation branch; returns *cond* for idiomatic
        ``while pb.while_cond("loop", p != 0, srcs=("p",)):`` style."""
        self.branch(label, taken=cond, srcs=srcs)
        return cond

    def if_(self, label: str, cond: bool, *, srcs: tuple[str | None, ...] = ()) -> bool:
        """Emit a data-dependent conditional branch; returns *cond*."""
        self.branch(label, taken=cond, srcs=srcs)
        return cond

    def call_overhead(self, label: str, n_ops: int = 2) -> None:
        """Approximate call/return overhead with a couple of ALU ops."""
        for k in range(n_ops):
            self.op("calltmp", ("calltmp",), label=f"{label}#call{k}")

    # ---- finishing --------------------------------------------------------------------

    def build(self, *, description: str = "", params: dict | None = None) -> Program:
        """Freeze the trace into a :class:`Program`."""
        return Program(
            name=self.name,
            trace=self._trace.build(),
            description=description,
            params=dict(params or {}),
            final_image=self.image,
        )

    @property
    def n_emitted(self) -> int:
        return len(self._trace)

    # ---- struct helpers ---------------------------------------------------------------

    def write_struct(
        self, addr: int, word_values: list[int], *, label: str, src: str | None = None
    ) -> None:
        """Emit stores initializing consecutive struct words."""
        for k, v in enumerate(word_values):
            self.store(addr + 4 * k, v, src=src, label=f"{label}#w{k}")

    def rand_small(self, lo: int = 0, hi: int = 16000) -> int:
        """A compressible small value."""
        return int(self.rng.integers(lo, hi))

    def rand_large(self) -> int:
        """An (almost certainly) incompressible 32-bit value."""
        return int(self.rng.integers(1 << 20, (1 << 31) - 1)) | 0x4000_0000

    def rand_word(self) -> int:
        """A uniformly random 32-bit word."""
        return int(self.rng.integers(0, 1 << 32)) & MASK32


@dataclass(frozen=True)
class Workload:
    """Registry entry: a named, parameterized trace generator."""

    name: str
    suite: str  #: "olden" | "spec95" | "spec2000"
    description: str
    factory: Callable[[int, float], Program]  #: (seed, scale) -> Program

    def generate(self, seed: int = 1, scale: float = 1.0) -> Program:
        """Build the program; *scale* grows/shrinks the default input size."""
        if scale <= 0:
            raise WorkloadError("scale must be positive")
        return self.factory(seed, scale)


def scaled(n: int, scale: float, *, minimum: int = 1) -> int:
    """Scale an input-size parameter, keeping it a sane integer."""
    return max(minimum, int(round(n * scale)))
