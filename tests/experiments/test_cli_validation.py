"""Typed validation of the ``repro-experiments`` command line."""

from __future__ import annotations

import pytest

from repro.errors import UsageError
from repro.experiments.runall import _build_parser, _validate, main


def _args(*argv: str):
    return _build_parser().parse_args(list(argv))


class TestValidate:
    def test_accepts_defaults(self):
        _validate(_args("fig9"))

    @pytest.mark.parametrize(
        "argv",
        [
            ("fig9", "--seed", "-1"),
            ("fig9", "--scale", "0"),
            ("fig9", "--timeout", "-5"),
            ("fig9", "--retries", "-1"),
            ("fig9", "--workers", "0"),
            ("fig9", "--profile", "0"),
        ],
    )
    def test_rejects_bad_numbers(self, argv):
        with pytest.raises(UsageError):
            _validate(_args(*argv))

    def test_unknown_figure_lists_choices(self):
        with pytest.raises(UsageError) as err:
            _validate(_args("fig99"))
        message = str(err.value)
        assert "fig99" in message
        assert "fig9" in message  # the valid choices are listed
        assert err.value.argument == "figures"

    def test_unknown_workload_lists_choices(self):
        with pytest.raises(UsageError) as err:
            _validate(_args("fig9", "--workloads", "olden.quadtree"))
        message = str(err.value)
        assert "olden.quadtree" in message
        assert "olden.treeadd" in message
        assert err.value.argument == "--workloads"


class TestMain:
    def test_usage_error_exits_one_not_traceback(self, capsys):
        assert main(["fig99"]) == 1
        assert main(["fig9", "--seed", "-1"]) == 1
        assert main(["fig9", "--workloads", "nope"]) == 1
        err = capsys.readouterr().err
        out = capsys.readouterr().out
        assert "Traceback" not in err + out
