"""A reduced SimpleScalar-style 4-issue out-of-order core.

Trace-driven: instructions arrive pre-decoded with resolved addresses and
branch outcomes. The core models the structures that determine how well
cache latency is overlapped — the IFQ, a bimod branch predictor with
misprediction fetch stalls, a register-update unit (ROB), a load/store
queue with store-to-load forwarding, functional-unit contention, and
in-order commit — because those are what the paper's execution-time,
miss-importance and ready-queue figures measure.
"""

from repro.cpu.branch import BimodPredictor
from repro.cpu.resources import FuPool
from repro.cpu.metrics import CoreMetrics
from repro.cpu.pipeline import CoreConfig, CoreResult, OutOfOrderCore

__all__ = [
    "BimodPredictor",
    "FuPool",
    "CoreMetrics",
    "CoreConfig",
    "CoreResult",
    "OutOfOrderCore",
]
