"""The vectorized classifier must agree bit-for-bit with the scalar one."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.compression.scheme import PAPER_SCHEME, CompressClass, CompressionScheme
from repro.compression.vectorized import (
    classify_words,
    compressible_mask,
    compression_summary,
)

u32 = st.integers(min_value=0, max_value=(1 << 32) - 1)


class TestAgreementWithScalar:
    @given(
        arrays(np.uint32, st.integers(1, 64), elements=u32),
        st.integers(min_value=0, max_value=(1 << 30) - 1),
    )
    @settings(max_examples=50)
    def test_classify_matches_scalar(self, values, base):
        addrs = (np.uint32(base * 4) + 4 * np.arange(len(values), dtype=np.uint32))
        classes = classify_words(values, addrs)
        for i in range(len(values)):
            expected = PAPER_SCHEME.classify(int(values[i]), int(addrs[i]))
            assert CompressClass(classes[i]) is expected

    @given(arrays(np.uint32, 16, elements=u32))
    @settings(max_examples=50)
    def test_mask_matches_scalar(self, values):
        addrs = np.uint32(0x1000_0000) + 4 * np.arange(16, dtype=np.uint32)
        mask = compressible_mask(values, addrs)
        for i in range(16):
            assert mask[i] == PAPER_SCHEME.is_compressible(
                int(values[i]), int(addrs[i])
            )

    def test_alternate_scheme(self):
        s = CompressionScheme(payload_bits=7)
        values = np.array([63, 64, 200], dtype=np.uint32)
        addrs = np.array([0, 4, 8], dtype=np.uint32)
        classes = classify_words(values, addrs, s)
        assert CompressClass(classes[0]) is CompressClass.SMALL
        # 64 has nonuniform high bits at 8-bit width but shares the prefix
        # of its tiny address -> pointer.
        assert CompressClass(classes[1]) is CompressClass.POINTER


class TestPackedBusWordsVec:
    @given(
        arrays(np.uint32, st.integers(0, 48), elements=u32),
        st.integers(min_value=0, max_value=(1 << 28) - 1),
    )
    @settings(max_examples=50)
    def test_matches_scalar_codec(self, values, base):
        from repro.compression.codec import packed_bus_words
        from repro.compression.vectorized import packed_bus_words_vec

        addrs = (np.uint32(base * 4) + 4 * np.arange(len(values), dtype=np.uint32))
        vec = packed_bus_words_vec(values, addrs)
        scalar = packed_bus_words(
            [int(v) for v in values], [int(a) for a in addrs]
        )
        assert vec == scalar

    def test_no_flags_option(self):
        from repro.compression.vectorized import packed_bus_words_vec

        values = np.full(4, 0xDEAD_BEEF, dtype=np.uint32)
        addrs = np.uint32(0x1000_0000) + 4 * np.arange(4, dtype=np.uint32)
        assert packed_bus_words_vec(values, addrs, count_flag_bits=False) == 4
        assert packed_bus_words_vec(values, addrs) == 5


class TestShapesAndErrors:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            classify_words(
                np.zeros(4, dtype=np.uint32), np.zeros(5, dtype=np.uint32)
            )

    def test_empty(self):
        s = compression_summary(
            np.array([], dtype=np.uint32), np.array([], dtype=np.uint32)
        )
        assert s.n_words == 0
        assert s.fraction_compressible == 0.0


class TestSummary:
    def test_counts(self):
        values = np.array([5, 0xDEADBEEF, 0x1000_2000], dtype=np.uint32)
        addrs = np.array([0x1000_0000] * 3, dtype=np.uint32)
        s = compression_summary(values, addrs)
        assert s.n_small == 1
        assert s.n_pointer == 1
        assert s.n_incompressible == 1
        assert s.fraction_compressible == pytest.approx(2 / 3)
        assert s.fraction_small == pytest.approx(1 / 3)
        assert s.fraction_pointer == pytest.approx(1 / 3)

    def test_fractions_sum_to_one(self):
        rng = np.random.default_rng(3)
        values = rng.integers(0, 1 << 32, 1000, dtype=np.uint32)
        addrs = np.uint32(0x2000_0000) + 4 * np.arange(1000, dtype=np.uint32)
        s = compression_summary(values, addrs)
        total = s.fraction_small + s.fraction_pointer + s.n_incompressible / s.n_words
        assert total == pytest.approx(1.0)


class TestEmptyTraceFractions:
    """Satellite regression: no fraction_* may divide by zero."""

    def test_all_fractions_zero_on_empty(self):
        s = compression_summary(
            np.array([], dtype=np.uint32), np.array([], dtype=np.uint32)
        )
        assert s.fraction_compressible == 0.0
        assert s.fraction_small == 0.0
        assert s.fraction_pointer == 0.0

    def test_summary_from_all_filtered_words(self):
        # A summary built over a fully masked-out selection has n_words
        # == 0 and must behave like the empty trace.
        values = np.array([5, 7], dtype=np.uint32)
        addrs = np.array([0x1000_0000, 0x1000_0004], dtype=np.uint32)
        keep = np.zeros(2, dtype=bool)
        s = compression_summary(values[keep], addrs[keep])
        assert s.n_words == 0
        assert s.fraction_compressible == 0.0
        assert s.fraction_small == 0.0
        assert s.fraction_pointer == 0.0
