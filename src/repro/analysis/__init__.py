"""Post-processing analyses behind the paper's derived figures."""

from repro.analysis.importance import ImportanceResult, fraction_enhanced, miss_importance
from repro.analysis.normalize import normalize_to_baseline
from repro.analysis.readyq import ReadyQueueComparison, ready_queue_uplift

__all__ = [
    "ImportanceResult",
    "fraction_enhanced",
    "miss_importance",
    "normalize_to_baseline",
    "ReadyQueueComparison",
    "ready_queue_uplift",
]
