"""Telemetry exporters: Chrome trace-event JSON and flat span JSONL."""

import json

from repro.obs.export import (
    to_chrome_trace,
    to_span_lines,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.telemetry import TelemetryStore


def _store() -> TelemetryStore:
    store = TelemetryStore(trace_id="trace-1")
    store.parent = {
        "spans": [
            {
                "name": "supervised_matrix",
                "trace_id": "trace-1",
                "span_id": "p1",
                "parent_id": None,
                "start": 10.0,
                "end": 13.0,
                "status": "ok",
                "attrs": {},
                "pid": 1,
            }
        ]
    }
    store.ingest_payload(
        {
            "cell": "cellA",
            "attempt": 1,
            "spans": [
                {
                    "name": "cell",
                    "trace_id": "trace-1",
                    "span_id": "c1",
                    "parent_id": "p1",
                    "start": 10.5,
                    "end": 11.5,
                    "status": "error",
                    "attrs": {"worker": 0},
                    "pid": 2,
                    "op_start": 0,
                    "op_end": 4000,
                }
            ],
        }
    )
    store.ingest_payload(
        {
            "cell": "cellB",
            "attempt": 1,
            "spans": [
                {
                    "name": "cell",
                    "trace_id": "trace-1",
                    "span_id": "c2",
                    "parent_id": "p1",
                    "start": 11.0,
                    "end": 12.0,
                    "status": "ok",
                    "attrs": {"worker": 1},
                    "pid": 3,
                }
            ],
        }
    )
    return store


class TestChromeTrace:
    def test_structure_and_timestamps(self):
        trace = to_chrome_trace(_store())
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(events) == 3
        run = next(e for e in events if e["name"] == "supervised_matrix")
        # Timestamps are microseconds relative to the earliest start.
        assert run["ts"] == 0.0
        assert run["dur"] == 3_000_000.0

    def test_per_worker_tracks(self):
        events = [
            e for e in to_chrome_trace(_store())["traceEvents"] if e["ph"] == "X"
        ]
        tids = {e["args"]["span_id"]: e["tid"] for e in events}
        assert tids["p1"] == 0  # supervisor track
        assert tids["c1"] == 1  # worker 0
        assert tids["c2"] == 2  # worker 1

    def test_track_metadata_names(self):
        meta = [
            e for e in to_chrome_trace(_store())["traceEvents"] if e["ph"] == "M"
        ]
        names = {
            e["tid"]: e["args"]["name"]
            for e in meta
            if e["name"] == "thread_name"
        }
        assert names == {0: "supervisor", 1: "worker 0", 2: "worker 1"}

    def test_status_and_op_clock_in_args(self):
        events = [
            e for e in to_chrome_trace(_store())["traceEvents"] if e["ph"] == "X"
        ]
        c1 = next(e for e in events if e["args"]["span_id"] == "c1")
        assert c1["args"]["status"] == "error"
        assert c1["args"]["op_start"] == 0
        assert c1["args"]["parent_id"] == "p1"

    def test_written_file_parses(self, tmp_path):
        path = write_chrome_trace(_store(), tmp_path / "trace.json")
        trace = json.loads(path.read_text())
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_empty_store(self):
        trace = to_chrome_trace(TelemetryStore(trace_id="t"))
        assert [e["ph"] for e in trace["traceEvents"]] == ["M", "M", "M"]


class TestSpanLines:
    def test_otlp_shape(self):
        lines = to_span_lines(_store())
        assert len(lines) == 3
        first = lines[0]
        assert first["traceId"] == "trace-1"
        assert first["spanId"] == "p1"
        assert first["parentSpanId"] == ""
        assert first["startTimeUnixNano"] == 10_000_000_000
        child = next(line for line in lines if line["spanId"] == "c1")
        assert child["parentSpanId"] == "p1"
        assert child["status"] == "error"

    def test_jsonl_file_one_object_per_line(self, tmp_path):
        path = write_spans_jsonl(_store(), tmp_path / "spans.jsonl")
        parsed = [json.loads(line) for line in path.read_text().splitlines()]
        assert [p["spanId"] for p in parsed] == ["p1", "c1", "c2"]
