#!/usr/bin/env python
"""The paper's own motivating example (§2.2, Figures 5-6), made runnable.

A linked list of nodes ``{next, type, prev, info}`` — three compressible
fields and one large ``info`` — is traversed summing ``info`` for nodes
of a given type:

    while (p) {                // (1)
        if (p->type == T)      // (2)
            sum += p->info;    // (3)
        p = p->next;           // (4)
    }

Without compression every node occupies one 64 B region probed by a fresh
cache line; with CPP a line holds one node plus the compressible fields
of the *next* node, so the pointer chase hits in the affiliated location
and the only misses left are the (less important) ``info`` loads at (3).

Run:  python examples/linked_list_traversal.py
"""

from repro.sim.config import SimConfig
from repro.sim.runner import run_program
from repro.utils.tables import format_table
from repro.workloads.base import Program, ProgramBuilder

# Node layout (one 64 B cache line per node, as in paper Figure 6).
NEXT, TYPE, PREV, INFO = 0, 4, 8, 12
NODE_BYTES = 64

N_NODES = 600
WANTED_TYPE = 3
TRAVERSALS = 4


def build_list_program(seed: int = 1) -> Program:
    pb = ProgramBuilder("example.listsum", seed)

    # -- build the list (paper Figure 5(a)) --------------------------------
    nodes = [pb.malloc(NODE_BYTES) for _ in range(N_NODES)]
    node_type = {}
    for i, addr in enumerate(nodes):
        nxt = nodes[i + 1] if i + 1 < N_NODES else 0
        prv = nodes[i - 1] if i else 0
        t = int(pb.rng.integers(0, 5))
        node_type[addr] = t
        pb.store(addr + NEXT, nxt, base="g", label="ll.init.next")
        pb.store(addr + TYPE, t, base="g", label="ll.init.type")
        pb.store(addr + PREV, prv, base="g", label="ll.init.prev")
        pb.store(addr + INFO, pb.rand_large(), base="g", label="ll.init.info")

    # -- the traversal loop (paper Figure 5(b)) -----------------------------
    total = 0
    for _ in pb.for_range("ll.outer", TRAVERSALS, cond_srcs=("g",)):
        pb.op("p", (), label="ll.loop.entry")
        p = nodes[0]
        while pb.while_cond("ll.loop", p != 0, srcs=("p",)):  # (1)
            t = pb.load(p + TYPE, "t", base="p", label="ll.ld.type")
            if pb.if_("ll.iftype", t == WANTED_TYPE, srcs=("t",)):  # (2)
                info = pb.load(p + INFO, "info", base="p", label="ll.ld.info")
                pb.op("sum", ("sum", "info"), label="ll.acc")  # (3)
                total += info
            nxt = pb.load(p + NEXT, "pn", base="p", label="ll.ld.next")
            pb.op("p", ("pn",), label="ll.adv")  # (4)
            p = nxt

    out = pb.static_array(1)
    pb.store(out, total & 0x7FFF_FFFF, src="sum", label="ll.result")
    return pb.build(
        description="paper §2.2 motivating example",
        params={"nodes": N_NODES, "traversals": TRAVERSALS},
    )


def main() -> None:
    program = build_list_program()
    print(
        f"Traversing a {N_NODES}-node list {TRAVERSALS}x "
        f"({program.n_instructions} instructions)\n"
    )
    rows = []
    for config in ("BC", "HAC", "BCP", "CPP"):
        result = run_program(program, SimConfig(cache_config=config))
        rows.append(
            [
                config,
                result.cycles,
                result.l1.misses,
                result.l1.affiliated_hits,
                result.l1.prefetched_words,
                result.bus_words,
            ]
        )
    print(
        format_table(
            [
                "config",
                "cycles",
                "L1 misses",
                "affiliated hits",
                "words prefetched",
                "bus words",
            ],
            rows,
        )
    )
    print(
        "\nThe compressible fields (next/type/prev) of each node ride into "
        "the cache with the previous node's line, so under CPP the pointer "
        "chase at (4) hits in the affiliated location; the misses that "
        "remain are the large info loads at (3) — off the critical path, "
        "exactly the effect paper §2.2 describes."
    )


if __name__ == "__main__":
    main()
