"""The CPP cache: compression-enabled partial cache line prefetching.

Implements the design of paper §3:

* each frame holds a **primary** line plus, in slots freed by compression,
  words of its **affiliated** line ``primary XOR mask`` (mask = 0x1, i.e.
  next-line pairing);
* CPU reads probe the primary and affiliated locations; an affiliated hit
  costs one extra cycle; a **write** hit in the affiliated place first
  *promotes* the line to its primary place (§3.3);
* inter-level requests are **word-based**: an L2 hit returns whatever
  words of the requested line are present (a partial line) plus the
  compressible other-half words that ride along in the compressed slots;
* on an L2 miss, the demand line and its affiliated line are fetched
  together from memory in one line's worth of bus traffic
  (:meth:`MemoryPort.fetch_pair`) — prefetching without extra bandwidth;
* victims are **stashed** into their affiliated place on eviction when the
  neighbouring frame holds their pair as primary (clean partial copy;
  dirty data is written back first);
* a store that turns a compressible word incompressible reclaims the slot:
  the affiliated word there is evicted (primary priority, §3.3).

The model stores uncompressed values plus format flags; all space-legality
rules are enforced by :class:`CompressedFrame` and audited by
:meth:`CompressionCache.check_invariants`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.caches.compressed_frame import CompressedFrame
from repro.caches.interface import AccessResult, FetchResponse, LineSource, MemoryPort
from repro.caches.stats import CacheStats
from repro.compression.scheme import CompressionScheme, PAPER_SCHEME
from repro.compression.vectorized import compressible_mask


def scheme_compressed_bits(scheme) -> int:
    """Compressed-slot width of any scheme (duck-typed)."""
    return int(getattr(scheme, "compressed_bits", 16))
from repro.errors import CacheProtocolError, ConfigurationError
from repro.memory.bus import TrafficKind
from repro.memory.image import WORD_BYTES
from repro.obs import tracer as _trace
from repro.utils.intmath import is_pow2, log2i

__all__ = ["CPPPolicy", "CompressionCache"]


@dataclass(frozen=True)
class CPPPolicy:
    """Tunable policy knobs of the CPP design (defaults = the paper).

    Attributes
    ----------
    mask:
        Affiliated-line pairing mask applied to the line number. The paper
        uses ``0x1`` — consecutive lines, i.e. next-line prefetch.
    stash_victims:
        Keep a clean partial copy of evicted lines in their affiliated
        place when possible (§3.3).
    affiliated_extra_latency:
        Extra cycles for data served from the affiliated location ("the
        data item is returned in the next cycle").
    serve_partial:
        Word-based lower-level requests: a hit needs only the requested
        word. ``False`` is the ablation that restores line-based requests
        (any hole forces a full refetch from below).
    """

    mask: int = 0x1
    stash_victims: bool = True
    affiliated_extra_latency: int = 1
    serve_partial: bool = True

    def __post_init__(self) -> None:
        if self.mask <= 0:
            raise ConfigurationError("pairing mask must be positive")
        if self.affiliated_extra_latency < 0:
            raise ConfigurationError("extra latency must be non-negative")


class CompressionCache:
    """A CPP cache level (used for both L1 and L2)."""

    def __init__(
        self,
        name: str,
        *,
        size_bytes: int,
        assoc: int,
        line_bytes: int,
        hit_latency: int,
        downstream: LineSource,
        scheme: CompressionScheme = PAPER_SCHEME,
        policy: CPPPolicy | None = None,
        stats: CacheStats | None = None,
    ) -> None:
        if not (is_pow2(size_bytes) and is_pow2(line_bytes) and assoc >= 1):
            raise ConfigurationError("cache geometry must use power-of-two sizes")
        if size_bytes % (line_bytes * assoc):
            raise ConfigurationError(
                f"{name}: size {size_bytes} not divisible by line*assoc"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.line_words = line_bytes // WORD_BYTES
        self.n_sets = size_bytes // (line_bytes * assoc)
        if not is_pow2(self.n_sets):
            raise ConfigurationError(f"{name}: set count must be a power of two")
        self.line_shift = log2i(line_bytes)
        self.set_mask = self.n_sets - 1
        self.hit_latency = hit_latency
        self.downstream = downstream
        self.scheme = scheme
        self.policy = policy if policy is not None else CPPPolicy()
        if self.policy.mask > self.set_mask and self.n_sets > 1:
            # The affiliated location must differ in set index for the
            # pairing to add capacity; a mask above the index bits would
            # alias primary and affiliated locations to the same set only
            # via the tag, which the design supports, but mask=1 never
            # trips this. Guard against a zero-effect configuration.
            pass
        self.stats = stats if stats is not None else CacheStats(name=name)
        #: Can an affiliated word share a slot with a *compressed* primary
        #: word? Only when two compressed values fit in one 32-bit slot
        #: (true for the paper's 16-bit scheme; a wider scheme's affiliated
        #: words can ride only in absent-primary slots).
        self._pair_in_slot = 2 * scheme_compressed_bits(self.scheme) <= 32
        self._sets: list[list[CompressedFrame]] = [
            [CompressedFrame(self.line_words) for _ in range(assoc)]
            for _ in range(self.n_sets)
        ]
        self._word_offsets = (
            WORD_BYTES * np.arange(self.line_words, dtype=np.uint32)
        ).astype(np.uint32)

    # ---- geometry ------------------------------------------------------------

    def line_no(self, addr: int) -> int:
        """Line number (full address without the offset bits) of *addr*."""
        return addr >> self.line_shift

    def line_addr(self, line_no: int) -> int:
        """Base byte address of line *line_no*."""
        return line_no << self.line_shift

    def set_index(self, line_no: int) -> int:
        """Set a line maps to (low index bits of the line number)."""
        return line_no & self.set_mask

    def word_index(self, addr: int) -> int:
        """Word offset of *addr* inside its line."""
        return (addr >> 2) & (self.line_words - 1)

    def affiliated_line(self, line_no: int) -> int:
        """``<Tag, Set> XOR mask`` — the paper's pairing function."""
        return line_no ^ self.policy.mask

    def _comp_mask(self, line_no: int, values: np.ndarray) -> np.ndarray:
        """Per-word compressibility of *values* if stored at line *line_no*."""
        base = np.uint32(self.line_addr(line_no))
        return compressible_mask(values, base + self._word_offsets, self.scheme)

    def _slot_mask(self, frame: CompressedFrame) -> np.ndarray:
        """Slots able to hold an affiliated word under this scheme's width
        (absent primary always qualifies; compressed primary only when two
        compressed values fit in one slot)."""
        if self._pair_in_slot:
            return frame.affiliated_slot_mask()
        return ~frame.pa

    # ---- lookup -----------------------------------------------------------------

    def _find_primary(self, line_no: int, *, touch: bool = True) -> CompressedFrame | None:
        ways = self._sets[self.set_index(line_no)]
        for i, frame in enumerate(ways):
            if frame.valid and frame.line_no == line_no:
                if touch and i:
                    ways.insert(0, ways.pop(i))
                return frame
        return None

    def _find_affiliated(self, line_no: int, *, touch: bool = True) -> CompressedFrame | None:
        """Frame holding *line_no* as its affiliated line (if any AA word)."""
        holder_no = self.affiliated_line(line_no)
        ways = self._sets[self.set_index(holder_no)]
        for i, frame in enumerate(ways):
            if frame.valid and frame.line_no == holder_no and frame.aa.any():
                if touch and i:
                    ways.insert(0, ways.pop(i))
                return frame
        return None

    def probe_word(self, addr: int) -> str | None:
        """Where is this word right now? 'primary' / 'affiliated' / None.

        Pure inspection: no LRU update, no stats.
        """
        ln = self.line_no(addr)
        widx = self.word_index(addr)
        f = self._find_primary(ln, touch=False)
        if f is not None and f.pa[widx]:
            return "primary"
        g = self._find_affiliated(ln, touch=False)
        if g is not None and g.aa[widx]:
            return "affiliated"
        return None

    # ---- eviction / stash ----------------------------------------------------------

    def _evict_lru(self, set_idx: int) -> CompressedFrame:
        """Evict the LRU way: write back dirty words, stash a clean copy."""
        ways = self._sets[set_idx]
        victim = ways[-1]
        if victim.valid:
            if victim.dirty:
                self.stats.writebacks += 1
                self.downstream.write_back(
                    self.line_addr(victim.line_no),
                    victim.pvals.copy(),
                    victim.pa.copy(),
                )
            self._stash(victim)
            # The victim's own affiliated content is clean; it is dropped
            # together with the primary line (its AA flags die with the frame).
        victim.invalidate()
        return victim

    def _stash(self, victim: CompressedFrame) -> None:
        """Try to keep a clean partial copy of *victim* in its affiliated place."""
        if not self.policy.stash_victims:
            return
        target = self._find_primary(
            self.affiliated_line(victim.line_no), touch=False
        )
        if target is None:
            return
        comp = (
            victim.pa
            & self._comp_mask(victim.line_no, victim.pvals)
            & self._slot_mask(target)
        )
        stored = target.set_affiliated_words(victim.pvals, comp)
        if stored:
            self.stats.stashes += 1
            if _trace.ACTIVE:
                _trace.emit(
                    "stash",
                    level=self.name,
                    line=victim.line_no,
                    words=int(np.count_nonzero(comp)),
                )

    # ---- fill ------------------------------------------------------------------------

    def _fill(
        self, line_no: int, need_widx: int, kind: TrafficKind, now: int = 0
    ) -> tuple[CompressedFrame, int, str]:
        """Bring line *line_no* in as primary; returns (frame, latency, source)."""
        addr = self.line_addr(line_no)
        if isinstance(self.downstream, MemoryPort):
            # Bottom level: fetch the demand line and its affiliated line
            # together for one line's worth of bus traffic (§3.3).
            values, affil_values = self.downstream.fetch_pair(
                addr,
                self.line_words,
                self.line_addr(self.affiliated_line(line_no)),
                kind=kind,
            )
            full = np.ones(self.line_words, dtype=bool)
            resp = FetchResponse(
                values=values,
                avail=full,
                latency=self.downstream.memory.latency,
                served_by="memory",
                affil_values=affil_values,
                affil_avail=full.copy(),
            )
        else:
            resp = self.downstream.fetch(
                addr,
                self.line_words,
                need_widx,
                kind=kind,
                now=now,
                pair_addr=self.line_addr(self.affiliated_line(line_no)),
            )
            resp.validate(self.line_words, need_widx)
        frame = self._install_fill(line_no, resp)
        return frame, resp.latency, resp.served_by

    def _install_fill(self, line_no: int, resp: FetchResponse) -> CompressedFrame:
        """Install/merge a fill response as the primary copy of *line_no*."""
        frame = self._find_primary(line_no)
        if frame is not None:
            # Partial primary line present: fill only the holes — resident
            # words may be dirty and newer than the response.
            new = resp.avail & ~frame.pa
            if new.any():
                frame.pvals[new] = resp.values[new]
                frame.pa |= new
                frame.vcp[new] = self._comp_mask(line_no, frame.pvals)[new]
            # Space rule may now exclude previously legal affiliated words.
            illegal = frame.aa & frame.pa & ~frame.vcp
            if illegal.any():
                self.stats.dropped_affiliated_words += int(np.count_nonzero(illegal))
                frame.aa[illegal] = False
        else:
            set_idx = self.set_index(line_no)
            victim = self._evict_lru(set_idx)
            comp = self._comp_mask(line_no, resp.values) & resp.avail
            victim.install_primary(line_no, resp.values, resp.avail.copy(), comp)
            ways = self._sets[set_idx]
            ways.insert(0, ways.pop(ways.index(victim)))
            frame = victim
        if not resp.avail.all():
            self.stats.partial_fills += 1
            if _trace.ACTIVE:
                _trace.emit(
                    "partial_fill",
                    level=self.name,
                    line=line_no,
                    words_present=int(np.count_nonzero(resp.avail)),
                    words_total=self.line_words,
                )

        # Single-copy invariant: if a clean affiliated copy of this line
        # exists, merge any words the fill lacked, then clear it.
        holder = self._find_primary(self.affiliated_line(line_no), touch=False)
        if holder is not None and holder is not frame and holder.aa.any():
            extra = holder.aa & ~frame.pa
            if extra.any():
                frame.pvals[extra] = holder.avals[extra]
                frame.pa |= extra
                frame.vcp[extra] = True  # affiliated words are compressible
            holder.clear_affiliated()

        # Install the piggy-backed affiliated payload (the partial prefetch),
        # unless the affiliated line is already present as a primary line
        # ("the prefetched affiliated line is discarded if it is already in
        # the cache").
        aff_no = self.affiliated_line(line_no)
        if (
            resp.affil_values is not None
            and self._find_primary(aff_no, touch=False) is None
        ):
            legal = (
                resp.affil_avail
                & self._comp_mask(aff_no, resp.affil_values)
                & self._slot_mask(frame)
                & ~frame.aa
            )
            if legal.any():
                frame.avals[legal] = resp.affil_values[legal]
                frame.aa |= legal
                n_words = int(np.count_nonzero(legal))
                self.stats.prefetched_words += n_words
                if _trace.ACTIVE:
                    # The piggy-backed partial prefetch: affiliated words
                    # installed for free alongside the demand fill.
                    _trace.emit(
                        "prefetch", level=self.name, line=aff_no, words=n_words
                    )
        return frame

    # ---- promotion ---------------------------------------------------------------------

    def _promote(self, line_no: int, holder: CompressedFrame) -> CompressedFrame:
        """Move *line_no* from its affiliated place to its primary place.

        The moved copy is clean and partial (only the AA words exist).
        "The effect is the same as that of bringing a prefetched cache line
        into the cache from the prefetch buffer in a traditional cache."
        """
        if self._find_primary(line_no, touch=False) is not None:
            raise CacheProtocolError(
                f"{self.name}: promoting {line_no:#x} which is already primary"
            )
        self.stats.promotions += 1
        if _trace.ACTIVE:
            _trace.emit(
                "promotion",
                level=self.name,
                line=line_no,
                words=int(np.count_nonzero(holder.aa)),
            )
        values = holder.avals.copy()
        avail = holder.aa.copy()
        holder.clear_affiliated()
        set_idx = self.set_index(line_no)
        victim = self._evict_lru(set_idx)
        victim.install_primary(line_no, values, avail, avail.copy())
        ways = self._sets[set_idx]
        ways.insert(0, ways.pop(ways.index(victim)))
        return victim

    # ---- CPU-facing role -----------------------------------------------------------------

    def access(
        self, addr: int, *, write: bool, value: int | None = None, now: int = 0
    ) -> AccessResult:
        """One word-sized CPU access against the CPP L1."""
        ln = self.line_no(addr)
        widx = self.word_index(addr)

        frame = self._find_primary(ln)
        if frame is not None and frame.pa[widx]:
            self.stats.record_access(hit=True)
            if _trace.ACTIVE:
                _trace.emit(
                    "cache_access",
                    level=self.name,
                    addr=addr,
                    hit=True,
                    write=write,
                    place="primary",
                )
            if write:
                self._cpu_write(frame, widx, addr, value)
            return AccessResult(
                latency=self.hit_latency,
                served_by="l1",
                value=None if write else int(frame.pvals[widx]),
            )

        holder = self._find_affiliated(ln)
        if holder is not None and holder.aa[widx]:
            self.stats.record_access(hit=True)
            self.stats.affiliated_hits += 1
            if _trace.ACTIVE:
                _trace.emit(
                    "cache_access",
                    level=self.name,
                    addr=addr,
                    hit=True,
                    write=write,
                    place="affiliated",
                )
                _trace.emit(
                    "affiliated_hit", level=self.name, addr=addr, write=write
                )
            loaded = None if write else int(holder.avals[widx])
            if write:
                # A write hit in the affiliated line brings the line to its
                # primary place (§3.3), then writes there.
                promoted = self._promote(ln, holder)
                self._cpu_write(promoted, widx, addr, value)
            return AccessResult(
                latency=self.hit_latency + self.policy.affiliated_extra_latency,
                served_by="l1-affiliated",
                value=loaded,
            )

        # Miss (including a hole in an otherwise-present partial line).
        hole = frame is not None or holder is not None
        if hole:
            self.stats.hole_misses += 1
        self.stats.record_access(hit=False)
        if _trace.ACTIVE:
            _trace.emit(
                "cache_access",
                level=self.name,
                addr=addr,
                hit=False,
                write=write,
                hole=hole,
            )
        frame, latency, served = self._fill(ln, widx, TrafficKind.FILL, now)
        if not frame.pa[widx]:
            raise CacheProtocolError(f"{self.name}: fill did not deliver the word")
        if write:
            self._cpu_write(frame, widx, addr, value)
        return AccessResult(
            latency=latency,
            served_by=served,
            value=None if write else int(frame.pvals[widx]),
        )

    def _cpu_write(
        self, frame: CompressedFrame, widx: int, addr: int, value: int | None
    ) -> None:
        if value is None:
            raise CacheProtocolError("store access requires a value")
        if not frame.pa[widx]:
            raise CacheProtocolError("write to an absent primary word")
        frame.pvals[widx] = value
        compressible = self.scheme.is_compressible(value, addr)
        frame.vcp[widx] = compressible
        if not compressible and frame.aa[widx]:
            # Compressible -> incompressible transition: the primary word
            # needs the full slot; the affiliated word is evicted (primary
            # priority, §3.3). Affiliated words are always clean.
            frame.aa[widx] = False
            self.stats.dropped_affiliated_words += 1
        frame.dirty = True

    # ---- LineSource role (serving the level above) -------------------------------------------

    def _slice_hit(
        self, ln: int, offset: int, n_words: int, need_idx: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, str] | None:
        """Locate line *ln*; returns (values, avail, comp, extra_latency, tag)
        full-line views, or None on miss (per serve_partial policy)."""
        frame = self._find_primary(ln)
        if frame is not None:
            ok = (
                frame.pa[need_idx]
                if self.policy.serve_partial
                else frame.pa[offset : offset + n_words].all()
            )
            if ok:
                return frame.pvals, frame.pa, frame.vcp, 0, "l2"
        holder = self._find_affiliated(ln)
        if holder is not None:
            ok = (
                holder.aa[need_idx]
                if self.policy.serve_partial
                else holder.aa[offset : offset + n_words].all()
            )
            if ok:
                return (
                    holder.avals,
                    holder.aa,
                    holder.aa,  # affiliated words are compressible by invariant
                    self.policy.affiliated_extra_latency,
                    "l2-affiliated",
                )
        return None

    def fetch(
        self,
        addr: int,
        n_words: int,
        need_word: int,
        *,
        kind: TrafficKind = TrafficKind.FILL,
        now: int = 0,
        pair_addr: int | None = None,
    ) -> FetchResponse:
        """Serve a word-based sub-line request from the level above.

        A hit needs only the requested word present; the response carries
        the available words of the requested sub-line, plus — when the
        requester's affiliated line (*pair_addr*) lives in the same line
        here — its words wherever the compressed pairing lets them ride.
        """
        if addr % (n_words * WORD_BYTES):
            raise CacheProtocolError(f"unaligned fetch at {addr:#x}")
        if self.line_words % n_words:
            raise CacheProtocolError(
                f"{self.name}: cannot serve {n_words}-word fetch from "
                f"{self.line_words}-word lines"
            )
        ln = self.line_no(addr)
        offset = (addr >> 2) & (self.line_words - 1)
        need_idx = offset + need_word

        located = self._slice_hit(ln, offset, n_words, need_idx)
        if located is not None:
            self.stats.record_access(hit=True)
            values, avail, comp, extra, tag = located
            if tag == "l2-affiliated":
                self.stats.affiliated_hits += 1
                if _trace.ACTIVE:
                    _trace.emit(
                        "affiliated_hit", level=self.name, addr=addr, write=False
                    )
            if _trace.ACTIVE:
                _trace.emit(
                    "cache_access", level=self.name, addr=addr, hit=True
                )
            latency = self.hit_latency + extra
        else:
            if (
                self._find_primary(ln, touch=False) is not None
                or self._find_affiliated(ln, touch=False) is not None
            ):
                self.stats.hole_misses += 1
            self.stats.record_access(hit=False)
            if _trace.ACTIVE:
                _trace.emit(
                    "cache_access", level=self.name, addr=addr, hit=False
                )
            frame, fill_latency, _ = self._fill(ln, need_idx, kind, now)
            values, avail, comp = frame.pvals, frame.pa, frame.vcp
            latency = self.hit_latency + fill_latency
            tag = "memory"

        req = slice(offset, offset + n_words)
        out_values = values[req].copy()
        out_avail = avail[req].copy()

        affil_values = affil_avail = None
        if pair_addr is not None and self.line_no(pair_addr) == ln:
            # The requester's affiliated line lives in this same line (for
            # the paper's geometry — mask 0x1, double-width L2 lines — it
            # is the other half). Its compressible words ride in the freed
            # slots: an affiliated word travels iff it is compressible and
            # the corresponding requested word is compressed or absent.
            pair_off = (pair_addr >> 2) & (self.line_words - 1)
            other = slice(pair_off, pair_off + n_words)
            if self._pair_in_slot:
                slot_ok = ~avail[req] | comp[req]
            else:
                slot_ok = ~avail[req]
            ride = avail[other] & comp[other] & slot_ok
            affil_values = values[other].copy()
            affil_avail = ride.copy()
        return FetchResponse(
            values=out_values,
            avail=out_avail,
            latency=latency,
            served_by=tag,
            affil_values=affil_values,
            affil_avail=affil_avail,
        )

    def write_back(self, addr: int, values: np.ndarray, mask: np.ndarray) -> None:
        """Accept a dirty partial line evicted by the level above."""
        n_words = len(values)
        if addr % (n_words * WORD_BYTES):
            raise CacheProtocolError(f"unaligned writeback at {addr:#x}")
        ln = self.line_no(addr)
        offset = (addr >> 2) & (self.line_words - 1)
        frame = self._find_primary(ln)
        if frame is None:
            holder = self._find_affiliated(ln)
            if holder is not None:
                # Writes to an affiliated copy promote it first (§3.3).
                frame = self._promote(ln, holder)
            else:
                frame, _, _ = self._fill(ln, offset, TrafficKind.FILL)
        sel = np.flatnonzero(mask)
        idx = offset + sel
        frame.pvals[idx] = values[sel]
        frame.pa[idx] = True
        addrs = (
            np.uint32(self.line_addr(ln)) + self._word_offsets[idx]
        ).astype(np.uint32)
        comp = compressible_mask(frame.pvals[idx], addrs, self.scheme)
        frame.vcp[idx] = comp
        conflict = idx[frame.aa[idx] & ~comp]
        if conflict.size:
            self.stats.dropped_affiliated_words += int(conflict.size)
            frame.aa[conflict] = False
        frame.dirty = True

    # ---- verification -----------------------------------------------------------

    def check_invariants(self) -> None:
        """Audit all structural invariants; raises on violation.

        * frame-local space legality (:meth:`CompressedFrame.check_legal`);
        * ``VCP`` equals true compressibility for every present primary word;
        * every ``AA`` word is genuinely compressible at its own address;
        * single-copy: no line is simultaneously a primary line and an
          affiliated resident, and primary tags are unique.
        """
        primaries: set[int] = set()
        for ways in self._sets:
            for frame in ways:
                frame.check_legal()
                if not frame.valid:
                    continue
                if frame.line_no in primaries:
                    raise CacheProtocolError("duplicate primary line")
                primaries.add(frame.line_no)
                if frame.pa.any():
                    comp = self._comp_mask(frame.line_no, frame.pvals)
                    mism = frame.pa & (frame.vcp != comp)
                    if mism.any():
                        raise CacheProtocolError("VCP out of sync with values")
                if frame.aa.any():
                    aff_no = self.affiliated_line(frame.line_no)
                    acomp = self._comp_mask(aff_no, frame.avals)
                    if np.any(frame.aa & ~acomp):
                        raise CacheProtocolError("incompressible affiliated word")
        for ways in self._sets:
            for frame in ways:
                if frame.valid and frame.aa.any():
                    if self.affiliated_line(frame.line_no) in primaries:
                        raise CacheProtocolError(
                            "line present both as primary and affiliated"
                        )

    def flush(self) -> None:
        """Write back every dirty primary line and invalidate all frames.

        Affiliated content is clean by invariant and is simply dropped.
        """
        for ways in self._sets:
            for frame in ways:
                if frame.valid and frame.dirty:
                    self.stats.writebacks += 1
                    self.downstream.write_back(
                        self.line_addr(frame.line_no),
                        frame.pvals.copy(),
                        frame.pa.copy(),
                    )
                frame.invalidate()

    def contents(self) -> list[tuple[int, int, int, bool]]:
        """(line_no, n_primary_words, n_affiliated_words, dirty) per frame."""
        return [
            (f.line_no, f.n_primary_words, f.n_affiliated_words, f.dirty)
            for ways in self._sets
            for f in ways
            if f.valid
        ]
