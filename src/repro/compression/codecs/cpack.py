"""C-Pack (Chen et al.) dictionary + pattern matching as a Codec ("cpack").

Each word is matched against static patterns and against a small FIFO
dictionary built on the fly from the line's own words (dictionary size =
words per line, 16 for the paper's 64-byte geometry). Pattern codes and
sizes follow the published design (SNIPPETS.md snippet 1):

====== ====== ============================== ==========
code   name   meaning                        total bits
====== ====== ============================== ==========
``00``   zzzz all-zero word                   2
``1101`` zzzx zero word except low byte       12
``10``   mmmm full dictionary match           6
``1110`` mmxx dict match on high halfword     24
``1100`` mmmx dict match on high 3 bytes      16
``01``   xxxx no match (literal)              34
====== ====== ============================== ==========

Dictionary discipline (the part the differential harness pins down):
every word that is *not* an all-zero/zzzx pattern is pushed into the
FIFO after being coded — including literals (the dictionary-miss
fallback) — and the decompressor replays exactly the same pushes, so
both sides' dictionaries stay in lockstep. ``mmmm``/``mmmx``/``mmxx``
indices are 4 bits (dictionary size 16).

Dictionary matches are line-local and order-dependent, so C-Pack has no
pure per-word facet: :attr:`CPackCodec.word_scheme` is ``None``.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence

from repro.compression.codecs.protocol import (
    Codec,
    EncodedLine,
    LinePack,
    TagOverhead,
)
from repro.compression.timing import CodecTiming
from repro.utils.bitops import MASK32

__all__ = ["CPackCodec", "CPackPattern", "DICT_SIZE"]

#: FIFO dictionary entries — words per line in the paper's geometry.
DICT_SIZE = 16
INDEX_BITS = 4  # log2(DICT_SIZE)


class CPackPattern(enum.Enum):
    """Pattern kinds with their (code_bits, payload_bits)."""

    ZZZZ = (2, 0)  # all zero
    ZZZX = (4, 8)  # zero except low byte
    MMMM = (2, INDEX_BITS)  # full dictionary match
    MMMX = (4, INDEX_BITS + 8)  # match on high 3 bytes, literal low byte
    MMXX = (4, INDEX_BITS + 16)  # match on high halfword, literal low half
    XXXX = (2, 32)  # literal

    @property
    def code_bits(self) -> int:
        return self.value[0]

    @property
    def payload_bits(self) -> int:
        return self.value[1]

    @property
    def total_bits(self) -> int:
        return self.value[0] + self.value[1]


def _match(value: int, dictionary: list[int]):
    """Best dictionary pattern for *value*: full > 3-byte > halfword.

    Scans oldest-first and returns ``(pattern, index, literal_payload)``
    or ``None`` on a dictionary miss.
    """
    best: tuple[CPackPattern, int, int] | None = None
    best_rank = 0
    for i, entry in enumerate(dictionary):
        if entry == value:
            return CPackPattern.MMMM, i, 0
        if best_rank < 2 and entry >> 8 == value >> 8:
            best = (CPackPattern.MMMX, i, value & 0xFF)
            best_rank = 2
        elif best_rank < 1 and entry >> 16 == value >> 16:
            best = (CPackPattern.MMXX, i, value & 0xFFFF)
            best_rank = 1
    return best


class CPackCodec(Codec):
    """Per-line FIFO dictionary coding.

    Token stream: ``(pattern, index, payload)`` triples; *index* is 0
    for non-dictionary patterns.
    """

    name = "cpack"
    word_scheme = None  # dictionary-relative: no pure per-word facet

    def __init__(self, dict_size: int = DICT_SIZE) -> None:
        if dict_size < 1:
            raise ValueError("dict_size must be positive")
        self.dict_size = dict_size

    # ---- line coding ------------------------------------------------------

    def compress_line(
        self, values: Sequence[int], addrs: Sequence[int]
    ) -> EncodedLine:
        """Code each word against the on-the-fly FIFO dictionary."""
        dictionary: list[int] = []
        tokens: list[tuple[CPackPattern, int, int]] = []
        bits = 0
        for value in values:
            value &= MASK32
            if value == 0:
                token = (CPackPattern.ZZZZ, 0, 0)
            elif value & 0xFFFF_FF00 == 0:
                token = (CPackPattern.ZZZX, 0, value)
            else:
                hit = _match(value, dictionary)
                if hit is None:
                    token = (CPackPattern.XXXX, 0, value)  # dict-miss fallback
                else:
                    pattern, index, payload = hit
                    token = (pattern, index, payload)
                # Push every non-z word — misses included — FIFO-evicting
                # the oldest once full; the decoder replays this exactly.
                if len(dictionary) >= self.dict_size:
                    dictionary.pop(0)
                dictionary.append(value)
            tokens.append(token)
            bits += token[0].total_bits
        return EncodedLine(
            codec=self.name,
            n_words=len(tokens),
            tokens=tuple(tokens),
            bits=bits,
        )

    def decompress_line(
        self, encoded: EncodedLine, addrs: Sequence[int]
    ) -> list[int]:
        """Replay the encoder's dictionary pushes in lockstep while decoding."""
        dictionary: list[int] = []
        out: list[int] = []
        for pattern, index, payload in encoded.tokens:
            if pattern is CPackPattern.ZZZZ:
                out.append(0)
                continue
            if pattern is CPackPattern.ZZZX:
                value = payload
            elif pattern is CPackPattern.XXXX:
                value = payload
            elif pattern is CPackPattern.MMMM:
                value = dictionary[index]
            elif pattern is CPackPattern.MMMX:
                value = (dictionary[index] & ~0xFF & MASK32) | payload
            else:  # MMXX
                value = (dictionary[index] & ~0xFFFF & MASK32) | payload
            if pattern is not CPackPattern.ZZZX:
                if len(dictionary) >= self.dict_size:
                    dictionary.pop(0)
                dictionary.append(value)
            out.append(value)
        return out

    def pack_line(
        self, values: Sequence[int], addrs: Sequence[int]
    ) -> LinePack:
        """Bit accounting: code+index bits are metadata, payloads are data."""
        encoded = self.compress_line(values, addrs)
        n_compressed = 0
        data_bits = 0
        meta_bits = 0
        for pattern, _index, _payload in encoded.tokens:
            if pattern is not CPackPattern.XXXX:
                n_compressed += 1
            # Payloads are data; codes and dictionary indices are metadata.
            if pattern in (
                CPackPattern.MMMM,
                CPackPattern.MMMX,
                CPackPattern.MMXX,
            ):
                meta_bits += pattern.code_bits + INDEX_BITS
                data_bits += pattern.payload_bits - INDEX_BITS
            else:
                meta_bits += pattern.code_bits
                data_bits += pattern.payload_bits
        return LinePack(
            n_words=encoded.n_words,
            n_compressed=n_compressed,
            data_bits=data_bits,
            meta_bits=meta_bits,
        )

    # ---- cost models ------------------------------------------------------

    @property
    def timing(self) -> CodecTiming:
        """Published C-Pack pipeline at 2 words/cycle over a 16-word
        line: 8-cycle compression, 9-cycle decompression (the serial
        dictionary replay bounds the read path)."""
        return CodecTiming(compress_cycles=8, decompress_cycles=9)

    def tag_overhead(self) -> TagOverhead:
        """A compressed-size field per line (6 bits addresses 64 four-
        byte segments) so the controller can locate lines in the
        segmented data array; the dictionary itself is rebuilt from the
        stream and costs no storage."""
        return TagOverhead(per_word_bits=0.0, per_line_bits=6.0)
