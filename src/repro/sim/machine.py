"""The Machine: core + hierarchy + memory, run over a program trace.

Every run builds a fresh memory image, hierarchy and core, so runs are
independent and deterministic: the same (program, config) pair always
produces the identical cycle count — the property the Figure 14
methodology depends on.
"""

from __future__ import annotations

from repro.caches.hierarchy import build_hierarchy
from repro.cpu.pipeline import OutOfOrderCore
from repro.memory.main_memory import MainMemory
from repro.obs.metrics import REGISTRY
from repro.sim.config import SimConfig
from repro.sim.results import SimResult
from repro.workloads.base import Program

__all__ = ["Machine"]


class Machine:
    """A configured machine ready to execute programs."""

    def __init__(self, config: SimConfig | str = "BC", *, verify_loads: bool = False):
        if isinstance(config, str):
            config = SimConfig(cache_config=config)
        self.config = config
        self.verify_loads = verify_loads

    def run(self, program: Program) -> SimResult:
        """Execute *program* to completion on a fresh machine instance."""
        memory = MainMemory(latency=self.config.effective_memory_latency())
        hierarchy = build_hierarchy(
            self.config.cache_config,
            memory,
            self.config.effective_hierarchy(),
        )
        core = OutOfOrderCore(
            hierarchy, self.config.core, verify_loads=self.verify_loads
        )
        outcome = core.run(program.trace)
        bus = memory.bus
        # Publish everything measured into the one queryable namespace.
        # Once per run (not per event), so it costs nothing against the
        # millions of simulated cycles it summarizes.
        labels = {"workload": program.name, "config": self.config.name}
        hierarchy.l1_stats.publish(REGISTRY, level="L1", **labels)
        hierarchy.l2_stats.publish(REGISTRY, level="L2", **labels)
        bus.publish(REGISTRY, **labels)
        outcome.metrics.publish(REGISTRY, **labels)
        REGISTRY.inc("sim.runs", 1, **labels)
        return SimResult(
            workload=program.name,
            config=self.config.name,
            cycles=outcome.cycles,
            instructions=len(program.trace),
            l1=hierarchy.l1_stats,
            l2=hierarchy.l2_stats,
            bus_words=bus.total_words,
            bus_fill_words=bus.fill_words,
            bus_prefetch_words=bus.prefetch_words,
            bus_writeback_words=bus.writeback_words,
            metrics=outcome.metrics,
            branch_mispredicts=outcome.branch_mispredicts,
            params=dict(program.params),
        )
