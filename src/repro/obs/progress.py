"""Uniform progress reporting for long runs.

One narrow funnel replaces the ad-hoc ``print(...)`` progress lines that
used to live in the runner: serial and parallel matrix sweeps, the
prewarmer and the experiment CLI all report through :func:`report`, so
output is consistently prefixed, lands on stderr (leaving stdout for
figure tables), and can be redirected or silenced in one place
(:func:`set_sink` — tests capture it, services can forward it to a real
logger).
"""

from __future__ import annotations

import sys
from collections.abc import Callable

__all__ = ["report", "set_sink", "silence"]

_PREFIX = "[repro]"

_sink: Callable[[str], None] | None = None


def _default_sink(message: str) -> None:
    print(f"{_PREFIX} {message}", file=sys.stderr, flush=True)


def set_sink(sink: Callable[[str], None] | None) -> None:
    """Route progress lines to *sink* (None restores stderr printing)."""
    global _sink
    _sink = sink


def silence() -> None:
    """Discard all progress output (batch jobs, tests)."""
    set_sink(lambda message: None)


def report(message: str) -> None:
    """Emit one progress line through the configured sink."""
    (_sink or _default_sink)(message)
