"""Behavioural tests for the CPP compression cache (paper §3).

A single-level CompressionCache over a MemoryPort isolates the design's
mechanics; the two-level protocol is covered in test_hierarchy and the
integration suite.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.compression_cache import CompressionCache, CPPPolicy
from repro.caches.interface import MemoryPort
from repro.errors import CacheProtocolError, ConfigurationError
from repro.memory.image import MemoryImage
from repro.memory.main_memory import MainMemory

BASE = 0x1000_0000
LINE = 64  # 16 words
BIG = 0xDEAD_BEEF  # incompressible at heap addresses
SMALL = 42


def make_cpp(mem=None, *, size=512, assoc=1, policy=None):
    mem = mem or MainMemory(MemoryImage(), latency=100)
    cache = CompressionCache(
        "C",
        size_bytes=size,
        assoc=assoc,
        line_bytes=LINE,
        hit_latency=1,
        downstream=MemoryPort(mem, writeback_compressed=True),
        policy=policy or CPPPolicy(),
    )
    return cache, mem


def fill_memory(mem, addr, n_words, value_fn):
    for i in range(n_words):
        mem.poke_word(addr + 4 * i, value_fn(i))


class TestAffiliatedMapping:
    def test_mask_pairs_consecutive_lines(self):
        cache, _ = make_cpp()
        ln = cache.line_no(BASE)
        assert cache.affiliated_line(ln) == ln + 1
        assert cache.affiliated_line(ln + 1) == ln
        assert cache.affiliated_line(cache.affiliated_line(ln)) == ln

    def test_custom_mask(self):
        cache, _ = make_cpp(policy=CPPPolicy(mask=2))
        ln = cache.line_no(BASE)
        assert cache.affiliated_line(ln) == ln ^ 2

    def test_invalid_mask(self):
        with pytest.raises(ConfigurationError):
            CPPPolicy(mask=0)


class TestPrefetchViaCompression:
    def test_fill_prefetches_compressible_affiliated_words(self):
        cache, mem = make_cpp()
        fill_memory(mem, BASE, 32, lambda i: SMALL + i)  # two lines, all small
        cache.access(BASE, write=False)
        assert cache.probe_word(BASE) == "primary"
        assert cache.probe_word(BASE + LINE) == "affiliated"
        assert cache.stats.prefetched_words == 16
        # One line's worth of bus traffic brought both lines (§3.3).
        assert mem.bus.fill_words == 16

    def test_affiliated_hit_latency(self):
        cache, mem = make_cpp()
        fill_memory(mem, BASE, 32, lambda i: SMALL)
        cache.access(BASE, write=False)
        result = cache.access(BASE + LINE, write=False)
        assert result.served_by == "l1-affiliated"
        assert result.latency == 2  # +1 cycle (paper: "the next cycle")
        assert cache.stats.affiliated_hits == 1

    def test_incompressible_words_not_prefetched(self):
        cache, mem = make_cpp()
        fill_memory(mem, BASE, 16, lambda i: SMALL)
        fill_memory(mem, BASE + LINE, 16, lambda i: BIG + i)  # affiliated: junk
        cache.access(BASE, write=False)
        assert cache.stats.prefetched_words == 0
        assert cache.access(BASE + LINE, write=False).served_by == "memory"

    def test_incompressible_primary_blocks_slot(self):
        """Affiliated word i needs primary word i compressed or absent."""
        cache, mem = make_cpp()
        fill_memory(mem, BASE, 16, lambda i: BIG if i < 8 else SMALL)
        fill_memory(mem, BASE + LINE, 16, lambda i: SMALL)
        cache.access(BASE, write=False)
        assert cache.stats.prefetched_words == 8  # only the free slots
        assert cache.probe_word(BASE + LINE + 4 * 0) is None
        assert cache.probe_word(BASE + LINE + 4 * 8) == "affiliated"

    def test_partial_affiliated_hit_then_hole_miss(self):
        cache, mem = make_cpp()
        fill_memory(mem, BASE, 16, lambda i: BIG if i == 0 else SMALL)
        fill_memory(mem, BASE + LINE, 16, lambda i: SMALL)
        cache.access(BASE, write=False)
        # Word 0 of the affiliated line could not ride along.
        assert cache.access(BASE + LINE + 4, write=False).served_by == "l1-affiliated"
        miss = cache.access(BASE + LINE, write=False)
        assert miss.served_by == "memory"
        assert cache.stats.hole_misses >= 1

    def test_no_affiliated_when_already_primary(self):
        """'The prefetched affiliated line is discarded if it is already
        in the cache (it must be in its primary place).'"""
        cache, mem = make_cpp(size=1024)
        fill_memory(mem, BASE, 16, lambda i: BIG + i)  # line0: incompressible
        fill_memory(mem, BASE + LINE, 16, lambda i: SMALL)  # line1: small
        cache.access(BASE + LINE, write=False)  # line1 primary; line0 can't ride
        assert cache.probe_word(BASE) is None
        cache.access(BASE, write=False)  # line0 fill; its affiliated (line1)
        # would be prefetchable, but line1 is already primary -> discarded.
        f = cache._find_primary(cache.line_no(BASE), touch=False)
        assert f is not None and not f.aa
        assert cache.stats.prefetched_words == 0
        cache.check_invariants()


class TestSingleCopyInvariant:
    def test_fill_clears_affiliated_copy(self):
        cache, mem = make_cpp()
        fill_memory(mem, BASE, 32, lambda i: SMALL)
        cache.access(BASE, write=False)  # line1 affiliated
        cache.access(BASE + LINE, write=False)  # affiliated hit
        # Write something incompressible to line1 word 3 -> promotion.
        cache.access(BASE + LINE + 12, write=True, value=BIG)
        cache.check_invariants()
        assert cache.probe_word(BASE + LINE) == "primary"

    def test_invariants_hold_after_mixed_ops(self):
        cache, mem = make_cpp()
        fill_memory(mem, BASE, 512, lambda i: SMALL + (i % 50))
        rng = np.random.default_rng(7)
        for _ in range(300):
            offset = int(rng.integers(0, 512)) * 4
            if rng.random() < 0.3:
                cache.access(BASE + offset, write=True, value=int(rng.integers(0, 1 << 32)))
            else:
                cache.access(BASE + offset, write=False)
        cache.check_invariants()


class TestWriteBehaviour:
    def test_write_hit_in_affiliated_promotes(self):
        cache, mem = make_cpp()
        fill_memory(mem, BASE, 32, lambda i: SMALL)
        cache.access(BASE, write=False)
        assert cache.probe_word(BASE + LINE) == "affiliated"
        cache.access(BASE + LINE, write=True, value=SMALL + 1)
        assert cache.stats.promotions == 1
        assert cache.probe_word(BASE + LINE) == "primary"
        assert cache.access(BASE + LINE, write=False).value == SMALL + 1

    def test_compressible_to_incompressible_evicts_affiliated_word(self):
        """§3.3: priority to the primary line's words."""
        cache, mem = make_cpp()
        fill_memory(mem, BASE, 32, lambda i: SMALL)
        cache.access(BASE, write=False)
        assert cache.probe_word(BASE + LINE) == "affiliated"
        cache.access(BASE, write=True, value=BIG)  # word 0 now incompressible
        assert cache.stats.dropped_affiliated_words == 1
        assert cache.probe_word(BASE + LINE) is None  # word 0 of affiliated gone
        assert cache.probe_word(BASE + LINE + 4) == "affiliated"  # others remain

    def test_incompressible_to_compressible_updates_vcp(self):
        cache, mem = make_cpp()
        fill_memory(mem, BASE, 16, lambda i: BIG)
        cache.access(BASE, write=False)
        cache.access(BASE, write=True, value=SMALL)
        f = cache._find_primary(cache.line_no(BASE), touch=False)
        assert f.vcp & 1
        cache.check_invariants()

    def test_write_miss_allocates(self):
        cache, mem = make_cpp()
        cache.access(BASE, write=True, value=5)
        assert cache.access(BASE, write=False).value == 5
        assert cache.stats.misses == 1


class TestVictimStash:
    def test_clean_victim_stashed_into_affiliated_place(self):
        """§3.3: before discarding a replaced line, put a clean partial
        copy into its affiliated place when possible."""
        cache, mem = make_cpp()  # 8 sets
        fill_memory(mem, BASE, 32, lambda i: SMALL)
        n_sets = cache.n_sets
        cache.access(BASE + LINE, write=False)  # line1 primary, AA of line0
        # Promote line0 to its primary place via a write hit in the
        # affiliated location; its frame (set 0) is line1's stash target.
        cache.access(BASE, write=True, value=SMALL)
        assert cache.probe_word(BASE) == "primary"
        # Evict line1 with a conflicting line mapping to its set:
        cache.access(BASE + LINE + n_sets * LINE, write=False)
        assert cache.stats.stashes == 1
        assert cache.probe_word(BASE + LINE) == "affiliated"
        cache.check_invariants()

    def test_dirty_victim_written_back_and_stashed_clean(self):
        cache, mem = make_cpp()
        n_sets = cache.n_sets
        fill_memory(mem, BASE, 32, lambda i: SMALL)
        cache.access(BASE, write=False)
        cache.access(BASE + LINE, write=True, value=77)  # promote+dirty line1
        cache.access(BASE, write=False)  # ensure line0 still primary
        cache.access(BASE + LINE + n_sets * LINE, write=False)  # evict dirty line1
        assert mem.peek_word(BASE + LINE) == 77  # written back
        assert cache.probe_word(BASE + LINE) == "affiliated"  # clean copy kept
        result = cache.access(BASE + LINE, write=False)
        assert result.value == 77
        cache.check_invariants()

    def test_stash_disabled_by_policy(self):
        cache, mem = make_cpp(policy=CPPPolicy(stash_victims=False))
        n_sets = cache.n_sets
        fill_memory(mem, BASE, 32, lambda i: SMALL)
        cache.access(BASE, write=False)
        cache.access(BASE + LINE, write=False)
        cache.access(BASE + LINE + n_sets * LINE, write=False)
        assert cache.stats.stashes == 0


class TestLineSourceRole:
    """CPP L2 serving word-based requests (paper: L1/L2 interface)."""

    def make_l2(self, mem):
        return CompressionCache(
            "L2",
            size_bytes=2048,
            assoc=2,
            line_bytes=128,
            hit_latency=10,
            downstream=MemoryPort(mem, writeback_compressed=True),
        )

    def test_fetch_returns_half_line_with_affiliated_payload(self):
        mem = MainMemory(MemoryImage(), latency=100)
        fill_memory(mem, BASE, 32, lambda i: SMALL + i)
        l2 = self.make_l2(mem)
        resp = l2.fetch(BASE, 16, 0, pair_addr=BASE + 64)
        assert resp.avail == (1 << 16) - 1
        assert resp.affil_values is not None
        assert resp.affil_avail == (1 << 16) - 1  # other half fully compressible
        assert list(resp.affil_values) == [SMALL + 16 + i for i in range(16)]

    def test_affiliated_payload_respects_pair_rule(self):
        mem = MainMemory(MemoryImage(), latency=100)
        fill_memory(mem, BASE, 16, lambda i: BIG if i < 4 else SMALL)
        fill_memory(mem, BASE + 64, 16, lambda i: SMALL)
        l2 = self.make_l2(mem)
        resp = l2.fetch(BASE, 16, 0, pair_addr=BASE + 64)
        # Affiliated words ride only where the requested word compresses.
        assert resp.affil_avail & 0xF == 0
        assert resp.affil_avail >> 4 == (1 << 12) - 1

    def test_no_payload_without_pair_request(self):
        mem = MainMemory(MemoryImage(), latency=100)
        fill_memory(mem, BASE, 32, lambda i: SMALL)
        l2 = self.make_l2(mem)
        resp = l2.fetch(BASE, 16, 0)
        assert resp.affil_values is None

    def test_no_payload_when_pair_outside_line(self):
        """A requester pairing across this level's line boundary (e.g. an
        alternative mask) gets no piggy-back — the slots cannot carry it."""
        mem = MainMemory(MemoryImage(), latency=100)
        fill_memory(mem, BASE, 64, lambda i: SMALL)
        l2 = self.make_l2(mem)
        resp = l2.fetch(BASE, 16, 0, pair_addr=BASE + 128)  # next L2 line
        assert resp.affil_values is None

    def test_partial_hit_returns_partial_line(self):
        """'A cache hit at the L2 cache returns a partial cache line.'"""
        mem = MainMemory(MemoryImage(), latency=100)
        fill_memory(mem, BASE, 64, lambda i: SMALL)
        fill_memory(mem, BASE + 128, 32, lambda i: BIG if (i % 2) else SMALL)
        l2 = self.make_l2(mem)
        l2.fetch(BASE, 16, 0)  # installs L2 line0 + AA of L2 line1 (even words)
        resp = l2.fetch(BASE + 128, 16, 0, now=0)
        assert resp.served_by == "l2-affiliated"
        assert resp.avail & 1
        assert resp.avail != (1 << 16) - 1  # partial!
        assert resp.latency == 11  # hit + affiliated extra

    def test_miss_when_requested_word_absent(self):
        mem = MainMemory(MemoryImage(), latency=100)
        fill_memory(mem, BASE, 64, lambda i: SMALL)
        fill_memory(mem, BASE + 128, 32, lambda i: BIG if (i % 2) else SMALL)
        l2 = self.make_l2(mem)
        l2.fetch(BASE, 16, 0)
        resp = l2.fetch(BASE + 128, 16, 1)  # word 1 is incompressible/absent
        assert resp.latency == 110  # full miss to memory
        assert resp.avail == (1 << 16) - 1

    def test_force_full_line_policy(self):
        mem = MainMemory(MemoryImage(), latency=100)
        fill_memory(mem, BASE, 64, lambda i: SMALL)
        fill_memory(mem, BASE + 128, 32, lambda i: BIG if (i % 2) else SMALL)
        l2 = CompressionCache(
            "L2", size_bytes=2048, assoc=2, line_bytes=128, hit_latency=10,
            downstream=MemoryPort(mem),
            policy=CPPPolicy(serve_partial=False),
        )
        l2.fetch(BASE, 16, 0)
        resp = l2.fetch(BASE + 128, 16, 0)  # word 0 present but line partial
        assert resp.latency == 110  # ablation: hole forces a refetch

    def test_writeback_into_affiliated_promotes(self):
        mem = MainMemory(MemoryImage(), latency=100)
        fill_memory(mem, BASE, 64, lambda i: SMALL)
        l2 = self.make_l2(mem)
        l2.fetch(BASE, 16, 0)  # L2 line0 primary, AA of line1 (128B)
        assert l2._find_affiliated(l2.line_no(BASE + 128), touch=False) is not None
        values = np.full(16, BIG, dtype=np.uint32)
        l2.write_back(BASE + 128, values, np.ones(16, dtype=bool))
        assert l2.stats.promotions == 1
        f = l2._find_primary(l2.line_no(BASE + 128), touch=False)
        assert f is not None and f.dirty
        l2.check_invariants()

    def test_writeback_write_allocates(self):
        mem = MainMemory(MemoryImage(), latency=100)
        l2 = self.make_l2(mem)
        values = np.full(16, 9, dtype=np.uint32)
        l2.write_back(BASE, values, np.ones(16, dtype=bool))
        resp = l2.fetch(BASE, 16, 0)
        assert resp.values[0] == 9


class TestEvictionWriteback:
    def test_partial_dirty_writeback_masks_holes(self):
        """A promoted (partial) line that gets dirty writes back only its
        present words; memory keeps the old values in the holes."""
        cache, mem = make_cpp()
        n_sets = cache.n_sets
        fill_memory(mem, BASE, 16, lambda i: BIG if i == 5 else SMALL)
        fill_memory(mem, BASE + LINE, 16, lambda i: SMALL)
        # line0 fill: affiliated line1 words ride except slot 5.
        cache.access(BASE, write=False)
        # Promote line1 via a write (word 0 present in AA):
        cache.access(BASE + LINE, write=True, value=SMALL + 7)
        mem.poke_word(BASE + LINE + 20, 0x5A17)  # hole word's memory value
        # Evict dirty partial line1:
        cache.access(BASE + LINE + n_sets * LINE, write=False)
        assert mem.peek_word(BASE + LINE) == SMALL + 7
        assert mem.peek_word(BASE + LINE + 20) == 0x5A17  # hole untouched

    def test_store_to_hole_refetches(self):
        cache, mem = make_cpp()
        fill_memory(mem, BASE, 16, lambda i: BIG if i == 5 else SMALL)
        fill_memory(mem, BASE + LINE, 16, lambda i: SMALL)
        cache.access(BASE, write=False)
        cache.access(BASE + LINE, write=True, value=1)  # promote partial line1
        # Store to the hole (word 5): must fetch before writing.
        misses_before = cache.stats.misses
        cache.access(BASE + LINE + 20, write=True, value=2)
        assert cache.stats.misses == misses_before + 1
        assert cache.access(BASE + LINE + 20, write=False).value == 2


class TestRandomizedAgainstReference:
    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(0, 3))
    @settings(max_examples=15, deadline=None)
    def test_read_write_stream_matches_flat_memory(self, seed, assoc_sel):
        """Random loads/stores through the CPP cache must observe exactly
        the values a flat memory would, and every intermediate state must
        satisfy the structural invariants."""
        rng = np.random.default_rng(seed)
        assoc = [1, 1, 2, 4][assoc_sel]
        mem = MainMemory(MemoryImage(), latency=100)
        n_words = 256
        for i in range(n_words):
            kind = int(rng.integers(0, 3))
            value = [int(rng.integers(0, 16000)),
                     (BASE & ~0x7FFF) | int(rng.integers(0, 0x8000)) & ~3,
                     int(rng.integers(1 << 28, 1 << 32))][kind]
            mem.poke_word(BASE + 4 * i, value)
        cache, _ = make_cpp(mem, size=512, assoc=assoc)
        reference = {i: mem.peek_word(BASE + 4 * i) for i in range(n_words)}
        for step in range(400):
            i = int(rng.integers(0, n_words))
            addr = BASE + 4 * i
            if rng.random() < 0.35:
                value = int(rng.integers(0, 1 << 32))
                cache.access(addr, write=True, value=value)
                reference[i] = value
            else:
                assert cache.access(addr, write=False).value == reference[i]
            if step % 50 == 0:
                cache.check_invariants()
        cache.check_invariants()
        # Flush and compare the full footprint against the reference.
        cache.flush()
        for i, expected in reference.items():
            assert mem.peek_word(BASE + 4 * i) == expected
