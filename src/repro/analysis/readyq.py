"""Ready-queue length during outstanding-miss cycles (paper Figure 15).

"For the benchmarks with significant importance reduction, we further
study the average ready queue length in the processor, when there is at
least one outstanding cache miss" — a longer ready queue under a miss
means the pipeline still has independent work, i.e. the remaining misses
matter less. The paper reports CPP's uplift over HAC of up to 78 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError

__all__ = ["ReadyQueueComparison", "ready_queue_uplift"]


@dataclass(frozen=True)
class ReadyQueueComparison:
    """Ready-queue-in-miss-cycles comparison between two configurations."""

    workload: str
    baseline_config: str
    test_config: str
    baseline_length: float
    test_length: float

    @property
    def uplift(self) -> float:
        """Relative increase of the test config over the baseline."""
        if self.baseline_length <= 0:
            return 0.0
        return self.test_length / self.baseline_length - 1.0

    @property
    def uplift_percent(self) -> float:
        return 100.0 * self.uplift


def ready_queue_uplift(
    workload: str,
    *,
    baseline_config: str = "HAC",
    test_config: str = "CPP",
    seed: int = 1,
    scale: float = 1.0,
) -> ReadyQueueComparison:
    """Measure the Figure 15 quantity for one workload."""
    from repro.sim.runner import run_workload

    if baseline_config.upper() == test_config.upper():
        raise ExperimentError("baseline and test configurations must differ")
    base = run_workload(workload, baseline_config, seed=seed, scale=scale)
    test = run_workload(workload, test_config, seed=seed, scale=scale)
    return ReadyQueueComparison(
        workload=workload,
        baseline_config=baseline_config.upper(),
        test_config=test_config.upper(),
        baseline_length=base.ready_queue_in_miss_cycles,
        test_length=test.ready_queue_in_miss_cycles,
    )
