"""Unit tests for simulator configuration objects."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.config import CONFIG_NAMES, MEMORY_LATENCY, SIM_CONFIGS, SimConfig


class TestSimConfig:
    def test_five_named_configs(self):
        assert set(CONFIG_NAMES) == {"BC", "BCC", "HAC", "BCP", "CPP"}
        for name, cfg in SIM_CONFIGS.items():
            assert cfg.cache_config == name

    def test_unknown_cache_config(self):
        with pytest.raises(ConfigurationError):
            SimConfig(cache_config="LRU9000")

    def test_memory_latency_default(self):
        assert SimConfig().memory_latency == MEMORY_LATENCY == 100

    def test_miss_scale_halves_latencies(self):
        cfg = SimConfig(cache_config="CPP").with_miss_scale(0.5)
        assert cfg.effective_memory_latency() == 50
        assert cfg.effective_hierarchy().l2_latency == 5

    def test_miss_scale_validation(self):
        with pytest.raises(ConfigurationError):
            SimConfig(miss_scale=0)

    def test_name_includes_scale(self):
        assert SimConfig(cache_config="BC").name == "BC"
        assert SimConfig(cache_config="BC", miss_scale=0.5).name == "BC@x0.5"

    def test_l1_hit_latency_unscaled(self):
        cfg = SimConfig().with_miss_scale(0.5)
        assert cfg.effective_hierarchy().l1_latency == 1
