"""Worker pool supervision: heal, reclaim, drain — plus worker units.

The process tests run real worker subprocesses against an empty store
(idle workers poll cheaply); the lease-handover tests drive the pool's
reclaim logic directly, no processes needed.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.serve.supervisor import WorkerPool
from repro.serve.worker import WorkerHeartbeat, run_worker
from repro.store.cas import ResultStore
from repro.store.queue import CampaignQueue


def _wait(predicate, timeout: float = 30.0, poll: float = 0.05, what: str = ""):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(poll)
    pytest.fail(f"timed out waiting for {what or predicate}")


def _pool(store_dir, **kwargs) -> WorkerPool:
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("lease_ttl", 10.0)
    return WorkerPool(store_dir, **kwargs)


def _wait_heartbeats(pool: WorkerPool, n: int) -> None:
    """Block until *n* workers wrote their first liveness beat — before
    that, a worker is still importing and a test signal would land on
    the default (lethal) disposition."""

    def beating() -> bool:
        statuses = pool.status()["workers"]
        return sum(1 for w in statuses if w["heartbeat_age"] is not None) >= n

    _wait(beating, what=f"{n} worker heartbeat(s)")


def test_killed_worker_is_restarted_with_fresh_incarnation(tmp_path):
    pool = _pool(tmp_path / "store")
    pool.start()
    try:
        _wait(lambda: pool.pids()[0] is not None, what="first spawn")
        first_pid = pool.pids()[0]
        first_id = pool.status()["workers"][0]["worker"]
        assert first_id.endswith("-w0.0")

        os.kill(first_pid, signal.SIGKILL)

        def healed():
            pool.poll()
            pid = pool.pids()[0]
            return pid is not None and pid != first_pid

        _wait(healed, what="respawn after SIGKILL")
        status = pool.status()["workers"][0]
        assert status["restarts"] == 1
        # A fresh incarnation id: lease reclaim can never confuse the
        # dead incarnation with its replacement.
        assert status["worker"].endswith("-w0.1")
        assert status["worker"] != first_id
    finally:
        pool.drain(timeout=15)


def test_dead_workers_leases_expire_immediately(tmp_path):
    """Supervisor hands a dead incarnation's leases straight back."""
    store = ResultStore(tmp_path / "store")
    queue = CampaignQueue(store.root / "queue", "camp", lease_ttl=300.0)
    queue.enqueue(("cell", 1), ("task", 1))
    queue.enqueue(("cell", 2), ("task", 2))
    pool = _pool(store.root, lease_ttl=300.0)
    dead = "serve-123-w0.0"
    assert queue.claim(dead) is not None
    assert queue.claim(dead) is not None
    assert queue.claim("other") is None  # both leased, TTL 5 minutes out

    assert pool._expire_leases(dead) == 2
    # No TTL wait: the next claimer reclaims with attempt counts intact.
    job = queue.claim("other")
    assert job is not None and job.attempt == 2


def test_expire_leases_spares_other_workers(tmp_path):
    store = ResultStore(tmp_path / "store")
    queue = CampaignQueue(store.root / "queue", "camp", lease_ttl=300.0)
    queue.enqueue(("cell", 1), ("task", 1))
    pool = _pool(store.root, lease_ttl=300.0)
    assert queue.claim("serve-123-w1.0") is not None
    # The dead incarnation held nothing; the live worker's lease stays.
    assert pool._expire_leases("serve-123-w0.0") == 0
    assert queue.claim("interloper") is None


def test_drain_is_graceful_exit_zero(tmp_path):
    store_dir = tmp_path / "store"
    pool = _pool(store_dir, workers=2)
    pool.start()
    try:
        _wait_heartbeats(pool, 2)
        pids = dict(pool.pids())
        codes = pool.drain(timeout=20)
        assert codes == {0: 0, 1: 0}, codes
        # Every worker flushed a final "stopped" heartbeat + telemetry.
        root = ResultStore(store_dir).root
        beats = list((root / "serve" / "workers").glob("*.json"))
        assert len(beats) == 2
        spools = list((root / "serve" / "telemetry").glob("*.metrics.json"))
        assert len(spools) == 2
        for pid in pids.values():
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
    finally:
        pool.drain(timeout=5)


def test_stalled_worker_is_killed_and_replaced(tmp_path):
    """A worker whose heartbeat goes stale is SIGKILLed, not trusted."""
    pool = _pool(tmp_path / "store", stall_after=1.5)
    pool.start()
    try:
        _wait_heartbeats(pool, 1)
        first_pid = pool.pids()[0]
        # Wedge the worker so it can't beat (SIGSTOP: no bytecode runs).
        os.kill(first_pid, signal.SIGSTOP)
        try:

            def replaced():
                pool.poll()
                pid = pool.pids()[0]
                return pid is not None and pid != first_pid

            _wait(replaced, timeout=30, what="stall-kill and respawn")
            assert pool.status()["workers"][0]["restarts"] >= 1
        finally:
            try:
                os.kill(first_pid, signal.SIGCONT)
            except ProcessLookupError:
                pass
    finally:
        pool.drain(timeout=15)


def test_worker_fails_bogus_cell_and_drains(tmp_path):
    """A cell that cannot run parks as failed; the worker exits clean."""
    store = ResultStore(tmp_path / "store")
    queue = CampaignQueue(store.root / "queue", "camp", lease_ttl=10.0)
    queue.enqueue(
        ("no.such.workload", 1, 0.05, "BC", 1.0),
        ("no.such.workload", "BC", 1.0, 1, 0.05),
    )
    rc = run_worker(
        store.root,
        worker_id="t-w0",
        lease_ttl=10.0,
        poll=0.05,
        retries=0,
        exit_when_drained=True,
    )
    assert rc == 0
    assert queue.drained()
    [record] = queue.failed_records()
    assert record["kind"] == "error"
    assert "no.such.workload" in record["message"]
    # Nothing was computed, nothing stored: the failure is a marker.
    assert store.object_count() == 0


def test_worker_retries_with_expire_before_failing(tmp_path):
    """Transient failures burn bounded claims through expire(), not
    release(), so the circuit breaker still sees every attempt."""
    store = ResultStore(tmp_path / "store")
    queue = CampaignQueue(store.root / "queue", "camp", lease_ttl=10.0)
    queue.enqueue(
        ("no.such.workload", 1, 0.05, "BC", 1.0),
        ("no.such.workload", "BC", 1.0, 1, 0.05),
    )
    rc = run_worker(
        store.root,
        worker_id="t-w0",
        lease_ttl=10.0,
        poll=0.05,
        retries=1,
        exit_when_drained=True,
    )
    assert rc == 0
    [record] = queue.failed_records()
    assert record["attempts"] == 2  # first claim + one retry


def test_worker_heartbeat_file(tmp_path):
    root = ResultStore(tmp_path / "store").root
    hb = WorkerHeartbeat(root, "t-w0")
    hb.beat("idle", counts={"completed": 0})
    payload = __import__("json").loads(hb.path.read_text())
    assert payload["worker"] == "t-w0"
    assert payload["state"] == "idle"
    assert payload["pid"] == os.getpid()
    before = hb.path.stat().st_mtime
    os.utime(hb.path, (before - 100, before - 100))
    hb.touch()
    assert hb.path.stat().st_mtime > before - 50
