"""Unified observability for the CPP simulator.

Four cooperating pieces, all importable from here:

* :mod:`repro.obs.metrics` — a registry of counters/gauges/histograms
  with labels; cache, core and bus statistics publish into it per run;
* :mod:`repro.obs.tracer` — a ring-buffered, samplable structured event
  tracer (``cache_access``, ``affiliated_hit``, ``partial_fill``,
  ``promotion``, ``stash``, ``bus_transfer``, ``prefetch``) with JSONL
  export, off by default and zero-cost when off;
* :mod:`repro.obs.phases` — nested wall-clock phase timers around trace
  generation, simulation and analysis;
* :mod:`repro.obs.manifest` — per-run JSON manifests (parameterization,
  environment, timings, memoization rates, headline metrics, event
  counts), rendered by ``python -m repro.obs.report``.

Typical use::

    import repro.obs as obs

    obs.enable(manifest_dir="results/manifests")
    result = run_workload("olden.mst", "CPP", scale=0.3)
    print(obs.get_tracer().count("affiliated_hit"))
    obs.disable()

Determinism contract: instrumentation only *records*; simulated cycle
counts are bit-identical with observability on or off (tier-1 tested).
"""

from __future__ import annotations

from repro.obs import export as export
from repro.obs import live as live
from repro.obs import manifest as manifest
from repro.obs import metrics as metrics
from repro.obs import phases as phases
from repro.obs import progress as progress
from repro.obs import span as span
from repro.obs import telemetry as telemetry
from repro.obs import tracer as tracer
from repro.obs.manifest import RunManifest, load_manifest, load_manifests
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.phases import PHASES, PhaseTimer, phase
from repro.obs.progress import report as report_progress
from repro.obs.span import SpanRecord
from repro.obs.telemetry import TelemetryStore, load_store
from repro.obs.tracer import EventTracer, get_tracer

__all__ = [
    "enable",
    "disable",
    "enabled",
    "reset",
    "get_tracer",
    "EventTracer",
    "MetricsRegistry",
    "REGISTRY",
    "PhaseTimer",
    "PHASES",
    "phase",
    "SpanRecord",
    "TelemetryStore",
    "load_store",
    "RunManifest",
    "load_manifest",
    "load_manifests",
    "report_progress",
    "metrics",
    "tracer",
    "phases",
    "manifest",
    "progress",
    "span",
    "telemetry",
    "export",
    "live",
]


def enable(
    *,
    trace: bool = True,
    capacity: int = 65536,
    sample_every: int = 1,
    manifest_dir: str | None = None,
    spans: bool = False,
    telemetry_dir: str | None = None,
) -> EventTracer | None:
    """Arm observability; returns the installed tracer (if tracing).

    ``trace=False`` enables only manifests/phases without per-event
    tracing. ``spans=True`` arms in-process span recording
    (:mod:`repro.obs.span`); *telemetry_dir* arms the full cross-process
    pipeline (:mod:`repro.obs.telemetry`, which implies spans).
    Idempotent: re-enabling replaces the tracer.
    """
    installed = None
    if trace:
        installed = tracer.install(
            EventTracer(capacity=capacity, sample_every=sample_every)
        )
    if manifest_dir is not None:
        manifest.configure(manifest_dir)
    if telemetry_dir is not None:
        telemetry.configure(telemetry_dir)
    elif spans:
        span.install()
    return installed


def disable() -> EventTracer | None:
    """Disarm tracing, spans, telemetry and manifest writing; returns the
    old tracer (its events and counts stay readable for post-mortems)."""
    manifest.configure(None)
    telemetry.configure(None)
    span.uninstall()
    return tracer.uninstall()


def enabled() -> bool:
    """Is per-event tracing currently armed?"""
    return tracer.ACTIVE


def reset() -> None:
    """Full observability reset: tracer gone, registry and phases empty."""
    disable()
    REGISTRY.reset()
    PHASES.reset()
