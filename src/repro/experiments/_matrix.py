"""Shared machinery for the normalized comparison figures (10-13).

Each of those figures runs the full (workload x configuration) matrix and
reports one metric per run normalized to the BC baseline = 100 %.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.analysis.normalize import normalize_to_baseline
from repro.experiments.common import GEOMEAN, ExperimentOutput, average, resolve_workloads
from repro.sim.results import SimResult
from repro.sim.runner import run_workload

__all__ = ["normalized_comparison", "DEFAULT_CONFIGS"]

DEFAULT_CONFIGS = ("BC", "BCC", "HAC", "BCP", "CPP")


def normalized_comparison(
    *,
    figure: str,
    title: str,
    metric: Callable[[SimResult], float],
    workloads: Sequence[str] | None,
    configs: Sequence[str] = DEFAULT_CONFIGS,
    seed: int = 1,
    scale: float = 1.0,
    paper_reference: str = "",
    notes: str = "",
) -> ExperimentOutput:
    """Run the matrix and normalize ``metric`` to BC per workload."""
    names = resolve_workloads(workloads)
    configs = list(configs)
    if "BC" not in configs:
        configs = ["BC", *configs]

    series: dict[str, dict[str, float]] = {cfg: {} for cfg in configs}
    rows: list[list[object]] = []
    for workload in names:
        results = {
            cfg: run_workload(workload, cfg, seed=seed, scale=scale)
            for cfg in configs
        }
        normalized = normalize_to_baseline(results, metric, baseline="BC")
        for cfg in configs:
            series[cfg][workload] = normalized[cfg]
        rows.append([workload, *(round(normalized[cfg], 1) for cfg in configs)])

    for cfg in configs:
        series[cfg][GEOMEAN] = average(
            {k: v for k, v in series[cfg].items() if k != GEOMEAN}
        )
    rows.append([GEOMEAN, *(round(series[cfg][GEOMEAN], 1) for cfg in configs)])

    return ExperimentOutput(
        figure=figure,
        title=title,
        headers=["workload", *configs],
        rows=rows,
        series={cfg: series[cfg] for cfg in configs if cfg != "BC"},
        unit="%",
        baseline_value=100.0,
        paper_reference=paper_reference,
        notes=notes,
    )
