"""Unit + property tests for word/line compress-decompress."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.codec import (
    compress_word,
    decompress_word,
    pack_line,
    packed_bus_words,
)
from repro.compression.flags import VT_POINTER, VT_SMALL
from repro.compression.scheme import PAPER_SCHEME
from repro.utils.bitops import MASK32, to_uint32

words = st.integers(min_value=0, max_value=MASK32)
aligned_addrs = st.integers(min_value=0, max_value=MASK32 // 4).map(lambda x: x * 4)


class TestCompressWord:
    def test_small_value_fields(self):
        cw = compress_word(42, 0x1000_0000)
        assert cw is not None
        assert cw.vt == VT_SMALL
        assert cw.payload == 42
        assert cw.bits == 16

    def test_pointer_fields(self):
        cw = compress_word(0x1000_2004, 0x1000_0000)
        assert cw is not None
        assert cw.vt == VT_POINTER
        assert cw.payload == 0x2004

    def test_encoded_layout(self):
        # VT occupies the top bit of the 16-bit slot (Figure 2).
        cw = compress_word(0x1000_2004, 0x1000_0000)
        assert cw.encoded == (1 << 15) | 0x2004

    def test_incompressible_returns_none(self):
        assert compress_word(0xDEAD_BEEF, 0x1000_0000) is None

    @given(words, aligned_addrs)
    def test_roundtrip_when_compressible(self, v, addr):
        cw = compress_word(v, addr)
        if cw is not None:
            assert decompress_word(cw, addr) == v

    @given(st.integers(min_value=-16384, max_value=16383), aligned_addrs)
    def test_small_roundtrip_any_address(self, v, addr):
        """Small values reconstruct regardless of the reading address."""
        cw = compress_word(to_uint32(v), addr)
        assert cw is not None
        other = (addr + 0x4_0000) & MASK32 & ~3
        if cw.vt == VT_SMALL:
            assert decompress_word(cw, other) == to_uint32(v)


class TestPackLine:
    def test_all_compressible(self):
        values = [1, 2, 3, 4]
        addrs = [0x1000_0000 + 4 * i for i in range(4)]
        res = pack_line(values, addrs)
        assert res.n_compressible == 4
        # 4 x 16 payload bits + 4 flag bits = 68 bits -> 3 bus words.
        assert res.total_bits == 68
        assert res.bus_words == 3
        assert res.saved_words == 1

    def test_none_compressible(self):
        values = [0xDEAD_BEEF] * 4
        addrs = [0x1000_0000 + 4 * i for i in range(4)]
        res = pack_line(values, addrs)
        assert res.n_compressible == 0
        # 4 x 32 + 4 flag bits -> 5 bus words: compression can LOSE by the
        # flag overhead, exactly one word per 32 words of line.
        assert res.bus_words == 5

    def test_flag_bits_optional(self):
        values = [0xDEAD_BEEF] * 4
        addrs = [0x1000_0000 + 4 * i for i in range(4)]
        res = pack_line(values, addrs, count_flag_bits=False)
        assert res.bus_words == 4

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            pack_line([1, 2], [0])

    def test_empty_line(self):
        res = pack_line([], [])
        assert res.bus_words == 0
        assert res.n_words == 0

    @given(
        st.lists(
            st.tuples(words, aligned_addrs), min_size=1, max_size=32
        )
    )
    def test_bus_words_bounds(self, pairs):
        values = [v for v, _ in pairs]
        addrs = [a for _, a in pairs]
        res = pack_line(values, addrs)
        n = len(values)
        # Never below half (plus flags), never above full width + 1 flag word.
        assert res.bus_words <= n + 1
        assert res.bus_words >= (n + 1) // 2

    def test_shorthand(self):
        values = [1, 2]
        addrs = [0x1000_0000, 0x1000_0004]
        assert packed_bus_words(values, addrs) == pack_line(values, addrs).bus_words


class TestDecompressErrors:
    def test_invalid_vt_rejected(self):
        from repro.compression.codec import CompressedWord

        bad = CompressedWord(vt=2, payload=0, scheme=PAPER_SCHEME)
        with pytest.raises(ValueError):
            decompress_word(bad, 0)
