"""Gate-delay model of the compressor/decompressor (paper Figure 8).

The paper argues both delays are hidden: compression happens before the
write-back stage reaches the cache, and decompression overlaps tag match.
We keep the arithmetic visible so the claim is checkable against any
parameterization of the scheme.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.compression.scheme import PAPER_SCHEME, CompressionScheme

__all__ = ["GateDelayModel"]


@dataclass(frozen=True)
class GateDelayModel:
    """Delay of the combinational compress/decompress logic in gate levels.

    Compression checks three conditions in parallel (§3.2):

    1. the high ``pointer_prefix_bits`` of value and address are equal;
    2. the high ``small_check_bits`` are all ones;
    3. the high ``small_check_bits`` are all zeros.

    Each check is a balanced tree of 2-input gates over ``n`` bits —
    ``ceil(log2(n))`` levels — plus ``select_levels`` gate levels to encode
    which case applies. For the paper's scheme that is ``ceil(log2(18)) = 5``
    plus 3, i.e. 8 gate delays. Decompression is a 2-level enable network.
    """

    scheme: CompressionScheme = PAPER_SCHEME
    select_levels: int = 3
    decompress_levels: int = 2

    @property
    def widest_check_bits(self) -> int:
        return max(self.scheme.small_check_bits, self.scheme.pointer_prefix_bits)

    @property
    def compress_gate_delays(self) -> int:
        """Total gate levels on the compression path (paper: 8)."""
        return math.ceil(math.log2(self.widest_check_bits)) + self.select_levels

    @property
    def decompress_gate_delays(self) -> int:
        """Total gate levels on the decompression path (paper: 2)."""
        return self.decompress_levels

    def compression_hidden(self, gate_delays_per_cycle: int) -> bool:
        """Is compression hidden before write-back, given a cycle budget?

        The paper's argument: data is ready well before the write-back
        stage, so any compressor fitting in one cycle's gate budget is free.
        """
        if gate_delays_per_cycle <= 0:
            raise ValueError("gate_delays_per_cycle must be positive")
        return self.compress_gate_delays <= gate_delays_per_cycle

    def decompression_hidden(self, tag_match_gate_delays: int) -> bool:
        """Is decompression hidden under tag match (paper §3.2)?"""
        if tag_match_gate_delays <= 0:
            raise ValueError("tag_match_gate_delays must be positive")
        return self.decompress_gate_delays <= tag_match_gate_delays
