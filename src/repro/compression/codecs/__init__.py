"""The codec zoo: pluggable cache-line compressors behind one protocol.

Four codecs compare head-to-head on compression ratio, effective ratio
after tag/metadata overhead, and (de)compression timing:

* ``cpp`` — the paper's sign/pointer prefix scheme (the default; the
  only codec the hierarchy simulates end-to-end, so selecting it
  perturbs nothing).
* ``fpc`` — Frequent Pattern Compression (3-bit prefixes + zero runs).
* ``bdi`` — Base-Delta-Immediate (dual-base, 1/2-byte deltas).
* ``cpack`` — C-Pack dictionary + pattern matching (per-line FIFO).

Selection precedence mirrors :mod:`repro.sim.backend` exactly: an
explicit ``SimConfig.codec`` beats the ``REPRO_CODEC`` environment
variable, which beats the default (``cpp``). The environment variable is
the cross-process channel so forked matrix workers inherit the choice.

Codecs whose per-word compressibility is a pure function of
``(value, address)`` (``cpp``, ``fpc``) expose
:attr:`~.protocol.Codec.word_scheme` and can drive the cache hierarchy;
line-only codecs (``bdi``, ``cpack``) raise
:class:`~repro.errors.ConfigurationError` from
:func:`require_word_scheme` if plugged into a word-slot cache, but
participate fully in the fig3c ratio/timing/overhead sweep.
"""

from __future__ import annotations

import os

from repro.compression.codecs.bdi import BDICodec
from repro.compression.codecs.cpack import CPackCodec
from repro.compression.codecs.cpp import CPPCodec
from repro.compression.codecs.fpc import FPCCodec
from repro.compression.codecs.protocol import (
    Codec,
    EncodedLine,
    LinePack,
    TagOverhead,
)
from repro.errors import ConfigurationError, UsageError

__all__ = [
    "BDICodec",
    "CODEC_NAMES",
    "CPPCodec",
    "CPackCodec",
    "Codec",
    "DEFAULT_CODEC",
    "ENV_VAR",
    "EncodedLine",
    "FPCCodec",
    "LinePack",
    "TagOverhead",
    "default_codec",
    "get_codec",
    "require_word_scheme",
    "resolve_codec",
    "set_default_codec",
]

#: Registered codec names, in documentation order.
CODEC_NAMES = ("cpp", "fpc", "bdi", "cpack")

DEFAULT_CODEC = "cpp"

#: Environment variable naming the default codec for this process tree.
ENV_VAR = "REPRO_CODEC"

_FACTORIES = {
    "cpp": CPPCodec,
    "fpc": FPCCodec,
    "bdi": BDICodec,
    "cpack": CPackCodec,
}


def get_codec(name: str) -> Codec:
    """A fresh codec instance for a registered *name*."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown codec {name!r}; choose from {CODEC_NAMES}"
        ) from None
    return factory()


def default_codec() -> str:
    """The codec selected by the environment (no per-config override).

    Raises :class:`~repro.errors.UsageError` when ``REPRO_CODEC`` names
    an unknown codec — a typo must fail loudly, not silently fall back
    to the paper's scheme.
    """
    env = os.environ.get(ENV_VAR, "").strip()
    if not env:
        return DEFAULT_CODEC
    if env not in CODEC_NAMES:
        raise UsageError(
            f"unknown codec {env!r} in ${ENV_VAR}",
            argument=ENV_VAR,
            choices=CODEC_NAMES,
        )
    return env


def resolve_codec(explicit: str = "") -> str:
    """Resolve the effective codec name.

    *explicit* is a per-config override (``SimConfig.codec``); empty
    means "defer to the environment".
    """
    if explicit:
        if explicit not in CODEC_NAMES:
            raise ConfigurationError(
                f"unknown codec {explicit!r}; choose from {CODEC_NAMES}"
            )
        return explicit
    return default_codec()


def set_default_codec(name: str | None) -> None:
    """Set (or clear, with ``None``/empty) the process-default codec.

    Writes ``REPRO_CODEC`` so worker processes forked later inherit the
    selection.
    """
    if not name:
        os.environ.pop(ENV_VAR, None)
        return
    if name not in CODEC_NAMES:
        raise UsageError(
            f"unknown codec {name!r}",
            argument="codec",
            choices=CODEC_NAMES,
        )
    os.environ[ENV_VAR] = name


def require_word_scheme(codec: Codec):
    """The per-word facet of *codec*, or a typed configuration error.

    The cache hierarchy packs two compressed values into one 32-bit slot
    and memoizes per-word compressibility (the VCP memo, the image comp
    table); both need compressibility to be a pure function of
    ``(value, address)``. Line-only codecs cannot provide that.
    """
    scheme = codec.word_scheme
    if scheme is None:
        raise ConfigurationError(
            f"codec {codec.name!r} is line-granular only (its per-word "
            "compressibility depends on line context) and cannot drive "
            "the word-slot cache hierarchy; choose a word-capable codec "
            "such as 'cpp' or 'fpc', or restrict this codec to "
            "ratio/timing analysis (the fig3c sweep)"
        )
    return scheme
