"""Legacy setup shim.

The execution environment has setuptools but no ``wheel`` package and no
network, so PEP 517 editable installs fail; this shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` work offline.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
