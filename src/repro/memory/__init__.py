"""Simulated memory substrate.

* :class:`MemoryImage` — a sparse, page-backed store of 32-bit words; the
  single source of truth for program data values.
* allocators — heap layout machinery; realistic allocation locality is what
  makes pointer values compressible, so workloads allocate through these.
* :class:`BusMeter` — word-granular off-chip traffic accounting (Figure 10).
* :class:`MainMemory` — flat-latency DRAM model over an image plus a bus.
"""

from repro.memory.allocator import BumpAllocator, FreeListAllocator
from repro.memory.bus import BusMeter, TrafficKind
from repro.memory.image import MemoryImage, PAGE_BYTES, WORD_BYTES
from repro.memory.main_memory import MainMemory

__all__ = [
    "MemoryImage",
    "PAGE_BYTES",
    "WORD_BYTES",
    "BumpAllocator",
    "FreeListAllocator",
    "BusMeter",
    "TrafficKind",
    "MainMemory",
]
