"""The formal ``Codec`` protocol: per-word + per-line compression.

The paper's sign/pointer prefix scheme is one point in a large design
space. This module pins down the contract every codec in the zoo
(:mod:`repro.compression.codecs`) satisfies, so FPC, BDI and C-Pack can
be compared head-to-head against the paper's scheme on compression
ratio, timing *and* tag/metadata overhead — the honesty Touché argues
is missing when codecs are compared on ratio alone.

Granularities
-------------
Every codec is **line-granular**: :meth:`Codec.compress_line` encodes a
whole cache line losslessly (:meth:`Codec.decompress_line` is its exact
inverse — property-fuzzed in :mod:`repro.check.codec_diff`), and
:meth:`Codec.pack_line` returns the same bit budget without
materializing tokens (the two are asserted equal by the differential
harness).

A codec whose per-word compressibility is a pure function of
``(value, address)`` — true for the paper's prefix scheme and for FPC's
pattern subset, false for BDI (base-relative) and C-Pack (dictionary-
relative) — additionally exposes that facet as :attr:`Codec.word_scheme`,
an object duck-compatible with
:class:`~repro.compression.scheme.CompressionScheme` wherever the cache
models need it (``is_compressible``/``compressed_bits`` plus the
vectorized ``mask_compressible`` hook). Only word-capable codecs can
drive the CPP cache's slot pairing and the fast backend's
:class:`~repro.compression.comptable.ImageCompTable`; line-only codecs
still participate fully in ratio/timing/overhead analysis and bus
packing.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from dataclasses import dataclass

from repro.utils.intmath import ceil_div

__all__ = ["Codec", "EncodedLine", "LinePack", "TagOverhead"]


@dataclass(frozen=True)
class LinePack:
    """Bit-budget accounting for one compressed cache line.

    Attributes
    ----------
    n_words:
        32-bit words in the line.
    n_compressed:
        Words that encode in fewer than 32 data bits.
    data_bits:
        Value payload bits after compression (compressed + literal).
    meta_bits:
        In-stream metadata that must travel with the line (prefix codes,
        VC flags, bases, base selectors, dictionary indices). Cache-
        resident tag overhead is accounted separately by
        :class:`TagOverhead` — it occupies tag array area, not the data
        stream.
    """

    n_words: int
    n_compressed: int
    data_bits: int
    meta_bits: int

    @property
    def total_bits(self) -> int:
        return self.data_bits + self.meta_bits

    @property
    def raw_bits(self) -> int:
        return 32 * self.n_words

    @property
    def bus_words(self) -> int:
        """32-bit bus beats to move the compressed line (Figure 10 cost)."""
        return ceil_div(self.total_bits, 32)

    @property
    def ratio(self) -> float:
        """Compression ratio ``raw / compressed`` (>= 1 is a win)."""
        return self.raw_bits / self.total_bits if self.total_bits else 1.0


@dataclass(frozen=True)
class TagOverhead:
    """Cache-resident metadata a codec needs *beyond* the data stream.

    Touché's critique: codecs are routinely compared on ratio while the
    tag/metadata area they demand differs wildly. This model charges the
    per-line tag-array bits so :meth:`effective_ratio` reports the ratio
    after that overhead.

    ``per_word_bits`` covers per-slot flags (the paper scheme's VC bit),
    ``per_line_bits`` covers per-line tags (BDI's encoding selector, a
    compressed-size field, ...).
    """

    per_word_bits: float = 0.0
    per_line_bits: float = 0.0

    def line_bits(self, n_words: int) -> float:
        """Total tag-array bits charged to one line of *n_words* words."""
        return self.per_word_bits * n_words + self.per_line_bits

    def effective_ratio(self, pack: LinePack) -> float:
        """Compression ratio after tag/metadata overhead.

        ``raw_bits / (compressed stream + tag overhead)``; never divides
        by zero — a degenerate empty line reports 1.0 (no change).
        """
        denominator = pack.total_bits + self.line_bits(pack.n_words)
        return pack.raw_bits / denominator if denominator else 1.0


@dataclass(frozen=True)
class EncodedLine:
    """A losslessly encoded cache line.

    ``tokens`` is the codec-private token stream (opaque outside the
    codec; each codec documents its own shape), ``bits`` the exact
    encoded size including in-stream metadata. The protocol invariant
    ``bits == pack_line(...).total_bits`` is fuzzed by
    :mod:`repro.check.codec_diff`.
    """

    codec: str
    n_words: int
    tokens: tuple
    bits: int


class Codec(abc.ABC):
    """Abstract base of every codec in the zoo.

    Subclasses are stateless and shareable (C-Pack's dictionary is
    rebuilt per line on both sides). *values*/*addrs* are parallel
    sequences of 32-bit words and their byte addresses, exactly as
    :func:`repro.compression.codec.pack_line` takes them.
    """

    #: Registry name (``"cpp"``, ``"fpc"``, ``"bdi"``, ``"cpack"``).
    name: str = ""

    #: Per-word facet for the cache models, or ``None`` for line-only
    #: codecs (see the module docstring for the purity requirement).
    word_scheme = None

    # ---- line coding ------------------------------------------------------

    @abc.abstractmethod
    def compress_line(
        self, values: Sequence[int], addrs: Sequence[int]
    ) -> EncodedLine:
        """Losslessly encode one line; ``bits`` is the exact budget."""

    @abc.abstractmethod
    def decompress_line(
        self, encoded: EncodedLine, addrs: Sequence[int]
    ) -> list[int]:
        """Exact inverse of :meth:`compress_line` (same *addrs*)."""

    @abc.abstractmethod
    def pack_line(
        self, values: Sequence[int], addrs: Sequence[int]
    ) -> LinePack:
        """Bit accounting of :meth:`compress_line` without the tokens."""

    # ---- batched variants (mask-based / bulk) ----------------------------

    def line_bits(self, values: Sequence[int], addrs: Sequence[int]) -> int:
        """Encoded size in bits (shorthand over :meth:`pack_line`)."""
        return self.pack_line(values, addrs).total_bits

    def pack_lines(self, lines, base_addrs) -> list[LinePack]:
        """Batched :meth:`pack_line` over parallel (line, base address)
        sequences; codecs override when a vectorized path exists."""
        out = []
        for values, base in zip(lines, base_addrs):
            addrs = [base + 4 * i for i in range(len(values))]
            out.append(self.pack_line(values, addrs))
        return out

    # ---- cost models ------------------------------------------------------

    @property
    @abc.abstractmethod
    def timing(self):
        """The codec's :class:`~repro.compression.timing.CodecTiming`."""

    @abc.abstractmethod
    def tag_overhead(self) -> TagOverhead:
        """Cache-resident metadata cost model (see :class:`TagOverhead`)."""

    # ---- shared helpers ---------------------------------------------------

    def effective_ratio(
        self, values: Sequence[int], addrs: Sequence[int]
    ) -> float:
        """Ratio after tag overhead for one line (Touché-honest number)."""
        return self.tag_overhead().effective_ratio(self.pack_line(values, addrs))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"
