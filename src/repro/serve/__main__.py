"""CLI: boot the resilient experiment service.

Usage::

    python -m repro.serve --store results/store
    python -m repro.serve --store DIR --workers 4 --port 0 \\
        --enqueue fig12 --workloads olden.treeadd --scale 0.1 \\
        --exit-when-drained
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError, UsageError
from repro.experiments.registry import EXPERIMENTS
from repro.store.queue import DEFAULT_LEASE_TTL
from repro.workloads.registry import WORKLOAD_NAMES

from repro.serve.app import run_service

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "HTTP experiment service over the content-addressed result "
            "store: cached cells served instantly, misses enqueued for a "
            "self-healing worker pool, 202 + Retry-After while pending."
        ),
    )
    parser.add_argument("--store", required=True, metavar="DIR")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8765,
        help="TCP port (0 picks a free one; see the SERVE-READY line)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker processes in the pool (0 serves the store read-only)",
    )
    parser.add_argument("--lease-ttl", type=float, default=DEFAULT_LEASE_TTL)
    parser.add_argument(
        "--cell-timeout", type=float, default=None,
        help="per-attempt budget for one cell; hung attempts are retried "
        "with backoff",
    )
    parser.add_argument("--retries", type=int, default=1)
    parser.add_argument(
        "--gc-budget", type=int, default=None, metavar="BYTES",
        help="object-tree byte budget; exceeding it triggers background "
        "GC of superseded code-version records",
    )
    parser.add_argument("--gc-interval", type=float, default=60.0)
    parser.add_argument(
        "--enqueue", nargs="*", default=None, metavar="FIG",
        help=f"pre-enqueue the matrix these figures need "
        f"({', '.join(EXPERIMENTS)}, or 'all')",
    )
    parser.add_argument(
        "--workloads", nargs="*", default=None, metavar="NAME",
        help="workload subset for --enqueue (default: all)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--exit-when-drained", action="store_true",
        help="exit 0 once every campaign is settled (CI mode)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.workers < 0:
            raise UsageError("--workers must be >= 0", argument="--workers")
        if args.scale <= 0:
            raise UsageError("--scale must be positive", argument="--scale")
        enqueue = None
        if args.enqueue is not None:
            figures = (
                list(EXPERIMENTS) if "all" in args.enqueue else args.enqueue
            )
            for figure in figures:
                if figure not in EXPERIMENTS:
                    raise UsageError(
                        f"unknown figure {figure!r}",
                        argument="--enqueue",
                        choices=tuple(EXPERIMENTS) + ("all",),
                    )
            for workload in args.workloads or ():
                if workload not in WORKLOAD_NAMES:
                    raise UsageError(
                        f"unknown workload {workload!r}",
                        argument="--workloads",
                        choices=tuple(WORKLOAD_NAMES),
                    )
            enqueue = {
                "figures": figures,
                "workloads": args.workloads,
                "seed": args.seed,
                "scale": args.scale,
            }
        return run_service(
            args.store,
            host=args.host,
            port=args.port,
            workers=args.workers,
            lease_ttl=args.lease_ttl,
            cell_timeout=args.cell_timeout,
            retries=args.retries,
            gc_budget_bytes=args.gc_budget,
            gc_interval=args.gc_interval,
            enqueue=enqueue,
            exit_when_drained=args.exit_when_drained,
        )
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - process entry
    sys.exit(main())
