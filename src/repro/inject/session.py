"""Run-time engine of one fault-injection experiment.

An :class:`InjectionSession` is armed process-wide through
:mod:`repro.inject.hooks`; the hooked models (cache cores, the memory
port, the DRAM model, the bus meter) then report every event the session
cares about:

* **clocks** — CPU accesses at the L1 core advance the *op clock* (the
  trigger domain of cache and memory faults); every off-chip transfer
  advances the *transfer clock* (the trigger domain of bus faults);
* **firing** — when a pending :class:`~repro.inject.faults.FaultSpec`
  comes due, the session picks a concrete site with its own seeded RNG
  (resident words / flags / tags for cache targets, a touched word for
  memory targets, the in-flight payload for bus targets), flips the bits
  and keeps a :class:`~repro.inject.faults.Corruption` record;
* **detection on use** — corrupted state is *checked where it is read*:
  a CPU access resolving to the corrupted word, a set probe scanning the
  corrupted tag/flag bits, a serve or eviction reading the frame out, a
  DRAM line read. The armed :class:`~repro.inject.protect.Protection`
  decides whether the corruption is seen (parity: odd flips; SECDED: one
  or two flips) and whether it is repaired in place (SECDED, one flip);
  detections SECDED cannot correct hand off to the recovery policy
  (:mod:`repro.inject.recover`).

Data-site identity is logical — ``(level, line_no, word index, corrupt
value)`` — so a record keeps tracking its word through promotions,
stashes and merges that move it between the primary and affiliated
places of a level. Metadata and tag records pin the physical frame (the
corruption cannot be located by value) plus its home set; every probe of
that set is a use point, which is how a flipped valid/PA bit is caught
*before* the hole it opened is refilled with stale data.

:meth:`finalize` is the end-of-run scrub: whatever is still resident and
corrupted gets one last protection check before the final flush, the
same coverage a real hierarchy gets from patrol scrubbing.
"""

from __future__ import annotations

import random

from repro.caches.compression_cache import CompressionCache
from repro.inject.faults import CACHE_TARGETS, Corruption, FaultSpec, flip_bits
from repro.inject.protect import Protection
from repro.inject.recover import apply_degrade_on_fill, recover

__all__ = ["OUTCOMES", "InjectionSession"]

#: Classification of one injected fault, per the usual FIT taxonomy,
#: plus ``not_fired`` for plans whose trigger never found a live site.
OUTCOMES = (
    "masked",
    "detected_recovered",
    "detected_uncorrectable",
    "sdc",
    "not_fired",
)

_META_FIELDS_CPP = ("pa", "aa", "vcp", "dirty")
_META_FIELDS_CLASSIC = ("dirty", "valid")


def _unwrap(level):
    """Peel facade layers (prefetcher/victim/stride wrappers) to the core."""
    while hasattr(level, "cache"):
        level = level.cache
    return level


class InjectionSession:
    """State machine of a single armed fault-injection run."""

    def __init__(
        self,
        spec: FaultSpec,
        protection: Protection,
        recovery: str = "refetch",
    ) -> None:
        self.spec = spec
        self.protection = protection
        self.recovery = recovery
        self.rng = random.Random(spec.site_seed & 0xFFFF_FFFF)
        self.pending: FaultSpec | None = spec
        self.records: list[Corruption] = []
        #: lines the ``degrade`` policy pinned to uncompressed residency
        self.degraded: dict[str, set[int]] = {}
        #: candidate word addresses for ``mem`` faults (the touched set)
        self.mem_candidates: list[int] = []
        self.op_clock = 0
        self.transfer_clock = 0
        self.check_cycles = 0
        self.correct_cycles = 0
        self.counters: dict[str, int] = {
            "fired": 0,
            "deferred": 0,
            "checks": 0,
            "detected": 0,
            "corrected": 0,
            "recovered": 0,
            "uncorrectable": 0,
            "overwritten": 0,
            "evicted": 0,
            "retries": 0,
        }
        self._levels: dict[int, str] = {}
        self._cores: dict[str, object] = {}
        self._l1_id: int | None = None
        self.memory = None

    # ---- wiring --------------------------------------------------------------

    def attach(self, hierarchy) -> None:
        """Bind the session to a hierarchy's cores and memory."""
        l1 = _unwrap(hierarchy.l1)
        l2 = _unwrap(hierarchy.l2)
        self._levels = {id(l1): "l1", id(l2): "l2"}
        self._cores = {"l1": l1, "l2": l2}
        self._l1_id = id(l1)
        self.memory = hierarchy.memory

    # ---- hook entry points (hot paths call these when armed) -----------------

    def before_access(self, cache, addr: int, write: bool) -> None:
        """A CPU access is about to probe *cache* for *addr*."""
        level = self._levels.get(id(cache))
        if level is None:
            return
        if id(cache) == self._l1_id:
            self.op_clock += 1
            if self.pending is not None and self.pending.target != "bus":
                self._fire_due()
        if not self.records:
            return
        ln = addr >> cache.line_shift
        for set_idx in self._probed_sets(cache, (ln,)):
            self._check_set_probe(cache, level, set_idx)
        widx = (addr >> 2) & (cache.line_words - 1)
        for rec in self.records:
            if (
                rec.live
                and rec.level == level
                and rec.kind == "data"
                and rec.line_no == ln
                and rec.widx == widx
            ):
                self._check_data_use(cache, rec, overwrite=write)

    def before_serve(self, cache, addr: int, pair_addr: int | None) -> None:
        """A lower level is about to read line *addr* (and maybe its pair)
        out of *cache* to serve the level above."""
        level = self._levels.get(id(cache))
        if level is None or not self.records:
            return
        ln = addr >> cache.line_shift
        lines = {ln}
        if pair_addr is not None:
            lines.add(pair_addr >> cache.line_shift)
        for set_idx in self._probed_sets(cache, lines):
            self._check_set_probe(cache, level, set_idx)
        for rec in self.records:
            if (
                rec.live
                and rec.level == level
                and rec.kind == "data"
                and rec.line_no in lines
            ):
                self._check_data_use(cache, rec)

    def before_evict(self, cache, frame) -> None:
        """A valid frame is about to be written back / stashed / dropped."""
        level = self._levels.get(id(cache))
        if level is None or not self.records:
            return
        for rec in self.records:
            if not rec.live or rec.level != level:
                continue
            if rec.kind == "data":
                self._check_data_use(cache, rec, only_frame=frame)
            elif rec.frame is frame:
                self._check_meta_use(cache, rec)

    def after_fill(self, cache, frame) -> None:
        """A fill just installed/merged into *frame*."""
        if not self.degraded:
            return
        level = self._levels.get(id(cache))
        if level is not None:
            apply_degrade_on_fill(self, level, frame)

    def on_bus_transfer(self, kind, words: int) -> None:
        """One off-chip transfer was metered (the bus-fault trigger clock)."""
        self.transfer_clock += 1

    def on_bus_values(
        self, addr: int, values: list[int], mask: int | None = None
    ) -> list[int]:
        """A payload is crossing the off-chip bus; returns what arrives."""
        spec = self.pending
        if (
            spec is None
            or spec.target != "bus"
            or self.transfer_clock + 1 < spec.trigger
            or not values
        ):
            return values
        self.pending = None
        self.counters["fired"] += 1
        if mask is not None:
            idxs = [i for i in range(len(values)) if (mask >> i) & 1]
            if not idxs:
                idxs = list(range(len(values)))
        else:
            idxs = list(range(len(values)))
        widx = self.rng.choice(idxs)
        positions = self.rng.sample(range(32), min(spec.bits, 32))
        pristine = values[widx]
        corrupt = flip_bits(pristine, positions)
        rec = Corruption(
            spec=spec,
            kind="bus",
            level="bus",
            addr=addr + 4 * widx,
            widx=widx,
            pristine=pristine,
            corrupt=corrupt,
            n_bits=len(positions),
        )
        self.records.append(rec)
        rec.note(f"flipped bits {positions} in transfer {self.transfer_clock + 1}")
        p = self.protection
        self._charge_check()
        rec.live = False
        if p.corrects(rec.n_bits):
            self._charge_correct()
            rec.detected = True
            rec.disposition = "corrected"
            rec.note("secded corrected in flight")
            self.counters["detected"] += 1
            self.counters["corrected"] += 1
            return values
        if p.detects(rec.n_bits):
            # Detected in transit: the transfer is retried, delivering the
            # pristine payload at the cost of one extra round trip.
            rec.detected = True
            rec.disposition = "recovered"
            rec.note("parity detected in flight; transfer retried")
            self.counters["detected"] += 1
            self.counters["recovered"] += 1
            self.counters["retries"] += 1
            return values
        rec.disposition = "propagated"
        rec.note("delivered corrupt (no protection caught it)")
        out = list(values)
        out[widx] = corrupt
        return out

    def on_memory_read(self, addr: int, n_words: int) -> None:
        """DRAM is about to read out ``[addr, addr + 4*n_words)``."""
        lo, hi = addr, addr + 4 * n_words
        for rec in self.records:
            if rec.live and rec.kind == "mem" and lo <= rec.addr < hi:
                self._check_mem_use(rec)

    def on_memory_write(self, addr: int, n_words: int, mask: int | None) -> None:
        """DRAM is about to overwrite (masked) words at *addr*."""
        lo, hi = addr, addr + 4 * n_words
        for rec in self.records:
            if rec.live and rec.kind == "mem" and lo <= rec.addr < hi:
                widx = (rec.addr - addr) >> 2
                if mask is None or (mask >> widx) & 1:
                    rec.live = False
                    rec.disposition = "overwritten"
                    rec.note("memory word overwritten by write-back")
                    self.counters["overwritten"] += 1

    # ---- end-of-run ----------------------------------------------------------

    def finalize(self) -> None:
        """End-of-run scrub: one last protection pass over live corruption."""
        for rec in self.records:
            if not rec.live:
                continue
            if rec.kind == "mem":
                self._check_mem_use(rec)
            elif rec.kind == "data":
                self._check_data_use(
                    self._cores[rec.level], rec, at_finalize=True
                )
            elif rec.kind in ("meta", "tag"):
                self._check_meta_use(self._cores[rec.level], rec)

    def classify(self, mismatch: bool) -> str:
        """Outcome of the cell given the architectural comparison verdict."""
        if not self.counters["fired"]:
            return "not_fired"
        detected = any(r.detected for r in self.records)
        if mismatch:
            return "detected_uncorrectable" if detected else "sdc"
        return "detected_recovered" if detected else "masked"

    def snapshot(self) -> dict:
        """JSON-safe summary of the session (for campaign outcome records)."""
        return {
            "op_clock": self.op_clock,
            "transfer_clock": self.transfer_clock,
            "check_cycles": self.check_cycles,
            "correct_cycles": self.correct_cycles,
            "counters": dict(self.counters),
            "records": [
                {
                    "kind": r.kind,
                    "site": r.describe_site(),
                    "n_bits": r.n_bits,
                    "detected": r.detected,
                    "disposition": r.disposition,
                    "events": list(r.events),
                }
                for r in self.records
            ],
        }

    # ---- firing --------------------------------------------------------------

    def _fire_due(self) -> None:
        spec = self.pending
        if spec is None or spec.trigger > self.op_clock:
            return
        if spec.target == "mem":
            fired = self._fire_mem(spec)
        elif spec.target in CACHE_TARGETS:
            fired = self._fire_cache(spec, self._cores.get(spec.level))
        else:  # pragma: no cover - planner never emits other targets here
            fired = False
        if fired:
            self.pending = None
            self.counters["fired"] += 1
        else:
            self.counters["deferred"] += 1

    def _fire_mem(self, spec: FaultSpec) -> bool:
        if not self.mem_candidates or self.memory is None:
            return False
        addr = self.rng.choice(self.mem_candidates)
        positions = self.rng.sample(range(32), min(spec.bits, 32))
        pristine = self.memory.peek_word(addr)
        corrupt = flip_bits(pristine, positions)
        self.memory.poke_word(addr, corrupt)
        rec = Corruption(
            spec=spec,
            kind="mem",
            level="mem",
            addr=addr,
            pristine=pristine,
            corrupt=corrupt,
            n_bits=len(positions),
        )
        rec.note(f"flipped bits {positions} at op {self.op_clock}")
        self.records.append(rec)
        return True

    def _fire_cache(self, spec: FaultSpec, cache) -> bool:
        if cache is None:
            return False
        if spec.target == "data":
            return self._fire_data(spec, cache)
        if spec.target == "meta":
            return self._fire_meta(spec, cache)
        return self._fire_tag(spec, cache)

    def _fire_data(self, spec: FaultSpec, cache) -> bool:
        candidates: list[tuple[object, int, str]] = []
        if isinstance(cache, CompressionCache):
            for ways in cache._sets:
                for f in ways:
                    if f.line_no < 0:
                        continue
                    m = f.pa
                    while m:
                        low = m & -m
                        candidates.append((f, low.bit_length() - 1, "primary"))
                        m ^= low
                    m = f.aa
                    while m:
                        low = m & -m
                        candidates.append((f, low.bit_length() - 1, "affiliated"))
                        m ^= low
        else:
            for ways in cache._sets:
                for line in ways:
                    if not line.valid:
                        continue
                    for i in range(cache.line_words):
                        candidates.append((line, i, "line"))
        if not candidates:
            return False
        frame, widx, place = self.rng.choice(candidates)
        positions = self.rng.sample(range(32), min(spec.bits, 32))
        if place == "primary":
            pristine = frame.pvals[widx]
            corrupt = flip_bits(pristine, positions)
            frame.pvals[widx] = corrupt
            line_no = frame.line_no
        elif place == "affiliated":
            pristine = frame.avals[widx]
            corrupt = flip_bits(pristine, positions)
            frame.avals[widx] = corrupt
            line_no = frame.line_no ^ cache.policy.mask
        else:
            pristine = frame.data[widx]
            corrupt = flip_bits(pristine, positions)
            frame.data[widx] = corrupt
            line_no = frame.line_no
        rec = Corruption(
            spec=spec,
            kind="data",
            level=spec.level,
            line_no=line_no,
            widx=widx,
            set_index=frame.line_no & cache.set_mask,
            pristine=pristine,
            corrupt=corrupt,
            n_bits=len(positions),
        )
        rec.note(
            f"flipped bits {positions} in {place} place at op {self.op_clock}"
        )
        self.records.append(rec)
        return True

    def _fire_meta(self, spec: FaultSpec, cache) -> bool:
        is_cpp = isinstance(cache, CompressionCache)
        fields = _META_FIELDS_CPP if is_cpp else _META_FIELDS_CLASSIC
        candidates = [
            (f, name)
            for ways in cache._sets
            for f in ways
            if (f.line_no >= 0 if is_cpp else f.valid)
            for name in fields
        ]
        if not candidates:
            return False
        frame, field_name = self.rng.choice(candidates)
        width = cache.line_words if field_name in ("pa", "aa", "vcp") else 1
        positions = self.rng.sample(range(width), min(spec.bits, width))
        pristine = int(getattr(frame, field_name))
        corrupt = flip_bits(pristine, positions)
        self._write_meta_field(frame, field_name, corrupt)
        rec = Corruption(
            spec=spec,
            kind="meta",
            level=spec.level,
            line_no=frame.line_no,
            field_name=field_name,
            set_index=frame.line_no & cache.set_mask,
            frame=frame,
            pristine=pristine,
            corrupt=corrupt,
            n_bits=len(positions),
        )
        rec.note(f"flipped {field_name} bits {positions} at op {self.op_clock}")
        self.records.append(rec)
        return True

    def _fire_tag(self, spec: FaultSpec, cache) -> bool:
        is_cpp = isinstance(cache, CompressionCache)
        candidates = [
            f
            for ways in cache._sets
            for f in ways
            if (f.line_no >= 0 if is_cpp else f.valid)
        ]
        if not candidates:
            return False
        frame = self.rng.choice(candidates)
        # Keep the flipped tag inside the 32-bit address space.
        width = max(1, 30 - cache.line_shift)
        positions = self.rng.sample(range(width), min(spec.bits, width))
        pristine = frame.line_no
        corrupt = flip_bits(pristine, positions)
        frame.line_no = corrupt
        rec = Corruption(
            spec=spec,
            kind="tag",
            level=spec.level,
            line_no=pristine,
            field_name="line_no",
            set_index=pristine & cache.set_mask,
            frame=frame,
            pristine=pristine,
            corrupt=corrupt,
            n_bits=len(positions),
        )
        rec.note(f"flipped tag bits {positions} at op {self.op_clock}")
        self.records.append(rec)
        return True

    # ---- detection / repair --------------------------------------------------

    def _charge_check(self) -> None:
        self.counters["checks"] += 1
        self.check_cycles += self.protection.detect_cycles

    def _charge_correct(self) -> None:
        self.correct_cycles += self.protection.correct_cycles

    def _retire(self, rec: Corruption, disposition: str, event: str) -> None:
        rec.live = False
        rec.disposition = disposition
        rec.note(event)
        self.counters[disposition] = self.counters.get(disposition, 0) + 1

    def _locate_data(self, cache, rec: Corruption, only_frame=None):
        """Where the corrupt word currently sits: ``(place, frame)``,
        ``("overwritten", frame)`` when the slot holds a different value,
        or ``("gone", None)`` when it is not resident (here)."""
        bit = 1 << rec.widx
        found: list[tuple[str, object, int]] = []
        if isinstance(cache, CompressionCache):
            f = cache._find_primary(rec.line_no, touch=False)
            if f is not None and f.pa & bit:
                found.append(("primary", f, f.pvals[rec.widx]))
            g = cache._find_affiliated(rec.line_no, touch=False)
            if g is not None and g.aa & bit:
                found.append(("affiliated", g, g.avals[rec.widx]))
        else:
            for line in cache._sets[rec.line_no & cache.set_mask]:
                if line.valid and line.line_no == rec.line_no:
                    found.append(("line", line, line.data[rec.widx]))
                    break
        for place, frame, value in found:
            if only_frame is not None and frame is not only_frame:
                continue
            if value == rec.corrupt:
                return place, frame
            return "overwritten", frame
        return "gone", None

    def _check_data_use(
        self,
        cache,
        rec: Corruption,
        *,
        overwrite: bool = False,
        only_frame=None,
        at_finalize: bool = False,
    ) -> None:
        place, frame = self._locate_data(cache, rec, only_frame=only_frame)
        if place == "gone":
            # Not resident here (evicted clean, stash-dropped, or moved
            # down with no protection watching). Leave it live until the
            # final scrub — a victim-buffer round trip may bring it back.
            if at_finalize:
                self._retire(rec, "evicted", "no longer resident at scrub")
            return
        if place == "overwritten":
            self._retire(rec, "overwritten", "slot rewritten with fresh data")
            return
        if overwrite:
            self._retire(rec, "overwritten", "CPU store replaced the word")
            return
        p = self.protection
        if p.name == "none":
            return
        self._charge_check()
        if not p.detects(rec.n_bits):
            return
        rec.detected = True
        self.counters["detected"] += 1
        if p.corrects(rec.n_bits):
            self._charge_correct()
            if place == "primary":
                frame.pvals[rec.widx] = rec.pristine
            elif place == "affiliated":
                frame.avals[rec.widx] = rec.pristine
            else:
                frame.data[rec.widx] = rec.pristine
            self._retire(rec, "corrected", f"secded corrected in {place} place")
            return
        disposition = recover(self, cache, rec, place, frame)
        self._retire(rec, disposition, f"recovery policy: {self.recovery}")

    def _read_meta_field(self, frame, rec: Corruption) -> int | None:
        """Current value of the corrupted field, or ``None`` if the frame
        no longer holds the corrupted line."""
        if rec.kind == "tag":
            return frame.line_no
        if frame.line_no != rec.line_no:
            return None
        return int(getattr(frame, rec.field_name))

    @staticmethod
    def _write_meta_field(frame, field_name: str, value: int) -> None:
        if field_name in ("dirty", "valid"):
            setattr(frame, field_name, bool(value))
        else:
            setattr(frame, field_name, value)

    def _check_meta_use(self, cache, rec: Corruption) -> None:
        frame = rec.frame
        current = self._read_meta_field(frame, rec)
        if rec.kind == "tag":
            if current == rec.pristine:
                self._retire(rec, "overwritten", "tag restored by reinstall")
                return
            if current != rec.corrupt:
                self._retire(rec, "evicted", "frame reinstalled with a new line")
                return
        else:
            if current is None:
                self._retire(rec, "evicted", "frame no longer holds the line")
                return
            diff = rec.pristine ^ rec.corrupt
            if (current ^ rec.corrupt) & diff:
                # The flipped bits were legitimately rewritten since.
                self._retire(rec, "overwritten", "flag bits rewritten")
                return
        p = self.protection
        if p.name == "none":
            return
        self._charge_check()
        if not p.detects(rec.n_bits):
            return
        rec.detected = True
        self.counters["detected"] += 1
        if p.corrects(rec.n_bits):
            self._charge_correct()
            if rec.kind == "tag":
                frame.line_no = rec.pristine
            else:
                diff = rec.pristine ^ rec.corrupt
                fixed = (current & ~diff) | (rec.pristine & diff)
                self._write_meta_field(frame, rec.field_name, fixed)
            self._retire(rec, "corrected", f"secded corrected {rec.field_name}")
            return
        disposition = recover(self, cache, rec, "frame", frame)
        self._retire(rec, disposition, f"recovery policy: {self.recovery}")

    def _check_mem_use(self, rec: Corruption) -> None:
        current = self.memory.peek_word(rec.addr)
        if current != rec.corrupt:
            self._retire(rec, "overwritten", "memory word rewritten")
            return
        p = self.protection
        if p.name == "none":
            return
        self._charge_check()
        if not p.detects(rec.n_bits):
            return
        rec.detected = True
        self.counters["detected"] += 1
        if p.corrects(rec.n_bits):
            self._charge_correct()
            self.memory.poke_word(rec.addr, rec.pristine)
            self._retire(rec, "corrected", "dram ecc corrected on read")
            return
        # Detected but uncorrectable in DRAM: there is no level below to
        # refetch from, so the loss is reported, not repaired.
        self._retire(rec, "uncorrectable", "dram parity: no correction source")

    @staticmethod
    def _probed_sets(cache, lines) -> set[int]:
        """Sets a lookup of *lines* scans: the home set of each line plus,
        for compression caches, its pairing partner's set (the affiliated
        probe reads that set's tags and flags too)."""
        sets = {ln & cache.set_mask for ln in lines}
        if isinstance(cache, CompressionCache):
            mask = cache.policy.mask
            sets |= {(ln ^ mask) & cache.set_mask for ln in lines}
        return sets

    def _check_set_probe(self, cache, level: str, set_idx: int) -> None:
        for rec in self.records:
            if (
                rec.live
                and rec.level == level
                and rec.kind in ("meta", "tag")
                and rec.set_index == set_idx
            ):
                self._check_meta_use(cache, rec)
