"""The idle-cycle skip must be timing-neutral.

The skip jumps the clock when no pipeline stage can make progress. If
its "nothing can happen" predicate were ever wrong, every reported cycle
count would silently be wrong too — so we prove equivalence by running
identical traces with the skip on and off and demanding bit-identical
cycle counts and metrics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.pipeline import CoreConfig, OutOfOrderCore
from repro.isa.opcodes import OpClass
from repro.isa.trace import TraceBuilder
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.workloads.registry import generate

from tests.conftest import make_tiny

BASE = 0x1000_0000

op_stream = st.lists(
    st.tuples(
        st.sampled_from(["alu", "mult", "load", "store", "branch"]),
        st.integers(min_value=0, max_value=255),  # word index / taken parity
    ),
    min_size=1,
    max_size=120,
)


def build_trace(stream):
    tb = TraceBuilder("skip-equiv")
    last_dest = -1
    for i, (kind, arg) in enumerate(stream):
        pc = 0x400000 + 8 * (i % 32)
        if kind == "alu":
            tb.append(pc, OpClass.IALU, dest=i % 64, src1=last_dest)
            last_dest = i % 64
        elif kind == "mult":
            tb.append(pc, OpClass.IMULT, dest=i % 64, src1=last_dest)
            last_dest = i % 64
        elif kind == "load":
            tb.append(pc, OpClass.LOAD, dest=i % 64, addr=BASE + 4 * arg)
            last_dest = i % 64
        elif kind == "store":
            tb.append(
                pc, OpClass.STORE, src1=last_dest, addr=BASE + 4 * arg, value=arg
            )
        else:
            tb.append(pc, OpClass.BRANCH, src1=last_dest, taken=arg % 2 == 0)
    return tb.build()


class TestSkipEquivalence:
    @given(stream=op_stream)
    @settings(max_examples=25, deadline=None)
    def test_random_traces_identical(self, stream):
        trace = build_trace(stream)
        results = {}
        for skip in (True, False):
            core = OutOfOrderCore(
                make_tiny("BC"), CoreConfig(enable_idle_skip=skip)
            )
            results[skip] = core.run(trace)
        assert results[True].cycles == results[False].cycles
        assert (
            results[True].metrics.miss_cycles
            == results[False].metrics.miss_cycles
        )
        assert (
            results[True].metrics.fetch_stall_cycles
            == results[False].metrics.fetch_stall_cycles
        )

    @pytest.mark.parametrize("config", ["BC", "BCP", "CPP"])
    def test_real_workload_identical(self, config):
        program = generate("olden.mst", seed=1, scale=0.1)
        fast = Machine(
            SimConfig(cache_config=config, core=CoreConfig(enable_idle_skip=True))
        ).run(program)
        slow = Machine(
            SimConfig(cache_config=config, core=CoreConfig(enable_idle_skip=False))
        ).run(program)
        assert fast.cycles == slow.cycles
        assert fast.l1.misses == slow.l1.misses
        assert fast.bus_words == slow.bus_words
        assert fast.metrics.avg_ready_queue_in_miss_cycles == pytest.approx(
            slow.metrics.avg_ready_queue_in_miss_cycles
        )
