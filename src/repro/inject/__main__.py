"""Command-line front-end: ``python -m repro.inject``.

Examples
--------
A quick seeded campaign, unprotected vs SECDED::

    python -m repro.inject --seeds 25 --protect none,secded

CI gate: SECDED must show zero silent data corruption::

    python -m repro.inject --seeds 25 --protect secded --assert-no-sdc secded

Rate-driven planning (faults per 1000 ops) with checkpoint/resume::

    python -m repro.inject --rate 2.5 --ops 400 --checkpoint inj.json

Exit status: 0 on a clean campaign, 1 on usage errors, permanently
failed cells, or a violated ``--assert-no-sdc`` gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ReproError, UsageError
from repro.inject.campaign import (
    build_cells,
    format_report,
    run_campaign,
    summarize,
)
from repro.inject.faults import LEVELS, TARGETS
from repro.inject.plan import faults_for_rate
from repro.inject.protect import PROTECTION_NAMES
from repro.inject.recover import RECOVERY_NAMES
from repro.obs import export as _export
from repro.obs import telemetry as _telemetry

__all__ = ["main"]


def _csv(value: str) -> tuple[str, ...]:
    return tuple(part.strip() for part in value.split(",") if part.strip())


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.inject",
        description="Seeded soft-error injection campaigns for the CPP hierarchy.",
    )
    parser.add_argument("--config", default="CPP", help="hierarchy configuration")
    parser.add_argument(
        "--seed", type=int, default=0, help="base campaign seed"
    )
    parser.add_argument(
        "--seeds", type=int, default=25, help="number of seeded cells per protection"
    )
    parser.add_argument(
        "--ops", type=int, default=400, help="accesses per cell"
    )
    parser.add_argument(
        "--faults", type=int, default=1, help="faults planned per seed"
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=None,
        help="plan faults per seed from a rate (faults per 1000 ops); overrides --faults",
    )
    parser.add_argument(
        "--bits", type=int, default=1, help="bits flipped per fault (1=SEU, 2=double)"
    )
    parser.add_argument(
        "--targets",
        type=_csv,
        default=TARGETS,
        help=f"comma-separated fault targets ({','.join(TARGETS)})",
    )
    parser.add_argument(
        "--levels",
        type=_csv,
        default=LEVELS,
        help="comma-separated cache levels for cache targets (l1,l2)",
    )
    parser.add_argument(
        "--protect",
        type=_csv,
        default=("none", "secded"),
        help=f"comma-separated protection models ({','.join(PROTECTION_NAMES)})",
    )
    parser.add_argument(
        "--recover",
        default="refetch",
        help=f"recovery policy ({','.join(RECOVERY_NAMES)})",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="parallel worker processes"
    )
    parser.add_argument(
        "--timeout", type=float, default=None, help="per-cell wall-clock budget (s)"
    )
    parser.add_argument(
        "--retries", type=int, default=1, help="retries per failed cell"
    )
    parser.add_argument(
        "--checkpoint", type=Path, default=None, help="checkpoint file (JSONL)"
    )
    parser.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse completed cells from the checkpoint",
    )
    parser.add_argument(
        "--assert-no-sdc",
        action="append",
        default=[],
        metavar="PROTECT",
        help="fail if the named protection model shows any SDC (repeatable)",
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="write outcome records to this file"
    )
    parser.add_argument(
        "--telemetry",
        type=Path,
        default=None,
        metavar="DIR",
        help="record cross-process spans/metrics into DIR (telemetry.json, "
        "trace.json, spans.jsonl)",
    )
    return parser


def _validate(args: argparse.Namespace) -> None:
    if args.seed < 0:
        raise UsageError("--seed must be non-negative", argument="--seed")
    if args.seeds < 1:
        raise UsageError("--seeds must be positive", argument="--seeds")
    if args.ops < 2:
        raise UsageError("--ops must be at least 2", argument="--ops")
    if args.faults < 1:
        raise UsageError("--faults must be positive", argument="--faults")
    if args.rate is not None and args.rate <= 0:
        raise UsageError("--rate must be positive", argument="--rate")
    if args.timeout is not None and args.timeout <= 0:
        raise UsageError("--timeout must be positive", argument="--timeout")
    if args.retries < 0:
        raise UsageError("--retries must be non-negative", argument="--retries")
    if args.workers is not None and args.workers < 1:
        raise UsageError("--workers must be positive", argument="--workers")
    for protect in args.assert_no_sdc:
        if protect not in PROTECTION_NAMES:
            raise UsageError(
                f"unknown protection model {protect!r} in --assert-no-sdc",
                argument="--assert-no-sdc",
                choices=PROTECTION_NAMES,
            )


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    store = None
    if args.telemetry is not None:
        store = _telemetry.configure(args.telemetry)
    try:
        _validate(args)
        faults_per_seed = (
            faults_for_rate(args.rate, args.ops)
            if args.rate is not None
            else args.faults
        )
        cells = build_cells(
            config=args.config,
            protects=args.protect,
            recover=args.recover,
            seed=args.seed,
            seeds=args.seeds,
            faults_per_seed=faults_per_seed,
            n_ops=args.ops,
            targets=args.targets,
            levels=args.levels,
            bits=args.bits,
        )
        outcome = run_campaign(
            cells,
            timeout=args.timeout,
            retries=args.retries,
            max_workers=args.workers,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            progress=True,
        )
    except UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    finally:
        if store is not None:
            _telemetry.finalize_run()
            _export.write_chrome_trace(
                store, args.telemetry / _export.CHROME_TRACE_FILENAME
            )
            _export.write_spans_jsonl(
                store, args.telemetry / _export.SPANS_FILENAME
            )
            _telemetry.configure(None)
            print(f"telemetry written to {args.telemetry}", file=sys.stderr)

    summary = summarize(outcome.results)
    print(format_report(summary, outcome.failures))
    if args.json is not None:
        args.json.write_text(
            json.dumps(
                {
                    "summary": summary,
                    "results": [
                        outcome.results[key] for key in sorted(outcome.results)
                    ],
                    "failures": [
                        {"key": list(f.key), "kind": f.kind}
                        for f in outcome.failures
                    ],
                },
                indent=2,
                sort_keys=True,
            )
        )
    status = 0
    if outcome.failures:
        status = 1
    for protect in args.assert_no_sdc:
        hist = summary["by_protect"].get(protect)
        if hist is None:
            print(
                f"error: --assert-no-sdc {protect}: no cells ran under that model",
                file=sys.stderr,
            )
            status = 1
        elif hist["sdc"]:
            print(
                f"error: {hist['sdc']} SDC outcome(s) under {protect}",
                file=sys.stderr,
            )
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
