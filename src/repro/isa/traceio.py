"""Trace persistence: save/load columnar traces as ``.npz`` archives.

Workload generation is deterministic but not free (a full-size trace
takes a fraction of a second to minutes); persisting traces lets
experiment campaigns and external tools share exactly the same inputs.
The format is a plain NumPy archive — one array per column plus a small
metadata record — so it is readable without this library.

Two granularities are supported:

* :func:`save_trace` / :func:`load_trace` — just the instruction columns;
* :func:`save_program` / :func:`load_program` — a whole generated
  :class:`~repro.workloads.base.Program` (trace + metadata + the sparse
  final memory image), which is what the runner's on-disk program cache
  stores (see :func:`program_cache_path`).
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
import zlib
from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.isa.trace import Trace
from repro.obs.metrics import REGISTRY

__all__ = [
    "save_trace",
    "load_trace",
    "save_program",
    "load_program",
    "program_cache_path",
    "FORMAT_VERSION",
    "PROGRAM_FORMAT_VERSION",
]

FORMAT_VERSION = 1

#: Version of the *program* archive layout (trace + image + metadata).
#: v2 added the per-archive array checksum (verify-on-read); v1 archives
#: are treated as stale and regenerated.
PROGRAM_FORMAT_VERSION = 2

#: Errors NumPy/zipfile raise on a truncated, bit-flipped or foreign
#: archive. ``zlib.error`` surfaces from decompressing damaged members.
_ARCHIVE_ERRORS = (OSError, ValueError, KeyError, zipfile.BadZipFile, zlib.error)

_COLUMNS = ("pc", "op", "dest", "src1", "src2", "addr", "value", "taken")


def save_trace(trace: Trace, path: str | Path) -> Path:
    """Write *trace* to ``path`` (``.npz`` appended if missing).

    Returns the final path written.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = json.dumps({"version": FORMAT_VERSION, "name": trace.name})
    np.savez_compressed(
        path,
        meta=np.frombuffer(meta.encode("utf-8"), dtype=np.uint8),
        **{col: getattr(trace, col) for col in _COLUMNS},
    )
    return path


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`.

    The loaded trace is validated structurally before being returned.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file {path} does not exist")
    with np.load(path) as archive:
        missing = [c for c in _COLUMNS if c not in archive]
        if "meta" not in archive or missing:
            raise TraceError(
                f"{path} is not a trace archive (missing {missing or ['meta']})"
            )
        meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        if meta.get("version") != FORMAT_VERSION:
            raise TraceError(
                f"{path}: unsupported trace format version {meta.get('version')}"
            )
        trace = Trace(
            pc=archive["pc"],
            op=archive["op"],
            dest=archive["dest"],
            src1=archive["src1"],
            src2=archive["src2"],
            addr=archive["addr"],
            value=archive["value"],
            taken=archive["taken"],
            name=str(meta.get("name", "")),
        )
    trace.validate()
    return trace


# ---- whole-program archives (the runner's on-disk cache format) ------------


def _arrays_checksum(arrays: dict[str, np.ndarray]) -> str:
    """SHA-256 over every array's name, dtype, shape and raw bytes.

    Computed at save time, stored in the archive metadata, and recomputed
    at load time — so a bit flip anywhere in the cached data (not just a
    truncation the zip layer notices) is detected, and the loader
    regenerates instead of serving a silently-bad trace.
    """
    h = hashlib.sha256()
    for name in sorted(arrays):
        a = np.ascontiguousarray(arrays[name])
        h.update(name.encode("utf-8"))
        h.update(str(a.dtype).encode("utf-8"))
        h.update(str(a.shape).encode("utf-8"))
        h.update(a.tobytes())
    return h.hexdigest()


def quarantine_archive(path: Path, reason: str) -> Path | None:
    """Move a corrupt cache archive aside and record the incident.

    The file goes to a ``quarantine/`` directory next to it, a line is
    appended to that directory's ledger, and the ``store.quarantined``
    metric (kind=trace_cache) is incremented — corruption is evidence,
    never something to silently delete. Returns the quarantine path
    (None when the move itself failed).
    """
    REGISTRY.inc("store.quarantined", kind="trace_cache")
    qdir = path.parent / "quarantine"
    try:
        qdir.mkdir(parents=True, exist_ok=True)
        dest = qdir / path.name
        n = 0
        while dest.exists():
            n += 1
            dest = qdir / f"{path.name}.{n}"
        os.replace(path, dest)
    except OSError:
        return None
    try:
        with (qdir / "ledger.jsonl").open("a", encoding="utf-8") as fh:
            fh.write(
                json.dumps(
                    {
                        "error": "StoreCorruptionError",
                        "path": str(path),
                        "quarantined_as": str(dest),
                        "reason": reason,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
    except OSError:
        pass
    return dest


def _sanitize(part: str) -> str:
    """Make a key component safe as a filename fragment."""
    return "".join(c if (c.isalnum() or c in "._-") else "_" for c in part)


def program_cache_path(
    cache_dir: str | Path,
    workload: str,
    *,
    seed: int,
    scale: float,
    generator_version: str,
) -> Path:
    """Canonical archive path for one generated program.

    The filename encodes the full generation key — workload name, seed,
    scale and the workload generators' version stamp — so a stale cache
    entry can never be confused with a current one: bumping the generator
    version changes every path.
    """
    name = (
        f"{_sanitize(workload)}-seed{seed}-scale{scale:g}"
        f"-gen{_sanitize(generator_version)}.npz"
    )
    return Path(cache_dir) / name


def save_program(program, path: str | Path) -> Path:
    """Write a generated :class:`~repro.workloads.base.Program` to *path*.

    Stores the trace columns, the program metadata (name, description,
    params) and the sparse final memory image (page numbers + page data),
    all in one compressed NumPy archive. Returns the path written.

    The write goes through a temporary file renamed into place, so a
    crashed or concurrent writer can never leave a torn archive behind.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    arrays = {
        col: getattr(program.trace, col) for col in _COLUMNS
    }
    if program.final_image is not None:
        page_nos = sorted(program.final_image._pages)
        arrays["image_page_nos"] = np.asarray(page_nos, dtype=np.int64)
        arrays["image_pages"] = (
            np.stack([program.final_image._pages[p] for p in page_nos])
            if page_nos
            else np.zeros((0, 0), dtype=np.uint32)
        )
    meta = json.dumps(
        {
            # Distinct key from the plain-trace "version" field, so neither
            # loader can mistake the other's archives for its own.
            "program_version": PROGRAM_FORMAT_VERSION,
            "trace_version": FORMAT_VERSION,
            "name": program.name,
            "trace_name": program.trace.name,
            "description": program.description,
            "params": program.params,
            "checksum": _arrays_checksum(arrays),
        }
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp{id(program) & 0xFFFF:04x}.npz")
    np.savez_compressed(
        tmp,
        meta=np.frombuffer(meta.encode("utf-8"), dtype=np.uint8),
        **arrays,
    )
    tmp.replace(path)
    return path


def load_program(path: str | Path):
    """Read a program archive written by :func:`save_program`, verified.

    Returns a :class:`~repro.workloads.base.Program`; raises
    :class:`TraceError` on a missing file, a foreign archive, or a format
    version mismatch (the caller then regenerates). An archive that is
    *corrupt* — unreadable, truncated, or failing its stored checksum —
    is additionally quarantined (see :func:`quarantine_archive`) before
    the :class:`TraceError` is raised: regeneration is deterministic, so
    the caller gets a bit-identical program, and the damaged file stays
    available as evidence instead of silently poisoning the cache.
    """
    from repro.memory.image import MemoryImage
    from repro.workloads.base import Program

    path = Path(path)
    if not path.exists():
        raise TraceError(f"program archive {path} does not exist")

    def _corrupt(reason: str, cause: Exception | None = None) -> TraceError:
        quarantine_archive(path, reason)
        error = TraceError(f"{path} is corrupt: {reason}")
        error.__cause__ = cause
        return error

    try:
        archive_cm = np.load(path)
    except _ARCHIVE_ERRORS as exc:  # truncated/bit-flipped/foreign file
        raise _corrupt(f"not a readable archive: {exc}", exc)
    with archive_cm as archive:
        try:
            names = set(archive.files)
        except _ARCHIVE_ERRORS as exc:
            raise _corrupt(f"unreadable archive index: {exc}", exc)
        missing = [c for c in _COLUMNS if c not in names]
        if "meta" not in names or missing:
            raise TraceError(
                f"{path} is not a program archive (missing {missing or ['meta']})"
            )
        try:
            meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        except _ARCHIVE_ERRORS as exc:
            raise _corrupt(f"unreadable metadata: {exc}", exc)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _corrupt(f"undecodable metadata: {exc}", exc)
        if meta.get("program_version") != PROGRAM_FORMAT_VERSION:
            raise TraceError(
                f"{path}: unsupported program format version "
                f"{meta.get('program_version')}"
            )
        try:
            arrays = {col: archive[col] for col in _COLUMNS}
            if "image_page_nos" in names:
                arrays["image_page_nos"] = archive["image_page_nos"]
                arrays["image_pages"] = archive["image_pages"]
        except _ARCHIVE_ERRORS as exc:  # damaged member decompression
            raise _corrupt(f"unreadable array data: {exc}", exc)
        stored = meta.get("checksum")
        actual = _arrays_checksum(arrays)
        if stored != actual:
            raise _corrupt(
                f"checksum mismatch (stored {str(stored)[:12]}…, "
                f"actual {actual[:12]}…)"
            )
        trace = Trace(
            **{col: arrays[col] for col in _COLUMNS},
            name=str(meta.get("trace_name", "")),
        )
        final_image = None
        if "image_page_nos" in arrays:
            final_image = MemoryImage()
            pages = arrays["image_pages"]
            for i, page_no in enumerate(arrays["image_page_nos"]):
                final_image._pages[int(page_no)] = pages[i].astype(
                    np.uint32, copy=True
                )
    trace.validate()
    return Program(
        name=str(meta.get("name", "")),
        trace=trace,
        description=str(meta.get("description", "")),
        params=dict(meta.get("params", {})),
        final_image=final_image,
    )
