"""Lockstep differential runner: real hierarchy vs. naive reference.

The runner builds two identical environments (same seeded memory image,
same geometry and latency parameters), drives the optimized hierarchy
from :mod:`repro.caches` and the naive twin from
:mod:`repro.check.reference` with the same access stream, and after
*every* access compares

* the :class:`~repro.caches.interface.AccessResult` (latency, serving
  level, loaded value),
* every :class:`~repro.caches.stats.CacheStats` counter of both levels
  (hit/miss class, affiliated hits, promotions, stashes, drops, ...),
* bus traffic (words and transfer counts per
  :class:`~repro.memory.bus.TrafficKind`) and memory read/write counts,

and at end of stream flushes both sides and compares the resulting
memory images word for word. The first mismatch is returned as a
:class:`Divergence`; :meth:`DifferentialRunner.minimize` then shrinks
the failing stream with a delta-debugging loop to a small reproducer.

An exception raised by either side (e.g. a strict-image
``UnmappedAddressError`` out of a boundary-line prefetch, or an
``InvariantViolation`` from the runtime audit layer) is itself reported
as a divergence — the reference is the oracle for "this stream is
legal", so the real model has no business throwing on it.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.caches.hierarchy import HierarchyParams, build_hierarchy
from repro.caches.stats import CacheStats
from repro.check.reference import build_reference_hierarchy
from repro.memory.bus import TrafficKind
from repro.memory.image import MemoryImage
from repro.memory.main_memory import MainMemory
from repro.utils.bitops import MASK32

__all__ = [
    "BackendDiffRunner",
    "BackendDivergence",
    "DifferentialRunner",
    "Divergence",
    "Op",
    "program_stream",
    "random_program",
    "random_stream",
]


class Op:
    """One CPU access of a differential stream."""

    __slots__ = ("write", "addr", "value")

    def __init__(self, write: bool, addr: int, value: int | None = None) -> None:
        self.write = write
        self.addr = addr
        self.value = value

    def __repr__(self) -> str:
        if self.write:
            return f"Op(store {self.addr:#x} <- {self.value:#x})"
        return f"Op(load {self.addr:#x})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Op)
            and self.write == other.write
            and self.addr == other.addr
            and self.value == other.value
        )


@dataclass
class Divergence:
    """First observed disagreement between the real model and the reference.

    ``index`` is the position in the stream where the mismatch surfaced
    (``len(ops)`` means it surfaced at the end-of-stream flush/image
    comparison); ``where`` names the compared quantity.
    """

    config: str
    index: int
    op: Op | None
    where: str
    real: object
    ref: object
    ops: list[Op] = field(default_factory=list)

    def describe(self) -> str:
        """Human-readable account of the mismatch plus the stream tail."""
        lines = [
            f"divergence in config {self.config} at op {self.index}"
            + (f" ({self.op!r})" if self.op is not None else " (end of stream)"),
            f"  {self.where}: real={self.real!r} reference={self.ref!r}",
            f"  stream length {len(self.ops)}",
        ]
        tail = self.ops[max(0, self.index - 4) : self.index + 1]
        for i, op in enumerate(tail, start=max(0, self.index - 4)):
            lines.append(f"    [{i}] {op!r}")
        return "\n".join(lines)


class DifferentialRunner:
    """Drive the real and reference hierarchies in lockstep.

    Parameters
    ----------
    config:
        One of the evaluated configuration names (``BC``/``BCC``/``HAC``/
        ``BCP``/``CPP``).
    image_factory:
        Zero-argument callable returning a *fresh* identically-seeded
        :class:`MemoryImage` per call; it is invoked once per side per
        run (and repeatedly during minimization), so it must be
        deterministic. Defaults to an empty non-strict image.
    params:
        :class:`HierarchyParams` for both sides (defaults to the paper's
        geometry — use a tiny geometry for fuzzing so sets actually
        conflict).
    memory_latency:
        Flat DRAM latency for both sides.
    """

    def __init__(
        self,
        config: str,
        image_factory: Callable[[], MemoryImage] | None = None,
        params: HierarchyParams | None = None,
        *,
        memory_latency: int = 100,
    ) -> None:
        self.config = config.upper()
        self.image_factory = image_factory or MemoryImage
        self.params = params or HierarchyParams()
        self.memory_latency = memory_latency

    # -- construction --

    def _build(self):
        real_memory = MainMemory(self.image_factory(), latency=self.memory_latency)
        real = build_hierarchy(self.config, real_memory, self.params)
        ref_memory = MainMemory(self.image_factory(), latency=self.memory_latency)
        ref = build_reference_hierarchy(self.config, ref_memory, self.params)
        return real, ref

    # -- comparison --

    @staticmethod
    def _stats_mismatch(real_stats: CacheStats, ref_stats: CacheStats):
        for name in CacheStats.COUNTER_FIELDS:
            a = getattr(real_stats, name)
            b = getattr(ref_stats, name)
            if a != b:
                return f"{real_stats.name or '?'}.{name}", a, b
        if real_stats.extra != ref_stats.extra:
            return f"{real_stats.name or '?'}.extra", dict(real_stats.extra), dict(
                ref_stats.extra
            )
        return None

    def _state_mismatch(self, real, ref):
        for label, rs, fs in (
            ("l1", real.l1_stats, ref.l1_stats),
            ("l2", real.l2_stats, ref.l2_stats),
        ):
            found = self._stats_mismatch(rs, fs)
            if found:
                where, a, b = found
                return f"stats.{label}.{where.split('.', 1)[-1]}", a, b
        for kind in TrafficKind:
            a = real.bus.words_by_kind[kind]
            b = ref.bus.words_by_kind[kind]
            if a != b:
                return f"bus.words.{kind.value}", a, b
            a = real.bus.transfers_by_kind[kind]
            b = ref.bus.transfers_by_kind[kind]
            if a != b:
                return f"bus.transfers.{kind.value}", a, b
        if real.memory.n_reads != ref.memory.n_reads:
            return "memory.n_reads", real.memory.n_reads, ref.memory.n_reads
        if real.memory.n_writes != ref.memory.n_writes:
            return "memory.n_writes", real.memory.n_writes, ref.memory.n_writes
        return None

    # -- execution --

    def run(
        self, ops: list[Op], *, audit: bool = False
    ) -> Divergence | None:
        """Replay *ops* on both sides; return the first divergence or None.

        With ``audit=True`` both hierarchies additionally re-verify their
        structural invariants after every access (the same checks the
        ``REPRO_CHECK=1`` runtime layer performs).
        """
        real, ref = self._build()
        now = 0
        for index, op in enumerate(ops):
            found = self._step(real, ref, index, op, now, audit)
            if found is not None:
                found.ops = list(ops)
                return found
            now += self._last_latency
        # End of stream: drain both sides and compare architectural memory.
        try:
            real.flush()
            real_exc = None
        except Exception as exc:  # noqa: BLE001 - any failure is a finding
            real_exc = exc
        try:
            ref.flush()
            ref_exc = None
        except Exception as exc:  # noqa: BLE001
            ref_exc = exc
        if real_exc is not None or ref_exc is not None:
            return Divergence(
                self.config,
                len(ops),
                None,
                "flush.exception",
                repr(real_exc),
                repr(ref_exc),
                list(ops),
            )
        found = self._state_mismatch(real, ref)
        if found:
            where, a, b = found
            return Divergence(self.config, len(ops), None, where, a, b, list(ops))
        if real.memory.image != ref.memory.image:
            return Divergence(
                self.config,
                len(ops),
                None,
                "memory.image",
                "differs",
                "differs",
                list(ops),
            )
        return None

    def _step(self, real, ref, index, op, now, audit) -> Divergence | None:
        self._last_latency = 0

        def drive(side):
            if op.write:
                return side.store(op.addr, op.value & MASK32, now)
            return side.load(op.addr, now)

        try:
            r = drive(real)
            if audit:
                real.check_invariants()
            real_exc = None
        except Exception as exc:  # noqa: BLE001 - any failure is a finding
            r, real_exc = None, exc
        try:
            f = drive(ref)
            if audit:
                ref.check_invariants()
            ref_exc = None
        except Exception as exc:  # noqa: BLE001
            f, ref_exc = None, exc
        if real_exc is not None or ref_exc is not None:
            return Divergence(
                self.config,
                index,
                op,
                "exception",
                repr(real_exc),
                repr(ref_exc),
            )
        if r.latency != f.latency:
            return Divergence(self.config, index, op, "latency", r.latency, f.latency)
        if r.served_by != f.served_by:
            return Divergence(
                self.config, index, op, "served_by", r.served_by, f.served_by
            )
        if r.value != f.value:
            return Divergence(self.config, index, op, "value", r.value, f.value)
        found = self._state_mismatch(real, ref)
        if found:
            where, a, b = found
            return Divergence(self.config, index, op, where, a, b)
        self._last_latency = r.latency
        return None

    # -- minimization --

    def minimize(
        self, ops: list[Op], *, audit: bool = False
    ) -> tuple[list[Op], Divergence]:
        """Shrink a diverging stream to a (locally) minimal reproducer.

        Delta debugging over the op list: repeatedly drop chunks, keeping
        any candidate that still diverges (not necessarily with the same
        symptom — any divergence is a bug), halving the chunk size until
        single ops can't be removed. Deterministic given a deterministic
        ``image_factory``.
        """
        if self.run(ops, audit=audit) is None:
            raise ValueError("minimize() needs a stream that diverges")
        current = list(ops)
        chunk = max(1, len(current) // 2)
        while True:
            removed_any = False
            start = 0
            while start < len(current):
                candidate = current[:start] + current[start + chunk :]
                if candidate and self.run(candidate, audit=audit) is not None:
                    current = candidate
                    removed_any = True
                else:
                    start += chunk
            if not removed_any and chunk == 1:
                break
            if not removed_any:
                chunk = max(1, chunk // 2)
        final = self.run(current, audit=audit)
        assert final is not None
        return current, final


# ---- backend lockstep ------------------------------------------------------


@dataclass
class BackendDivergence:
    """First field where two backends' lossless results disagree.

    ``path`` is the dotted location inside the
    :func:`~repro.sim.results_io.result_to_full_dict` form — e.g.
    ``metrics.ready_insns_m2`` or ``l1.hits`` — so the symptom names the
    subsystem that drifted.
    """

    config: str
    workload: str
    path: str
    a_backend: str
    b_backend: str
    a_value: object
    b_value: object

    def describe(self) -> str:
        """One-line account: cell, differing path, both backends' values."""
        return (
            f"backend divergence in {self.workload} on {self.config} at "
            f"{self.path}: {self.a_backend}={self.a_value!r} "
            f"{self.b_backend}={self.b_value!r}"
        )


def _dict_diff(a, b, path: str = ""):
    """First differing leaf between two JSON-shaped values, or None."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in a or key not in b:
                return sub, a.get(key, "<absent>"), b.get(key, "<absent>")
            found = _dict_diff(a[key], b[key], sub)
            if found is not None:
                return found
        return None
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            return f"{path}.len", len(a), len(b)
        for i, (x, y) in enumerate(zip(a, b)):
            found = _dict_diff(x, y, f"{path}[{i}]")
            if found is not None:
                return found
        return None
    if a != b:
        return path, a, b
    return None


class BackendDiffRunner:
    """Run one program under two simulation backends in lockstep.

    Both backends execute the identical program on identically configured
    machines; afterwards the *lossless* result forms
    (:func:`~repro.sim.results_io.result_to_full_dict` — cycles, every
    cache counter, bus word breakdown, core metrics including the Welford
    accumulators) are compared leaf by leaf. Backends are bit-identical
    by contract, so the first differing leaf is a bug, and its path names
    the drifted subsystem.
    """

    def __init__(
        self,
        config: str = "CPP",
        *,
        backends: tuple[str, str] = ("reference", "fast"),
        miss_scale: float = 1.0,
    ) -> None:
        self.config = config.upper()
        self.backends = backends
        self.miss_scale = miss_scale

    def run(self, program) -> BackendDivergence | None:
        """Simulate *program* under both backends; first divergence or None."""
        import json

        from repro.sim.config import SimConfig
        from repro.sim.machine import Machine
        from repro.sim.results_io import result_to_full_dict

        dicts = []
        for backend in self.backends:
            cfg = SimConfig(
                cache_config=self.config,
                backend=backend,
                miss_scale=self.miss_scale,
            )
            result = Machine(cfg).run(program)
            # JSON round trip normalizes tuples/lists so only value
            # differences (never container flavor) count as divergence.
            dicts.append(json.loads(json.dumps(result_to_full_dict(result))))
        found = _dict_diff(dicts[0], dicts[1])
        if found is None:
            return None
        path, a, b = found
        return BackendDivergence(
            self.config,
            program.name,
            path,
            self.backends[0],
            self.backends[1],
            a,
            b,
        )


def random_program(seed: int, n_ops: int = 600):
    """A randomized synthetic program exercising both backends' hot paths.

    The value mix mirrors :func:`random_stream` (small positives, sign-
    extension negatives, pointer-prefix values, junk) so stores flip
    compressibility bits; dependent load chains, data-dependent branches
    and FP ops exercise forwarding, the branch predictor and every
    functional-unit class in the fast core's flat scheduler.
    """
    import random

    from repro.isa.opcodes import OpClass
    from repro.workloads.base import ProgramBuilder

    rng = random.Random(seed)
    pb = ProgramBuilder(f"fuzz.backend.s{seed}", seed=seed)
    arrays = [pb.static_array(512) for _ in range(3)]
    arrays.append(pb.malloc(4 * 512))
    # Seed one array so early loads return nonzero values.
    for i in range(0, 512, 7):
        pb.store(arrays[0] + 4 * i, (i * 2654435761) & MASK32, label="seed")
    kinds = (OpClass.IALU, OpClass.IMULT, OpClass.FALU, OpClass.FMULT)
    for i in range(n_ops):
        base = arrays[rng.randrange(len(arrays))]
        addr = base + 4 * rng.randrange(512)
        pick = rng.random()
        if pick < 0.35:
            pb.load(addr, f"r{rng.randrange(8)}", base=f"r{rng.randrange(8)}")
        elif pick < 0.6:
            v = rng.random()
            if v < 0.35:
                value = rng.randrange(0, 1 << 14)
            elif v < 0.5:
                value = (MASK32 ^ rng.randrange(0, 1 << 14)) & MASK32
            elif v < 0.75:
                value = (addr & ~0x3FFFF) | rng.randrange(0, 1 << 18)
            else:
                value = rng.randrange(0, 1 << 32)
            pb.store(
                addr,
                value,
                base=f"r{rng.randrange(8)}",
                src=f"r{rng.randrange(8)}",
            )
        elif pick < 0.85:
            pb.op(
                f"r{rng.randrange(8)}",
                (f"r{rng.randrange(8)}", f"r{rng.randrange(8)}"),
                kind=kinds[rng.randrange(len(kinds))],
            )
        else:
            pb.if_(
                f"br{rng.randrange(4)}",
                rng.random() < 0.6,
                srcs=(f"r{rng.randrange(8)}",),
            )
    return pb.build(description="backend lockstep fuzz program")


# ---- stream generators -----------------------------------------------------


def random_stream(
    rng,
    n_ops: int,
    regions: list[tuple[int, int]],
    *,
    write_frac: float = 0.35,
    scheme=None,
) -> list[Op]:
    """A randomized access stream over *regions* (``(base_addr, n_words)``).

    Store values are drawn from a mix chosen to exercise every
    classification branch of the compression scheme: small positives,
    small negatives (sign-extension compressible), pointer-like values
    sharing the address prefix, and arbitrary 32-bit junk — so stores
    flip words between compressible and incompressible and force the
    slot-reclamation paths.
    """
    payload = int(getattr(scheme, "payload_bits", 15)) if scheme is not None else 15
    prefix_mask = MASK32 & ~((1 << payload) - 1)
    ops: list[Op] = []
    for _ in range(n_ops):
        base, n_words = regions[rng.randrange(len(regions))]
        addr = (base + 4 * rng.randrange(n_words)) & ~0x3
        write = rng.random() < write_frac
        value = None
        if write:
            pick = rng.random()
            if pick < 0.35:
                value = rng.randrange(0, 1 << max(1, payload - 1))
            elif pick < 0.5:
                value = (MASK32 ^ rng.randrange(0, 1 << max(1, payload - 1))) & MASK32
            elif pick < 0.75:
                value = (addr & prefix_mask) | rng.randrange(0, 1 << payload)
            else:
                value = rng.randrange(0, 1 << 32)
        ops.append(Op(write, addr, value))
    return ops


def program_stream(program) -> list[Op]:
    """The load/store sequence of a generated workload trace.

    Replaying this stream from an empty image reconstructs the workload's
    memory contents on both sides (the trace contains every store), so a
    full-workload differential run needs no seeded image.
    """
    ops: list[Op] = []
    for ins in program.trace:
        if ins.is_store:
            ops.append(Op(True, ins.addr, ins.value & MASK32))
        elif ins.is_load:
            ops.append(Op(False, ins.addr))
    return ops


def _iter_ops(ops: Iterable[Op]) -> list[Op]:  # pragma: no cover - convenience
    return list(ops)
