"""Progress modes: REPRO_PROGRESS / configure(), json lines, sinks."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import progress


@pytest.fixture(autouse=True)
def _clean_progress(monkeypatch):
    monkeypatch.delenv("REPRO_PROGRESS", raising=False)
    progress.configure(None)
    progress.set_sink(None)
    yield
    progress.configure(None)
    progress.set_sink(None)


class TestModeResolution:
    def test_default_is_auto(self):
        assert progress.mode() == "auto"

    def test_env_sets_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS", "json")
        assert progress.mode() == "json"

    def test_env_is_case_insensitive(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS", " QUIET ")
        assert progress.mode() == "quiet"

    def test_configure_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS", "json")
        progress.configure("plain")
        assert progress.mode() == "plain"
        progress.configure(None)
        assert progress.mode() == "json"

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS", "verbose")
        with pytest.raises(ConfigurationError):
            progress.mode()

    def test_bad_configure_value_raises(self):
        with pytest.raises(ConfigurationError):
            progress.configure("loud")


class TestOutput:
    def test_plain_mode_prefixes_on_stderr(self, capsys):
        progress.configure("plain")
        progress.report("completed a on b", event="cell_done")
        captured = capsys.readouterr()
        assert captured.err == "[repro] completed a on b\n"
        assert captured.out == ""

    def test_json_mode_emits_machine_readable_line(self, capsys):
        progress.configure("json")
        progress.report(
            "completed olden.mst on CPP (3/5)",
            event="cell_done",
            workload="olden.mst",
            config="CPP",
            done=3,
            total=5,
        )
        line = capsys.readouterr().err.strip()
        payload = json.loads(line)
        assert payload == {
            "msg": "completed olden.mst on CPP (3/5)",
            "event": "cell_done",
            "workload": "olden.mst",
            "config": "CPP",
            "done": 3,
            "total": 5,
        }

    def test_quiet_mode_drops_everything(self, capsys):
        progress.configure("quiet")
        progress.report("noise")
        captured = capsys.readouterr()
        assert captured.err == "" and captured.out == ""

    def test_custom_sink_wins_over_quiet(self):
        progress.configure("quiet")
        seen = []
        progress.set_sink(seen.append)
        progress.report("important", event="x")
        assert seen == ["important"]

    def test_silence_helper(self, capsys):
        progress.silence()
        progress.report("dropped")
        assert capsys.readouterr().err == ""
