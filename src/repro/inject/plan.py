"""Campaign planner: deterministic fault plans keyed by ``utils/rng``.

Every random choice the plan makes — target, level, trigger point and
the per-fault ``site_seed`` that later drives site selection inside the
armed session — is derived from the campaign seed with
:func:`repro.utils.rng.derive_seed`, so the same ``(seed, n_faults,
n_ops, targets, levels, bits)`` tuple always produces the identical
plan, independent of process, platform or interleaving. That is what
makes an entire campaign (and its checkpoint/resume) reproducible.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.inject.faults import CACHE_TARGETS, LEVELS, TARGETS, FaultSpec
from repro.utils.rng import derive_seed, make_rng

__all__ = ["build_plan", "faults_for_rate"]


def faults_for_rate(rate: float, n_ops: int) -> int:
    """Fault count for an injection *rate* in faults per 1000 operations."""
    if rate <= 0:
        raise ConfigurationError("injection rate must be positive")
    if n_ops < 1:
        raise ConfigurationError("n_ops must be positive")
    return max(1, round(rate * n_ops / 1000.0))


def build_plan(
    *,
    seed: int,
    n_faults: int,
    n_ops: int,
    targets: tuple[str, ...] = TARGETS,
    levels: tuple[str, ...] = LEVELS,
    bits: int = 1,
) -> list[FaultSpec]:
    """Plan *n_faults* deterministic faults for a cell of *n_ops* accesses.

    Cache and memory faults trigger on the op clock, drawn from the run's
    back 90% so the warmed-up hierarchy has resident sites to corrupt;
    bus faults trigger on the (much slower) transfer clock, drawn low
    enough that a tiny-geometry run still reaches them.
    """
    if n_faults < 1:
        raise ConfigurationError("n_faults must be positive")
    if n_ops < 2:
        raise ConfigurationError("n_ops must be at least 2")
    if bits < 1 or bits > 32:
        raise ConfigurationError("bits per fault must be in 1..32")
    targets = tuple(targets)
    levels = tuple(levels)
    if not targets:
        raise ConfigurationError("at least one fault target is required")
    for t in targets:
        if t not in TARGETS:
            raise ConfigurationError(
                f"unknown fault target {t!r}; choose from {', '.join(TARGETS)}"
            )
    for lv in levels:
        if lv not in LEVELS:
            raise ConfigurationError(
                f"unknown cache level {lv!r}; choose from {', '.join(LEVELS)}"
            )
    if not levels and any(t in CACHE_TARGETS for t in targets):
        raise ConfigurationError("cache targets need at least one level")

    specs: list[FaultSpec] = []
    for fid in range(n_faults):
        rng = make_rng(derive_seed(seed, "inject.plan", fid))
        target = targets[int(rng.integers(len(targets)))]
        level = ""
        if target in CACHE_TARGETS:
            level = levels[int(rng.integers(len(levels)))]
        if target == "bus":
            # Transfer-clock domain: a miss-heavy tiny-geometry cell sees
            # roughly one transfer per few ops; stay well under that.
            trigger = int(rng.integers(1, max(2, n_ops // 8)))
        else:
            lo = max(1, n_ops // 10)
            trigger = int(rng.integers(lo, max(lo + 1, n_ops)))
        specs.append(
            FaultSpec(
                fault_id=fid,
                seed=derive_seed(seed, "inject.cell", fid),
                target=target,
                level=level,
                trigger=trigger,
                bits=bits,
                site_seed=derive_seed(seed, "inject.site", fid),
            )
        )
    return specs
