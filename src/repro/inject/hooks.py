"""Zero-cost-when-disabled gate for the fault-injection layer.

A deliberately tiny leaf module, mirroring :mod:`repro.check.runtime`:
the cache and memory models import it at module load, so it must not
(transitively) import any cache, memory or simulator code.

The hot paths guard every injection hook with ``if _inject.ACTIVE:`` —
one module-global load and a branch, the same cost class as the
``_trace.ACTIVE`` tracer gate that already sits on those paths. With no
session armed the simulator's behaviour (and its golden-cell outputs)
is bit-identical to a build without the hooks.

:func:`activate` arms a single :class:`~repro.inject.session.InjectionSession`
for the current process. Campaign cells arm their session inside the
forked worker (:mod:`repro.sim.fault`), so a crashing injected run can
never leave the parent process armed.
"""

from __future__ import annotations

__all__ = ["ACTIVE", "SESSION", "activate", "deactivate", "injection_active"]

#: Fast-path gate: ``True`` iff a session is armed in this process.
ACTIVE: bool = False

#: The armed session (``None`` when :data:`ACTIVE` is ``False``).
SESSION = None


def activate(session) -> None:
    """Arm *session*: every hooked model in this process reports to it."""
    global ACTIVE, SESSION
    SESSION = session
    ACTIVE = True


def deactivate() -> None:
    """Disarm injection; the hooks return to their zero-cost branch."""
    global ACTIVE, SESSION
    ACTIVE = False
    SESSION = None


def injection_active() -> bool:
    """Is a fault-injection session currently armed?"""
    return ACTIVE
