"""olden.tsp — closest-point heuristic tour over a doubly linked list.

The original builds a tree of cities, computes subtours and merges them
into a circular doubly linked tour with a closest-point heuristic. We
model the dominant phase: cities with fixed-point coordinates are
inserted one by one into a circular tour at the position minimizing the
detour, which walks the tour (pointer chase) computing squared distances
(integer multiplies) at each candidate.

City: ``{x, y, next, prev}``. Coordinates are 16.16 fixed point —
large bit patterns, mostly incompressible — while the tour links are
heap pointers; like em3d, a mixed-compressibility workload.
"""

from __future__ import annotations

from repro.isa.opcodes import OpClass
from repro.workloads.base import Program, ProgramBuilder, scaled

__all__ = ["build", "DEFAULT_CITIES"]

DEFAULT_CITIES = 128

_X = 0
_Y = 4
_NEXT = 8
_PREV = 12
_CITY_BYTES = 64  # the original's city record: coords, tree links, padding


def _fixed(x: float) -> int:
    """16.16 fixed-point encoding (always a large bit pattern here)."""
    return (int(x * 65536.0) + (1 << 20)) & 0xFFFF_FFFF


def build(seed: int = 1, scale: float = 1.0) -> Program:
    """Generate the tsp program; *scale* adjusts city count."""
    n = scaled(DEFAULT_CITIES, scale, minimum=4)

    pb = ProgramBuilder("olden.tsp", seed)
    pb.op("g", (), label="tsp.entry")

    coords: dict[int, tuple[float, float]] = {}
    cities: list[int] = []
    for _ in pb.for_range("tsp.mkcities", n, cond_srcs=("g",)):
        a = pb.malloc(_CITY_BYTES)
        x, y = float(pb.rng.uniform(0, 16)), float(pb.rng.uniform(0, 16))
        coords[a] = (x, y)
        cities.append(a)
        pb.store(a + _X, _fixed(x), base="g", label="tsp.init.x")
        pb.store(a + _Y, _fixed(y), base="g", label="tsp.init.y")
        pb.store(a + _NEXT, 0, base="g", label="tsp.init.n")
        pb.store(a + _PREV, 0, base="g", label="tsp.init.p")

    # Seed tour: first city linked to itself.
    tour: list[int] = [cities[0]]
    pb.store(cities[0] + _NEXT, cities[0], base="g", label="tsp.seed.n")
    pb.store(cities[0] + _PREV, cities[0], base="g", label="tsp.seed.p")

    def dist2(a: int, b: int) -> float:
        (ax, ay), (bx, by) = coords[a], coords[b]
        return (ax - bx) ** 2 + (ay - by) ** 2

    for ci in range(1, n):
        c = cities[ci]
        cx = pb.load(c + _X, "cx", base="g", label="tsp.ins.ldcx")
        cy = pb.load(c + _Y, "cy", base="g", label="tsp.ins.ldcy")
        # Walk the current tour, finding the cheapest insertion edge.
        best_idx, best_cost = 0, float("inf")
        pb.op("p", (), label="tsp.walk.start")
        for k, t in enumerate(tour):
            nxt = tour[(k + 1) % len(tour)]
            pb.branch("tsp.walk.loop", taken=True, srcs=("p",))
            tx = pb.load(t + _X, "tx", base="p", label="tsp.walk.ldx")
            ty = pb.load(t + _Y, "ty", base="p", label="tsp.walk.ldy")
            pb.load(t + _NEXT, "p", base="p", label="tsp.walk.ldn")
            # detour cost = d(t,c) + d(c,next) - d(t,next), via int multiplies
            pb.op("dx", ("tx", "cx"), label="tsp.walk.dx")
            pb.op("dy", ("ty", "cy"), label="tsp.walk.dy")
            pb.op("dx2", ("dx", "dx"), kind=OpClass.IMULT, label="tsp.walk.mx")
            pb.op("dy2", ("dy", "dy"), kind=OpClass.IMULT, label="tsp.walk.my")
            pb.op("d2", ("dx2", "dy2"), label="tsp.walk.add")
            cost = dist2(t, c) + dist2(c, nxt) - dist2(t, nxt)
            if pb.if_("tsp.walk.min", cost < best_cost, srcs=("d2", "best")):
                pb.op("best", ("d2",), label="tsp.walk.take")
                best_idx, best_cost = k, cost
        pb.branch("tsp.walk.loop", taken=False, srcs=("p",))

        # Splice c after tour[best_idx].
        t = tour[best_idx]
        nxt = tour[(best_idx + 1) % len(tour)]
        pb.load(t + _NEXT, "tn", base="p", label="tsp.splice.ldn")
        pb.store(c + _NEXT, nxt, base="g", src="tn", label="tsp.splice.cn")
        pb.store(c + _PREV, t, base="g", label="tsp.splice.cp")
        pb.store(t + _NEXT, c, base="p", label="tsp.splice.tn")
        pb.store(nxt + _PREV, c, base="p", label="tsp.splice.np")
        tour.insert(best_idx + 1, c)

    # Final tour-length pass (pointer chase around the ring).
    total = 0.0
    pb.op("p", (), label="tsp.len.start")
    for k, t in enumerate(tour):
        nxt = tour[(k + 1) % len(tour)]
        pb.branch("tsp.len.loop", taken=k < len(tour) - 1, srcs=("p",))
        pb.load(t + _X, "tx", base="p", label="tsp.len.ldx")
        pb.load(t + _Y, "ty", base="p", label="tsp.len.ldy")
        pb.load(t + _NEXT, "p", base="p", label="tsp.len.ldn")
        pb.op("dx2", ("tx", "tx"), kind=OpClass.IMULT, label="tsp.len.mx")
        pb.op("len", ("len", "dx2"), label="tsp.len.acc")
        total += dist2(t, nxt) ** 0.5

    out = pb.static_array(1)
    pb.store(out, _fixed(min(total, 30000.0)), src="len", label="tsp.result")
    return pb.build(
        description="closest-point tour insertion over a circular linked list",
        params={"cities": n, "tour_length": round(total, 3)},
    )
