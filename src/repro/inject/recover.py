"""Recovery policies: what the hierarchy does after a detected fault.

A policy runs when protection *detects* corruption it cannot correct in
place (parity always, SECDED on double upsets). All three policies
restore a structurally sound cache; what distinguishes them is how much
resident state they sacrifice and whether the architectural data
survives:

``refetch``
    Invalidate the affected frame (without writing it back — its data
    is untrusted) and let the normal miss path refetch the line from
    the next level. Lossless when the frame was clean; a **dirty**
    frame's newest data exists nowhere below, so dropping it is data
    loss the system *knows about* — the outcome is
    ``detected_uncorrectable``, not SDC.
``drop_affiliated``
    Drop only affiliated words. Affiliated content is clean by
    invariant (§3.3: dirty data never lives in an affiliated place), so
    this is always lossless — but it can only repair corruption *in*
    affiliated state; anything else falls back to ``refetch``.
``degrade``
    ``refetch``, plus the line is marked degraded for the rest of the
    run: subsequent fills of a degraded line strip its affiliated
    payload, so the frame holds its primary line uncompressed and a
    repeat upset cannot touch two lines at once.

Every policy returns the disposition string recorded on the
:class:`~repro.inject.faults.Corruption`: ``"recovered"`` (architectural
state intact) or ``"uncorrectable"`` (detected, but data was lost).
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["RECOVERY_NAMES", "recover", "apply_degrade_on_fill"]

#: Valid ``--recover`` choices.
RECOVERY_NAMES = ("refetch", "drop_affiliated", "degrade")


def _invalidate_frame(session, cache, rec, frame) -> str:
    """Drop *frame* without write-back; lossy iff it held dirty state."""
    dirty = bool(getattr(frame, "dirty", False))
    frame.invalidate()
    rec.note(f"invalidated {rec.describe_site()}")
    return "uncorrectable" if dirty else "recovered"


def _drop_affiliated_word(session, cache, rec, frame) -> str:
    """Clear the corrupted affiliated word (clean by invariant)."""
    if rec.kind == "data" and rec.widx >= 0:
        frame.aa &= ~(1 << rec.widx)
    else:
        frame.clear_affiliated()
    rec.note(f"dropped affiliated content at {rec.describe_site()}")
    return "recovered"


def _recover_refetch(session, cache, rec, place, frame) -> str:
    if place == "affiliated":
        # The corrupt copy is a clean rider; dropping just it is already
        # a full refetch-from-below (the next access misses and refills).
        return _drop_affiliated_word(session, cache, rec, frame)
    return _invalidate_frame(session, cache, rec, frame)


def _recover_drop_affiliated(session, cache, rec, place, frame) -> str:
    if place == "affiliated" or (rec.kind == "meta" and rec.field_name == "aa"):
        return _drop_affiliated_word(session, cache, rec, frame)
    # The policy can only drop affiliated words; anything else needs the
    # frame gone — fall back to invalidate-and-refetch.
    rec.note("drop_affiliated fallback: corruption not in affiliated state")
    return _recover_refetch(session, cache, rec, place, frame)


def _recover_degrade(session, cache, rec, place, frame) -> str:
    line = rec.line_no
    degraded = session.degraded.setdefault(rec.level, set())
    degraded.add(line)
    pair_mask = getattr(getattr(cache, "policy", None), "mask", None)
    if pair_mask:
        degraded.add(line ^ pair_mask)
    rec.note(f"degraded line {line:#x} to uncompressed residency")
    return _recover_refetch(session, cache, rec, place, frame)


_RECOVERIES = {
    "refetch": _recover_refetch,
    "drop_affiliated": _recover_drop_affiliated,
    "degrade": _recover_degrade,
}


def recover(session, cache, rec, place, frame) -> str:
    """Run the session's recovery policy on a detected corruption.

    *place* names where the corrupt state sits right now: ``"primary"``
    / ``"affiliated"`` (compression caches), ``"line"`` (classic
    caches), or ``"frame"`` (metadata/tag corruption).
    """
    try:
        policy = _RECOVERIES[session.recovery]
    except KeyError:
        raise ConfigurationError(
            f"unknown recovery policy {session.recovery!r}; "
            f"choose from {', '.join(RECOVERY_NAMES)}"
        ) from None
    return policy(session, cache, rec, place, frame)


def apply_degrade_on_fill(session, level: str, frame) -> None:
    """Strip the affiliated payload from a freshly filled degraded line.

    Called from the post-fill hook: a line the ``degrade`` policy marked
    keeps no compressed riders, so its frame is effectively a plain
    uncompressed line from then on.
    """
    degraded = session.degraded.get(level)
    if degraded and frame.line_no in degraded and frame.aa:
        frame.aa = 0
