"""Figure 10 bench: memory traffic, normalized to BC."""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments.common import GEOMEAN
from repro.experiments.fig10_traffic import run as run_fig10


def test_fig10_memory_traffic(benchmark):
    out = run_once(benchmark, run_fig10, seed=BENCH_SEED, scale=BENCH_SCALE)
    avg = {cfg: out.series[cfg][GEOMEAN] for cfg in ("BCC", "HAC", "BCP", "CPP")}
    benchmark.extra_info.update(
        {f"avg_{k.lower()}_pct": round(v, 1) for k, v in avg.items()}
    )
    benchmark.extra_info["paper"] = "BCC~60, BCP~180, CPP~90 (% of BC)"
    # Shape claims of the figure:
    assert avg["BCC"] < 80.0  # compression alone cuts traffic sharply
    assert avg["BCP"] > 115.0  # prefetch buffers inflate traffic
    assert avg["CPP"] < 100.0  # CPP prefetches yet stays below baseline
    assert avg["CPP"] < avg["BCP"]
    assert abs(avg["HAC"] - 100.0) < 25.0  # associativity barely moves traffic
