"""Normalization helpers for the comparison figures.

Figures 10-13 report each configuration normalized to BC = 100 %.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.errors import ExperimentError
from repro.sim.results import SimResult

__all__ = ["normalize_to_baseline"]


def normalize_to_baseline(
    results: Mapping[str, SimResult],
    metric: Callable[[SimResult], float],
    *,
    baseline: str = "BC",
) -> dict[str, float]:
    """Normalize ``metric`` of each config to the baseline's value (=100).

    *results* maps config name -> result for one workload.
    """
    if baseline not in results:
        raise ExperimentError(f"baseline {baseline!r} missing from results")
    base_value = metric(results[baseline])
    if base_value == 0:
        # A metric of zero in the baseline (e.g. no misses at all) makes
        # every config trivially equal; report 100 across the board.
        return {name: 100.0 for name in results}
    return {
        name: 100.0 * metric(result) / base_value
        for name, result in results.items()
    }
