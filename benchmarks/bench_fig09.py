"""Figure 9 bench: the configuration table regenerates instantly and
matches the paper's machine."""

from conftest import run_once

from repro.experiments.fig09_config_table import run as run_fig9


def test_fig09_config_table(benchmark):
    out = run_once(benchmark, run_fig9)
    table = {row[0]: str(row[1]) for row in out.rows}
    assert table["Issue width"].startswith("4")
    assert table["IFQ size"].startswith("16")
    assert table["LD/ST queue"].startswith("8")
    assert "8K" in table["L1 D-cache"]
    assert "64K" in table["L2 cache"]
    assert table["Memory access latency"].startswith("100")
    benchmark.extra_info["parameters"] = len(out.rows)
