"""Durable content-addressed result store with integrity verification.

The results lifecycle's system of record: every simulated cell is
addressable by the digest of its full parameterization plus the code
version, every record carries a payload checksum verified on read,
every write commits through a write-ahead journal (crash-anywhere
safe), corrupt records are quarantined — never silently served or
dropped — and a lease-based campaign queue lets any number of worker
processes drain one experiment campaign without double-computing a
cell.

Layers:

* :mod:`repro.store.integrity` — digests, checksums, crash fault points;
* :mod:`repro.store.journal` — the write-ahead commit protocol;
* :mod:`repro.store.cas` — :class:`ResultStore` (put/get/fsck/quarantine);
* :mod:`repro.store.queue` — :class:`CampaignQueue` (leases, reclaim);
* :mod:`repro.store.checkpoint` — the supervised engine's store adapter;
* :mod:`repro.store.campaign` — :func:`run_matrix_store`, the draining
  engine behind ``python -m repro.experiments ... --store DIR``;
* :mod:`repro.store.gc` — lifecycle GC: evict superseded code-version
  records under a refcount/pin policy and an optional byte budget.

Operate it with ``python -m repro.store fsck | migrate | stats | gc | pin``.
"""

from repro.store.campaign import campaign_name, run_matrix_store
from repro.store.cas import (
    FsckReport,
    ResultStore,
    default_code_version,
    default_store_dir,
)
from repro.store.checkpoint import StoreCheckpoint
from repro.store.gc import GcReport, gc_store, load_pins, pin_version, unpin_version
from repro.store.integrity import cell_digest, payload_checksum
from repro.store.journal import Journal
from repro.store.queue import CampaignQueue, Job, default_worker_id, fs_clock_now

__all__ = [
    "ResultStore",
    "FsckReport",
    "CampaignQueue",
    "GcReport",
    "Job",
    "StoreCheckpoint",
    "Journal",
    "run_matrix_store",
    "campaign_name",
    "cell_digest",
    "payload_checksum",
    "default_code_version",
    "default_store_dir",
    "default_worker_id",
    "fs_clock_now",
    "gc_store",
    "load_pins",
    "pin_version",
    "unpin_version",
]
