"""Tests for the victim-cache extension."""

import numpy as np
import pytest

from repro.caches.hierarchy import build_hierarchy
from repro.caches.interface import MemoryPort
from repro.caches.victim import VictimAwareCache, VictimBuffer, VictimCache
from repro.errors import ConfigurationError
from repro.memory.image import MemoryImage
from repro.memory.main_memory import MainMemory
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.workloads.registry import generate

from tests.conftest import TINY_PARAMS

BASE = 0x1000_0000


def make_victim_l1(mem=None, entries=2):
    mem = mem or MainMemory(MemoryImage(), latency=100)
    cache = VictimAwareCache(
        "L1",
        size_bytes=512,
        assoc=1,
        line_bytes=64,
        hit_latency=1,
        downstream=MemoryPort(mem),
        victim_entries=entries,
    )
    return VictimCache(cache), mem


class TestVictimBuffer:
    def test_insert_pop(self):
        buf = VictimBuffer(2, 16)
        buf.insert(1, np.zeros(16, dtype=np.uint32), dirty=False)
        assert 1 in buf
        assert buf.pop(1) is not None
        assert buf.pop(1) is None

    def test_dirty_spill_on_overflow(self):
        buf = VictimBuffer(1, 16)
        assert buf.insert(1, np.zeros(16, dtype=np.uint32), True) is None
        spilled = buf.insert(2, np.zeros(16, dtype=np.uint32), False)
        assert spilled is not None and spilled[0] == 1
        assert buf.dirty_spills == 1

    def test_clean_overflow_silent(self):
        buf = VictimBuffer(1, 16)
        buf.insert(1, np.zeros(16, dtype=np.uint32), False)
        assert buf.insert(2, np.zeros(16, dtype=np.uint32), False) is None

    def test_entries_checked(self):
        with pytest.raises(ConfigurationError):
            VictimBuffer(0, 16)


class TestVictimRecovery:
    def test_conflict_eviction_recovered(self):
        vc, mem = make_victim_l1()
        mem.poke_word(BASE, 7)
        vc.access(BASE, write=False)  # line A
        vc.access(BASE + 512, write=False)  # conflicts: A -> victim buffer
        result = vc.access(BASE, write=False)  # recovered, not re-fetched
        assert result.served_by == "l1-victim"
        assert result.value == 7
        assert vc.stats.extra["victim_hits"] == 1

    def test_dirty_victim_keeps_data(self):
        vc, mem = make_victim_l1()
        vc.access(BASE, write=True, value=42)
        vc.access(BASE + 512, write=False)  # evict dirty A into buffer
        assert mem.peek_word(BASE) == 0  # write-back deferred!
        result = vc.access(BASE, write=False)
        assert result.value == 42

    def test_deferred_writeback_on_age_out(self):
        vc, mem = make_victim_l1(entries=1)
        vc.access(BASE, write=True, value=9)
        vc.access(BASE + 512, write=False)  # dirty A -> buffer
        vc.access(BASE + 1024, write=False)  # B -> buffer, spills A
        assert mem.peek_word(BASE) == 9

    def test_flush_drains_dirty_victims(self):
        vc, mem = make_victim_l1()
        vc.access(BASE, write=True, value=5)
        vc.access(BASE + 512, write=False)
        vc.flush()
        assert mem.peek_word(BASE) == 5


class TestBvcHierarchy:
    def test_builds(self):
        h = build_hierarchy("BVC", MainMemory(MemoryImage()), TINY_PARAMS)
        assert h.name == "BVC"

    def test_verified_run_and_memory_equivalence(self):
        program = generate("spec2000.300.twolf", seed=1, scale=0.15)
        cfg = SimConfig(cache_config="BVC")
        from repro.caches.hierarchy import build_hierarchy as bh
        from repro.cpu.pipeline import OutOfOrderCore

        memory = MainMemory(latency=cfg.effective_memory_latency())
        h = bh("BVC", memory, cfg.effective_hierarchy())
        OutOfOrderCore(h, cfg.core, verify_loads=True).run(program.trace)
        h.flush()
        assert memory.image == program.final_image

    def test_helps_conflict_heavy_workload(self):
        """A victim cache must beat plain BC where conflicts dominate."""
        program = generate("spec2000.300.twolf", seed=1, scale=0.2)
        bc = Machine("BC").run(program)
        bvc = Machine(SimConfig(cache_config="BVC")).run(program)
        assert bvc.cycles < bc.cycles
        assert bvc.l1.extra.get("victim_hits", 0) > 0

    def test_excluded_from_paper_configs(self):
        from repro.sim.config import CONFIG_NAMES

        assert "BVC" not in CONFIG_NAMES
