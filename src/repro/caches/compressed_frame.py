"""The CPP physical cache frame (paper Figure 7).

One frame can hold content from **two** lines:

* the **primary line** — the line a conventional cache of the same
  geometry would map to this frame; per-word ``PA`` (availability) and
  ``VCP`` (compressibility) flags, plus a dirty bit;
* the **affiliated line** — ``primary XOR mask``; per-word ``AA``
  (availability) flags. Affiliated words are, by construction, always
  compressible and always clean (a write hit in the affiliated place
  promotes the line to its primary place before writing).

The model stores *uncompressed* word values with flags describing the
storage format; space legality — an affiliated word may occupy slot ``i``
only if the primary word there is compressed or absent — is enforced by
:meth:`can_hold_affiliated` and checked by :meth:`check_legal`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CacheProtocolError

__all__ = ["CompressedFrame"]


class CompressedFrame:
    """One physical frame of a compression cache."""

    __slots__ = ("n_words", "line_no", "dirty", "pvals", "pa", "vcp", "avals", "aa")

    def __init__(self, n_words: int) -> None:
        self.n_words = n_words
        self.line_no = -1  #: primary line number; -1 = invalid frame
        self.dirty = False  #: primary line dirty (affiliated is always clean)
        self.pvals = np.zeros(n_words, dtype=np.uint32)
        self.pa = np.zeros(n_words, dtype=bool)
        self.vcp = np.zeros(n_words, dtype=bool)
        self.avals = np.zeros(n_words, dtype=np.uint32)
        self.aa = np.zeros(n_words, dtype=bool)

    # ---- state predicates ---------------------------------------------------

    @property
    def valid(self) -> bool:
        return self.line_no >= 0

    @property
    def n_primary_words(self) -> int:
        return int(np.count_nonzero(self.pa))

    @property
    def n_affiliated_words(self) -> int:
        return int(np.count_nonzero(self.aa))

    @property
    def is_partial(self) -> bool:
        """True if the primary line has holes."""
        return self.valid and not self.pa.all()

    def can_hold_affiliated(self, i: int) -> bool:
        """Space rule: slot *i* is free for a (compressed) affiliated word
        iff the primary word there is absent or itself compressed."""
        return (not self.pa[i]) or bool(self.vcp[i])

    def affiliated_slot_mask(self) -> np.ndarray:
        """Boolean mask of slots able to hold an affiliated word."""
        return ~self.pa | self.vcp

    # ---- mutation ---------------------------------------------------------------

    def invalidate(self) -> None:
        """Empty the frame: no primary line, no affiliated words, clean."""
        self.line_no = -1
        self.dirty = False
        self.pa[:] = False
        self.vcp[:] = False
        self.aa[:] = False

    def install_primary(
        self,
        line_no: int,
        values: np.ndarray,
        avail: np.ndarray,
        comp: np.ndarray,
    ) -> None:
        """Install a fresh primary line; clears any affiliated content."""
        if line_no < 0:
            raise CacheProtocolError("cannot install a negative line number")
        self.line_no = line_no
        self.dirty = False
        self.pvals[:] = values
        self.pa[:] = avail
        self.vcp[:] = comp & avail
        self.aa[:] = False

    def clear_affiliated(self) -> None:
        """Drop all affiliated words (they are clean by invariant)."""
        self.aa[:] = False

    def set_affiliated_words(self, values: np.ndarray, mask: np.ndarray) -> int:
        """Replace affiliated content with *values* where *mask*; the caller
        guarantees compressibility, this method enforces the space rule.
        Returns how many words were stored."""
        self.aa[:] = False
        legal = mask & self.affiliated_slot_mask()
        self.aa[legal] = True
        self.avals[legal] = values[legal]
        return int(np.count_nonzero(legal))

    # ---- verification -------------------------------------------------------------

    def check_legal(self) -> None:
        """Raise if the frame violates the space rule or flag consistency."""
        if not self.valid:
            if self.pa.any() or self.aa.any() or self.vcp.any() or self.dirty:
                raise CacheProtocolError("invalid frame carries state")
            return
        if np.any(self.vcp & ~self.pa):
            raise CacheProtocolError("VCP set for an absent primary word")
        if np.any(self.aa & self.pa & ~self.vcp):
            raise CacheProtocolError(
                "affiliated word stored over an uncompressed primary word"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug cosmetic
        if not self.valid:
            return "<CompressedFrame invalid>"
        return (
            f"<CompressedFrame line={self.line_no:#x} "
            f"pa={self.n_primary_words}/{self.n_words} "
            f"aa={self.n_affiliated_words} dirty={self.dirty}>"
        )
