"""Shared fixtures: small machines, images, and canned data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.caches.hierarchy import HierarchyParams, build_hierarchy
from repro.memory.image import MemoryImage
from repro.memory.main_memory import MainMemory

#: A small geometry that exercises conflicts quickly in unit tests:
#: 512 B direct-mapped L1 (64 B lines), 2 KB 2-way L2 (128 B lines).
TINY_PARAMS = HierarchyParams(
    l1_size=512,
    l1_assoc=1,
    l1_line=64,
    l1_latency=1,
    l2_size=2048,
    l2_assoc=2,
    l2_line=128,
    l2_latency=10,
    l1_buffer_entries=2,
    l2_buffer_entries=4,
)

HEAP = 0x1000_0000


@pytest.fixture(autouse=True)
def _clean_failure_ledger():
    """The fault ledger is process-global; never leak it across tests."""
    from repro.sim import fault

    fault.LEDGER.clear()
    yield
    fault.LEDGER.clear()


@pytest.fixture
def image() -> MemoryImage:
    return MemoryImage()


@pytest.fixture
def memory() -> MainMemory:
    return MainMemory(MemoryImage(), latency=100)


@pytest.fixture
def seeded_memory() -> MainMemory:
    """Memory pre-loaded with a deterministic mix of values.

    Words at HEAP + 4*i hold: small values (i % 4 == 0, 1), pointers into
    the same 32 KB chunk (i % 4 == 2), and incompressible junk
    (i % 4 == 3) over the first 16 KB.
    """
    img = MemoryImage()
    for i in range(4096):
        addr = HEAP + 4 * i
        kind = i % 4
        if kind in (0, 1):
            value = (i * 7) % 16000
        elif kind == 2:
            value = (addr & ~0x7FFF) | ((i * 52) & 0x7FFC)
        else:
            value = 0xDEAD_0000 | i
        img.write_word(addr, value)
    return MainMemory(img, latency=100)


def make_tiny(config: str, mem: MainMemory | None = None):
    """Build a tiny-geometry hierarchy of the given configuration."""
    return build_hierarchy(config, mem or MainMemory(MemoryImage(), latency=100), TINY_PARAMS)


@pytest.fixture(params=["BC", "BCC", "HAC", "BCP", "CPP"])
def any_tiny_hierarchy(request, seeded_memory):
    """Each of the five configurations over the seeded memory."""
    return make_tiny(request.param, seeded_memory)


def rng_values(seed: int, n: int) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 1 << 32, n, dtype=np.uint32)
