"""The asyncio HTTP service: accept loop, supervision, GC, shutdown.

Stdlib only — a hand-rolled HTTP/1.1 server on ``asyncio.start_server``
(no aiohttp to install, nothing to pin). Deliberately minimal: JSON in,
JSON out, ``Connection: close`` on every response, bodies capped at
1 MiB. Handlers (:mod:`repro.serve.handlers`) run in a worker thread so
a slow store scan never blocks the accept loop.

The service owns three background loops:

* **supervision** — ``pool.poll()`` keeps the worker pool at strength
  (reap, reclaim leases, restart with backoff, stall-kill);
* **GC** — with a byte budget, :func:`repro.store.gc.gc_store` runs
  periodically so the store can't grow without bound while serving;
* **drain watch** — with ``exit_when_drained``, the service exits 0 on
  its own once every campaign is settled (what the CI job leans on).

SIGTERM/SIGINT trigger the same graceful path: stop accepting, drain
the pool (SIGTERM → wait → SIGKILL), flush the service's own metrics
next to the store, exit 0.

On start the service prints one machine-readable line::

    SERVE-READY {"host": ..., "port": ..., "pid": ...}

so scripts (chaos harness, CI) can bind port 0 and discover the real
port without racing the log.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import time
from pathlib import Path

from repro.errors import ReproError, ServeError, UsageError
from repro.obs import span as _span
from repro.obs.metrics import REGISTRY
from repro.store.cas import ResultStore
from repro.store.queue import DEFAULT_LEASE_TTL, CampaignQueue
from repro.utils.atomic import atomic_write_text

from repro.serve import handlers as _handlers
from repro.serve.handlers import Request, Response
from repro.serve.supervisor import WorkerPool

__all__ = ["ExperimentService", "run_service"]

MAX_BODY_BYTES = 1 << 20
SERVER_NAME = "repro-serve"

#: The ready line scripts parse; everything after the space is JSON.
READY_PREFIX = "SERVE-READY "


class _BadRequest(Exception):
    """Malformed HTTP from the client (maps to a 400, never a crash)."""


class ExperimentService:
    """Shared state the handlers see (store access, pool, GC, metrics)."""

    def __init__(
        self,
        store_dir,
        *,
        pool: WorkerPool | None = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        retry_after: int = _handlers.RETRY_AFTER,
        gc_budget_bytes: int | None = None,
    ) -> None:
        self.store_dir = Path(store_dir)
        self.pool = pool
        self.lease_ttl = lease_ttl
        self.retry_after = retry_after
        self.gc_budget_bytes = gc_budget_bytes
        self.pid = os.getpid()
        self.last_gc: dict | None = None
        self._started = time.monotonic()
        # One recovery pass up front so a crashed predecessor's journal
        # rolls forward before the first request reads the store.
        ResultStore(self.store_dir).recover()

    def store(self) -> ResultStore:
        """A fresh store handle (cheap; no open file state to share)."""
        return ResultStore(self.store_dir)

    def uptime(self) -> float:
        """Seconds since the service object was created."""
        return time.monotonic() - self._started

    def observe_request(self, route: str, status: int, seconds: float) -> None:
        """Record one handled request in the metrics registry."""
        REGISTRY.inc("serve.requests", route=route, status=str(status))
        REGISTRY.observe("serve.request_seconds", seconds)

    def run_gc(self, *, budget_bytes=None) -> "object":
        """One real GC pass (background task and POST /v1/gc share it)."""
        from repro.store.gc import gc_store

        budget = budget_bytes if budget_bytes is not None else self.gc_budget_bytes
        report = gc_store(self.store(), budget_bytes=budget)
        self.last_gc = report.as_dict()
        return report

    def campaigns_drained(self) -> bool:
        """True when campaigns exist and every one of them is settled."""
        root = self.store().root / "queue"
        if not root.is_dir():
            return False
        queues = [
            CampaignQueue(root, p.name, lease_ttl=self.lease_ttl)
            for p in sorted(root.iterdir())
            if p.is_dir()
        ]
        return bool(queues) and all(q.drained() for q in queues)


# -- wire protocol -----------------------------------------------------------


async def _read_request(reader: asyncio.StreamReader) -> Request:
    """Parse one HTTP/1.1 request from the stream (strictly enough)."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError) as exc:
        raise _BadRequest(str(exc)) from exc
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise _BadRequest(f"malformed request line: {request_line!r}")
    method, target, _version = parts
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    path, _, query = target.partition("?")
    params = {}
    if query:
        from urllib.parse import parse_qsl

        params = dict(parse_qsl(query, keep_blank_values=True))
    body: dict = {}
    length = int(headers.get("content-length", 0) or 0)
    if length > MAX_BODY_BYTES:
        raise _BadRequest(f"body too large ({length} bytes)")
    if length:
        raw = await reader.readexactly(length)
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise _BadRequest(f"body is not JSON: {exc}") from exc
        if not isinstance(parsed, dict):
            raise _BadRequest("body must be a JSON object")
        body = parsed
    from urllib.parse import unquote

    return Request(
        method=method.upper(), path=unquote(path), params=params, body=body
    )


_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


def _render(response: Response) -> bytes:
    payload = json.dumps(response.payload, sort_keys=True, default=str)
    body = payload.encode("utf-8")
    reason = _STATUS_TEXT.get(response.status, "Unknown")
    head = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Server: {SERVER_NAME}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    head += [f"{k}: {v}" for k, v in response.headers.items()]
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def _safe_dispatch(service: ExperimentService, request: Request) -> Response:
    """The no-traceback guarantee lives here."""
    try:
        with _span.span(
            "serve.request", method=request.method, path=request.path
        ):
            return _handlers.dispatch(service, request)
    except (UsageError, ServeError) as exc:
        return Response(
            400, {"error": type(exc).__name__, "message": str(exc)}
        )
    except ReproError as exc:
        # Typed domain failures (store, queue, experiment) are the
        # client's problem to interpret, not a server crash.
        return Response(
            400, {"error": type(exc).__name__, "message": str(exc)}
        )
    except Exception as exc:  # noqa: BLE001 - the wire gets JSON, not a trace
        REGISTRY.inc("serve.errors", error=type(exc).__name__)
        return Response(
            500, {"error": type(exc).__name__, "message": str(exc)}
        )


async def _handle_client(
    service: ExperimentService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        try:
            request = await _read_request(reader)
        except _BadRequest as exc:
            response = Response(
                400, {"error": "BadRequest", "message": str(exc)}
            )
        except (asyncio.IncompleteReadError, ConnectionError):
            return
        else:
            # Handlers block on store I/O and sometimes on figure
            # rendering: keep them off the event loop.
            response = await asyncio.to_thread(
                _safe_dispatch, service, request
            )
        writer.write(_render(response))
        await writer.drain()
    except (ConnectionError, BrokenPipeError):
        pass  # client went away mid-response; nothing to salvage
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


# -- service lifecycle -------------------------------------------------------


async def _supervise_loop(pool: WorkerPool, stop: asyncio.Event, interval: float):
    while not stop.is_set():
        pool.poll()
        try:
            await asyncio.wait_for(stop.wait(), timeout=interval)
        except asyncio.TimeoutError:
            pass


async def _gc_loop(service: ExperimentService, stop: asyncio.Event, interval: float):
    while not stop.is_set():
        try:
            await asyncio.wait_for(stop.wait(), timeout=interval)
        except asyncio.TimeoutError:
            pass
        if stop.is_set():
            return
        try:
            await asyncio.to_thread(service.run_gc)
        except Exception as exc:  # noqa: BLE001 - GC must never kill serving
            REGISTRY.inc("serve.errors", error=f"gc:{type(exc).__name__}")


async def _drain_watch(service, pool, stop: asyncio.Event, poll: float):
    """Stop the service once every campaign is settled (CI mode)."""
    while not stop.is_set():
        try:
            await asyncio.wait_for(stop.wait(), timeout=poll)
        except asyncio.TimeoutError:
            pass
        if stop.is_set():
            return
        drained = await asyncio.to_thread(service.campaigns_drained)
        if drained and (pool is None or pool.finished()):
            stop.set()
            return


def _flush_service_telemetry(service: ExperimentService) -> None:
    path = service.store().root / "serve" / "serve-metrics.json"
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            path, json.dumps(REGISTRY.dump(), sort_keys=True, default=str)
        )
    except Exception:  # noqa: BLE001 - telemetry loss is never fatal
        pass


async def _amain(
    service: ExperimentService,
    *,
    host: str,
    port: int,
    poll_interval: float,
    gc_interval: float,
    exit_when_drained: bool,
    announce=print,
) -> int:
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread or exotic platform: Ctrl-C still works

    server = await asyncio.start_server(
        lambda r, w: _handle_client(service, r, w), host=host, port=port
    )
    bound = server.sockets[0].getsockname()
    announce(
        READY_PREFIX
        + json.dumps(
            {"host": bound[0], "port": bound[1], "pid": os.getpid()},
            sort_keys=True,
        ),
        flush=True,
    )

    tasks = []
    if service.pool is not None:
        service.pool.start()
        tasks.append(
            asyncio.create_task(
                _supervise_loop(service.pool, stop, poll_interval)
            )
        )
    if service.gc_budget_bytes is not None:
        tasks.append(asyncio.create_task(_gc_loop(service, stop, gc_interval)))
    if exit_when_drained:
        tasks.append(
            asyncio.create_task(
                _drain_watch(service, service.pool, stop, poll_interval)
            )
        )

    try:
        await stop.wait()
    finally:
        server.close()
        await server.wait_closed()
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        if service.pool is not None:
            await asyncio.to_thread(service.pool.drain)
        _flush_service_telemetry(service)
    return 0


def run_service(
    store_dir,
    *,
    host: str = "127.0.0.1",
    port: int = 8765,
    workers: int = 2,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    cell_timeout: float | None = None,
    retries: int = 1,
    gc_budget_bytes: int | None = None,
    gc_interval: float = 60.0,
    poll_interval: float = 0.5,
    retry_after: int = _handlers.RETRY_AFTER,
    enqueue: dict | None = None,
    exit_when_drained: bool = False,
    announce=print,
) -> int:
    """Boot the service and block until shutdown; returns an exit code.

    *enqueue* (optional) pre-loads a campaign before serving:
    ``{"figures": [...], "workloads": [...], "seed": ..., "scale": ...}``
    — what ``python -m repro.experiments ... --serve`` and the CI job
    use to pair "start serving" with "start computing".
    """
    if workers < 0:
        raise ServeError("workers must be >= 0")
    pool = None
    if workers:
        pool = WorkerPool(
            store_dir,
            workers=workers,
            lease_ttl=lease_ttl,
            cell_timeout=cell_timeout,
            retries=retries,
            exit_when_drained=exit_when_drained,
        )
    service = ExperimentService(
        store_dir,
        pool=pool,
        lease_ttl=lease_ttl,
        retry_after=retry_after,
        gc_budget_bytes=gc_budget_bytes,
    )
    if enqueue:
        from repro.experiments.registry import miss_scales_for
        from repro.workloads.registry import WORKLOAD_NAMES

        figures = enqueue.get("figures") or []
        summary = _handlers.enqueue_matrix(
            service,
            workloads=enqueue.get("workloads") or list(WORKLOAD_NAMES),
            configs=enqueue.get("configs") or _handlers.MATRIX_CONFIGS,
            miss_scales=(
                miss_scales_for(figures)
                if figures
                else tuple(enqueue.get("miss_scales") or (1.0,))
            ),
            seed=int(enqueue.get("seed", 1)),
            scale=float(enqueue.get("scale", 1.0)),
        )
        announce(
            f"serve: enqueued campaign {summary['campaign']}: "
            f"{summary['enqueued']} queued, {summary['reused']} already "
            f"in store",
            flush=True,
        )
    try:
        return asyncio.run(
            _amain(
                service,
                host=host,
                port=port,
                poll_interval=poll_interval,
                gc_interval=gc_interval,
                exit_when_drained=exit_when_drained,
                announce=announce,
            )
        )
    except KeyboardInterrupt:
        # add_signal_handler already turned the first signal into a
        # graceful stop; a second Ctrl-C can still land here.
        return 0


if __name__ == "__main__":  # pragma: no cover - convenience shim
    from repro.serve.__main__ import main

    sys.exit(main())
