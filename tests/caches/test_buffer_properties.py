"""Hypothesis properties of the LRU buffers against reference models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.prefetch_buffer import PrefetchBuffer
from repro.cpu.branch import BimodPredictor

buffer_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 15), st.integers(0, 500)),
        st.tuples(st.just("pop"), st.integers(0, 15), st.just(0)),
        st.tuples(st.just("peek"), st.integers(0, 15), st.just(0)),
    ),
    max_size=120,
)


class TestPrefetchBufferModel:
    @given(ops=buffer_ops, capacity=st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_matches_ordered_dict_reference(self, ops, capacity):
        """The buffer behaves as a capacity-bounded LRU map keyed by
        line number (insertion order, refreshed on re-insert)."""
        buf = PrefetchBuffer(capacity, 4)
        reference: dict[int, int] = {}  # line -> ready cycle, insertion order
        for op, line, ready in ops:
            if op == "insert":
                buf.insert(line, np.full(4, line, dtype=np.uint32), ready)
                if line in reference:
                    del reference[line]
                elif len(reference) >= capacity:
                    oldest = next(iter(reference))
                    del reference[oldest]
                reference[line] = ready
            elif op == "pop":
                entry = buf.pop(line)
                expected = reference.pop(line, None)
                assert (entry is None) == (expected is None)
                if entry is not None:
                    assert entry.ready_cycle == expected
                    assert entry.data[0] == line
            else:
                entry = buf.peek(line)
                assert (entry is None) == (line not in reference)
            assert len(buf) == len(reference)
            assert buf.line_numbers() == list(reference)


class TestBimodModel:
    @given(
        outcomes=st.lists(st.booleans(), min_size=1, max_size=300),
        pc=st.integers(0, 1 << 20).map(lambda x: x * 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_two_bit_automaton(self, outcomes, pc):
        """The predictor is exactly a 2-bit saturating counter per index."""
        predictor = BimodPredictor(64)
        counter = 2  # weakly taken initial state
        for taken in outcomes:
            assert predictor.predict(pc) == (counter >= 2)
            predictor.update(pc, taken)
            counter = min(3, counter + 1) if taken else max(0, counter - 1)

    @given(outcomes=st.lists(st.booleans(), min_size=1, max_size=100))
    @settings(max_examples=20, deadline=None)
    def test_accuracy_accounting(self, outcomes):
        predictor = BimodPredictor(64)
        correct = 0
        for taken in outcomes:
            if predictor.predict(0x400000) == taken:
                correct += 1
            predictor.update(0x400000, taken)
        assert predictor.lookups == len(outcomes)
        assert predictor.correct == correct
