"""Cache-miss *importance* via Amdahl's law (paper §4.4, Figure 14).

The paper derives how many instructions directly depend on the cache-miss
instructions: run the same program twice — once normally, once with the
miss penalty halved (``S_enhanced = 2``) — measure the overall speedup,
and solve Amdahl's law for the enhanced fraction:

    fraction = S_e * (1 - 1/S_overall) / (S_e - 1)

Determinism makes this sound: the trace-driven core is non-speculative,
so "the same cache misses happen at the same instructions" and the only
change is the dependence length from each miss to its dependents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError

__all__ = ["fraction_enhanced", "miss_importance", "ImportanceResult"]


def fraction_enhanced(
    cycles_base: int, cycles_enhanced: int, s_enhanced: float = 2.0
) -> float:
    """Solve Amdahl's law for the enhanced fraction.

    *cycles_base* is the normal run, *cycles_enhanced* the run with the
    miss penalty divided by *s_enhanced*.
    """
    if cycles_base <= 0 or cycles_enhanced <= 0:
        raise ExperimentError("cycle counts must be positive")
    if s_enhanced <= 1.0:
        raise ExperimentError("s_enhanced must exceed 1")
    s_overall = cycles_base / cycles_enhanced
    fraction = s_enhanced * (1.0 - 1.0 / s_overall) / (s_enhanced - 1.0)
    # Numerical guard: a program with no miss cycles can come out at a
    # tiny negative fraction through rounding.
    return max(0.0, fraction)


@dataclass(frozen=True)
class ImportanceResult:
    """Importance of a configuration's cache misses on one workload."""

    workload: str
    config: str
    cycles_base: int
    cycles_half_penalty: int
    fraction: float

    @property
    def percent(self) -> float:
        return 100.0 * self.fraction


def miss_importance(
    workload: str,
    config: str,
    *,
    seed: int = 1,
    scale: float = 1.0,
) -> ImportanceResult:
    """Measure miss importance for (workload, config) per the paper.

    Runs the pair of simulations (normal and half-miss-penalty) and
    applies :func:`fraction_enhanced`.
    """
    from repro.sim.config import SIM_CONFIGS
    from repro.sim.runner import run_workload

    base_cfg = SIM_CONFIGS.get(config.upper())
    if base_cfg is None:
        raise ExperimentError(f"unknown configuration {config!r}")
    normal = run_workload(workload, base_cfg, seed=seed, scale=scale)
    half = run_workload(
        workload, base_cfg.with_miss_scale(0.5), seed=seed, scale=scale
    )
    return ImportanceResult(
        workload=workload,
        config=config.upper(),
        cycles_base=normal.cycles,
        cycles_half_penalty=half.cycles,
        fraction=fraction_enhanced(normal.cycles, half.cycles),
    )
