"""Fully-associative LRU prefetch buffer (the BCP configuration's helper).

The paper's comparison point invests CPP's flag-storage overhead into
conventional prefetch buffers instead: 8 entries beside the L1 and 32
beside the L2, both fully associative with LRU replacement (§4.1).
Entries are always clean (they are fetched, never written); a demand hit
moves the line into the cache proper.

Each entry records the cycle its prefetch completes (``ready_cycle``): a
demand access arriving earlier found the data still in flight, which the
paper's accounting treats as a miss whose penalty is only partially
hidden.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["BufferEntry", "PrefetchBuffer"]


@dataclass
class BufferEntry:
    """One prefetched line and the cycle its data arrives."""

    data: list[int]
    ready_cycle: int

    def ready(self, now: int) -> bool:
        """Has the prefetch completed by cycle *now*?"""
        return now >= self.ready_cycle


class PrefetchBuffer:
    """LRU-ordered store of prefetched (clean) lines."""

    def __init__(self, n_entries: int, line_words: int) -> None:
        if n_entries < 1:
            raise ConfigurationError("prefetch buffer needs at least one entry")
        if line_words < 1:
            raise ConfigurationError("line must hold at least one word")
        self.n_entries = n_entries
        self.line_words = line_words
        # Ordered oldest-first; move_to_end on touch.
        self._entries: OrderedDict[int, BufferEntry] = OrderedDict()
        self.inserts = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, line_no: int) -> bool:
        return line_no in self._entries

    def insert(self, line_no: int, data, ready_cycle: int = 0) -> None:
        """Add a prefetched line, evicting the LRU entry when full.

        Re-inserting an existing line refreshes its data and LRU position.
        """
        if len(data) != self.line_words:
            raise ConfigurationError("line data has the wrong width")
        entry = BufferEntry([int(v) for v in data], ready_cycle)
        if line_no in self._entries:
            self._entries.move_to_end(line_no)
            self._entries[line_no] = entry
            return
        if len(self._entries) >= self.n_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[line_no] = entry
        self.inserts += 1

    def pop(self, line_no: int) -> BufferEntry | None:
        """Remove and return an entry (a demand hit consumes it)."""
        return self._entries.pop(line_no, None)

    def peek(self, line_no: int) -> BufferEntry | None:
        """Inspect without consuming or touching LRU (tests/debug)."""
        return self._entries.get(line_no)

    def clear(self) -> None:
        """Drop every entry (buffer contents are always clean)."""
        self._entries.clear()

    def line_numbers(self) -> list[int]:
        """Resident line numbers, oldest first."""
        return list(self._entries)
