"""Core-side measurement: the quantities behind Figures 11, 14 and 15.

The key non-obvious metric is the **ready-queue length during
outstanding-miss cycles** (Figure 15): in every cycle with at least one
load miss in flight, how many instructions sit ready to issue? A longer
ready queue under a miss means the pipeline still has work — exactly the
effect CPP's prefetching of *important* (compressible) words produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.stats import RunningMean

__all__ = ["CoreMetrics"]


@dataclass
class CoreMetrics:
    """Mutable measurement state updated by the core every cycle."""

    committed: int = 0
    cycles: int = 0
    fetch_stall_cycles: int = 0
    mispredicts: int = 0
    loads_by_level: dict[str, int] = field(default_factory=dict)
    store_count: int = 0
    load_count: int = 0
    forwarded_loads: int = 0
    miss_cycles: int = 0  #: cycles with >= 1 outstanding load miss
    ready_queue_miss_cycles: RunningMean = field(default_factory=RunningMean)
    ready_queue_all_cycles: RunningMean = field(default_factory=RunningMean)

    def record_load(self, served_by: str) -> None:
        """Attribute one load to the level that served it."""
        self.load_count += 1
        self.loads_by_level[served_by] = self.loads_by_level.get(served_by, 0) + 1

    def sample_ready_queue(
        self, ready_len: int, *, miss_outstanding: bool, weight: int = 1
    ) -> None:
        """Sample the ready-queue length for *weight* consecutive cycles."""
        self.ready_queue_all_cycles.add_bulk(ready_len, weight)
        if miss_outstanding:
            self.miss_cycles += weight
            self.ready_queue_miss_cycles.add_bulk(ready_len, weight)

    @property
    def ipc(self) -> float:
        """Committed instructions per elapsed cycle (0.0 before any cycle).

        Uses *committed* (architecturally retired) instructions, so
        stall and fetch-blocked cycles lower it — matching how
        SimpleScalar's ``sim_IPC`` is computed.
        """
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def avg_ready_queue_in_miss_cycles(self) -> float:
        """The Figure 15 quantity."""
        return self.ready_queue_miss_cycles.mean

    def as_dict(self) -> dict[str, float | int]:
        """Flatten to plain types for reports and JSON export."""
        return {
            "committed": self.committed,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "mispredicts": self.mispredicts,
            "fetch_stall_cycles": self.fetch_stall_cycles,
            "loads": self.load_count,
            "stores": self.store_count,
            "forwarded_loads": self.forwarded_loads,
            "miss_cycles": self.miss_cycles,
            "ready_queue_in_miss_cycles": self.avg_ready_queue_in_miss_cycles,
        }

    def publish(self, registry, **labels) -> None:
        """Publish core counters into a metrics *registry* (``core.*``).

        Load-serving levels become a ``served_by`` label on
        ``core.loads_served``, replacing per-level ad-hoc dict plumbing
        with one queryable family.
        """
        for name, value in (
            ("core.committed", self.committed),
            ("core.cycles", self.cycles),
            ("core.mispredicts", self.mispredicts),
            ("core.fetch_stall_cycles", self.fetch_stall_cycles),
            ("core.loads", self.load_count),
            ("core.stores", self.store_count),
            ("core.forwarded_loads", self.forwarded_loads),
            ("core.miss_cycles", self.miss_cycles),
        ):
            if value:
                registry.inc(name, value, **labels)
        for served_by, count in self.loads_by_level.items():
            registry.inc("core.loads_served", count, served_by=served_by, **labels)
        registry.set_gauge("core.ipc", self.ipc, **labels)
        registry.set_gauge(
            "core.ready_queue_in_miss_cycles",
            self.avg_ready_queue_in_miss_cycles,
            **labels,
        )
