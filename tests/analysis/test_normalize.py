"""Tests for baseline normalization."""

import pytest

from repro.analysis.normalize import normalize_to_baseline
from repro.errors import ExperimentError
from repro.sim.results import SimResult
from repro.caches.stats import CacheStats
from repro.cpu.metrics import CoreMetrics


def fake_result(cycles):
    return SimResult(
        workload="w",
        config="X",
        cycles=cycles,
        instructions=100,
        l1=CacheStats(),
        l2=CacheStats(),
        bus_words=0,
        bus_fill_words=0,
        bus_prefetch_words=0,
        bus_writeback_words=0,
        metrics=CoreMetrics(),
        branch_mispredicts=0,
    )


class TestNormalize:
    def test_baseline_is_100(self):
        results = {"BC": fake_result(200), "CPP": fake_result(150)}
        out = normalize_to_baseline(results, lambda r: r.cycles)
        assert out["BC"] == pytest.approx(100.0)
        assert out["CPP"] == pytest.approx(75.0)

    def test_missing_baseline(self):
        with pytest.raises(ExperimentError):
            normalize_to_baseline({"CPP": fake_result(1)}, lambda r: r.cycles)

    def test_zero_baseline_metric(self):
        results = {"BC": fake_result(0), "CPP": fake_result(5)}
        out = normalize_to_baseline(results, lambda r: r.cycles)
        assert out == {"BC": 100.0, "CPP": 100.0}

    def test_custom_baseline(self):
        results = {"HAC": fake_result(100), "CPP": fake_result(50)}
        out = normalize_to_baseline(results, lambda r: r.cycles, baseline="HAC")
        assert out["CPP"] == pytest.approx(50.0)
