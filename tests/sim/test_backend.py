"""Backend registry: selection precedence, validation, fallback."""

import pytest

from repro.cpu.fastcore import FastCore
from repro.cpu.pipeline import OutOfOrderCore
from repro.errors import ConfigurationError, UsageError
from repro.sim.backend import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    ENV_VAR,
    create_core,
    default_backend,
    resolve_backend,
    set_default_backend,
)
from repro.sim.config import SimConfig


class TestResolution:
    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert default_backend() == DEFAULT_BACKEND == "reference"
        assert resolve_backend("") == "reference"

    def test_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fast")
        assert resolve_backend("reference") == "reference"

    def test_environment_beats_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fast")
        assert resolve_backend("") == "fast"

    def test_every_registered_name_resolves(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        for name in BACKEND_NAMES:
            assert resolve_backend(name) == name

    def test_unknown_explicit_backend_is_configuration_error(self):
        with pytest.raises(ConfigurationError, match="turbo"):
            resolve_backend("turbo")

    def test_unknown_env_backend_is_usage_error(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fasst")
        with pytest.raises(UsageError) as exc:
            default_backend()
        assert "fasst" in str(exc.value)
        # The error names valid choices so the typo is self-correcting.
        assert all(name in str(exc.value) for name in BACKEND_NAMES)

    def test_whitespace_env_value_means_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "  ")
        assert default_backend() == DEFAULT_BACKEND


class TestSetDefaultBackend:
    def test_writes_environment_for_forked_workers(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        set_default_backend("fast")
        import os

        assert os.environ[ENV_VAR] == "fast"

    def test_clearing_removes_the_variable(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fast")
        set_default_backend(None)
        import os

        assert ENV_VAR not in os.environ

    def test_unknown_name_is_usage_error_and_leaves_env_alone(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fast")
        with pytest.raises(UsageError):
            set_default_backend("warp")
        import os

        assert os.environ[ENV_VAR] == "fast"


class TestCreateCore:
    def test_reference_builds_the_pipeline_core(self):
        core = create_core("reference", None, None)
        assert isinstance(core, OutOfOrderCore)

    def test_fast_builds_fastcore(self):
        core = create_core("fast", None, None)
        assert isinstance(core, FastCore)

    def test_unresolved_name_raises(self):
        with pytest.raises(ConfigurationError):
            create_core("", None, None)


class TestSimConfigBackend:
    def test_backend_field_defaults_to_deferred(self):
        assert SimConfig(cache_config="BC").backend == ""

    def test_with_miss_scale_preserves_backend(self):
        config = SimConfig(cache_config="CPP", backend="fast")
        assert config.with_miss_scale(0.5).backend == "fast"


class TestFastCoreFallback:
    def test_verify_loads_forces_reference_loop(self):
        core = FastCore(None, None, verify_loads=True)
        assert core._needs_reference()

    def test_icache_model_forces_reference_loop(self):
        from repro.cpu.pipeline import CoreConfig

        core = FastCore(None, CoreConfig(icache_enabled=True))
        assert core._needs_reference()

    def test_plain_run_takes_the_fast_loop(self):
        core = FastCore(None, None)
        assert not core._needs_reference()

    def test_warm_predictor_forces_reference_loop(self):
        core = FastCore(None, None)
        core.predictor.lookups = 7
        assert not FastCore(None, None)._needs_reference()
        assert core._needs_reference()
