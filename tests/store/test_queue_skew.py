"""Lease expiry must survive wall-clock skew and backward jumps.

Regression tests for the clock-skew hardening: expiry is measured as
``fs_now - lease_mtime`` on the shared filesystem clock, never as a bare
``time.time()`` comparison across processes — so a claimer whose wall
clock is hours ahead (or behind, or stepping backwards mid-campaign)
makes the same reclaim decision as an unskewed one.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import LeaseError
from repro.store.queue import CampaignQueue, fs_clock_now

KEY = ("olden.treeadd", 1, 0.05, "BC", 1.0)
TASK = ("olden.treeadd", "BC", 1.0, 1, 0.05)


def make_queue(tmp_path, **kwargs) -> CampaignQueue:
    kwargs.setdefault("lease_ttl", 60.0)
    return CampaignQueue(tmp_path / "queue", "camp", **kwargs)


class SkewedClock:
    """A mocked ``time.time`` that is wildly wrong and can jump."""

    def __init__(self, offset: float) -> None:
        self.offset = offset

    def __call__(self) -> float:
        return time.time_ns() / 1e9 + self.offset


def _backdate(path, seconds: float) -> None:
    """Age a file by *seconds* on the filesystem clock."""
    stat = path.stat()
    os.utime(path, (stat.st_atime - seconds, stat.st_mtime - seconds))


@pytest.mark.parametrize("offset", [3600.0, -3600.0, 10 * 86400.0])
def test_live_lease_survives_claimer_clock_skew(tmp_path, monkeypatch, offset):
    """A claimer with a skewed wall clock must not reclaim a live lease."""
    queue = make_queue(tmp_path)
    queue.enqueue(KEY, TASK)
    assert queue.claim("w1") is not None

    monkeypatch.setattr(time, "time", SkewedClock(offset))
    assert queue.claim("w2-skewed") is None, (
        "fresh lease reclaimed by a claimer whose clock is off by "
        f"{offset:+g}s"
    )


def test_backward_clock_jump_does_not_unexpire_a_dead_lease(
    tmp_path, monkeypatch
):
    """An actually-expired lease is reclaimed even when the claimer's
    wall clock jumped far into the past (a bare deadline comparison
    would see the lease as live for another hour)."""
    queue = make_queue(tmp_path, lease_ttl=1.0)
    queue.enqueue(KEY, TASK)
    job = queue.claim("w1")
    _backdate(queue._lease_path(job.digest), 5.0)  # w1 "died" 5s ago

    monkeypatch.setattr(time, "time", SkewedClock(-7200.0))
    job2 = queue.claim("w2")
    assert job2 is not None
    assert job2.attempt == 2


def test_heartbeat_under_skew_keeps_lease_alive(tmp_path, monkeypatch):
    """Heartbeats refresh the lease mtime, so a worker whose clock is
    skewed still keeps its lease against an unskewed claimer."""
    queue = make_queue(tmp_path, lease_ttl=1.0)
    queue.enqueue(KEY, TASK)
    job = queue.claim("w1")
    _backdate(queue._lease_path(job.digest), 5.0)  # would be expired ...

    monkeypatch.setattr(time, "time", SkewedClock(9999.0))
    queue.heartbeat(job, worker="w1")  # ... but the heartbeat renews it
    monkeypatch.undo()
    assert queue.claim("w2") is None


def test_unreadable_lease_still_expires_by_age_under_skew(
    tmp_path, monkeypatch
):
    queue = make_queue(tmp_path, lease_ttl=1.0)
    queue.enqueue(KEY, TASK)
    job = queue.claim("w1")
    lease = queue._lease_path(job.digest)
    lease.write_bytes(b"")  # torn body: creator died mid-write
    _backdate(lease, 5.0)
    monkeypatch.setattr(time, "time", SkewedClock(-86400.0))
    assert queue.claim("w2") is not None


def test_expire_backdates_only_the_named_workers_lease(tmp_path):
    queue = make_queue(tmp_path)
    queue.enqueue(KEY, TASK)
    job = queue.claim("w1")
    # Wrong owner: nothing expired, lease still live.
    assert queue.expire(job.digest, worker="not-w1") is False
    assert queue.claim("w2") is None
    # Right owner: immediately reclaimable with the claim count kept.
    assert queue.expire(job.digest, worker="w1") is True
    job2 = queue.claim("w2")
    assert job2 is not None
    assert job2.attempt == 2


def test_expire_worker_sweeps_all_of_a_dead_workers_leases(tmp_path):
    queue = make_queue(tmp_path)
    keys = [(f"wl{i}", 1, 0.05, "BC", 1.0) for i in range(3)]
    for key in keys:
        queue.enqueue(key, tuple(key))
    jobs = [queue.claim("dead") for _ in keys]
    assert all(jobs)
    other = queue.claim("alive")
    assert other is None  # everything held by "dead"
    assert queue.expire_worker("dead") == 3
    reclaimed = []
    while (job := queue.claim("alive")) is not None:
        reclaimed.append(job)
    assert len(reclaimed) == 3
    assert {j.attempt for j in reclaimed} == {2}


def test_fs_clock_now_monotone_with_file_ages(tmp_path):
    """The probe and ordinary files share one clock: a file written now
    has age ~0, a backdated one has its backdated age."""
    target = tmp_path / "f"
    target.write_text("x")
    now = fs_clock_now(tmp_path)
    assert abs(now - target.stat().st_mtime) < 2.0
    _backdate(target, 100.0)
    assert fs_clock_now(tmp_path) - target.stat().st_mtime > 98.0
