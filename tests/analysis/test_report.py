"""Tests for the whole-evaluation report."""

import pytest

from repro.analysis.report import collect_outputs, evaluation_report
from repro.sim.runner import clear_caches

SUBSET = ["olden.mst"]


@pytest.fixture(scope="module", autouse=True)
def _fresh():
    clear_caches()
    yield
    clear_caches()


class TestCollect:
    def test_selected_figures(self):
        outputs = collect_outputs(SUBSET, scale=0.1, figures=["fig9", "fig3"])
        assert set(outputs) == {"fig9", "fig3"}
        assert outputs["fig3"].figure == "fig3"


class TestReport:
    def test_renders_all_sections(self):
        text = evaluation_report(
            SUBSET, scale=0.1, charts=False
        )
        assert "Reproduction: Enabling Partial Cache Line Prefetching" in text
        for figure_title in (
            "Values encountered in memory accesses",
            "Baseline experimental setup",
            "Memory traffic",
            "Execution time",
            "L1 data-cache misses",
            "L2 cache misses",
            "Importance of cache misses",
            "ready-queue length",
        ):
            assert figure_title in text, figure_title

    def test_writes_file(self, tmp_path):
        path = tmp_path / "report.txt"
        text = evaluation_report(
            SUBSET, scale=0.1, output_path=path
        )
        assert path.read_text(encoding="utf-8") == text
