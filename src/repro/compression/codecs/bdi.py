"""Base-Delta-Immediate (Pekhimenko et al.) as a Codec ("bdi").

A line is encoded as one 32-bit base plus narrow per-word deltas. We use
the dual-base variant from the paper: an implicit zero base captures
small immediates, and the first word whose delta from zero does not fit
becomes the explicit base — so a line mixing pointers and small integers
still compresses. Per word, a 1-bit selector names which base it used.

Encodings (3-bit line tag):

====== =============================== ============================
tag    encoding                        line bits (n words)
====== =============================== ============================
``000`` all-zero line                   0 (tag only)
``001`` repeated 32-bit value           32
``010`` base + 1-byte deltas            32 + n·(8+1)
``011`` base + 2-byte deltas            32 + n·(16+1)
``111`` uncompressed                    32·n
====== =============================== ============================

Deltas are signed and wrap mod 2^32 (``(a - b + 2^31) mod 2^32 - 2^31``),
so a base near either end of the address space still covers neighbours
across the wraparound — the classic overflow corner the differential
harness exercises.

BDI's compressibility is base-relative, therefore **not** a pure
function of ``(value, address)``: :attr:`BDICodec.word_scheme` is
``None`` and the codec is line-only (bus/ratio analysis; it cannot
drive the CPP cache's per-word slot pairing).
"""

from __future__ import annotations

import enum
from collections.abc import Sequence

from repro.compression.codecs.protocol import (
    Codec,
    EncodedLine,
    LinePack,
    TagOverhead,
)
from repro.compression.timing import CodecTiming
from repro.utils.bitops import MASK32

__all__ = ["BDICodec", "BDIEncoding", "signed_delta", "DELTA_WIDTHS"]

TAG_BITS = 3
#: Delta widths tried smallest-first, in bits.
DELTA_WIDTHS = (8, 16)


class BDIEncoding(enum.IntEnum):
    """Line encodings, in tag order."""

    ZEROS = 0
    REP = 1
    B4D1 = 2
    B4D2 = 3
    UNCOMP = 7


def signed_delta(a: int, b: int) -> int:
    """Signed ``a - b`` with mod-2^32 wraparound, in ``[-2^31, 2^31)``."""
    return ((a - b + (1 << 31)) & MASK32) - (1 << 31)


def _fits(delta: int, bits: int) -> bool:
    return -(1 << (bits - 1)) <= delta <= (1 << (bits - 1)) - 1


def _plan(values: Sequence[int], width: int):
    """Try to cover every word with (zero base | one explicit base) and
    *width*-bit deltas. Returns ``(base, selectors, deltas)`` or ``None``.

    The explicit base is the first word whose delta from zero does not
    fit — the thesis's "first non-immediate word" rule, which makes the
    decoder's base choice reproducible without extra metadata.
    """
    base: int | None = None
    selectors: list[int] = []
    deltas: list[int] = []
    for value in values:
        value &= MASK32
        d0 = signed_delta(value, 0)
        if _fits(d0, width):
            selectors.append(0)
            deltas.append(d0)
            continue
        if base is None:
            base = value
        d1 = signed_delta(value, base)
        if not _fits(d1, width):
            return None
        selectors.append(1)
        deltas.append(d1)
    return (0 if base is None else base), selectors, deltas


class BDICodec(Codec):
    """Dual-base base+delta line coding.

    Token stream: ``(encoding, payload)`` where payload is ``None`` for
    ZEROS, the repeated value for REP, ``(base, width, selectors, deltas)``
    for base+delta, and the literal word tuple for UNCOMP.
    """

    name = "bdi"
    word_scheme = None  # base-relative: no pure per-word facet

    # ---- line coding ------------------------------------------------------

    def _encode(self, values: Sequence[int]):
        vals = [v & MASK32 for v in values]
        if not vals:
            return BDIEncoding.ZEROS, None, 0
        if all(v == 0 for v in vals):
            return BDIEncoding.ZEROS, None, 0
        if all(v == vals[0] for v in vals):
            return BDIEncoding.REP, vals[0], 32
        for width, enc in zip(DELTA_WIDTHS, (BDIEncoding.B4D1, BDIEncoding.B4D2)):
            plan = _plan(vals, width)
            if plan is not None:
                base, selectors, deltas = plan
                bits = 32 + len(vals) * (width + 1)
                return enc, (base, width, tuple(selectors), tuple(deltas)), bits
        return BDIEncoding.UNCOMP, tuple(vals), 32 * len(vals)

    def compress_line(
        self, values: Sequence[int], addrs: Sequence[int]
    ) -> EncodedLine:
        """Pick the cheapest encoding for the whole line (one token)."""
        enc, payload, data_bits = self._encode(values)
        return EncodedLine(
            codec=self.name,
            n_words=len(values),
            tokens=((enc, payload),),
            bits=TAG_BITS + data_bits,
        )

    def decompress_line(
        self, encoded: EncodedLine, addrs: Sequence[int]
    ) -> list[int]:
        """Rebuild the line: one SIMD-style base+delta add per word."""
        ((enc, payload),) = encoded.tokens
        n = encoded.n_words
        if enc is BDIEncoding.ZEROS:
            return [0] * n
        if enc is BDIEncoding.REP:
            return [payload] * n
        if enc is BDIEncoding.UNCOMP:
            return list(payload)
        base, _width, selectors, deltas = payload
        return [
            (d + (base if sel else 0)) & MASK32
            for sel, d in zip(selectors, deltas)
        ]

    def pack_line(
        self, values: Sequence[int], addrs: Sequence[int]
    ) -> LinePack:
        """Split the chosen encoding into data (deltas) vs metadata bits."""
        enc, _payload, data_bits = self._encode(values)
        n = len(values)
        if enc in (BDIEncoding.B4D1, BDIEncoding.B4D2):
            # base + selectors are metadata; the deltas are the data.
            width = DELTA_WIDTHS[enc - BDIEncoding.B4D1]
            meta_bits = TAG_BITS + 32 + n
            data_bits = n * width
            n_compressed = n
        else:
            meta_bits = TAG_BITS
            n_compressed = n if enc is not BDIEncoding.UNCOMP else 0
        return LinePack(
            n_words=n,
            n_compressed=n_compressed,
            data_bits=data_bits,
            meta_bits=meta_bits,
        )

    # ---- cost models ------------------------------------------------------

    @property
    def timing(self) -> CodecTiming:
        """Published BDI figures: decompression is one SIMD add (1 cycle);
        compression runs all encoders in parallel (2 cycles)."""
        return CodecTiming(compress_cycles=2, decompress_cycles=1)

    def tag_overhead(self) -> TagOverhead:
        """The 3-bit encoding tag lives in the tag array so the
        controller can size the line before reading data (the BDI paper
        stores it alongside the tag); 1 extra bit marks compressible
        segment boundaries in the segmented data array."""
        return TagOverhead(per_word_bits=0.0, per_line_bits=4.0)
