"""Failure paths of the fault-tolerant supervision engine.

Workers here are module-level so they survive the fork into child
processes; injected faults (crash, hang, flaky) exercise the supervisor
the way a real broken cell would.
"""

import os
import time
from pathlib import Path

import pytest

from repro.errors import (
    CellCrashError,
    CellTimeoutError,
    ConfigurationError,
    ExperimentError,
    MatrixPartialFailure,
    WorkloadError,
)
from repro.sim import fault
from repro.sim.fault import Checkpoint, FaultPolicy, run_supervised
from repro.sim.runner import clear_caches, run_matrix

FAST = FaultPolicy(
    retries=1, backoff_base=0.01, backoff_max=0.02, jitter=0.0,
    poll_interval=0.005,
)
SCALE = 0.1


def _key(task):
    return ("task", str(task))


def _ok_worker(task):
    return task * 2


def _crash_worker(task):
    os._exit(3)


def _hang_worker(task):
    time.sleep(60)


def _error_worker(task):
    raise WorkloadError(f"no such workload: {task}")


def _flaky_worker(marker_path):
    # Fails hard on the first attempt, succeeds on the retry: the marker
    # file persists across the child processes of one test.
    marker = Path(marker_path)
    if not marker.exists():
        marker.write_text("seen")
        os._exit(9)
    return "recovered"


class TestSupervisedHappyPath:
    def test_all_cells_succeed(self):
        out = run_supervised([1, 2, 3], _ok_worker, key_of=_key, policy=FAST)
        assert out.ok
        assert out.results == {_key(t): t * 2 for t in (1, 2, 3)}
        assert all(n == 1 for n in out.attempts.values())
        assert out.raise_if_failed() is out

    def test_multiple_workers(self):
        out = run_supervised(
            list(range(6)), _ok_worker, key_of=_key, policy=FAST, max_workers=3
        )
        assert out.ok and len(out.results) == 6


class TestCrashIsolation:
    def test_crash_classified_with_exitcode(self):
        out = run_supervised([1], _crash_worker, key_of=_key, policy=FAST)
        assert not out.ok and not out.results
        failure = out.failures[0]
        assert failure.kind == fault.KIND_CRASH
        assert failure.exitcode == 3
        assert failure.attempts == 2  # 1 try + 1 retry
        assert fault.LEDGER.is_failed(_key(1))

    def test_partial_failure_exception(self):
        out = run_supervised([1, 2], _crash_worker, key_of=_key, policy=FAST)
        with pytest.raises(MatrixPartialFailure) as excinfo:
            out.raise_if_failed()
        assert len(excinfo.value.failures) == 2

    def test_crash_does_not_poison_siblings(self):
        tasks = [1, "boom", 2]

        def run(task):
            return _crash_worker(task) if task == "boom" else _ok_worker(task)

        out = run_supervised(tasks, run, key_of=_key, policy=FAST, max_workers=2)
        assert set(out.results) == {_key(1), _key(2)}
        assert [f.key for f in out.failures] == [_key("boom")]

    def test_fail_fast_raises_typed(self):
        policy = FaultPolicy(
            retries=0, backoff_base=0.01, jitter=0.0, fail_fast=True,
            poll_interval=0.005,
        )
        with pytest.raises(CellCrashError):
            run_supervised([1], _crash_worker, key_of=_key, policy=policy)


class TestTimeout:
    def test_hung_worker_is_terminated(self):
        policy = FaultPolicy(
            timeout=0.3, retries=0, jitter=0.0, poll_interval=0.005
        )
        t0 = time.perf_counter()
        out = run_supervised([1], _hang_worker, key_of=_key, policy=policy)
        elapsed = time.perf_counter() - t0
        assert elapsed < 5.0  # nowhere near the worker's 60 s sleep
        failure = out.failures[0]
        assert failure.kind == fault.KIND_TIMEOUT
        assert failure.timeout == 0.3
        assert failure.to_exception().__class__ is CellTimeoutError

    def test_fail_fast_timeout_raises_typed(self):
        policy = FaultPolicy(
            timeout=0.3, retries=0, jitter=0.0, fail_fast=True,
            poll_interval=0.005,
        )
        with pytest.raises(CellTimeoutError):
            run_supervised([1], _hang_worker, key_of=_key, policy=policy)


class TestRetries:
    def test_flaky_cell_recovers_on_retry(self, tmp_path):
        marker = tmp_path / "attempted"
        out = run_supervised([str(marker)], _flaky_worker,
                             key_of=_key, policy=FAST)
        assert out.ok
        assert out.results[_key(str(marker))] == "recovered"
        assert out.attempts[_key(str(marker))] == 2

    def test_repro_error_classified(self):
        out = run_supervised(["ghost"], _error_worker, key_of=_key, policy=FAST)
        failure = out.failures[0]
        assert failure.kind == fault.KIND_ERROR
        assert failure.exception_type == "WorkloadError"
        assert "ghost" in failure.message

    def test_backoff_is_deterministic_and_grows(self):
        policy = FaultPolicy(backoff_base=0.5, backoff_factor=2.0,
                             backoff_max=10.0, jitter=0.1)
        key = ("w", "BC")
        assert policy.backoff_delay(key, 1) == policy.backoff_delay(key, 1)
        assert policy.backoff_delay(key, 3) > policy.backoff_delay(key, 1)

    def test_backoff_is_capped(self):
        policy = FaultPolicy(backoff_base=1.0, backoff_factor=10.0,
                             backoff_max=2.0, jitter=0.0)
        assert policy.backoff_delay(("k",), 9) == 2.0


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout": 0.0},
            {"timeout": -1.0},
            {"retries": -1},
            {"backoff_base": -0.1},
            {"backoff_factor": 0.5},
            {"jitter": 1.5},
            {"poll_interval": 0.0},
        ],
    )
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultPolicy(**kwargs)


class TestCheckpoint:
    def test_resume_skips_completed_cells(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        encode, decode = (lambda r: {"v": r}), (lambda d: d["v"])
        first = run_supervised(
            [1, 2], _ok_worker, key_of=_key, policy=FAST,
            checkpoint=Checkpoint(path, encode=encode, decode=decode),
        )
        assert first.ok and first.reused == 0
        # Second pass over the same keys with a worker that would crash:
        # the checkpoint must satisfy every cell so it never runs.
        second = run_supervised(
            [1, 2], _crash_worker, key_of=_key, policy=FAST,
            checkpoint=Checkpoint(path, encode=encode, decode=decode),
        )
        assert second.ok and second.reused == 2
        assert second.results == first.results

    def test_fresh_discards_existing(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        encode, decode = (lambda r: {"v": r}), (lambda d: d["v"])
        ck = Checkpoint(path, encode=encode, decode=decode)
        ck.add(("a",), 1)
        assert len(Checkpoint(path, encode=encode, decode=decode)) == 1
        assert len(Checkpoint(path, encode=encode, decode=decode, fresh=True)) == 0
        assert not path.exists()

    def test_lenient_load_skips_garbage_lines(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        encode, decode = (lambda r: {"v": r}), (lambda d: d["v"])
        ck = Checkpoint(path, encode=encode, decode=decode)
        ck.add(("a",), 1)
        ck.add(("b",), 2)
        path.write_text(
            path.read_text() + "{not json\n", encoding="utf-8"
        )
        reloaded = Checkpoint(path, encode=encode, decode=decode)
        assert len(reloaded) == 2
        assert reloaded.get(("a",)) == 1

    def test_get_missing_key_raises(self, tmp_path):
        ck = Checkpoint(tmp_path / "ck.jsonl")
        with pytest.raises(ExperimentError):
            ck.get(("nope",))


class TestMatrixSupervised:
    def test_interrupted_resume_is_bit_identical_to_serial(self, tmp_path):
        clear_caches()
        workloads, configs = ["olden.mst", "olden.treeadd"], ["BC", "CPP"]
        serial = run_matrix(workloads, configs, scale=SCALE)
        path = tmp_path / "matrix.jsonl"
        # "Interrupt": a first campaign that only got through one workload.
        partial = fault.run_matrix_supervised(
            ["olden.mst"], configs, scale=SCALE, policy=FAST,
            checkpoint_path=path,
        )
        assert partial.ok and len(partial.results) == 2
        # Resume the full campaign: the two checkpointed cells are reused.
        full = fault.run_matrix_supervised(
            workloads, configs, scale=SCALE, policy=FAST,
            checkpoint_path=path, resume=True,
        )
        assert full.ok and full.reused == 2
        assert len(full.results) == len(serial)
        by_name = {(k[0], k[3]): r for k, r in full.results.items()}
        for (workload, config), s in serial.items():
            r = by_name[(workload, config)]
            assert r.cycles == s.cycles, (workload, config)
            assert r.bus_words == s.bus_words, (workload, config)
            assert r.l1.misses == s.l1.misses, (workload, config)
            assert r.l2.misses == s.l2.misses, (workload, config)
            assert (
                r.ready_queue_in_miss_cycles == s.ready_queue_in_miss_cycles
            ), (workload, config)
        clear_caches()

    def test_keys_are_canonical_five_tuples(self):
        out = fault.run_matrix_supervised(
            ["olden.mst"], ["BC"], scale=SCALE, policy=FAST
        )
        (key,) = out.results
        assert key == ("olden.mst", 1, SCALE, "BC", 1.0)

    def test_empty_matrix_rejected(self):
        with pytest.raises(ExperimentError):
            fault.run_matrix_supervised([], ["BC"])
        with pytest.raises(ExperimentError):
            fault.run_matrix_supervised(["olden.mst"], [])


class TestTryCell:
    def test_failed_cell_yields_none(self):
        key = fault.cell_key("olden.mst", "BC", seed=1, scale=SCALE)
        fault.LEDGER.record(
            fault.CellFailure(key=key, kind=fault.KIND_CRASH,
                              message="injected", attempts=2)
        )
        assert fault.try_cell("olden.mst", "BC", seed=1, scale=SCALE) is None

    def test_unknown_config_degrades_to_hole(self):
        assert (
            fault.try_cell("olden.mst", "NOPE", seed=1, scale=SCALE) is None
        )
        assert len(fault.LEDGER) == 1

    def test_healthy_cell_returns_result(self):
        clear_caches()
        result = fault.try_cell("olden.mst", "BC", seed=1, scale=SCALE)
        assert result is not None and result.config == "BC"
        clear_caches()


class TestFailureManifests:
    def test_permanent_failure_writes_a_record(self, tmp_path):
        from repro.obs import manifest

        manifest.configure(tmp_path)
        try:
            out = run_supervised(
                [1], _crash_worker, key_of=lambda t: ("olden.mst", 1, 0.1, "CPP", 1.0),
                policy=FAST,
            )
        finally:
            manifest.configure(None)
        assert not out.ok
        records = manifest.load_failures(tmp_path)
        assert len(records) == 1
        record = records[0]
        assert record.workload == "olden.mst"
        assert record.config == "CPP"
        assert record.kind == fault.KIND_CRASH
        assert record.attempts == 2
        assert record.seed == 1 and record.miss_scale == 1.0


class TestWorkersEnv:
    def test_env_caps_the_core_default(self, monkeypatch):
        from repro.sim.parallel import default_workers

        monkeypatch.setattr(os, "cpu_count", lambda: 9)
        assert default_workers() == 8  # cores - 1
        monkeypatch.setenv("REPRO_MAX_WORKERS", "2")
        assert default_workers() == 2

    def test_env_clamped_to_one(self, monkeypatch):
        from repro.sim.parallel import default_workers

        monkeypatch.setenv("REPRO_MAX_WORKERS", "0")
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_MAX_WORKERS", "-4")
        assert default_workers() == 1

    def test_env_garbage_rejected(self, monkeypatch):
        from repro.sim.parallel import default_workers

        monkeypatch.setenv("REPRO_MAX_WORKERS", "lots")
        with pytest.raises(ConfigurationError):
            default_workers()

    def test_env_blank_falls_back(self, monkeypatch):
        from repro.sim.parallel import default_workers

        monkeypatch.setenv("REPRO_MAX_WORKERS", "  ")
        assert default_workers() >= 1


class TestProgress:
    def test_parallel_configs_report_progress(self):
        from repro.obs import progress
        from repro.sim.config import SIM_CONFIGS
        from repro.sim.parallel import run_matrix_parallel_configs

        lines = []
        progress.set_sink(lines.append)
        try:
            run_matrix_parallel_configs(
                ["olden.mst"], [SIM_CONFIGS["BC"]], scale=SCALE,
                max_workers=1, progress=True,
            )
        finally:
            progress.set_sink(None)
        assert any("completed" in line for line in lines)
