"""Ablation: the compressed-slot width (paper §2.1, citing [16]).

The paper compresses 32-bit words to 16 bits, arguing 16 "strikes a good
balance between the two competing effects": a narrower slot compresses
fewer values; a wider one frees less space for prefetched words. The
sweep measures both effects: the compressible fraction rises
monotonically with width, while CPP performance peaks in the middle.
"""

import numpy as np
from conftest import BENCH_SEED, run_once

from repro.caches.hierarchy import HierarchyParams
from repro.compression.scheme import CompressionScheme
from repro.compression.vectorized import compression_summary
from repro.sim.config import SimConfig
from repro.sim.runner import get_program, run_program

WORKLOADS = ["olden.treeadd", "spec95.130.li", "spec2000.300.twolf"]
SCALE = 0.35
PAYLOADS = (7, 15, 23)  # 8-, 16- (paper), 24-bit compressed slots


def run_width_sweep():
    out = {}
    for payload in PAYLOADS:
        scheme = CompressionScheme(payload_bits=payload)
        params = HierarchyParams(scheme=scheme)
        config = SimConfig(cache_config="CPP", hierarchy=params)
        cycles = 0
        fracs = []
        for name in WORKLOADS:
            program = get_program(name, seed=BENCH_SEED, scale=SCALE)
            cycles += run_program(program, config).cycles
            fracs.append(
                compression_summary(
                    *program.trace.accessed_values(), scheme
                ).fraction_compressible
            )
        out[payload] = (cycles, float(np.mean(fracs)))
    return out


def test_ablation_compressed_width(benchmark):
    results = run_once(benchmark, run_width_sweep)
    for payload, (cycles, frac) in results.items():
        benchmark.extra_info[f"p{payload}_cycles"] = cycles
        benchmark.extra_info[f"p{payload}_compressible"] = round(frac, 3)
    # Compressibility rises monotonically with slot width:
    assert results[7][1] <= results[15][1] <= results[23][1]
    # The paper's 16-bit point beats the narrow extreme outright:
    assert results[15][0] < results[7][0]
    # ... and is within a small margin of (or better than) the wide point,
    # which compresses more values but can carry fewer prefetched words:
    assert results[15][0] <= results[23][0] * 1.05
