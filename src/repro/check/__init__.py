"""Differential correctness harness for the cache subsystem.

The hot-path cache models (:mod:`repro.caches`) are heavily optimized —
packed bitmask flags, memoized compressibility, allocation-free loops.
This package is their safety net, in the tradition of SimpleScalar's
``sim-safe`` / ``sim-outorder`` split:

* :mod:`repro.check.reference` — an *obviously correct*, deliberately
  naive reimplementation of the cache protocols (dict-based frames, no
  bitmasks, classification recomputed on every use) mirroring the
  :class:`~repro.caches.interface.LineSource` contract for every
  evaluated configuration;
* :mod:`repro.check.diff` — a :class:`DifferentialRunner` that drives
  the real hierarchy and the reference in lockstep over access streams,
  diffing hit/miss class, returned words, latency, flag-visible state,
  statistics and bus traffic per access, with first-divergence stream
  minimization (shrink a failing stream to a small repro);
* :mod:`repro.check.invariants` — the opt-in runtime invariant layer
  (``REPRO_CHECK=1`` or ``--check``): structural audits after every
  mutating cache operation, raising typed
  :class:`~repro.errors.InvariantViolation` with a frame dump;
* ``tools/fuzz_cache.py`` — the seeded property fuzzer built on the
  runner (configs x scheme widths x access patterns), wired into CI.

Submodules are imported lazily: :mod:`repro.caches` imports
:mod:`repro.check.runtime` for the enable gate, and the heavyweight
modules here import :mod:`repro.caches` back, so eager imports would
cycle.
"""

from __future__ import annotations

from repro.check.runtime import ENV_VAR, runtime_checks_enabled, set_runtime_checks

__all__ = [
    "ENV_VAR",
    "runtime_checks_enabled",
    "set_runtime_checks",
    "ReferenceCache",
    "ReferenceClassicCache",
    "ReferenceMemoryPort",
    "ReferencePrefetchingCache",
    "build_reference_hierarchy",
    "DifferentialRunner",
    "Divergence",
    "Op",
    "program_stream",
    "random_stream",
    "audit",
    "install_runtime_checks",
]

_LAZY = {
    "ReferenceCache": "repro.check.reference",
    "ReferenceClassicCache": "repro.check.reference",
    "ReferenceMemoryPort": "repro.check.reference",
    "ReferencePrefetchingCache": "repro.check.reference",
    "build_reference_hierarchy": "repro.check.reference",
    "DifferentialRunner": "repro.check.diff",
    "Divergence": "repro.check.diff",
    "Op": "repro.check.diff",
    "program_stream": "repro.check.diff",
    "random_stream": "repro.check.diff",
    "audit": "repro.check.invariants",
    "install_runtime_checks": "repro.check.invariants",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
