"""Write-path (§3.3) and image-boundary pairing tests for the CPP cache.

The paper's §3.3 write rules: a store to a word resident only as an
affiliated copy promotes the affiliated line to a primary place *before*
writing (affiliated words are never dirty), and a store that makes a
word incompressible reclaims the whole slot for the primary word, so no
stale affiliated copy can ever be served. Every scenario here ends with
a full structural audit, so "no stale copy" is asserted by the invariant
layer rather than by spot checks alone.

The boundary tests cover the affiliated-pairing edge at the end of a
mapped image: the partner of a segment's last line (``line XOR 0x1``)
does not exist, and the fill must not fabricate words out of it.
"""

import pytest

from repro.caches.compression_cache import CompressionCache, CPPPolicy
from repro.caches.interface import MemoryPort
from repro.check.invariants import audit
from repro.errors import UnmappedAddressError
from repro.memory.image import MemoryImage
from repro.memory.main_memory import MainMemory

BASE = 0x1000_0000
LINE = 64  # 16 words
WORDS = LINE // 4
BIG = 0xDEAD_BEEF  # incompressible at heap addresses
SMALL = 42


def make_cpp(mem=None, *, size=512, assoc=1):
    mem = mem or MainMemory(MemoryImage(), latency=100)
    cache = CompressionCache(
        "C",
        size_bytes=size,
        assoc=assoc,
        line_bytes=LINE,
        hit_latency=1,
        downstream=MemoryPort(mem, writeback_compressed=True),
        policy=CPPPolicy(),
    )
    return cache, mem


def seed_small_pair(mem, base=BASE):
    for i in range(2 * WORDS):
        mem.poke_word(base + 4 * i, SMALL + i)


class TestWritePromotesAffiliated:
    def test_store_to_affiliated_word_promotes_first(self):
        cache, mem = make_cpp()
        seed_small_pair(mem)
        cache.access(BASE, write=False)
        target = BASE + LINE + 4  # word 1 of the affiliated line
        assert cache.probe_word(target) == "affiliated"
        result = cache.access(target, write=True, value=7)
        # Promotion happened before the write landed (§3.3): the line now
        # occupies a primary place and the store is a (slower) hit there.
        assert cache.probe_word(target) == "primary"
        assert cache.stats.promotions == 1
        assert result.latency == cache.hit_latency + 1  # affiliated penalty
        audit(cache)

    def test_promoted_write_is_readable_and_dirty(self):
        cache, mem = make_cpp()
        seed_small_pair(mem)
        cache.access(BASE, write=False)
        target = BASE + LINE + 4
        cache.access(target, write=True, value=7)
        assert cache.access(target, write=False).value == 7
        frame = cache._find_primary(cache.line_no(target), touch=False)
        assert frame.dirty
        audit(cache)

    def test_promotion_leaves_no_affiliated_residue(self):
        # After promotion the old holder must not keep ANY copy of the
        # promoted line (single-copy), and the flush must write back the
        # stored value, not the stale prefetched one.
        cache, mem = make_cpp()
        seed_small_pair(mem)
        cache.access(BASE, write=False)
        target = BASE + LINE + 4
        cache.access(target, write=True, value=7)
        holder = cache._find_primary(cache.line_no(BASE), touch=False)
        if holder is not None:  # may have been evicted by the promotion
            assert holder.aa == 0
        audit(cache)  # single-copy is one of the audited invariants
        cache.flush()
        assert mem.image.read_word(target) == 7

    def test_promote_in_single_set_cache(self):
        # n_sets == 1: the promoted line lands in the same (only) set that
        # holds the old holder — the edge where victim choice could pick
        # the holder itself.
        cache, mem = make_cpp(size=128, assoc=2)  # 2 ways, 1 set
        seed_small_pair(mem)
        cache.access(BASE, write=False)
        target = BASE + LINE + 8
        assert cache.probe_word(target) == "affiliated"
        cache.access(target, write=True, value=9)
        assert cache.probe_word(target) == "primary"
        assert cache.access(target, write=False).value == 9
        audit(cache)


class TestIncompressibleStoreReclaimsSlot:
    def test_store_drops_the_affiliated_sharer(self):
        cache, mem = make_cpp()
        seed_small_pair(mem)
        cache.access(BASE, write=False)
        shared = BASE + LINE  # word 0 affiliated copy rides in slot 0
        assert cache.probe_word(shared) == "affiliated"
        cache.access(BASE, write=True, value=BIG)  # slot 0 now needed in full
        assert cache.probe_word(shared) is None
        assert cache.stats.dropped_affiliated_words == 1
        audit(cache)

    def test_dropped_word_is_refetched_not_served_stale(self):
        cache, mem = make_cpp()
        seed_small_pair(mem)
        cache.access(BASE, write=False)
        shared = BASE + LINE
        mem.poke_word(shared, 4321)  # memory moved on; stale copy differs
        cache.access(BASE, write=True, value=BIG)
        reads_before = mem.n_reads
        result = cache.access(shared, write=False)
        assert result.value == 4321  # fresh from memory, not the stale 42
        assert mem.n_reads > reads_before
        audit(cache)

    def test_compressible_store_keeps_the_sharer(self):
        cache, mem = make_cpp()
        seed_small_pair(mem)
        cache.access(BASE, write=False)
        shared = BASE + LINE
        cache.access(BASE, write=True, value=SMALL + 99)  # still compressible
        assert cache.probe_word(shared) == "affiliated"
        assert cache.stats.dropped_affiliated_words == 0
        audit(cache)


class TestImageBoundaryPairing:
    """The affiliated partner of a mapped image's boundary line does not
    exist and must not be fabricated.

    Strict images are page-granular (4 KB), and the paper's ``line ^ 1``
    pairing never crosses a page, so the edge is exercised with a wider
    pairing mask (``line ^ 64`` = one page apart for 64-byte lines) that
    makes the last mapped page's lines pair into the unmapped void —
    plus a direct :meth:`MemoryPort.fetch_pair` probe of the same edge.
    """

    PAGE = 4096
    PAGE_LINES = PAGE // LINE  # 64: also the pairing mask used here

    def make_strict(self, n_pages=1):
        img = MemoryImage(strict=True)
        for i in range(n_pages * self.PAGE // 4):
            img.write_word(BASE + 4 * i, SMALL + i % 1000)
        mem = MainMemory(img, latency=100)
        cache = CompressionCache(
            "C",
            size_bytes=512,
            assoc=1,
            line_bytes=LINE,
            hit_latency=1,
            downstream=MemoryPort(mem, writeback_compressed=True),
            policy=CPPPolicy(mask=self.PAGE_LINES),
        )
        return cache, mem

    def test_boundary_fill_does_not_fabricate_the_partner(self):
        cache, mem = self.make_strict(n_pages=1)
        result = cache.access(BASE, write=False)  # partner page is unmapped
        assert result.value == SMALL
        frame = cache._find_primary(cache.line_no(BASE), touch=False)
        assert frame.pa  # the demand fill itself succeeded in full
        assert frame.aa == 0  # nothing prefetched out of the void
        assert cache.probe_word(BASE + self.PAGE) is None
        assert cache.stats.prefetched_words == 0
        audit(cache)

    def test_interior_fill_still_prefetches(self):
        cache, _ = self.make_strict(n_pages=2)  # partner page mapped
        cache.access(BASE, write=False)
        assert cache.probe_word(BASE + self.PAGE) == "affiliated"
        assert cache.stats.prefetched_words > 0
        audit(cache)

    def test_port_fetch_pair_returns_none_for_unmapped_partner(self):
        _, mem = self.make_strict(n_pages=1)
        port = MemoryPort(mem)
        values, affil = port.fetch_pair(BASE, WORDS, BASE + self.PAGE)
        assert values[0] == SMALL
        assert affil is None

    def test_port_fetch_pair_returns_values_for_mapped_partner(self):
        _, mem = self.make_strict(n_pages=2)
        port = MemoryPort(mem)
        values, affil = port.fetch_pair(BASE, WORDS, BASE + self.PAGE)
        assert affil is not None
        assert affil[0] == SMALL + (self.PAGE // 4) % 1000

    def test_strict_image_still_rejects_direct_unmapped_reads(self):
        _, mem = self.make_strict(n_pages=1)
        with pytest.raises(UnmappedAddressError):
            mem.image.read_word(BASE + self.PAGE)

    def test_boundary_line_write_and_flush_round_trip(self):
        cache, mem = self.make_strict(n_pages=1)
        cache.access(BASE, write=True, value=1234)
        audit(cache)
        cache.flush()
        assert mem.image.read_word(BASE) == 1234
