"""End-to-end correctness: every configuration is a transparent memory.

Two strong properties over real workload traces:

1. **verified loads** — during simulation every load returns exactly the
   value the generator observed (checked inside the core);
2. **memory equivalence** — after running the trace and flushing the
   hierarchy, the simulated memory image equals the generator's final
   image, word for word, for every configuration.
"""

import pytest

from repro.caches.hierarchy import build_hierarchy
from repro.cpu.pipeline import OutOfOrderCore
from repro.memory.main_memory import MainMemory
from repro.sim.config import CONFIG_NAMES, SimConfig
from repro.workloads.registry import generate

#: One pointer-chasing, one churn-fragmented, one array workload.
WORKLOADS = ["olden.treeadd", "olden.health", "spec95.129.compress"]
SCALE = 0.2


@pytest.fixture(scope="module")
def programs():
    return {name: generate(name, seed=1, scale=SCALE) for name in WORKLOADS}


@pytest.mark.parametrize("config", CONFIG_NAMES)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_verified_run_and_memory_equivalence(programs, workload, config):
    program = programs[workload]
    sim_config = SimConfig(cache_config=config)
    memory = MainMemory(latency=sim_config.effective_memory_latency())
    hierarchy = build_hierarchy(
        config, memory, sim_config.effective_hierarchy()
    )
    core = OutOfOrderCore(hierarchy, sim_config.core, verify_loads=True)
    core.run(program.trace)  # raises on any wrong load value
    hierarchy.check_invariants()
    hierarchy.flush()
    assert memory.image == program.final_image, (
        f"{config} diverged from architectural memory on {workload}"
    )


@pytest.mark.parametrize("workload", WORKLOADS)
def test_all_configs_agree_on_committed_work(programs, workload):
    """Configurations differ in timing, never in computation."""
    program = programs[workload]
    results = {}
    for config in CONFIG_NAMES:
        sim_config = SimConfig(cache_config=config)
        memory = MainMemory(latency=100)
        hierarchy = build_hierarchy(
            config, memory, sim_config.effective_hierarchy()
        )
        outcome = OutOfOrderCore(hierarchy, sim_config.core).run(program.trace)
        results[config] = outcome
    committed = {r.metrics.committed for r in results.values()}
    assert committed == {len(program.trace)}
    mispredicts = {r.branch_mispredicts for r in results.values()}
    assert len(mispredicts) == 1  # the predictor sees the same stream
