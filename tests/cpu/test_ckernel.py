"""Compiled core loop: availability gating, cache dir override, fallback.

The C kernel is an *optional* accelerator under the ``fast`` backend —
every test here pins the contract that disabling it (or lacking a
compiler) silently falls back to the pure-Python fast loop with
bit-identical results.
"""

import json

import pytest

from repro.cpu import ckernel
from repro.check.diff import BackendDiffRunner, random_program
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.sim.results_io import result_to_full_dict


def _reset_kernel_state(monkeypatch):
    """Force the next kernel lookup to re-evaluate the environment."""
    monkeypatch.setattr(ckernel, "_TRIED", False)
    monkeypatch.setattr(ckernel, "_KERNEL", None)


def _full_dict(program, backend):
    config = SimConfig(cache_config="CPP", backend=backend)
    result = Machine(config).run(program)
    return json.loads(json.dumps(result_to_full_dict(result)))


class TestAvailabilityGate:
    def test_disable_env_turns_kernel_off(self, monkeypatch):
        _reset_kernel_state(monkeypatch)
        monkeypatch.setenv("REPRO_DISABLE_CKERNEL", "1")
        assert not ckernel.kernel_available()

    def test_missing_compiler_means_unavailable(self, monkeypatch):
        _reset_kernel_state(monkeypatch)
        monkeypatch.delenv("REPRO_DISABLE_CKERNEL", raising=False)
        monkeypatch.setattr(ckernel.shutil, "which", lambda name: None)
        assert not ckernel.kernel_available()

    def test_failed_build_means_unavailable_not_crash(self, monkeypatch):
        _reset_kernel_state(monkeypatch)
        monkeypatch.delenv("REPRO_DISABLE_CKERNEL", raising=False)

        def boom():
            raise OSError("simulated build explosion")

        monkeypatch.setattr(ckernel, "_build", boom)
        assert not ckernel.kernel_available()

    def test_lookup_is_cached_after_first_try(self, monkeypatch):
        _reset_kernel_state(monkeypatch)
        monkeypatch.setenv("REPRO_DISABLE_CKERNEL", "1")
        assert not ckernel.kernel_available()
        # Clearing the env after the first probe must not re-enable it:
        # the verdict is per-process, matching one compile per process.
        monkeypatch.delenv("REPRO_DISABLE_CKERNEL")
        assert not ckernel.kernel_available()


class TestCacheDir:
    def test_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CKERNEL_DIR", str(tmp_path))
        assert ckernel._cache_dir() == tmp_path

    def test_xdg_cache_home_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CKERNEL_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert ckernel._cache_dir() == tmp_path / "repro"

    def test_build_populates_the_override_dir(self, monkeypatch, tmp_path):
        if ckernel.shutil.which("gcc") is None and ckernel.shutil.which("cc") is None:
            pytest.skip("no C compiler on this host")
        _reset_kernel_state(monkeypatch)
        monkeypatch.delenv("REPRO_DISABLE_CKERNEL", raising=False)
        monkeypatch.setenv("REPRO_CKERNEL_DIR", str(tmp_path))
        assert ckernel.kernel_available()
        assert list(tmp_path.glob("coreloop-*.so"))


class TestFallbackEquivalence:
    def test_python_fast_loop_matches_reference_without_kernel(self, monkeypatch):
        _reset_kernel_state(monkeypatch)
        monkeypatch.setenv("REPRO_DISABLE_CKERNEL", "1")
        assert not ckernel.kernel_available()
        divergence = BackendDiffRunner("CPP").run(random_program(0, n_ops=400))
        assert divergence is None, divergence.describe()

    def test_kernel_and_python_fast_loops_agree(self, monkeypatch):
        """fast-with-kernel vs fast-without-kernel, leaf for leaf."""
        if not ckernel.kernel_available():
            pytest.skip("compiled kernel unavailable on this host")
        program = random_program(1, n_ops=400)
        with_kernel = _full_dict(program, "fast")
        _reset_kernel_state(monkeypatch)
        monkeypatch.setenv("REPRO_DISABLE_CKERNEL", "1")
        without_kernel = _full_dict(program, "fast")
        assert with_kernel == without_kernel
