"""Frequent Pattern Compression (Alameldeen & Wood) as a Codec ("fpc").

Each 32-bit word gets a 3-bit prefix naming one of eight patterns;
consecutive zero words additionally collapse into a single run token
(up to :data:`MAX_ZERO_RUN` words, 3-bit run length). The pattern table
(sizes include the prefix):

====== ======================================== ============ =========
prefix pattern                                  payload bits total bits
====== ======================================== ============ =========
``000`` zero run (1-8 words)                     3 (run len)  6
``001`` 4-bit sign-extended                      4            7
``010`` 8-bit sign-extended                      8            11
``011`` word of repeated bytes                   8            11
``100`` 16-bit sign-extended                     16           19
``101`` halfword padded with a zero halfword     16           19
``110`` two halfwords, each a sign-extended byte 16           19
``111`` uncompressed literal                     32           35
====== ======================================== ============ =========

Patterns are tried cheapest-first, so every word gets its minimal
encoding deterministically.

The per-word facet (:class:`FPCWordScheme`) exposes the subset of
patterns that fit the paper's 16-bit compressed slot (zero, 4-bit SE,
8-bit SE, repeated byte — all ≤ 11 bits + prefix ≤ 16); it is a pure
function of the value alone, so the CPP cache's VCP memo and the image
comp table stay valid under it. The wider 19-bit patterns exist only on
the bus/ratio path, not in cache slots.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence

import numpy as np

from repro.compression.codecs.protocol import (
    Codec,
    EncodedLine,
    LinePack,
    TagOverhead,
)
from repro.compression.timing import CodecTiming
from repro.utils.bitops import MASK32

__all__ = ["FPCCodec", "FPCWordScheme", "FPCPattern", "MAX_ZERO_RUN"]

PREFIX_BITS = 3
#: Longest zero run one ``000`` token covers (3-bit length field, 1-based).
MAX_ZERO_RUN = 8


class FPCPattern(enum.IntEnum):
    """The eight FPC patterns, in prefix order."""

    ZERO_RUN = 0
    SE4 = 1
    SE8 = 2
    REP8 = 3
    SE16 = 4
    HI16 = 5
    TWO_SE8 = 6
    UNCOMP = 7


#: Payload bits per pattern (the prefix adds :data:`PREFIX_BITS` more).
PAYLOAD_BITS = {
    FPCPattern.ZERO_RUN: 3,
    FPCPattern.SE4: 4,
    FPCPattern.SE8: 8,
    FPCPattern.REP8: 8,
    FPCPattern.SE16: 16,
    FPCPattern.HI16: 16,
    FPCPattern.TWO_SE8: 16,
    FPCPattern.UNCOMP: 32,
}


def _signed(value: int) -> int:
    """The 32-bit word as a signed integer."""
    value &= MASK32
    return value - (1 << 32) if value >> 31 else value


def _fits_signed(value: int, bits: int) -> bool:
    """Does the word sign-extend from its low *bits* bits?"""
    s = _signed(value)
    return -(1 << (bits - 1)) <= s <= (1 << (bits - 1)) - 1


def classify_word(value: int) -> FPCPattern:
    """The cheapest pattern covering *value* (zero reported as ZERO_RUN)."""
    value &= MASK32
    if value == 0:
        return FPCPattern.ZERO_RUN
    if _fits_signed(value, 4):
        return FPCPattern.SE4
    if _fits_signed(value, 8):
        return FPCPattern.SE8
    if value == (value & 0xFF) * 0x01010101:
        return FPCPattern.REP8
    if _fits_signed(value, 16):
        return FPCPattern.SE16
    if value & 0xFFFF == 0:
        return FPCPattern.HI16
    hi, lo = value >> 16, value & 0xFFFF
    if _fits_signed(hi | (0xFFFF0000 if hi >> 15 else 0), 8) and _fits_signed(
        lo | (0xFFFF0000 if lo >> 15 else 0), 8
    ):
        return FPCPattern.TWO_SE8
    return FPCPattern.UNCOMP


class FPCWordScheme:
    """Per-word facet: the ≤16-bit pattern subset, address-independent.

    Duck-compatible with :class:`~repro.compression.scheme.CompressionScheme`
    where the cache models need it: ``is_compressible``,
    ``compressed_bits``, ``payload_bits`` and the vectorized
    ``mask_compressible`` hook (used by the bulk classifier and the
    image comp table).
    """

    #: A compressed slot is the paper's 16-bit geometry, so two
    #: compressed values pair in one 32-bit slot exactly as in CPP.
    compressed_bits = 16
    payload_bits = 15

    def is_compressible(self, value: int, addr: int) -> bool:
        """Patterns that fit a 16-bit slot: zero / SE4 / SE8 / repeated
        byte. Purely value-based — the address plays no role in FPC."""
        value &= MASK32
        return (
            value < 0x80
            or value >= 0xFFFF_FF80
            or value == (value & 0xFF) * 0x01010101
        )

    def mask_compressible(
        self, values: np.ndarray, addrs: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`is_compressible` (bulk-classifier hook)."""
        values = np.ascontiguousarray(values, dtype=np.uint32)
        se8 = (values < np.uint32(0x80)) | (values >= np.uint32(0xFFFF_FF80))
        rep = values == (values & np.uint32(0xFF)) * np.uint32(0x01010101)
        return se8 | rep

    def __eq__(self, other: object) -> bool:
        return type(other) is FPCWordScheme

    def __hash__(self) -> int:
        return hash(type(self))


class FPCCodec(Codec):
    """FPC line coding with zero-run aggregation.

    Token stream: ``(pattern, payload)`` pairs; a ``ZERO_RUN`` token's
    payload is the run length (1..8). ``UNCOMP`` carries the literal.
    """

    name = "fpc"
    word_scheme = FPCWordScheme()

    # ---- line coding ------------------------------------------------------

    def compress_line(
        self, values: Sequence[int], addrs: Sequence[int]
    ) -> EncodedLine:
        """Emit one prefix+payload token per word, aggregating zero runs."""
        tokens: list[tuple[FPCPattern, int]] = []
        bits = 0
        n = len(values)
        i = 0
        while i < n:
            value = values[i] & MASK32
            pattern = classify_word(value)
            if pattern is FPCPattern.ZERO_RUN:
                run = 1
                while (
                    run < MAX_ZERO_RUN
                    and i + run < n
                    and values[i + run] & MASK32 == 0
                ):
                    run += 1
                tokens.append((pattern, run))
                i += run
            else:
                payload = self._payload_of(pattern, value)
                tokens.append((pattern, payload))
                i += 1
            bits += PREFIX_BITS + PAYLOAD_BITS[pattern]
        return EncodedLine(
            codec=self.name, n_words=n, tokens=tuple(tokens), bits=bits
        )

    @staticmethod
    def _payload_of(pattern: FPCPattern, value: int) -> int:
        if pattern is FPCPattern.UNCOMP:
            return value
        if pattern is FPCPattern.REP8:
            return value & 0xFF
        if pattern is FPCPattern.HI16:
            return value >> 16
        if pattern is FPCPattern.TWO_SE8:
            return ((value >> 16) & 0xFF) << 8 | (value & 0xFF)
        # Sign-extended payloads keep the low bits.
        return value & ((1 << PAYLOAD_BITS[pattern]) - 1)

    def decompress_line(
        self, encoded: EncodedLine, addrs: Sequence[int]
    ) -> list[int]:
        """Expand every pattern token; zero runs fan back out to words."""
        out: list[int] = []
        for pattern, payload in encoded.tokens:
            if pattern is FPCPattern.ZERO_RUN:
                out.extend([0] * payload)
            elif pattern is FPCPattern.UNCOMP:
                out.append(payload)
            elif pattern is FPCPattern.REP8:
                out.append(payload * 0x01010101)
            elif pattern is FPCPattern.HI16:
                out.append(payload << 16)
            elif pattern is FPCPattern.TWO_SE8:
                out.append(
                    self._se(payload >> 8, 8, 16) << 16
                    | self._se(payload & 0xFF, 8, 16)
                )
            else:
                out.append(
                    self._se(payload, PAYLOAD_BITS[pattern], 32)
                )
        if len(out) != encoded.n_words:
            raise ValueError(
                f"FPC token stream decoded {len(out)} words, "
                f"expected {encoded.n_words}"
            )
        return out

    @staticmethod
    def _se(payload: int, from_bits: int, to_bits: int) -> int:
        """Sign-extend *payload* from *from_bits* into *to_bits* bits."""
        if payload >> (from_bits - 1):
            payload |= ((1 << to_bits) - 1) & ~((1 << from_bits) - 1)
        return payload & ((1 << to_bits) - 1)

    def pack_line(
        self, values: Sequence[int], addrs: Sequence[int]
    ) -> LinePack:
        """Bit accounting of :meth:`compress_line` without building tokens."""
        n = len(values)
        n_compressed = 0
        data_bits = 0
        meta_bits = 0
        i = 0
        while i < n:
            value = values[i] & MASK32
            pattern = classify_word(value)
            if pattern is FPCPattern.ZERO_RUN:
                run = 1
                while (
                    run < MAX_ZERO_RUN
                    and i + run < n
                    and values[i + run] & MASK32 == 0
                ):
                    run += 1
                n_compressed += run
                i += run
            else:
                if pattern is not FPCPattern.UNCOMP:
                    n_compressed += 1
                i += 1
            data_bits += PAYLOAD_BITS[pattern]
            meta_bits += PREFIX_BITS
        return LinePack(
            n_words=n,
            n_compressed=n_compressed,
            data_bits=data_bits,
            meta_bits=meta_bits,
        )

    # ---- cost models ------------------------------------------------------

    @property
    def timing(self) -> CodecTiming:
        """Published FPC pipeline: 5-cycle decompression (the parallel
        pattern decode feeds a variable shift network), 3-cycle
        compression off the critical path."""
        return CodecTiming(compress_cycles=3, decompress_cycles=5)

    def tag_overhead(self) -> TagOverhead:
        """A compressed-size tag per line so the controller can locate
        variable-length lines: ``ceil(log2(35 * n + 1))`` ≈ 10 bits for
        16-word lines, modelled as a flat 10; prefixes travel in-stream
        and are counted there."""
        return TagOverhead(per_word_bits=0.0, per_line_bits=10.0)
