"""The parallel matrix must equal the serial one exactly."""

import pytest

from repro.errors import ExperimentError
from repro.sim.parallel import default_workers, run_matrix_parallel
from repro.sim.runner import clear_caches, run_matrix

WORKLOADS = ["olden.mst", "olden.treeadd"]
CONFIGS = ["BC", "CPP"]
SCALE = 0.1


class TestEquivalence:
    def test_parallel_equals_serial(self):
        clear_caches()
        serial = run_matrix(WORKLOADS, CONFIGS, scale=SCALE)
        parallel = run_matrix_parallel(
            WORKLOADS, CONFIGS, scale=SCALE, max_workers=2
        )
        assert set(parallel) == set(serial)
        for key in serial:
            s, p = serial[key], parallel[key]
            assert p.cycles == s.cycles, key
            assert p.bus_words == s.bus_words, key
            assert p.l1.misses == s.l1.misses, key
            assert p.l2.misses == s.l2.misses, key
            assert p.branch_mispredicts == s.branch_mispredicts, key

    def test_single_worker_path(self):
        out = run_matrix_parallel(
            ["olden.mst"], ["BC"], scale=SCALE, max_workers=1
        )
        assert out[("olden.mst", "BC")].config == "BC"

    def test_results_are_complete_objects(self):
        out = run_matrix_parallel(
            ["olden.mst"], ["CPP"], scale=SCALE, max_workers=2
        )
        result = out[("olden.mst", "CPP")]
        # Nested state survived pickling:
        assert result.metrics.committed == result.instructions
        assert result.l1.accesses > 0


class TestPrewarm:
    def test_prewarm_fills_the_runner_cache(self):
        from repro.sim import runner

        clear_caches()
        n = runner.prewarm_parallel(
            ["olden.mst"], ["BC", "CPP"], scale=SCALE, max_workers=2
        )
        assert n == 2
        # Subsequent serial calls are cache hits (identical objects):
        a = runner.run_workload("olden.mst", "BC", scale=SCALE)
        b = runner.run_workload("olden.mst", "BC", scale=SCALE)
        assert a is b
        assert a.config == "BC"
        clear_caches()

    def test_prewarm_with_miss_scales(self):
        from repro.sim import runner
        from repro.sim.config import SIM_CONFIGS

        clear_caches()
        n = runner.prewarm_parallel(
            ["olden.mst"], ["BC"], scale=SCALE,
            miss_scales=(1.0, 0.5), max_workers=1,
        )
        assert n == 2
        half = runner.run_workload(
            "olden.mst", SIM_CONFIGS["BC"].with_miss_scale(0.5), scale=SCALE
        )
        normal = runner.run_workload("olden.mst", "BC", scale=SCALE)
        assert half.cycles <= normal.cycles
        clear_caches()


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            run_matrix_parallel([], ["BC"])
        with pytest.raises(ExperimentError):
            run_matrix_parallel(["olden.mst"], [])

    def test_bad_workers_rejected(self):
        with pytest.raises(ExperimentError):
            run_matrix_parallel(["olden.mst"], ["BC"], max_workers=0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1
