"""repro — reproduction of *Enabling Partial Cache Line Prefetching Through
Data Compression* (Zhang & Gupta, ICPP 2003).

The package implements, from scratch:

* the paper's 32→16-bit value compression scheme (:mod:`repro.compression`);
* a two-level cache hierarchy with five configurations — the baseline BC,
  compressed-bus BCC, higher-associativity HAC, prefetch-buffer BCP, and
  the paper's contribution CPP (:mod:`repro.caches`);
* a 4-issue out-of-order core in the image of SimpleScalar's
  ``sim-outorder`` (:mod:`repro.cpu`);
* fourteen trace-generating workloads modeled on the Olden / SPECint95 /
  SPECint2000 programs the paper evaluates (:mod:`repro.workloads`);
* experiment harnesses regenerating every figure of the paper's
  evaluation (:mod:`repro.experiments`).

Quickstart::

    from repro import run_workload

    result = run_workload("olden.treeadd", "CPP")
    print(result.cycles, result.l1.miss_rate, result.bus_words)
"""

from repro._version import __version__

__all__ = [
    "__version__",
    # re-exported lazily below
    "CompressionScheme",
    "PAPER_SCHEME",
    "Machine",
    "SimConfig",
    "SIM_CONFIGS",
    "CONFIG_NAMES",
    "run_workload",
    "WORKLOAD_NAMES",
    "get_workload",
]


def __getattr__(name: str):  # PEP 562 lazy re-exports: keep import light
    if name in ("CompressionScheme", "PAPER_SCHEME"):
        import repro.compression as _c

        return getattr(_c, name)
    if name == "Machine":
        from repro.sim.machine import Machine

        return Machine
    if name in ("SimConfig", "SIM_CONFIGS", "CONFIG_NAMES"):
        import repro.sim.config as _cfg

        return getattr(_cfg, name)
    if name == "run_workload":
        from repro.sim.runner import run_workload

        return run_workload
    if name in ("WORKLOAD_NAMES", "get_workload"):
        import repro.workloads.registry as _w

        return getattr(_w, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
