"""Gate-delay model of the compressor/decompressor (paper Figure 8).

The paper argues both delays are hidden: compression happens before the
write-back stage reaches the cache, and decompression overlaps tag match.
We keep the arithmetic visible so the claim is checkable against any
parameterization of the scheme.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.compression.scheme import PAPER_SCHEME, CompressionScheme

__all__ = [
    "GateDelayModel",
    "ECCDelayModel",
    "CodecTiming",
    "secded_check_bits",
]


@dataclass(frozen=True)
class GateDelayModel:
    """Delay of the combinational compress/decompress logic in gate levels.

    Compression checks three conditions in parallel (§3.2):

    1. the high ``pointer_prefix_bits`` of value and address are equal;
    2. the high ``small_check_bits`` are all ones;
    3. the high ``small_check_bits`` are all zeros.

    Each check is a balanced tree of 2-input gates over ``n`` bits —
    ``ceil(log2(n))`` levels — plus ``select_levels`` gate levels to encode
    which case applies. For the paper's scheme that is ``ceil(log2(18)) = 5``
    plus 3, i.e. 8 gate delays. Decompression is a 2-level enable network.
    """

    scheme: CompressionScheme = PAPER_SCHEME
    select_levels: int = 3
    decompress_levels: int = 2

    @property
    def widest_check_bits(self) -> int:
        return max(self.scheme.small_check_bits, self.scheme.pointer_prefix_bits)

    @property
    def compress_gate_delays(self) -> int:
        """Total gate levels on the compression path (paper: 8)."""
        return math.ceil(math.log2(self.widest_check_bits)) + self.select_levels

    @property
    def decompress_gate_delays(self) -> int:
        """Total gate levels on the decompression path (paper: 2)."""
        return self.decompress_levels

    def compression_hidden(self, gate_delays_per_cycle: int) -> bool:
        """Is compression hidden before write-back, given a cycle budget?

        The paper's argument: data is ready well before the write-back
        stage, so any compressor fitting in one cycle's gate budget is free.
        """
        if gate_delays_per_cycle <= 0:
            raise ValueError("gate_delays_per_cycle must be positive")
        return self.compress_gate_delays <= gate_delays_per_cycle

    def decompression_hidden(self, tag_match_gate_delays: int) -> bool:
        """Is decompression hidden under tag match (paper §3.2)?"""
        if tag_match_gate_delays <= 0:
            raise ValueError("tag_match_gate_delays must be positive")
        return self.decompress_gate_delays <= tag_match_gate_delays


@dataclass(frozen=True)
class CodecTiming:
    """Per-codec (de)compression latency in pipeline cycles.

    The paper's scheme hides both directions (compression finishes
    before write-back, decompression under tag match — the
    :class:`GateDelayModel` argument), so its cycle costs are zero. The
    zoo's other codecs pay real latency on the critical read path;
    numbers follow the published hardware implementations (BDI: 1-cycle
    decompression — one adder; FPC: 5-cycle decompression pipeline;
    C-Pack: 9-cycle decompression at 2 words/cycle). ``decompress_cycles``
    is the honest head-to-head cost: it sits on every hit to a
    compressed line, exactly where the paper's §3.2 argument claims CPP
    pays nothing.

    ``compress_gate_delays``/``decompress_gate_delays`` carry the
    gate-level derivation when one exists (the prefix scheme's
    :class:`GateDelayModel`); ``None`` means the cycle counts come from
    the codec's published implementation instead.
    """

    compress_cycles: int
    decompress_cycles: int
    compress_gate_delays: int | None = None
    decompress_gate_delays: int | None = None

    def __post_init__(self) -> None:
        if self.compress_cycles < 0 or self.decompress_cycles < 0:
            raise ValueError("cycle counts must be non-negative")

    @property
    def decompression_hidden(self) -> bool:
        """Zero-cycle decompression — off the critical read path."""
        return self.decompress_cycles == 0

    @property
    def compression_hidden(self) -> bool:
        """Zero-cycle compression — hidden before the write-back stage."""
        return self.compress_cycles == 0


def secded_check_bits(data_bits: int) -> int:
    """Check bits of a SECDED (extended Hamming) code over *data_bits*.

    The smallest ``r`` with ``2**r >= data_bits + r + 1`` Hamming bits,
    plus one overall-parity bit for double-error detection — e.g. 7 for
    a (39,32) code over a 32-bit slot, 6 for (22,16) over the paper's
    16-bit compressed slot.
    """
    if data_bits < 1:
        raise ValueError("data_bits must be positive")
    r = 1
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r + 1


@dataclass(frozen=True)
class ECCDelayModel:
    """Gate-level delay of the protection logic used by :mod:`repro.inject`.

    Same modelling style as :class:`GateDelayModel`: every check is a
    balanced tree of 2-input gates, so its delay is ``ceil(log2(n))``
    gate levels over the *n* bits it reduces.

    * **Parity** over a unit of ``data_bits`` (plus the stored parity
      bit) is one XOR tree: ``ceil(log2(data_bits + 1))`` levels.
    * **SECDED syndrome** generation reduces the full codeword
      (``data_bits`` + :func:`secded_check_bits`): ``ceil(log2(codeword))``
      levels; that is the *detection* path.
    * **Correction** decodes the syndrome and flips the addressed bit —
      ``correct_levels`` additional levels for the decoder/mux, the same
      role ``select_levels`` plays in :class:`GateDelayModel`.

    :meth:`cycles` converts gate levels to whole pipeline cycles against
    a per-cycle gate budget; a check that fits inside the budget is
    hidden under tag match — the same argument §3.2 makes for the
    decompressor — and costs zero extra cycles.
    """

    data_bits: int = 32
    correct_levels: int = 3

    def __post_init__(self) -> None:
        if self.data_bits < 1:
            raise ValueError("data_bits must be positive")
        if self.correct_levels < 0:
            raise ValueError("correct_levels must be non-negative")

    @property
    def check_bits(self) -> int:
        return secded_check_bits(self.data_bits)

    @property
    def codeword_bits(self) -> int:
        return self.data_bits + self.check_bits

    @property
    def parity_gate_delays(self) -> int:
        """XOR-tree depth of a per-unit parity check."""
        return math.ceil(math.log2(self.data_bits + 1))

    @property
    def syndrome_gate_delays(self) -> int:
        """SECDED syndrome generation (the detection path)."""
        return math.ceil(math.log2(self.codeword_bits))

    @property
    def correct_gate_delays(self) -> int:
        """Syndrome decode plus the single-bit correction mux."""
        return self.syndrome_gate_delays + self.correct_levels

    @staticmethod
    def cycles(gate_delays: int, gate_delays_per_cycle: int) -> int:
        """Extra pipeline cycles for a path of *gate_delays* levels.

        Zero when the path fits in one cycle's budget (hidden under tag
        match); otherwise the number of full cycles it occupies.
        """
        if gate_delays_per_cycle <= 0:
            raise ValueError("gate_delays_per_cycle must be positive")
        if gate_delays <= gate_delays_per_cycle:
            return 0
        return math.ceil(gate_delays / gate_delays_per_cycle)
