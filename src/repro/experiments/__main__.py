"""``python -m repro.experiments`` entry point."""

import sys

from repro.experiments.runall import main

sys.exit(main())
