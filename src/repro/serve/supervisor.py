"""Self-healing pool of queue-draining worker processes.

The supervisor owns N :mod:`repro.serve.worker` processes and keeps the
pool at strength without ever trusting a worker to die politely:

* **Reap and reclaim** — a dead worker's leases are expired immediately
  (attempt counts intact) via ``CampaignQueue.expire_worker``, so another
  worker reclaims them through the queue's single-winner rename instead
  of waiting out the lease TTL.
* **Restart with backoff** — each slot restarts under the same
  deterministic exponential-backoff-plus-jitter schedule cells use
  (:class:`repro.sim.fault.FaultPolicy`), so a worker that dies on
  arrival cannot fork-bomb the host. Every incarnation gets a fresh
  worker id (``...w<slot>.<restarts>``) so lease reclaim never confuses
  a dead incarnation with its replacement.
* **Stall detection** — a worker whose liveness file goes stale (judged
  by the *store's* filesystem clock, never the supervisor's wall clock)
  is SIGKILLed and treated as dead; a worker stuck on one cell past the
  per-cell timeout backstop likewise.
* **Graceful drain** — :meth:`WorkerPool.drain` SIGTERMs the pool, waits,
  then escalates to SIGKILL, and releases whatever leases the stragglers
  still held.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.obs.metrics import REGISTRY
from repro.sim.fault import FaultPolicy
from repro.store.cas import ResultStore
from repro.store.queue import (
    DEFAULT_LEASE_TTL,
    CampaignQueue,
    fs_clock_now,
)

from repro.serve.worker import TELEMETRY_DIRNAME, WORKERS_DIRNAME

__all__ = ["WorkerPool", "WorkerHandle"]

#: Where per-incarnation worker stdout/stderr logs go, under the store.
LOGS_DIRNAME = Path("serve") / "logs"


@dataclass
class WorkerHandle:
    """One pool slot: the current incarnation plus restart bookkeeping."""

    slot: int
    worker_id: str = ""
    proc: subprocess.Popen | None = None
    log: object | None = None
    restarts: int = 0
    restart_at: float = 0.0  #: monotonic deadline for the next spawn
    spawned: float = 0.0  #: monotonic time of the current incarnation
    finished: bool = False  #: drained cleanly; do not restart
    cell: str | None = None  #: digest the worker last reported computing
    cell_attempt: int | None = None
    cell_seen: float = 0.0  #: monotonic time we first saw this cell


class WorkerPool:
    """Spawn, watch, heal, and drain the worker processes."""

    def __init__(
        self,
        store_dir,
        *,
        workers: int = 2,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        cell_timeout: float | None = None,
        retries: int = 1,
        restart_policy: FaultPolicy | None = None,
        stall_after: float | None = None,
        worker_poll: float = 0.5,
        exit_when_drained: bool = False,
        extra_env: dict | None = None,
    ) -> None:
        self.store_dir = Path(store_dir)
        self.size = max(1, int(workers))
        self.lease_ttl = lease_ttl
        self.cell_timeout = cell_timeout
        self.retries = retries
        self.worker_poll = worker_poll
        self.exit_when_drained = exit_when_drained
        self.extra_env = dict(extra_env or {})
        # Workers refresh liveness every lease_ttl/3; three straight
        # missed refreshes means the process is wedged, not slow.
        self.stall_after = (
            stall_after if stall_after is not None else 2.0 * lease_ttl
        )
        self.restart_policy = restart_policy or FaultPolicy(
            retries=0, backoff_base=0.5, backoff_factor=2.0, backoff_max=15.0
        )
        base = f"serve-{os.getpid()}"
        self._base_id = base
        self._handles = [WorkerHandle(slot=i) for i in range(self.size)]
        self._draining = False
        self._store_root = ResultStore(self.store_dir).root

    # -- spawning --------------------------------------------------------

    def _worker_env(self) -> dict:
        env = dict(os.environ)
        # The worker must import repro from wherever this process did,
        # whether installed or run from a source tree.
        import repro

        pkg_parent = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH", "")
        if pkg_parent not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                pkg_parent + (os.pathsep + existing if existing else "")
            )
        env.update(self.extra_env)
        return env

    def _spawn(self, handle: WorkerHandle) -> None:
        handle.worker_id = f"{self._base_id}-w{handle.slot}.{handle.restarts}"
        cmd = [
            sys.executable,
            "-m",
            "repro.serve.worker",
            "--store",
            str(self.store_dir),
            "--worker-id",
            handle.worker_id,
            "--lease-ttl",
            str(self.lease_ttl),
            "--poll",
            str(self.worker_poll),
            "--retries",
            str(self.retries),
            "--parent-pid",
            str(os.getpid()),
        ]
        if self.cell_timeout is not None:
            cmd += ["--cell-timeout", str(self.cell_timeout)]
        if self.exit_when_drained:
            cmd.append("--exit-when-drained")
        logs = self._store_root / LOGS_DIRNAME
        logs.mkdir(parents=True, exist_ok=True)
        handle.log = open(  # noqa: SIM115 - handle outlives this scope
            logs / f"{handle.worker_id}.log", "ab"
        )
        handle.proc = subprocess.Popen(
            cmd, stdout=handle.log, stderr=subprocess.STDOUT,
            env=self._worker_env(),
        )
        handle.cell = None
        handle.cell_attempt = None
        handle.spawned = time.monotonic()
        REGISTRY.inc("serve.worker_spawns")

    def start(self) -> None:
        """Spawn every slot that is not already running or finished."""
        for handle in self._handles:
            if handle.proc is None and not handle.finished:
                self._spawn(handle)

    # -- liveness --------------------------------------------------------

    def _heartbeat_path(self, worker_id: str) -> Path:
        return self._store_root / WORKERS_DIRNAME / f"{worker_id}.json"

    def _heartbeat(self, worker_id: str) -> tuple[float | None, dict]:
        """(liveness age in fs-clock seconds, payload) for a worker."""
        path = self._heartbeat_path(worker_id)
        try:
            mtime = path.stat().st_mtime
        except OSError:
            return None, {}
        age = fs_clock_now(path.parent) - mtime
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            payload = {}
        return age, payload

    def _campaign_queues(self) -> list[CampaignQueue]:
        root = self._store_root / "queue"
        if not root.is_dir():
            return []
        return [
            CampaignQueue(root, entry.name, lease_ttl=self.lease_ttl)
            for entry in sorted(root.iterdir())
            if entry.is_dir()
        ]

    def _expire_leases(self, worker_id: str) -> int:
        """Hand a dead incarnation's leases straight back to the pool."""
        expired = 0
        for queue in self._campaign_queues():
            expired += queue.expire_worker(worker_id)
        if expired:
            REGISTRY.inc("serve.leases_reclaimed", amount=expired)
        return expired

    # -- healing ---------------------------------------------------------

    def _on_exit(self, handle: WorkerHandle, reason: str) -> None:
        if handle.log is not None:
            try:
                handle.log.close()
            except OSError:
                pass
            handle.log = None
        proc, handle.proc = handle.proc, None
        rc = proc.returncode if proc is not None else None
        self._expire_leases(handle.worker_id)
        REGISTRY.inc("serve.worker_exits", reason=reason)
        if self._draining or (rc == 0 and self.exit_when_drained):
            handle.finished = True
            return
        handle.restarts += 1
        delay = self.restart_policy.backoff_delay(
            ("serve-worker", handle.slot), handle.restarts
        )
        handle.restart_at = time.monotonic() + delay
        REGISTRY.inc("serve.worker_restarts")

    def _check_stall(self, handle: WorkerHandle) -> str | None:
        """A reason string when the live process must be killed."""
        age, payload = self._heartbeat(handle.worker_id)
        if age is None:
            # No heartbeat ever: the process is wedged before its first
            # beat (a hung import, a stopped process). Give it a startup
            # grace of the stall budget, then treat it as stalled too.
            alive_for = time.monotonic() - handle.spawned
            return "stalled" if alive_for > max(self.stall_after, 10.0) else None
        if age > self.stall_after:
            return "stalled"
        cell = payload.get("cell") if payload.get("state") == "cell" else None
        attempt = payload.get("attempt")
        if cell != handle.cell or attempt != handle.cell_attempt:
            handle.cell = cell
            handle.cell_attempt = attempt
            handle.cell_seen = time.monotonic()
        elif (
            cell is not None
            and self.cell_timeout is not None
            # The worker enforces the budget itself via SIGALRM; this
            # backstop only fires when even that signal went unanswered.
            and time.monotonic() - handle.cell_seen > 3.0 * self.cell_timeout
        ):
            return "cell-timeout"
        return None

    def poll(self) -> None:
        """One supervision pass: reap, heal, and backstop-kill."""
        now = time.monotonic()
        for handle in self._handles:
            if handle.finished:
                continue
            if handle.proc is None:
                if not self._draining and now >= handle.restart_at:
                    self._spawn(handle)
                continue
            rc = handle.proc.poll()
            if rc is not None:
                self._on_exit(handle, reason=f"exit:{rc}")
                continue
            reason = self._check_stall(handle)
            if reason is not None:
                handle.proc.kill()
                handle.proc.wait()
                self._on_exit(handle, reason=reason)

    # -- drain / status --------------------------------------------------

    def drain(self, timeout: float = 30.0) -> dict[int, int | None]:
        """SIGTERM everyone, wait, escalate; returns slot → exit code."""
        self._draining = True
        for handle in self._handles:
            if handle.proc is not None and handle.proc.poll() is None:
                try:
                    handle.proc.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        deadline = time.monotonic() + timeout
        codes: dict[int, int | None] = {}
        for handle in self._handles:
            if handle.proc is None:
                codes[handle.slot] = None
                continue
            budget = max(0.1, deadline - time.monotonic())
            try:
                codes[handle.slot] = handle.proc.wait(timeout=budget)
            except subprocess.TimeoutExpired:
                handle.proc.kill()
                codes[handle.slot] = handle.proc.wait()
            self._on_exit(handle, reason=f"drain:{codes[handle.slot]}")
        return codes

    def finished(self) -> bool:
        """True when every slot drained cleanly and will not restart."""
        return all(h.finished for h in self._handles)

    def pids(self) -> dict[int, int | None]:
        """slot -> live pid (None for empty slots)."""
        return {
            h.slot: (h.proc.pid if h.proc is not None else None)
            for h in self._handles
        }

    def status(self) -> dict:
        """The pool as ``GET /v1/workers`` reports it."""
        workers = []
        for handle in self._handles:
            age, payload = self._heartbeat(handle.worker_id)
            alive = handle.proc is not None and handle.proc.poll() is None
            workers.append(
                {
                    "slot": handle.slot,
                    "worker": handle.worker_id,
                    "pid": handle.proc.pid if alive else None,
                    "alive": alive,
                    "finished": handle.finished,
                    "restarts": handle.restarts,
                    "heartbeat_age": age,
                    "state": payload.get("state"),
                    "cell": payload.get("cell"),
                    "counts": payload.get("counts"),
                }
            )
        return {
            "size": self.size,
            "draining": self._draining,
            "lease_ttl": self.lease_ttl,
            "stall_after": self.stall_after,
            "workers": workers,
        }

    # Telemetry spools live here so the service can report them.
    def telemetry_dir(self) -> Path:
        """Where the workers spool their final metrics snapshots."""
        return self._store_root / TELEMETRY_DIRNAME
