"""Tests for the Figure 14 Amdahl-based importance analysis."""

import pytest

from repro.analysis.importance import fraction_enhanced, miss_importance
from repro.errors import ExperimentError
from repro.sim.runner import clear_caches


class TestFractionEnhanced:
    def test_no_speedup_means_zero(self):
        assert fraction_enhanced(1000, 1000) == 0.0

    def test_full_amdahl_limit(self):
        # If halving the penalty halves the runtime, everything depended
        # on misses: fraction = 2*(1 - 0.5)/1 = 1.
        assert fraction_enhanced(1000, 500) == pytest.approx(1.0)

    def test_textbook_example(self):
        # S_overall = 1.25 with S_e = 2 -> fraction = 2*(1-0.8)/1 = 0.4.
        assert fraction_enhanced(1000, 800) == pytest.approx(0.4)

    def test_negative_clamped(self):
        assert fraction_enhanced(1000, 1001) == 0.0

    def test_validation(self):
        with pytest.raises(ExperimentError):
            fraction_enhanced(0, 10)
        with pytest.raises(ExperimentError):
            fraction_enhanced(10, 10, s_enhanced=1.0)


class TestMissImportance:
    def test_runs_the_pair(self):
        clear_caches()
        res = miss_importance("olden.mst", "BC", scale=0.1)
        assert res.config == "BC"
        assert res.cycles_half_penalty <= res.cycles_base
        assert 0.0 <= res.fraction <= 1.0

    def test_unknown_config(self):
        with pytest.raises(ExperimentError):
            miss_importance("olden.mst", "NOPE", scale=0.1)

    def test_cpp_reduces_importance_on_compressible_workload(self):
        """The paper's core Figure 14 claim on a favourable workload."""
        clear_caches()
        bc = miss_importance("spec95.130.li", "BC", scale=0.3)
        cpp = miss_importance("spec95.130.li", "CPP", scale=0.3)
        assert cpp.fraction < bc.fraction
