"""Randomized reference-model properties for every hierarchy flavour.

A cache hierarchy, whatever its internals (buffers, victim stores,
compressed frames, partial lines), must be a *transparent* memory: a
random interleaving of loads and stores observes exactly the values a
flat address->value map would. These tests drive each configuration with
hypothesis-generated access streams and a moving clock and compare
against the dict model, then flush and compare the memory image too.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.hierarchy import HIERARCHY_BUILDERS, build_hierarchy
from repro.memory.image import MemoryImage
from repro.memory.main_memory import MainMemory

from tests.conftest import TINY_PARAMS

BASE = 0x1000_0000
N_WORDS = 512  # 2 KB region: 4x the tiny L1, equal to the tiny L2

ALL_CONFIGS = sorted(HIERARCHY_BUILDERS)  # includes the extensions

ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_WORDS - 1),  # word index
        st.one_of(st.none(), st.integers(min_value=0, max_value=2**32 - 1)),
        st.integers(min_value=0, max_value=200),  # clock advance
    ),
    min_size=1,
    max_size=300,
)


@pytest.mark.parametrize("config", ALL_CONFIGS)
class TestTransparency:
    @given(stream=ops)
    @settings(max_examples=12, deadline=None)
    def test_random_stream_matches_dict(self, config, stream):
        memory = MainMemory(MemoryImage(), latency=100)
        rng = np.random.default_rng(99)
        # Pre-seed with a compressibility mix so CPP paths all trigger.
        for i in range(N_WORDS):
            memory.poke_word(
                BASE + 4 * i,
                int(rng.integers(0, 16000))
                if i % 3
                else int(rng.integers(1 << 28, 1 << 32)),
            )
        hierarchy = build_hierarchy(config, memory, TINY_PARAMS)
        reference = {i: memory.peek_word(BASE + 4 * i) for i in range(N_WORDS)}
        now = 0
        for word, store_value, advance in stream:
            addr = BASE + 4 * word
            now += advance
            if store_value is None:
                result = hierarchy.load(addr, now)
                assert result.value == reference[word], (config, word)
                assert result.latency >= 1
            else:
                hierarchy.store(addr, store_value, now)
                reference[word] = store_value
        hierarchy.check_invariants()
        hierarchy.flush()
        for word, expected in reference.items():
            assert memory.peek_word(BASE + 4 * word) == expected, (config, word)

    @given(stream=ops)
    @settings(max_examples=6, deadline=None)
    def test_stats_are_consistent(self, config, stream):
        memory = MainMemory(MemoryImage(), latency=100)
        hierarchy = build_hierarchy(config, memory, TINY_PARAMS)
        now = 0
        for word, store_value, advance in stream:
            now += advance
            addr = BASE + 4 * word
            if store_value is None:
                hierarchy.load(addr, now)
            else:
                hierarchy.store(addr, store_value, now)
        l1 = hierarchy.l1_stats
        assert l1.accesses == len(stream)
        assert l1.hits + l1.misses == l1.accesses
        assert 0.0 <= l1.miss_rate <= 1.0
