"""Cooperative termination-signal handling for campaigns and services.

A campaign killed by ``kill <pid>`` (SIGTERM — the polite kill, what
init systems, container runtimes and CI send first) should behave like
Ctrl-C: unwind through the supervisor's cleanup so held queue leases are
released and the partial checkpoint stays a clean, well-formed prefix —
not die mid-write and leave its leases to TTL-expire. The default
SIGTERM disposition is immediate death; :func:`interrupt_on_signal`
converts it into a ``KeyboardInterrupt`` raised at the next bytecode
boundary, which every long-running engine here already handles.
"""

from __future__ import annotations

import contextlib
import signal
import threading

__all__ = ["interrupt_on_signal"]


@contextlib.contextmanager
def interrupt_on_signal(signums=(signal.SIGTERM,)):
    """Raise ``KeyboardInterrupt`` in the main thread on *signums*.

    A no-op off the main thread (signal handlers can only be installed
    there); previous handlers are restored on exit, so nesting and
    library use are safe.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _raise(signum, frame):  # noqa: ARG001 - signal handler signature
        raise KeyboardInterrupt(f"signal {signal.Signals(signum).name}")

    previous = {}
    try:
        for signum in signums:
            previous[signum] = signal.signal(signum, _raise)
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
