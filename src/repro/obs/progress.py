"""Uniform progress reporting for long runs.

One narrow funnel replaces the ad-hoc ``print(...)`` progress lines that
used to live in the runner: serial and parallel matrix sweeps, the
prewarmer and the experiment CLI all report through :func:`report`, so
output is consistently prefixed, lands on stderr (leaving stdout for
figure tables), and can be redirected or silenced in one place
(:func:`set_sink` — tests capture it, services can forward it to a real
logger).

Output is governed by a **mode** — the ``REPRO_PROGRESS`` environment
variable or :func:`configure` (the ``--progress`` CLI flag wins over the
environment):

* ``auto`` (default) — human lines on stderr; interactive TTYs may
  upgrade to the live dashboard (:mod:`repro.obs.live`);
* ``plain`` — human lines only, never the dashboard (stable logs);
* ``json``  — one machine-readable JSON object per line (``msg`` plus
  any structured fields a call site attached), for CI log scraping;
* ``quiet`` — drop everything.

Structured fields: ``report("completed X", event="cell_done", done=3)``
renders as the plain message in human modes and as
``{"event": "cell_done", "msg": "completed X", "done": 3}`` in ``json``
mode — per-cell progress becomes greppable without parsing prose.
"""

from __future__ import annotations

import json
import os
import sys
from collections.abc import Callable

from repro.errors import ConfigurationError

__all__ = ["report", "set_sink", "silence", "configure", "mode", "MODES"]

_PREFIX = "[repro]"

#: Recognized progress modes (see module docstring).
MODES = ("auto", "plain", "json", "quiet")

_sink: Callable[[str], None] | None = None
_mode: str | None = None  #: configure() override; None defers to the env


def configure(value: str | None) -> None:
    """Set the progress mode explicitly (None defers to REPRO_PROGRESS)."""
    global _mode
    if value is not None and value not in MODES:
        raise ConfigurationError(
            f"unknown progress mode {value!r} (choose from {', '.join(MODES)})"
        )
    _mode = value


def mode() -> str:
    """The effective mode: configure() override, then env, then auto."""
    if _mode is not None:
        return _mode
    raw = os.environ.get("REPRO_PROGRESS", "").strip().lower()
    if raw and raw not in MODES:
        raise ConfigurationError(
            f"REPRO_PROGRESS must be one of {', '.join(MODES)}, got {raw!r}"
        )
    return raw or "auto"


def _default_sink(message: str) -> None:
    print(f"{_PREFIX} {message}", file=sys.stderr, flush=True)


def set_sink(sink: Callable[[str], None] | None) -> None:
    """Route progress lines to *sink* (None restores stderr printing).

    A sink receives the raw message regardless of mode — embedders and
    tests that capture progress get everything, always.
    """
    global _sink
    _sink = sink


def silence() -> None:
    """Discard all progress output (batch jobs, tests)."""
    set_sink(lambda message: None)


def report(message: str, **fields) -> None:
    """Emit one progress line through the configured sink.

    Keyword *fields* are structured annotations: ignored in human modes,
    serialized alongside the message in ``json`` mode.
    """
    if _sink is not None:
        _sink(message)
        return
    current = mode()
    if current == "quiet":
        return
    if current == "json":
        payload = {"msg": message}
        payload.update(fields)
        print(json.dumps(payload, sort_keys=True), file=sys.stderr, flush=True)
        return
    _default_sink(message)
