"""Bimodal branch predictor (the paper's baseline predictor, Figure 9).

A table of 2-bit saturating counters indexed by low PC bits, exactly
SimpleScalar's ``bimod``. Counter semantics: 0-1 predict not-taken, 2-3
predict taken; increment on taken, decrement on not-taken.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.utils.intmath import is_pow2

__all__ = ["BimodPredictor", "mispredict_flags"]


def mispredict_flags(
    pcs: list[int],
    takens: list[bool],
    is_branch: list[bool],
    n_entries: int,
) -> tuple[list[bool], int, int]:
    """Per-instruction mispredict flags of a trace through a fresh table.

    Branches are predicted at fetch in program order, so the whole
    prediction stream is a pure function of (trace, table size) and can
    be computed once and reused across runs. Replicates
    :meth:`BimodPredictor.update` exactly: ``flags[i]`` is True iff
    instruction *i* is a branch that a fresh-table bimod mispredicts.
    Returns ``(flags, n_branches, n_mispredicts)``.
    """
    mask = n_entries - 1
    table = [2] * n_entries
    flags = [False] * len(pcs)
    n_br = 0
    n_mis = 0
    for i, isbr in enumerate(is_branch):
        if not isbr:
            continue
        n_br += 1
        idx = (pcs[i] >> 3) & mask
        counter = table[idx]
        taken = takens[i]
        if taken:
            if counter < 3:
                table[idx] = counter + 1
        elif counter > 0:
            table[idx] = counter - 1
        if (counter >= 2) != taken:
            flags[i] = True
            n_mis += 1
    return flags, n_br, n_mis


class BimodPredictor:
    """2-bit saturating-counter branch direction predictor."""

    def __init__(self, n_entries: int = 2048) -> None:
        if not is_pow2(n_entries):
            raise ConfigurationError("predictor table size must be a power of two")
        self.n_entries = n_entries
        self._mask = n_entries - 1
        # Weakly taken initially, matching SimpleScalar. A plain list of
        # ints: the table is consulted per fetched branch, where NumPy
        # scalar boxing would dominate the counter update itself.
        self._table = [2] * n_entries
        self.lookups = 0
        self.correct = 0

    def _index(self, pc: int) -> int:
        # Word-aligned PCs: drop the low 3 bits as SimpleScalar's bimod does.
        return (pc >> 3) & self._mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at *pc* (True = taken)."""
        return self._table[(pc >> 3) & self._mask] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Record the actual outcome; returns True if it was predicted right."""
        table = self._table
        idx = (pc >> 3) & self._mask
        counter = table[idx]
        predicted = counter >= 2
        if taken:
            if counter < 3:
                table[idx] = counter + 1
        elif counter > 0:
            table[idx] = counter - 1
        self.lookups += 1
        correct = predicted == taken
        if correct:
            self.correct += 1
        return correct

    @property
    def mispredicts(self) -> int:
        return self.lookups - self.correct

    @property
    def accuracy(self) -> float:
        return self.correct / self.lookups if self.lookups else 0.0
