"""Unit tests for deterministic RNG construction."""

import pytest

from repro.utils.rng import derive_seed, make_rng


class TestMakeRng:
    def test_deterministic(self):
        a = make_rng(42).integers(0, 1 << 30, 10)
        b = make_rng(42).integers(0, 1 << 30, 10)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 1 << 30, 10)
        b = make_rng(2).integers(0, 1 << 30, 10)
        assert (a != b).any()

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            make_rng(-1)


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(7, "phase") == derive_seed(7, "phase")

    def test_label_sensitivity(self):
        assert derive_seed(7, "build") != derive_seed(7, "traverse")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_path_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_int_labels(self):
        assert derive_seed(1, 5) == derive_seed(1, 5)
        assert derive_seed(1, 5) != derive_seed(1, 6)
