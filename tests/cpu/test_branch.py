"""Unit tests for the bimod branch predictor."""

import pytest

from repro.cpu.branch import BimodPredictor
from repro.errors import ConfigurationError


class TestBimod:
    def test_initially_weakly_taken(self):
        p = BimodPredictor(64)
        assert p.predict(0x400000) is True

    def test_learns_not_taken(self):
        p = BimodPredictor(64)
        p.update(0x400000, False)
        p.update(0x400000, False)
        assert p.predict(0x400000) is False

    def test_two_bit_hysteresis(self):
        """One odd outcome must not flip a saturated counter."""
        p = BimodPredictor(64)
        for _ in range(4):
            p.update(0x400000, True)
        p.update(0x400000, False)
        assert p.predict(0x400000) is True

    def test_saturation(self):
        p = BimodPredictor(64)
        for _ in range(100):
            p.update(0x400000, True)
        p.update(0x400000, False)
        p.update(0x400000, False)
        assert p.predict(0x400000) is False  # two steps down from saturated

    def test_accuracy_on_biased_stream(self):
        p = BimodPredictor(64)
        for i in range(1000):
            p.update(0x400000, i % 10 != 9)  # 90% taken loop branch
        assert p.accuracy > 0.85

    def test_distinct_pcs_use_distinct_counters(self):
        p = BimodPredictor(1024)
        p.update(0x400000, False)
        p.update(0x400000, False)
        assert p.predict(0x400000) is False
        assert p.predict(0x400080) is True  # untouched entry

    def test_aliasing_with_tiny_table(self):
        p = BimodPredictor(2)
        p.update(0x400000, False)
        p.update(0x400000, False)
        # 0x400000 and 0x400000 + 2*8 alias in a 2-entry table (pc>>3).
        assert p.predict(0x400000 + 16) is False

    def test_mispredict_count(self):
        p = BimodPredictor(64)
        p.update(0x400000, False)  # predicted taken (init) -> mispredict
        assert p.mispredicts == 1
        assert p.lookups == 1

    def test_table_size_checked(self):
        with pytest.raises(ConfigurationError):
            BimodPredictor(100)

    def test_empty_accuracy(self):
        assert BimodPredictor(64).accuracy == 0.0
