"""olden.bisort — bitonic sort over a binary tree of integers.

The original builds a random binary tree and sorts it with the recursive
``Bimerge``/``Bisort`` procedure, swapping *values* between nodes while
the pointer structure stays fixed. Behaviour captured: a value-heavy
recursive walk with compare-and-swap branches whose outcomes depend on
random data (hard for bimod), over heap-local node pointers.

Node: ``{value, left, right, pad}``. Values are drawn from the full
31-bit range like the original's ``random()``, so most are incompressible
— bisort sits at the low end of the paper's Figure 3.
"""

from __future__ import annotations

from repro.workloads.base import Program, ProgramBuilder, scaled

__all__ = ["build", "DEFAULT_SIZE"]

DEFAULT_SIZE = 1024  #: nodes (a power of two, as the algorithm requires)

_VAL = 0
_LEFT = 4
_RIGHT = 8
_NODE_BYTES = 16

_FORWARD, _BACKWARD = 0, 1


class _Node:
    __slots__ = ("addr", "left", "right")

    def __init__(self, addr: int) -> None:
        self.addr = addr
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None


def _build_tree(pb: ProgramBuilder, size: int, reg: str) -> _Node:
    """Allocate a complete tree of *size* nodes with random values."""
    addr = pb.malloc(_NODE_BYTES)
    node = _Node(addr)
    pb.store(addr + _VAL, int(pb.rng.integers(0, 1 << 31)), base=reg,
             label="bs.init.val")
    rest = size - 1
    if rest >= 2:
        pb.branch("bs.build.leaf", taken=False)
        pb.call_overhead("bs.build", 1)
        node.left = _build_tree(pb, rest // 2, reg)
        node.right = _build_tree(pb, rest - rest // 2, reg)
        pb.store(addr + _LEFT, node.left.addr, base=reg, label="bs.init.l")
        pb.store(addr + _RIGHT, node.right.addr, base=reg, label="bs.init.r")
    else:
        pb.branch("bs.build.leaf", taken=True)
        pb.store(addr + _LEFT, 0, base=reg, label="bs.init.l")
        pb.store(addr + _RIGHT, 0, base=reg, label="bs.init.r")
    return node


def _swap_if(pb: ProgramBuilder, a: _Node, b: _Node, direction: int, d: int) -> None:
    """Load both values, compare, conditionally swap (the SwapVal core)."""
    va = pb.load(a.addr + _VAL, f"va{d}", base=f"pa{d}", label="bs.swap.lda")
    vb = pb.load(b.addr + _VAL, f"vb{d}", base=f"pb{d}", label="bs.swap.ldb")
    out_of_order = (va > vb) if direction == _FORWARD else (va < vb)
    if pb.if_("bs.swap.cmp", out_of_order, srcs=(f"va{d}", f"vb{d}")):
        pb.store(a.addr + _VAL, vb, base=f"pa{d}", src=f"vb{d}", label="bs.swap.sta")
        pb.store(b.addr + _VAL, va, base=f"pb{d}", src=f"va{d}", label="bs.swap.stb")


def _bimerge(pb: ProgramBuilder, root: _Node, direction: int, d: int) -> None:
    """Recursive bitonic merge on the tree rooted at *root*."""
    if root.left is None:
        pb.branch("bs.merge.leaf", taken=True)
        return
    pb.branch("bs.merge.leaf", taken=False)
    pb.load(root.addr + _LEFT, f"pa{d}", base=f"pa{d - 1}" if d else "rootp",
            label="bs.merge.ldl")
    pb.load(root.addr + _RIGHT, f"pb{d}", base=f"pa{d - 1}" if d else "rootp",
            label="bs.merge.ldr")
    # Pair up mirror nodes of the two subtrees (simplified mirror walk:
    # the original's pointer-pair recursion touches the same node set).
    stack = [(root.left, root.right)]
    while stack:
        na, nb = stack.pop()
        pb.branch("bs.merge.pair", taken=bool(stack) or na.left is not None,
                  srcs=(f"pa{d}",))
        _swap_if(pb, na, nb, direction, d)
        if na.left is not None and nb.left is not None:
            stack.append((na.left, nb.left))
            if na.right is not None and nb.right is not None:
                stack.append((na.right, nb.right))
    pb.call_overhead("bs.merge", 1)
    _bimerge(pb, root.left, direction, d + 1)
    _bimerge(pb, root.right, direction, d + 1)


def _bisort(pb: ProgramBuilder, root: _Node, direction: int, d: int) -> None:
    if root.left is None:
        pb.branch("bs.sort.leaf", taken=True)
        return
    pb.branch("bs.sort.leaf", taken=False)
    pb.call_overhead("bs.sort", 1)
    _bisort(pb, root.left, _FORWARD, d + 1)
    _bisort(pb, root.right, _BACKWARD, d + 1)
    _bimerge(pb, root, direction, d)


def build(seed: int = 1, scale: float = 1.0) -> Program:
    """Generate the bisort program; *scale* adjusts node count."""
    size = scaled(DEFAULT_SIZE, scale, minimum=8)

    pb = ProgramBuilder("olden.bisort", seed)
    pb.op("root", (), label="bs.entry")
    root = _build_tree(pb, size, "root")
    pb.op("rootp", (), label="bs.rootp")
    pb.op("pa0", (), label="bs.pa0")
    _bisort(pb, root, _FORWARD, 0)
    out = pb.static_array(1)
    final = pb.load(root.addr + _VAL, "final", base="rootp", label="bs.final")
    pb.store(out, final, src="final", label="bs.result")
    return pb.build(
        description="bitonic sort on a tree: random-value compare/swap",
        params={"size": size},
    )
