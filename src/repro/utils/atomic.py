"""Atomic file writes: no reader ever sees a truncated file.

Results exports, run manifests and matrix checkpoints are all written
through :func:`atomic_write_text`: the content goes to a ``*.tmp`` file
in the *same directory* (so the final rename never crosses a filesystem
boundary) and is moved into place with :func:`os.replace`, which POSIX
guarantees to be atomic. An interrupt — Ctrl-C, a crashed worker, an OOM
kill — therefore leaves either the previous complete file or the new
complete file, never a half-written one. This is what makes
checkpoint/resume trustworthy: a checkpoint that survived an interrupt
is by construction well-formed.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["atomic_write_text"]


def atomic_write_text(path: str | Path, text: str, *, encoding: str = "utf-8") -> Path:
    """Write *text* to *path* atomically (write-temp-then-rename).

    The temporary file lives next to the target (``<name>.tmp``) and is
    cleaned up on failure; on success it is renamed over the target in
    one :func:`os.replace` call.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("w", encoding=encoding) as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path
