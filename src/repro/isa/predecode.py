"""Trace pre-decode: structure-of-arrays lowered once per program.

The fast backend (:mod:`repro.cpu.fastcore`) replaces the reference
core's per-dispatch bookkeeping — register-producer maps, consumer
lists, per-address store lists — with flat arrays precomputed here, all
pure functions of the trace:

* ``dep1``/``dep2`` — index of the instruction producing each source
  operand (the *last writer* of that register), or -1. At dispatch time
  a dependence is live iff the producer has not yet completed; combined
  with the in-order window this reproduces the reference's
  ``reg_producer`` renaming exactly.
* ``consumers`` (CSR: ``cons_start``/``cons_flat``) — the reverse edges,
  so a completing instruction wakes exactly the entries the reference's
  per-entry consumer lists would.
* ``fwd`` — for each load, the youngest older store to the same address
  (or -1). A load forwards iff that store has not committed; in-order
  commit makes ``fwd >= committed`` equivalent to the reference's
  in-flight store-list scan.
* ``slot`` — functional-unit slot per instruction
  (:data:`repro.cpu.resources._UNIT_INDEX` applied to the op column).
* per-table-size bimod outcome streams (shared with ``TraceHot.bp``).

Results are memoized on the :class:`~repro.isa.trace.Trace` object and
— when a cache path has been attached via :func:`set_cache_path` —
persisted as an ``.npz`` next to the on-disk trace archive, so one
pre-decode serves every process that replays the same program.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.cpu.branch import mispredict_flags
from repro.cpu.resources import _UNIT_INDEX
from repro.isa.opcodes import OpClass
from repro.isa.trace import Trace

__all__ = ["Predecoded", "get_predecoded", "set_cache_path"]

#: Bump when the array layout or semantics change: stale cache entries
#: are regenerated, never misread.
PREDECODE_VERSION = 1

_SAVED_COLUMNS = ("dep1", "dep2", "cons_start", "cons_flat", "fwd", "slot")


class Predecoded:
    """Flat derived columns of one trace (see module docstring)."""

    __slots__ = (
        "n",
        "dep1",
        "dep2",
        "cons_start",
        "cons_flat",
        "fwd",
        "slot",
        "bp",
        "next_mp",
        "issue_rows",
        "disp_rows",
        "kind",
        "c_cols",
        "c_bp",
    )

    def __init__(
        self,
        n: int,
        dep1: list[int],
        dep2: list[int],
        cons_start: list[int],
        cons_flat: list[int],
        fwd: list[int],
        slot: list[int],
    ) -> None:
        self.n = n
        self.dep1 = dep1
        self.dep2 = dep2
        self.cons_start = cons_start
        self.cons_flat = cons_flat
        self.fwd = fwd
        self.slot = slot
        #: table size -> (mispredict flags, n_branches, n_mispredicts),
        #: filled lazily per predictor geometry.
        self.bp: dict[int, tuple[list[bool], int, int]] = {}
        #: table size -> next-mispredict index array (fast-core fetch).
        self.next_mp: dict[int, list[int]] = {}
        #: Per-stage row tuples and the load/store kind column, built
        #: lazily by the fast core and reused across runs of the same
        #: trace (never persisted — cheap to rebuild).
        self.issue_rows: list[tuple] | None = None
        self.disp_rows: list[tuple] | None = None
        self.kind: bytes | None = None
        #: Contiguous array views for the compiled kernel (lazy):
        #: column name -> ndarray, and predictor geometry ->
        #: (mispredict flags, next-mispredict index) array pair.
        self.c_cols: dict | None = None
        self.c_bp: dict[int, tuple] = {}

    def bimod_outcomes(self, trace: Trace, n_entries: int):
        """Precomputed fresh-table bimod stream for *n_entries* counters.

        Shares the entries in ``trace.hot().bp`` so the reference and
        fast backends never compute the same stream twice.
        """
        pre = self.bp.get(n_entries)
        if pre is None:
            hot = trace.hot()
            pre = hot.bp.get(n_entries)
            if pre is None:
                pre = mispredict_flags(hot.pc, hot.taken, hot.is_branch, n_entries)
                hot.bp[n_entries] = pre
            self.bp[n_entries] = pre
        return pre


def _compute(trace: Trace) -> Predecoded:
    n = len(trace)
    dep1 = [-1] * n
    dep2 = [-1] * n
    fwd = [-1] * n
    slot = np.asarray(_UNIT_INDEX, dtype=np.int64)[trace.op].tolist()

    t_dest = trace.dest.tolist()
    t_src1 = trace.src1.tolist()
    t_src2 = trace.src2.tolist()
    t_op = trace.op.tolist()
    t_addr = trace.addr.tolist()

    op_load = int(OpClass.LOAD)
    op_store = int(OpClass.STORE)

    last_writer: dict[int, int] = {}
    last_store: dict[int, int] = {}
    n_edges = 0
    for i in range(n):
        s1 = t_src1[i]
        if s1 >= 0:
            d = last_writer.get(s1, -1)
            if d >= 0:
                dep1[i] = d
                n_edges += 1
        s2 = t_src2[i]
        if s2 >= 0:
            d = last_writer.get(s2, -1)
            if d >= 0:
                dep2[i] = d
                n_edges += 1
        dest = t_dest[i]
        if dest >= 0:
            last_writer[dest] = i
        op = t_op[i]
        if op == op_load:
            fwd[i] = last_store.get(t_addr[i], -1)
        elif op == op_store:
            last_store[t_addr[i]] = i

    # Reverse edges in CSR form: counting sort by producer, preserving
    # consumer (program) order within each producer — the order the
    # reference appends to its per-entry consumer lists. A dual-source
    # consumer (dep1 == dep2) appears twice, matching the two
    # ``wire_source`` registrations.
    counts = [0] * n
    for i in range(n):
        d = dep1[i]
        if d >= 0:
            counts[d] += 1
        d = dep2[i]
        if d >= 0:
            counts[d] += 1
    cons_start = [0] * (n + 1)
    acc = 0
    for j in range(n):
        cons_start[j] = acc
        acc += counts[j]
    cons_start[n] = acc
    fill = cons_start[:n]
    cons_flat = [0] * n_edges
    for i in range(n):
        d = dep1[i]
        if d >= 0:
            cons_flat[fill[d]] = i
            fill[d] += 1
        d = dep2[i]
        if d >= 0:
            cons_flat[fill[d]] = i
            fill[d] += 1
    return Predecoded(n, dep1, dep2, cons_start, cons_flat, fwd, slot)


def set_cache_path(trace: Trace, archive_path: str | Path | None) -> None:
    """Attach the on-disk location for this trace's pre-decode arrays.

    *archive_path* is the trace archive's own cache path; the pre-decode
    sidecar lives next to it with a ``.predecode.npz`` suffix. ``None``
    detaches (memory-only pre-decode).
    """
    if archive_path is None:
        trace._predecode_path = None
        return
    trace._predecode_path = Path(archive_path).with_suffix(".predecode.npz")


def _load_npz(path: Path, n: int) -> Predecoded | None:
    try:
        with np.load(path) as data:
            if int(data["version"]) != PREDECODE_VERSION or int(data["n"]) != n:
                return None
            cols = {name: data[name].tolist() for name in _SAVED_COLUMNS}
    except (OSError, KeyError, ValueError):
        return None
    if len(cols["dep1"]) != n or len(cols["cons_start"]) != n + 1:
        return None
    return Predecoded(n, **cols)


def _store_npz(path: Path, pre: Predecoded) -> None:
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        np.savez_compressed(
            tmp,
            version=np.int64(PREDECODE_VERSION),
            n=np.int64(pre.n),
            dep1=np.asarray(pre.dep1, dtype=np.int64),
            dep2=np.asarray(pre.dep2, dtype=np.int64),
            cons_start=np.asarray(pre.cons_start, dtype=np.int64),
            cons_flat=np.asarray(pre.cons_flat, dtype=np.int64),
            fwd=np.asarray(pre.fwd, dtype=np.int64),
            slot=np.asarray(pre.slot, dtype=np.int64),
        )
        # np.savez appends .npz to names lacking it; normalize then publish.
        produced = tmp if tmp.exists() else tmp.with_name(tmp.name + ".npz")
        produced.replace(path)
    except OSError:
        pass  # best-effort, like the trace disk cache


def get_predecoded(trace: Trace) -> Predecoded:
    """Pre-decoded arrays for *trace* (memoized; disk-cached when wired)."""
    pre = trace._predecoded
    if pre is not None:
        return pre
    path: Path | None = trace._predecode_path
    if path is not None:
        pre = _load_npz(path, len(trace))
    if pre is None:
        pre = _compute(trace)
        if path is not None:
            _store_npz(path, pre)
    trace._predecoded = pre
    return pre
