"""Tests for the extra (beyond-the-paper) workloads."""

import numpy as np
import pytest

from repro.compression.vectorized import compression_summary
from repro.isa.opcodes import OpClass
from repro.memory.image import MemoryImage
from repro.sim.machine import Machine
from repro.workloads.registry import (
    ALL_WORKLOADS,
    EXTRA_WORKLOADS,
    WORKLOAD_NAMES,
    generate,
)

EXTRA_NAMES = tuple(EXTRA_WORKLOADS)


class TestRegistration:
    def test_four_extras(self):
        assert set(EXTRA_NAMES) == {
            "olden.power",
            "spec95.147.vortex",
            "spec2000.164.gzip",
            "spec2000.197.parser",
        }

    def test_extras_not_in_paper_set(self):
        """The figures must keep regenerating the paper's exact 14 bars."""
        assert len(WORKLOAD_NAMES) == 14
        assert not set(EXTRA_NAMES) & set(WORKLOAD_NAMES)

    def test_all_workloads_union(self):
        assert len(ALL_WORKLOADS) == 18

    def test_generate_resolves_extras(self):
        program = generate("olden.power", seed=1, scale=0.5)
        assert program.name == "olden.power"


@pytest.mark.parametrize("name", EXTRA_NAMES)
class TestEachExtra:
    def test_structure(self, name):
        program = generate(name, seed=1, scale=0.3)
        program.trace.validate()
        assert program.trace.n_loads > 0
        assert program.trace.n_stores > 0
        assert program.trace.n_branches > 0
        assert len(program.trace) > 500

    def test_trace_replay_consistency(self, name):
        program = generate(name, seed=1, scale=0.2)
        img = MemoryImage()
        for ins in program.trace:
            if ins.op is OpClass.STORE:
                img.write_word(ins.addr, ins.value)
            elif ins.op is OpClass.LOAD:
                assert img.read_word(ins.addr) == ins.value

    def test_deterministic(self, name):
        a = generate(name, seed=3, scale=0.2).trace
        b = generate(name, seed=3, scale=0.2).trace
        assert len(a) == len(b)
        assert np.array_equal(a.addr, b.addr)
        assert np.array_equal(a.value, b.value)

    def test_runs_verified_on_cpp(self, name):
        program = generate(name, seed=1, scale=0.2)
        result = Machine("CPP", verify_loads=True).run(program)
        assert result.instructions == len(program.trace)


class TestCharacter:
    def test_power_is_fp_heavy_low_compressibility_values(self):
        program = generate("olden.power", seed=1, scale=0.5)
        summary = compression_summary(*program.trace.accessed_values())
        # Pointers compress, FP payloads don't: mid-range overall.
        assert 0.2 < summary.fraction_compressible < 0.9

    def test_gzip_is_small_value_arrays(self):
        program = generate("spec2000.164.gzip", seed=1, scale=0.5)
        summary = compression_summary(*program.trace.accessed_values())
        assert summary.fraction_pointer < 0.05
        assert summary.fraction_small > 0.5

    def test_parser_has_pointer_traffic(self):
        program = generate("spec2000.197.parser", seed=1, scale=0.5)
        summary = compression_summary(*program.trace.accessed_values())
        assert summary.fraction_pointer > 0.1
