"""Word- and line-level compress/decompress operations.

The cache models keep *decompressed* values in their Python-side state for
clarity and testability, and use this codec to (a) decide compressibility,
(b) account for bus words on compressed transfers, and (c) round-trip
values in tests, proving the representation is lossless.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.compression.flags import VT_POINTER, VT_SMALL
from repro.compression.scheme import PAPER_SCHEME, CompressClass, CompressionScheme
from repro.utils.bitops import MASK32
from repro.utils.intmath import ceil_div

__all__ = [
    "CompressedWord",
    "compress_word",
    "decompress_word",
    "LinePackResult",
    "pack_line",
    "packed_bus_words",
]


@dataclass(frozen=True)
class CompressedWord:
    """A compressed slot: ``VT`` type bit plus the payload bits.

    ``encoded`` is the raw slot content with VT in the top bit, matching
    Figure 2's layout (for the paper's scheme this is a 16-bit quantity).
    """

    vt: int
    payload: int
    scheme: CompressionScheme = PAPER_SCHEME

    @property
    def encoded(self) -> int:
        return (self.vt << self.scheme.payload_bits) | self.payload

    @property
    def bits(self) -> int:
        return self.scheme.compressed_bits


def compress_word(
    value: int, addr: int, scheme: CompressionScheme = PAPER_SCHEME
) -> CompressedWord | None:
    """Compress one word, or return ``None`` if it is incompressible.

    Small values win attribution when a word passes both tests, matching
    :meth:`CompressionScheme.classify`.
    """
    cls = scheme.classify(value, addr)
    if cls is CompressClass.INCOMPRESSIBLE:
        return None
    vt = VT_SMALL if cls is CompressClass.SMALL else VT_POINTER
    return CompressedWord(vt=vt, payload=scheme.payload_of(value), scheme=scheme)


def decompress_word(
    word: CompressedWord, addr: int, scheme: CompressionScheme | None = None
) -> int:
    """Reconstruct the original 32-bit value of a compressed slot.

    For pointers the reconstruction grafts the high prefix of *addr* — the
    address the word is being read from — exactly as the hardware
    decompressor of Figure 8(b) does.
    """
    scheme = scheme or word.scheme
    if word.vt == VT_SMALL:
        return scheme.expand_small(word.payload)
    if word.vt == VT_POINTER:
        return scheme.expand_pointer(word.payload, addr)
    raise ValueError(f"invalid VT flag {word.vt!r}")


@dataclass(frozen=True)
class LinePackResult:
    """Accounting for transferring one cache line in compressed form.

    Attributes
    ----------
    n_words:
        Number of 32-bit words in the line.
    n_compressible:
        How many of them compressed to 16 bits.
    payload_bits:
        Total data bits after compression.
    flag_bits:
        VC metadata bits that must travel with the line (1 per word).
    bus_words:
        32-bit bus beats needed to move payload + flags. This is the
        *memory traffic* cost of a BCC-style compressed transfer.
    """

    n_words: int
    n_compressible: int
    payload_bits: int
    flag_bits: int

    @property
    def total_bits(self) -> int:
        return self.payload_bits + self.flag_bits

    @property
    def bus_words(self) -> int:
        return ceil_div(self.total_bits, 32)

    @property
    def saved_words(self) -> int:
        """Bus words saved versus an uncompressed transfer (never negative
        by more than the flag overhead)."""
        return self.n_words - self.bus_words


def pack_line(
    values: Sequence[int],
    addrs: Sequence[int],
    scheme: CompressionScheme = PAPER_SCHEME,
    *,
    count_flag_bits: bool = True,
) -> LinePackResult:
    """Compute the compressed-transfer footprint of a line of words.

    *values* and *addrs* are parallel sequences (one address per word — the
    pointer test is per-word against the word's own location).
    """
    if len(values) != len(addrs):
        raise ValueError("values and addrs must be parallel sequences")
    n = len(values)
    n_comp = 0
    payload_bits = 0
    for value, addr in zip(values, addrs):
        if scheme.is_compressible(value & MASK32, addr & MASK32):
            n_comp += 1
            payload_bits += scheme.compressed_bits
        else:
            payload_bits += 32
    flag_bits = n if count_flag_bits else 0
    return LinePackResult(
        n_words=n,
        n_compressible=n_comp,
        payload_bits=payload_bits,
        flag_bits=flag_bits,
    )


def packed_bus_words(
    values: Sequence[int],
    addrs: Sequence[int],
    scheme: CompressionScheme = PAPER_SCHEME,
) -> int:
    """Shorthand: bus beats to transfer *values* compressed (flags included)."""
    return pack_line(values, addrs, scheme).bus_words
