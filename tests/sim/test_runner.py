"""Tests for the memoizing run helpers."""

import pytest

from repro.sim import runner
from repro.sim.runner import clear_caches, get_program, run_matrix, run_workload


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestProgramCache:
    def test_same_key_reuses(self):
        a = get_program("olden.mst", seed=1, scale=0.1)
        b = get_program("olden.mst", seed=1, scale=0.1)
        assert a is b

    def test_different_seed_regenerates(self):
        a = get_program("olden.mst", seed=1, scale=0.1)
        b = get_program("olden.mst", seed=2, scale=0.1)
        assert a is not b


class TestResultCache:
    def test_memoizes_results(self):
        a = run_workload("olden.mst", "BC", scale=0.1)
        b = run_workload("olden.mst", "BC", scale=0.1)
        assert a is b

    def test_verify_bypasses_cache(self):
        a = run_workload("olden.mst", "BC", scale=0.1)
        b = run_workload("olden.mst", "BC", scale=0.1, verify_loads=True)
        assert a is not b
        assert a.cycles == b.cycles

    def test_configs_are_distinct_keys(self):
        a = run_workload("olden.mst", "BC", scale=0.1)
        b = run_workload("olden.mst", "CPP", scale=0.1)
        assert a.config == "BC" and b.config == "CPP"

    def test_lowercase_config(self):
        assert run_workload("olden.mst", "cpp", scale=0.1).config == "CPP"


class TestMatrix:
    def test_full_shape(self):
        out = run_matrix(["olden.mst"], ["BC", "CPP"], scale=0.1)
        assert set(out) == {("olden.mst", "BC"), ("olden.mst", "CPP")}
        assert out[("olden.mst", "BC")].workload == "olden.mst"

    def test_matrix_uses_cache(self):
        direct = run_workload("olden.mst", "BC", scale=0.1)
        out = run_matrix(["olden.mst"], ["BC"], scale=0.1)
        assert out[("olden.mst", "BC")] is direct
