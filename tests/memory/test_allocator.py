"""Unit + property tests for the simulated heap allocators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, ConfigurationError
from repro.memory.allocator import BumpAllocator, FreeListAllocator


class TestBumpAllocator:
    def test_sequential_addresses(self):
        a = BumpAllocator(0x1000, 0x2000)
        first = a.malloc(16)
        second = a.malloc(16)
        assert first == 0x1000
        assert second == 0x1010

    def test_alignment(self):
        a = BumpAllocator(0x1000, 0x2000, alignment=8)
        a.malloc(4)  # rounds to 8
        second = a.malloc(4)
        assert second % 8 == 0
        assert second == 0x1008

    def test_explicit_align(self):
        a = BumpAllocator(0x1000, 0x9000)
        a.malloc(4)
        aligned = a.malloc(16, align=64)
        assert aligned % 64 == 0

    def test_exhaustion(self):
        a = BumpAllocator(0x1000, 0x1020)
        a.malloc(32)
        with pytest.raises(AllocationError):
            a.malloc(8)

    def test_rejects_nonpositive(self):
        a = BumpAllocator()
        with pytest.raises(AllocationError):
            a.malloc(0)

    def test_bad_config(self):
        with pytest.raises(ConfigurationError):
            BumpAllocator(0x1000, 0x1000)
        with pytest.raises(ConfigurationError):
            BumpAllocator(alignment=6)

    def test_bytes_used(self):
        a = BumpAllocator(0x1000, 0x2000)
        a.malloc(24)
        assert a.bytes_used == 24
        assert a.n_allocs == 1

    def test_locality_within_chunk(self):
        """Consecutive small allocations stay within one 32 KB chunk —
        the layout property pointer compression relies on."""
        a = BumpAllocator(0x1000_0000, 0x2000_0000)
        addrs = [a.malloc(16) for _ in range(100)]
        prefixes = {addr >> 15 for addr in addrs}
        assert len(prefixes) == 1


class TestFreeListAllocator:
    def test_alloc_free_realloc_reuses(self):
        a = FreeListAllocator(0x1000, 0x2000)
        p = a.malloc(32)
        a.free(p)
        q = a.malloc(32)
        assert q == p

    def test_double_free_rejected(self):
        a = FreeListAllocator(0x1000, 0x2000)
        p = a.malloc(16)
        a.free(p)
        with pytest.raises(AllocationError):
            a.free(p)

    def test_free_unallocated_rejected(self):
        a = FreeListAllocator(0x1000, 0x2000)
        with pytest.raises(AllocationError):
            a.free(0x1800)

    def test_coalescing(self):
        a = FreeListAllocator(0x1000, 0x2000)
        blocks = [a.malloc(64) for _ in range(4)]
        for b in blocks:
            a.free(b)
        assert a.n_free_blocks == 1  # fully coalesced back into the arena

    def test_first_fit_splits(self):
        a = FreeListAllocator(0x1000, 0x2000)
        p = a.malloc(128)
        a.malloc(16)  # guard allocation after p
        a.free(p)
        small = a.malloc(32)
        assert small == p  # reuses the front of the freed block
        rest = a.malloc(32)
        assert rest == p + 32

    def test_exhaustion(self):
        a = FreeListAllocator(0x1000, 0x1040)
        a.malloc(64)
        with pytest.raises(AllocationError):
            a.malloc(8)

    def test_bytes_allocated(self):
        a = FreeListAllocator(0x1000, 0x2000)
        p = a.malloc(40)
        assert a.bytes_allocated == 40
        a.free(p)
        assert a.bytes_allocated == 0

    @given(
        st.lists(
            st.one_of(
                st.tuples(st.just("alloc"), st.integers(8, 256)),
                st.tuples(st.just("free"), st.integers(0, 30)),
            ),
            max_size=120,
        )
    )
    @settings(max_examples=60)
    def test_random_alloc_free_invariants(self, ops):
        """The free list stays sorted, disjoint and in-arena; live blocks
        never overlap."""
        a = FreeListAllocator(0x1000, 0x40000)
        live: list[tuple[int, int]] = []
        for op, arg in ops:
            if op == "alloc":
                try:
                    addr = a.malloc(arg)
                except AllocationError:
                    continue
                live.append((addr, arg))
            elif live:
                addr, _ = live.pop(arg % len(live))
                a.free(addr)
            a.check_invariants()
        # Live blocks disjoint:
        live.sort()
        for (a1, s1), (a2, _s2) in zip(live, live[1:]):
            assert a1 + ((s1 + 7) & ~7) <= a2
