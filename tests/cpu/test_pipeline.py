"""Timing-semantics tests for the out-of-order core."""

import pytest

from repro.cpu.pipeline import CoreConfig, OutOfOrderCore
from repro.errors import TraceError
from repro.isa.opcodes import OpClass
from repro.isa.trace import TraceBuilder

from tests.conftest import make_tiny

BASE = 0x1000_0000


def run_core(trace, config=None, *, hierarchy=None, verify=False):
    hierarchy = hierarchy or make_tiny("BC")
    core = OutOfOrderCore(hierarchy, config, verify_loads=verify)
    return core.run(trace)


def alu_chain(n, dependent):
    tb = TraceBuilder("chain")
    for i in range(n):
        src = i - 1 if (dependent and i > 0) else -1
        tb.append(0x400000 + 8 * i, OpClass.IALU, dest=i, src1=src)
    return tb.build()


class TestBasicThroughput:
    def test_empty_trace(self):
        result = run_core(TraceBuilder().build())
        assert result.cycles == 0

    def test_independent_ops_use_full_width(self):
        n = 400
        result = run_core(alu_chain(n, dependent=False))
        # 4-wide issue, 4 ALUs: about n/4 cycles plus pipeline fill.
        assert result.cycles < n / 4 + 20

    def test_dependent_chain_serializes(self):
        n = 400
        result = run_core(alu_chain(n, dependent=True))
        # One per cycle along the chain.
        assert n <= result.cycles < n + 20

    def test_chain_vs_parallel_ratio(self):
        serial = run_core(alu_chain(256, dependent=True)).cycles
        parallel = run_core(alu_chain(256, dependent=False)).cycles
        assert serial > 3 * parallel

    def test_determinism(self):
        trace = alu_chain(300, dependent=True)
        a = run_core(trace).cycles
        b = run_core(trace).cycles
        assert a == b

    def test_ipc_reported(self):
        result = run_core(alu_chain(100, dependent=False))
        assert result.ipc == pytest.approx(100 / result.cycles)


class TestFunctionalUnits:
    def test_div_latency_exposed_in_chain(self):
        tb = TraceBuilder()
        for i in range(20):
            tb.append(0x400000 + 8 * i, OpClass.IDIV, dest=i, src1=i - 1 if i else -1)
        result = run_core(tb.build())
        assert result.cycles >= 20 * 20  # IDIV latency 20 each, serialized

    def test_single_multiplier_contended(self):
        tb = TraceBuilder()
        for i in range(64):
            tb.append(0x400000 + 8 * i, OpClass.IMULT, dest=i)
        result = run_core(tb.build())
        # One mult issue per cycle despite 4-wide issue.
        assert result.cycles >= 64


class TestMemory:
    def test_load_miss_stalls_dependent(self):
        tb = TraceBuilder()
        tb.append(0x400000, OpClass.LOAD, dest=1, addr=BASE)
        tb.append(0x400008, OpClass.IALU, dest=2, src1=1)
        result = run_core(tb.build())
        assert result.cycles >= 110  # cold miss to memory

    def test_hot_cache_is_fast(self):
        hierarchy = make_tiny("BC")
        hierarchy.load(BASE)  # warm the line
        tb = TraceBuilder()
        tb.append(0x400000, OpClass.LOAD, dest=1, addr=BASE)
        tb.append(0x400008, OpClass.IALU, dest=2, src1=1)
        result = run_core(tb.build(), hierarchy=hierarchy)
        assert result.cycles < 20

    def test_independent_loads_overlap(self):
        """Two misses to different lines share their latency (2 ports)."""
        tb = TraceBuilder()
        tb.append(0x400000, OpClass.LOAD, dest=1, addr=BASE)
        tb.append(0x400008, OpClass.LOAD, dest=2, addr=BASE + 0x4000)
        serial_estimate = 2 * 110
        result = run_core(tb.build())
        assert result.cycles < serial_estimate * 0.75

    def test_store_to_load_forwarding(self):
        tb = TraceBuilder()
        tb.append(0x400000, OpClass.STORE, addr=BASE, value=99)
        tb.append(0x400008, OpClass.LOAD, dest=1, addr=BASE, value=99)
        result = run_core(tb.build(), verify=True)
        assert result.metrics.forwarded_loads == 1
        assert result.cycles < 50  # no cache miss on the load

    def test_forwarding_takes_latest_older_store(self):
        tb = TraceBuilder()
        tb.append(0x400000, OpClass.STORE, addr=BASE, value=1)
        tb.append(0x400008, OpClass.STORE, addr=BASE, value=2)
        tb.append(0x400010, OpClass.LOAD, dest=1, addr=BASE, value=2)
        run_core(tb.build(), verify=True)  # verify mode asserts the value

    def test_verify_mode_catches_bad_trace_value(self):
        hierarchy = make_tiny("BC")
        hierarchy.memory.poke_word(BASE, 7)
        tb = TraceBuilder()
        tb.append(0x400000, OpClass.LOAD, dest=1, addr=BASE, value=8)  # wrong
        with pytest.raises(TraceError):
            run_core(tb.build(), hierarchy=hierarchy, verify=True)

    def test_stores_commit_to_hierarchy(self):
        hierarchy = make_tiny("BC")
        tb = TraceBuilder()
        tb.append(0x400000, OpClass.STORE, addr=BASE, value=55)
        run_core(tb.build(), hierarchy=hierarchy)
        assert hierarchy.load(BASE).value == 55


class TestBranches:
    @staticmethod
    def branch_trace(pattern, repeats):
        tb = TraceBuilder()
        for r in range(repeats):
            for j, taken in enumerate(pattern):
                tb.append(0x400000, OpClass.IALU, dest=1)
                tb.append(0x400008, OpClass.BRANCH, src1=1, taken=taken)
        return tb.build()

    def test_predictable_loop_fast(self):
        result = run_core(self.branch_trace([True], 200))
        assert result.branch_mispredicts < 5

    def test_alternating_pattern_hurts(self):
        biased = run_core(self.branch_trace([True], 200))
        random_ish = run_core(self.branch_trace([True, False], 100))
        assert random_ish.branch_mispredicts > biased.branch_mispredicts
        assert random_ish.cycles > biased.cycles

    def test_mispredict_penalty_scales(self):
        trace = self.branch_trace([True, False], 100)
        cheap = run_core(trace, CoreConfig(mispredict_penalty=0))
        costly = run_core(trace, CoreConfig(mispredict_penalty=10))
        assert costly.cycles > cheap.cycles


class TestStructuralLimits:
    def test_small_ruu_hurts_ilp(self):
        trace = alu_chain(400, dependent=False)
        narrow = run_core(trace, CoreConfig(ruu_size=4))
        wide = run_core(trace, CoreConfig(ruu_size=16))
        assert narrow.cycles > wide.cycles

    def test_lsq_bounds_outstanding_mem_ops(self):
        tb = TraceBuilder()
        for i in range(32):
            tb.append(0x400000 + 8 * i, OpClass.LOAD, dest=i, addr=BASE + 64 * i)
        tight = run_core(tb.build(), CoreConfig(lsq_size=1))
        loose = run_core(tb.build(), CoreConfig(lsq_size=8))
        assert tight.cycles > loose.cycles

    def test_config_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CoreConfig(issue_width=0)
        with pytest.raises(ConfigurationError):
            CoreConfig(mispredict_penalty=-1)


class TestMetrics:
    def test_ready_queue_sampled_in_miss_cycles(self):
        tb = TraceBuilder()
        tb.append(0x400000, OpClass.LOAD, dest=1, addr=BASE)
        for i in range(30):  # independent work behind the miss
            tb.append(0x400100 + 8 * i, OpClass.IALU, dest=100 + i)
        result = run_core(tb.build())
        assert result.metrics.miss_cycles > 0

    def test_loads_by_level_accounted(self):
        hierarchy = make_tiny("BC")
        tb = TraceBuilder()
        tb.append(0x400000, OpClass.LOAD, dest=1, addr=BASE)
        tb.append(0x400008, OpClass.LOAD, dest=2, addr=BASE)
        result = run_core(tb.build(), hierarchy=hierarchy)
        by_level = result.metrics.loads_by_level
        assert by_level.get("memory", 0) == 1
        assert by_level.get("l1", 0) == 1

    def test_committed_equals_trace_length(self):
        trace = alu_chain(123, dependent=False)
        result = run_core(trace)
        assert result.metrics.committed == 123
