"""Flat-latency DRAM model.

Matches the paper's memory model (Figure 9): a constant 100-cycle access
latency and a word-counting bus. Values live uncompressed in memory; the
caller (the L2 model) decides how many bus words a transfer costs — full
width for an uncompressed line, packed width for a compressed transfer —
and reports it here.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.inject import hooks as _inject
from repro.memory.bus import BusMeter, TrafficKind
from repro.memory.image import WORD_BYTES, MemoryImage
from repro.utils.bitmask import as_mask

__all__ = ["MainMemory"]


class MainMemory:
    """Backing store with latency and traffic accounting."""

    def __init__(
        self,
        image: MemoryImage | None = None,
        *,
        latency: int = 100,
        bus: BusMeter | None = None,
    ) -> None:
        if latency < 0:
            raise ConfigurationError("memory latency must be non-negative")
        self.image = image if image is not None else MemoryImage()
        self.latency = latency
        self.bus = bus if bus is not None else BusMeter()
        self.n_reads = 0
        self.n_writes = 0
        #: Optional compressibility table mirroring the image (fast
        #: backend); kept consistent by the write paths below.
        self.comp_table = None

    def attach_comp_table(self, table) -> None:
        """Mirror image content in *table* (an ``ImageCompTable``)."""
        self.comp_table = table

    # ---- line transfers ------------------------------------------------------

    def read_line(
        self,
        addr: int,
        n_words: int,
        *,
        bus_words: int | None = None,
        kind: TrafficKind = TrafficKind.FILL,
    ) -> np.ndarray:
        """Fetch *n_words* words at *addr*; returns uncompressed values.

        *bus_words* is the traffic charged for the transfer (defaults to
        *n_words*, the uncompressed cost). Compressed-transfer designs pass
        the packed size.
        """
        if _inject.ACTIVE:
            _inject.SESSION.on_memory_read(addr, n_words)
        data = self.image.read_words(addr, n_words)
        self.bus.record(kind, n_words if bus_words is None else bus_words)
        self.n_reads += 1
        return data

    def write_line(
        self,
        addr: int,
        values,
        *,
        mask: int | np.ndarray | None = None,
        bus_words: int | None = None,
        comp: int | None = None,
    ) -> None:
        """Write back a (possibly partial) line of words.

        *mask* selects which words are valid — a packed int (bit *i* =
        word *i*) or a bool sequence. A promoted affiliated line in the
        CPP design can be dirty while having holes; memory retains its
        old contents for masked-out words.

        *comp*, when given, is the written words' compressibility mask
        under the attached comp table's scheme — forwarded so the table
        updates without re-classifying.
        """
        if mask is not None:
            mask = as_mask(mask)
        full = (1 << len(values)) - 1
        if _inject.ACTIVE:
            _inject.SESSION.on_memory_write(
                addr, len(values), full if mask is None else mask
            )
        if mask is None or mask == full:
            self.image.write_words(addr, values)
            n_valid = len(values)
        else:
            self.image.write_words_masked(addr, values, mask)
            n_valid = mask.bit_count()
        if self.comp_table is not None:
            self.comp_table.note_write(
                addr, values, full if mask is None else mask, comp
            )
        self.bus.record(
            TrafficKind.WRITEBACK, n_valid if bus_words is None else bus_words
        )
        self.n_writes += 1

    # ---- convenience ----------------------------------------------------------

    def peek_word(self, addr: int) -> int:
        """Read a word without traffic accounting (debug / verification)."""
        return self.image.read_word(addr)

    def poke_word(self, addr: int, value: int) -> None:
        """Write a word without traffic accounting (test setup)."""
        self.image.write_word(addr, value)
        if self.comp_table is not None:
            self.comp_table.invalidate(addr)

    def word_addrs(self, addr: int, n_words: int) -> np.ndarray:
        """Addresses of the *n_words* words starting at *addr* (uint32)."""
        return (addr + WORD_BYTES * np.arange(n_words, dtype=np.uint32)).astype(
            np.uint32
        )
