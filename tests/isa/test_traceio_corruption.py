"""Trace-cache corruption: damaged archives regenerate, never poison.

The satellite property: a truncated or bit-flipped cached program under
the on-disk trace cache triggers deterministic regeneration — the
program served is bit-identical to a fresh generation — and the damaged
archive is quarantined as evidence. No crash, no silently-bad trace.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError
from repro.isa import traceio
from repro.obs.metrics import REGISTRY
from repro.sim import runner
from repro.workloads.registry import GENERATOR_VERSION, generate

WORKLOAD = "olden.treeadd"
SCALE = 0.05
COLUMNS = ("pc", "op", "dest", "src1", "src2", "addr", "value", "taken")


@pytest.fixture
def trace_cache(tmp_path):
    runner.clear_caches()
    runner.set_trace_cache_dir(tmp_path / "cache")
    yield tmp_path / "cache"
    runner.set_trace_cache_dir(None)
    runner.clear_caches()


def cache_path(cache_dir):
    return traceio.program_cache_path(
        cache_dir,
        WORKLOAD,
        seed=1,
        scale=SCALE,
        generator_version=GENERATOR_VERSION,
    )


def programs_identical(a, b) -> bool:
    return all(
        np.array_equal(getattr(a.trace, col), getattr(b.trace, col))
        for col in COLUMNS
    )


def test_cache_round_trip_serves_identical_program(trace_cache):
    first = runner.get_program(WORKLOAD, seed=1, scale=SCALE)
    assert cache_path(trace_cache).exists()
    runner.clear_caches()
    served = runner.get_program(WORKLOAD, seed=1, scale=SCALE)
    assert programs_identical(first, served)
    assert runner.memo_stats()["program_disk_hits"] >= 1


@pytest.mark.parametrize("damage", ["truncate", "bitflip", "garbage"])
def test_damaged_archive_regenerates_bit_identical(trace_cache, damage):
    pristine = runner.get_program(WORKLOAD, seed=1, scale=SCALE)
    path = cache_path(trace_cache)
    raw = path.read_bytes()
    if damage == "truncate":
        path.write_bytes(raw[: len(raw) // 3])
    elif damage == "bitflip":
        data = bytearray(raw)
        data[len(data) // 2] ^= 0x10
        path.write_bytes(bytes(data))
    else:
        path.write_bytes(b"\x00" * 128)

    before = REGISTRY.counter("store.quarantined", kind="trace_cache").value
    runner.clear_caches()
    regenerated = runner.get_program(WORKLOAD, seed=1, scale=SCALE)

    assert programs_identical(pristine, regenerated)
    quarantine = path.parent / "quarantine"
    assert quarantine.is_dir() and any(quarantine.glob(f"{path.name}*"))
    assert (
        REGISTRY.counter("store.quarantined", kind="trace_cache").value
        == before + 1
    )
    assert (quarantine / "ledger.jsonl").exists()
    # The cache healed itself: the rewritten entry now loads cleanly.
    assert traceio.load_program(path) is not None


def test_checksum_catches_tampered_payload(tmp_path):
    """A bit flip the zip layer misses (valid archive, wrong data) must
    still be caught by the stored array checksum."""
    program = generate(WORKLOAD, seed=1, scale=SCALE)
    path = traceio.save_program(program, tmp_path / "prog.npz")

    # Re-save with a tampered trace but the original metadata checksum.
    import json
    import zipfile

    with zipfile.ZipFile(path) as zf:
        names = zf.namelist()
        blobs = {name: zf.read(name) for name in names}
    meta = json.loads(bytes(np.load(path)["meta"]).decode("utf-8"))
    tampered = generate(WORKLOAD, seed=2, scale=SCALE)  # different data
    path2 = traceio.save_program(tampered, tmp_path / "prog2.npz")
    with zipfile.ZipFile(path2) as zf:
        tampered_blobs = {name: zf.read(name) for name in zf.namelist()}
    # Frankenstein archive: tampered arrays under the original meta.
    with zipfile.ZipFile(path, "w") as zf:
        for name in names:
            source = blobs if name == "meta.npy" else tampered_blobs
            zf.writestr(name, source[name])
    assert json.loads(
        bytes(np.load(path)["meta"]).decode("utf-8")
    ) == meta  # metadata (and its checksum) is the original

    with pytest.raises(TraceError, match="checksum mismatch"):
        traceio.load_program(path)
    assert (path.parent / "quarantine").is_dir()


def test_stale_format_version_regenerates_without_quarantine(trace_cache):
    """A v1 (pre-checksum) archive is stale, not corrupt: regenerate,
    but do not quarantine somebody's perfectly healthy old cache."""
    import json

    runner.get_program(WORKLOAD, seed=1, scale=SCALE)
    path = cache_path(trace_cache)

    # Rewrite the archive with an older program_version stamp.
    with np.load(path) as archive:
        arrays = {name: archive[name] for name in archive.files}
    meta = json.loads(bytes(arrays.pop("meta")).decode("utf-8"))
    meta["program_version"] = 1
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        **arrays,
    )

    before = REGISTRY.counter("store.quarantined", kind="trace_cache").value
    runner.clear_caches()
    runner.get_program(WORKLOAD, seed=1, scale=SCALE)
    assert (
        REGISTRY.counter("store.quarantined", kind="trace_cache").value
        == before
    )
    assert not (path.parent / "quarantine" / path.name).exists()


def test_regeneration_metric_counts_cache_rot(trace_cache):
    runner.get_program(WORKLOAD, seed=1, scale=SCALE)
    cache_path(trace_cache).write_bytes(b"rot")
    before = REGISTRY.counter("trace_cache.regenerated").value
    runner.clear_caches()
    runner.get_program(WORKLOAD, seed=1, scale=SCALE)
    assert REGISTRY.counter("trace_cache.regenerated").value == before + 1
