"""The paper's headline claims, asserted as executable statements.

These run a reduced-scale version of the full evaluation (all five
configurations on a representative workload subset) and check the *shape*
of each result — who wins, in which direction — exactly as the
reproduction contract demands. Absolute magnitudes are reported by the
benchmark harness instead.
"""

import numpy as np
import pytest

from repro.compression.vectorized import compression_summary
from repro.sim.runner import clear_caches, get_program, run_workload
from repro.workloads.registry import WORKLOAD_NAMES

SCALE = 0.35
SUBSET = [
    "olden.treeadd",
    "olden.health",
    "spec95.130.li",
    "spec95.129.compress",
    "spec2000.300.twolf",
]


@pytest.fixture(scope="module", autouse=True)
def _fresh():
    clear_caches()
    yield
    clear_caches()


def results_for(workload):
    return {
        cfg: run_workload(workload, cfg, scale=SCALE)
        for cfg in ("BC", "BCC", "HAC", "BCP", "CPP")
    }


@pytest.fixture(scope="module")
def matrix():
    return {w: results_for(w) for w in SUBSET}


class TestFigure3Claims:
    def test_average_compressibility_near_59_percent(self):
        fracs = [
            compression_summary(
                *get_program(w, scale=SCALE).trace.accessed_values()
            ).fraction_compressible
            for w in WORKLOAD_NAMES
        ]
        assert 0.45 <= float(np.mean(fracs)) <= 0.75


class TestFigure10Claims:
    def test_bcc_cuts_traffic_everywhere(self, matrix):
        for w, r in matrix.items():
            assert r["BCC"].bus_words < r["BC"].bus_words, w

    def test_bcp_increases_traffic(self, matrix):
        """'hardware prefetching increases memory traffic significantly'"""
        ratios = [r["BCP"].bus_words / r["BC"].bus_words for r in matrix.values()]
        assert float(np.mean(ratios)) > 1.2

    def test_cpp_reduces_traffic_despite_prefetching(self, matrix):
        for w, r in matrix.items():
            assert r["CPP"].bus_words < r["BC"].bus_words, w

    def test_cpp_traffic_below_bcp(self, matrix):
        for w, r in matrix.items():
            assert r["CPP"].bus_words < r["BCP"].bus_words, w


class TestFigure11Claims:
    def test_bcc_timing_identical_to_bc(self, matrix):
        for w, r in matrix.items():
            assert r["BCC"].cycles == r["BC"].cycles, w

    def test_cpp_speeds_up_on_average(self, matrix):
        ratios = [r["CPP"].cycles / r["BC"].cycles for r in matrix.values()]
        assert float(np.mean(ratios)) < 0.97  # paper: ~7% faster

    def test_cpp_never_catastrophic(self, matrix):
        """CPP 'never kicks out a cache line in order to accommodate a
        prefetched line' — no pollution, so no big slowdowns."""
        for w, r in matrix.items():
            assert r["CPP"].cycles <= 1.02 * r["BC"].cycles, w

    def test_cpp_beats_bcp_on_conflict_dominated_twolf(self, matrix):
        r = matrix["spec2000.300.twolf"]
        assert r["CPP"].cycles < r["BCP"].cycles


class TestFigure12And13Claims:
    def test_cpp_reduces_l1_misses_on_compressible_workloads(self, matrix):
        for w in ("olden.treeadd", "spec95.130.li", "spec2000.300.twolf"):
            r = matrix[w]
            assert r["CPP"].l1.misses < r["BC"].l1.misses, w

    def test_cpp_reduces_l2_misses(self, matrix):
        for w in ("olden.treeadd", "spec95.130.li"):
            r = matrix[w]
            assert r["CPP"].l2.misses < r["BC"].l2.misses, w

    def test_prefetch_buffer_hits_not_counted_as_misses(self, matrix):
        for w, r in matrix.items():
            assert r["BCP"].l1.misses <= r["BC"].l1.misses, w


class TestCPPMechanics:
    def test_affiliated_hits_occur(self, matrix):
        for w in ("olden.treeadd", "spec95.130.li"):
            assert matrix[w]["CPP"].l1.affiliated_hits > 0, w

    def test_prefetched_words_installed(self, matrix):
        for w in ("olden.treeadd", "spec95.130.li"):
            assert matrix[w]["CPP"].l1.prefetched_words > 0, w

    def test_value_transitions_drop_affiliated_words(self, matrix):
        """Stores that turn words incompressible must reclaim slots
        somewhere in a real run."""
        total = sum(
            r["CPP"].l1.dropped_affiliated_words
            + r["CPP"].l2.dropped_affiliated_words
            for r in matrix.values()
        )
        assert total > 0

    def test_cpp_fill_traffic_never_exceeds_bc(self, matrix):
        for w, r in matrix.items():
            assert r["CPP"].bus_fill_words <= r["BC"].bus_fill_words, w
