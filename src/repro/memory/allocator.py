"""Simulated heap allocators.

Pointer compressibility in the paper hinges on allocation locality:
"dynamically allocated heap objects are often small ... most of these
pointer values point to reasonably sized memory regions and many share a
common prefix" (§2.1). The workload generators therefore allocate their
linked structures through these allocators rather than inventing
addresses, so prefix sharing emerges from layout exactly as it would under
a real ``malloc``.

Two allocators are provided:

* :class:`BumpAllocator` — sequential carve-out; maximal locality.
* :class:`FreeListAllocator` — first-fit with splitting and address-ordered
  coalescing on free; used by workloads with allocation/deallocation churn
  (e.g. *health*), which fragments the heap and degrades prefix sharing —
  a behaviour the evaluation should (and does) reflect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError, ConfigurationError
from repro.utils.intmath import align_up, is_pow2

__all__ = ["BumpAllocator", "FreeListAllocator", "DEFAULT_HEAP_BASE", "DEFAULT_HEAP_LIMIT"]

DEFAULT_HEAP_BASE = 0x1000_0000
DEFAULT_HEAP_LIMIT = 0x3000_0000


class BumpAllocator:
    """Carve allocations sequentially from ``[base, limit)``.

    No ``free`` — matching the allocation behaviour of Olden-style
    benchmark phases that build a structure once and then traverse it.
    """

    def __init__(
        self,
        base: int = DEFAULT_HEAP_BASE,
        limit: int = DEFAULT_HEAP_LIMIT,
        *,
        alignment: int = 8,
    ) -> None:
        if not is_pow2(alignment) or alignment < 4:
            raise ConfigurationError("alignment must be a power of two >= 4")
        if base % alignment or base >= limit:
            raise ConfigurationError("invalid heap bounds")
        self.base = base
        self.limit = limit
        self.alignment = alignment
        self._next = base
        self.n_allocs = 0

    def malloc(self, size: int, *, align: int | None = None) -> int:
        """Allocate *size* bytes; returns the address."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        align = align or self.alignment
        if not is_pow2(align):
            raise ConfigurationError("alignment must be a power of two")
        addr = align_up(self._next, align)
        end = addr + align_up(size, self.alignment)
        if end > self.limit:
            raise AllocationError(
                f"heap exhausted: need {size} bytes at {addr:#x}, limit {self.limit:#x}"
            )
        self._next = end
        self.n_allocs += 1
        return addr

    @property
    def bytes_used(self) -> int:
        return self._next - self.base


@dataclass
class _FreeBlock:
    addr: int
    size: int


class FreeListAllocator:
    """First-fit free-list allocator with address-ordered coalescing.

    Kept intentionally close to a textbook ``malloc``: allocation churn
    produces the address-space fragmentation that makes some workloads'
    pointers less compressible.
    """

    def __init__(
        self,
        base: int = DEFAULT_HEAP_BASE,
        limit: int = DEFAULT_HEAP_LIMIT,
        *,
        alignment: int = 8,
    ) -> None:
        if not is_pow2(alignment) or alignment < 4:
            raise ConfigurationError("alignment must be a power of two >= 4")
        if base % alignment or base >= limit:
            raise ConfigurationError("invalid heap bounds")
        self.base = base
        self.limit = limit
        self.alignment = alignment
        self._free: list[_FreeBlock] = [_FreeBlock(base, limit - base)]
        self._allocated: dict[int, int] = {}  # addr -> size
        self.n_allocs = 0
        self.n_frees = 0

    def malloc(self, size: int) -> int:
        """First-fit allocate *size* bytes (rounded up to the alignment)."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        size = align_up(size, self.alignment)
        for i, block in enumerate(self._free):
            if block.size >= size:
                addr = block.addr
                if block.size == size:
                    del self._free[i]
                else:
                    block.addr += size
                    block.size -= size
                self._allocated[addr] = size
                self.n_allocs += 1
                return addr
        raise AllocationError(f"no free block of {size} bytes available")

    def free(self, addr: int) -> None:
        """Release a previously allocated block, coalescing neighbours."""
        size = self._allocated.pop(addr, None)
        if size is None:
            raise AllocationError(f"free of unallocated address {addr:#x}")
        self.n_frees += 1
        # Insert in address order.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid].addr < addr:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, _FreeBlock(addr, size))
        # Coalesce with successor, then predecessor.
        if lo + 1 < len(self._free):
            nxt = self._free[lo + 1]
            if addr + size == nxt.addr:
                self._free[lo].size += nxt.size
                del self._free[lo + 1]
        if lo > 0:
            prev = self._free[lo - 1]
            if prev.addr + prev.size == addr:
                prev.size += self._free[lo].size
                del self._free[lo]

    @property
    def bytes_allocated(self) -> int:
        return sum(self._allocated.values())

    @property
    def n_free_blocks(self) -> int:
        return len(self._free)

    def check_invariants(self) -> None:
        """Assert the free list is sorted, disjoint, and inside the arena.

        Called by property-based tests after random alloc/free sequences.
        """
        prev_end = self.base - 1
        for block in self._free:
            if block.size <= 0:
                raise AssertionError("empty free block")
            if block.addr <= prev_end:
                raise AssertionError("free list unsorted or overlapping")
            if block.addr < self.base or block.addr + block.size > self.limit:
                raise AssertionError("free block outside arena")
            prev_end = block.addr + block.size - 1
