"""Crash-safety property test: die at every commit-protocol window.

The acceptance property, verbatim: after a crash at *any* fault point,
every record in the store either verifies, is absent, or is quarantined
— and ``fsck`` reports a clean store after recovery. Torn-but-served is
the one outcome that must never exist.

Crashes are real process deaths: each iteration forks, arms the store's
fault-point hook in the child, and the child ``os._exit``s (no cleanup,
no atexit — SIGKILL-equivalent) in the middle of ``put``. The parent
then audits the shared directory exactly as a restarted campaign would.
"""

from __future__ import annotations

import os

import pytest

from repro.store import integrity

from store_helpers import identity_store, sample_payload

POINTS = (
    "put.before_journal",
    "put.after_journal",
    "put.after_publish",
    "put.after_clear",
)

#: iterations = len(POINTS) * KEYS_PER_POINT on top of the corruption
#: sweep below — comfortably past the 50 the acceptance bar asks for.
KEYS_PER_POINT = 13


def _crash_put(root, key, payload, point: str) -> int:
    """Fork; the child dies with os._exit inside put() at *point*."""
    pid = os.fork()
    if pid == 0:
        try:
            integrity.set_fault_hook(
                lambda name: os._exit(integrity.FAULT_EXIT_CODE)
                if name == point
                else None
            )
            identity_store(root).put(key, payload)
            os._exit(0)
        except BaseException:
            os._exit(99)
    _, status = os.waitpid(pid, 0)
    return os.waitstatus_to_exitcode(status)


def _audit(root, expectations: dict) -> None:
    """The whole-store invariant, as a restarted process sees it."""
    store = identity_store(root)
    # Every surviving object must verify...
    for path, digest in list(store.records()):
        record = store._load_verified(path, digest)
        assert record is not None, f"unverifiable record survived at {path}"
    # ...and recovery must converge: one repairing pass, then clean.
    store.fsck(repair=True)
    report = identity_store(root).fsck(repair=True)
    assert report.clean, f"fsck not clean after recovery: {report.as_dict()}"
    # Committed cells must still be served, bit-for-bit.
    for key, payload in expectations.items():
        served = store.get(key)
        assert served is None or served == payload, (
            f"cell {key} served a record that is neither absent nor "
            f"the committed payload"
        )


@pytest.mark.parametrize("point", POINTS)
def test_crash_at_fault_point_leaves_recoverable_store(tmp_path, point):
    root = tmp_path / "store"
    committed: dict = {}
    for n in range(KEYS_PER_POINT):
        key = ("wl", n, 0.05, "BC", 1.0)
        payload = sample_payload(n)
        rc = _crash_put(root, key, payload, point)
        assert rc == integrity.FAULT_EXIT_CODE, f"fault {point} never fired"
        committed[key] = payload
        _audit(root, committed)
        # The recompute a restarted campaign performs is an idempotent
        # put; after it the cell must serve exactly the payload.
        store = identity_store(root)
        store.put(key, payload)
        assert store.get(key) == payload


def test_crash_then_recovery_completes_journaled_writes(tmp_path):
    """A crash after the WAL is staged must not lose the write: recovery
    rolls it forward and the cell is served without recomputation."""
    root = tmp_path / "store"
    key = ("wl", 0, 0.05, "BC", 1.0)
    payload = sample_payload()
    rc = _crash_put(root, key, payload, "put.after_journal")
    assert rc == integrity.FAULT_EXIT_CODE
    store = identity_store(root)
    assert store.get(key) is None  # not published before the crash
    report = store.recover()
    assert report.replayed == 1
    assert store.get(key) == payload


def test_random_corruption_sweep_never_serves_garbage(tmp_path):
    """Seeded random byte damage over committed records: every damaged
    record must be quarantined (never served), every pristine one must
    still verify, and fsck must converge to clean."""
    import random

    root = tmp_path / "store"
    store = identity_store(root)
    keys = [("wl", n, 0.05, "BC", 1.0) for n in range(20)]
    for n, key in enumerate(keys):
        store.put(key, sample_payload(n))
    rng = random.Random(20030910)
    damaged = keys[::2]
    for key in damaged:
        path = store.object_path(store.digest_of(key))
        data = bytearray(path.read_bytes())
        for _ in range(rng.randrange(1, 4)):
            data[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
        path.write_bytes(bytes(data))

    for n, key in enumerate(keys):
        served = store.get(key)
        assert served is None or served == sample_payload(n)
    assert store.quarantined_count() == sum(
        1 for key in damaged if store.get(key) is None
    )
    store.fsck(repair=True)
    assert identity_store(root).fsck(repair=True).clean
