"""Trace-generating workloads.

Fourteen synthetic benchmarks modeled on the paper's evaluation set
(Olden, SPECint95, SPECint2000). Each workload *runs its kernel for real*
— allocating structures through a simulated heap allocator and reading/
writing a simulated memory image — while emitting the dynamic instruction
trace, so addresses, data values, dependence chains and branch behaviour
all arise mechanistically rather than from a synthetic distribution.
"""

from repro.workloads.base import Program, ProgramBuilder, Workload
from repro.workloads.registry import (
    WORKLOAD_NAMES,
    WORKLOADS,
    generate,
    get_workload,
)

__all__ = [
    "Program",
    "ProgramBuilder",
    "Workload",
    "WORKLOADS",
    "WORKLOAD_NAMES",
    "get_workload",
    "generate",
]
