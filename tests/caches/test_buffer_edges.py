"""Eviction/replacement edge cases of the prefetch and victim buffers.

Covers the corners the basic suites skip: inserts into a full buffer,
duplicate-tag probes and re-inserts (which must refresh, not evict),
and flush/drain behaviour including repeated flushes.
"""

from __future__ import annotations

import pytest

from repro.caches.prefetch_buffer import PrefetchBuffer
from repro.caches.victim import VictimBuffer
from repro.errors import ConfigurationError

from tests.caches.test_victim import make_victim_l1

BASE = 0x1000_0000


def _line(fill: int, words: int = 16) -> list[int]:
    return [fill] * words


class TestPrefetchBufferFull:
    def test_full_insert_evicts_exactly_one_lru(self):
        buf = PrefetchBuffer(2, 16)
        buf.insert(1, _line(1))
        buf.insert(2, _line(2))
        buf.insert(3, _line(3))
        assert len(buf) == 2
        assert buf.line_numbers() == [2, 3]
        assert buf.evictions == 1

    def test_sustained_overflow_keeps_cap(self):
        buf = PrefetchBuffer(2, 16)
        for ln in range(10):
            buf.insert(ln, _line(ln))
        assert len(buf) == 2
        assert buf.line_numbers() == [8, 9]
        assert buf.inserts == 10
        assert buf.evictions == 8

    def test_duplicate_tag_insert_when_full_does_not_evict(self):
        buf = PrefetchBuffer(2, 16)
        buf.insert(1, _line(1))
        buf.insert(2, _line(2))
        buf.insert(1, _line(99), ready_cycle=50)  # refresh, not a new entry
        assert len(buf) == 2
        assert buf.evictions == 0
        assert buf.inserts == 2  # a refresh is not a new insert
        # The refresh updated both payload and readiness...
        entry = buf.peek(1)
        assert entry.data == _line(99)
        assert not entry.ready(now=49) and entry.ready(now=50)
        # ...and LRU position: line 2 is now oldest and evicts first.
        buf.insert(3, _line(3))
        assert buf.line_numbers() == [1, 3]

    def test_duplicate_probe_consumes_once(self):
        buf = PrefetchBuffer(2, 16)
        buf.insert(1, _line(1))
        assert 1 in buf and 1 in buf  # probes don't consume
        assert buf.pop(1) is not None
        assert 1 not in buf
        assert buf.pop(1) is None  # a second pop of the same tag misses

    def test_clear_empties_but_keeps_counters(self):
        buf = PrefetchBuffer(2, 16)
        buf.insert(1, _line(1))
        buf.insert(2, _line(2))
        buf.insert(3, _line(3))
        buf.clear()
        assert len(buf) == 0 and buf.line_numbers() == []
        assert buf.inserts == 3 and buf.evictions == 1
        buf.insert(7, _line(7))  # reusable after clear
        assert buf.line_numbers() == [7]


class TestVictimBufferFull:
    def test_full_insert_spills_oldest_dirty_only(self):
        buf = VictimBuffer(2, 16)
        assert buf.insert(1, _line(1), dirty=True) is None
        assert buf.insert(2, _line(2), dirty=False) is None
        spilled = buf.insert(3, _line(3), dirty=True)
        assert spilled is not None
        old_no, old = spilled
        assert old_no == 1 and old.dirty and old.data == _line(1)
        assert buf.dirty_spills == 1

    def test_duplicate_tag_insert_refreshes_without_spill(self):
        buf = VictimBuffer(2, 16)
        buf.insert(1, _line(1), dirty=True)
        buf.insert(2, _line(2), dirty=True)
        # Re-inserting a resident tag at capacity replaces in place...
        assert buf.insert(1, _line(77), dirty=False) is None
        assert len(buf) == 2
        assert buf.dirty_spills == 0
        entry = buf.pop(1)
        assert entry.data == _line(77) and not entry.dirty
        # ...and pop consumed it: a duplicate probe now misses.
        assert 1 not in buf
        assert buf.pop(1) is None

    def test_wrong_width_rejected(self):
        buf = VictimBuffer(2, 16)
        with pytest.raises(ConfigurationError):
            buf.insert(1, _line(1, words=8), dirty=False)

    def test_drain_returns_dirty_and_empties_all(self):
        buf = VictimBuffer(4, 16)
        buf.insert(1, _line(1), dirty=True)
        buf.insert(2, _line(2), dirty=False)
        buf.insert(3, _line(3), dirty=True)
        drained = buf.drain()
        assert [no for no, _ in drained] == [1, 3]
        assert all(v.dirty for _, v in drained)
        assert len(buf) == 0
        assert buf.drain() == []  # second drain is a no-op


class TestVictimCacheFlush:
    def _fill_conflicting(self, l1, n, *, dirty):
        """Touch *n* lines that all map to L1 set 0 (512 B direct-mapped)."""
        for i in range(n):
            addr = BASE + i * 512
            if dirty:
                l1.access(addr, write=True, value=0xA0 + i)
            else:
                l1.access(addr)

    def test_flush_drains_buffered_dirty_victims(self):
        l1, mem = make_victim_l1(entries=2)
        self._fill_conflicting(l1, 3, dirty=True)
        # Two dirty victims sit in the buffer, unseen by memory so far.
        assert len(l1.cache.victim_buffer) == 2
        writes_before = mem.n_writes
        l1.flush()
        assert len(l1.cache.victim_buffer) == 0
        assert mem.n_writes == writes_before + 3  # 1 resident + 2 buffered
        assert mem.peek_word(BASE) == 0xA0
        assert mem.peek_word(BASE + 512) == 0xA1
        assert mem.peek_word(BASE + 1024) == 0xA2

    def test_flush_of_clean_victims_writes_nothing(self):
        l1, mem = make_victim_l1(entries=2)
        self._fill_conflicting(l1, 3, dirty=False)
        writes_before = mem.n_writes
        l1.flush()
        assert mem.n_writes == writes_before

    def test_double_flush_is_idempotent(self):
        l1, mem = make_victim_l1(entries=2)
        self._fill_conflicting(l1, 3, dirty=True)
        l1.flush()
        writes_after_first = mem.n_writes
        l1.flush()
        assert mem.n_writes == writes_after_first

    def test_age_out_chain_reaches_memory_in_order(self):
        # A 1-entry buffer under a 4-deep conflict chain: each new victim
        # ages out the previous dirty one, which must land in memory.
        l1, mem = make_victim_l1(entries=1)
        self._fill_conflicting(l1, 4, dirty=True)
        assert mem.peek_word(BASE) == 0xA0
        assert mem.peek_word(BASE + 512) == 0xA1
        # The two newest victims are still on chip.
        assert l1.cache.probe(BASE + 3 * 512)
        assert (BASE + 2 * 512) >> 6 in l1.cache.victim_buffer

    def test_writeback_into_buffered_line_stays_coherent(self):
        # An upper-level write-back whose target sits in the victim buffer
        # must merge into the recovered line, not fork a second copy.
        l1, mem = make_victim_l1(entries=2)
        self._fill_conflicting(l1, 2, dirty=True)
        line_no = BASE >> 6
        assert line_no in l1.cache.victim_buffer
        l1.write_back(BASE, [0x55] * 16, (1 << 16) - 1)
        assert line_no not in l1.cache.victim_buffer
        l1.flush()
        assert mem.peek_word(BASE) == 0x55
