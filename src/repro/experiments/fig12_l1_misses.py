"""Figure 12 — comparison of L1 cache misses (normalized to BC).

Per the paper's accounting, a BCP access satisfied from the prefetch
buffer is not a miss. CPP's partial prefetching removes many L1 misses
without a buffer; HAC removes conflict misses instead.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments._matrix import normalized_comparison
from repro.experiments.common import ExperimentOutput

__all__ = ["run", "FIGURE", "TITLE"]

FIGURE = "fig12"
TITLE = "L1 data-cache misses normalized to BC"


def run(
    workloads: Sequence[str] | None = None,
    *,
    seed: int = 1,
    scale: float = 1.0,
) -> ExperimentOutput:
    """Regenerate this figure over *workloads* (default: all fourteen)."""
    return normalized_comparison(
        figure=FIGURE,
        title=TITLE,
        metric=lambda r: float(r.l1.misses),
        workloads=workloads,
        seed=seed,
        scale=scale,
        paper_reference=(
            "Figure 12: prefetching (BCP, CPP) greatly reduces L1 misses vs "
            "BC; vs HAC they are comparable or higher because neither "
            "removes conflict misses as effectively."
        ),
    )
