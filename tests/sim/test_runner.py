"""Tests for the memoizing run helpers."""

import pytest

from repro.sim import runner
from repro.sim.runner import clear_caches, get_program, run_matrix, run_workload


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestProgramCache:
    def test_same_key_reuses(self):
        a = get_program("olden.mst", seed=1, scale=0.1)
        b = get_program("olden.mst", seed=1, scale=0.1)
        assert a is b

    def test_different_seed_regenerates(self):
        a = get_program("olden.mst", seed=1, scale=0.1)
        b = get_program("olden.mst", seed=2, scale=0.1)
        assert a is not b


class TestResultCache:
    def test_memoizes_results(self):
        a = run_workload("olden.mst", "BC", scale=0.1)
        b = run_workload("olden.mst", "BC", scale=0.1)
        assert a is b

    def test_verify_bypasses_cache(self):
        a = run_workload("olden.mst", "BC", scale=0.1)
        b = run_workload("olden.mst", "BC", scale=0.1, verify_loads=True)
        assert a is not b
        assert a.cycles == b.cycles

    def test_configs_are_distinct_keys(self):
        a = run_workload("olden.mst", "BC", scale=0.1)
        b = run_workload("olden.mst", "CPP", scale=0.1)
        assert a.config == "BC" and b.config == "CPP"

    def test_lowercase_config(self):
        assert run_workload("olden.mst", "cpp", scale=0.1).config == "CPP"

    def test_codecs_are_distinct_keys(self):
        # Regression: the memo must never serve a paper-scheme result to
        # a non-default-codec run (codecs change results).
        from repro.sim.config import SimConfig

        a = run_workload("olden.mst", SimConfig(cache_config="CPP"), scale=0.1)
        b = run_workload(
            "olden.mst", SimConfig(cache_config="CPP", codec="fpc"), scale=0.1
        )
        assert a is not b

    def test_env_codec_is_distinct_key(self, monkeypatch):
        a = run_workload("olden.mst", "CPP", scale=0.1)
        monkeypatch.setenv("REPRO_CODEC", "fpc")
        b = run_workload("olden.mst", "CPP", scale=0.1)
        assert a is not b


class TestMatrix:
    def test_full_shape(self):
        out = run_matrix(["olden.mst"], ["BC", "CPP"], scale=0.1)
        assert set(out) == {("olden.mst", "BC"), ("olden.mst", "CPP")}
        assert out[("olden.mst", "BC")].workload == "olden.mst"

    def test_matrix_uses_cache(self):
        direct = run_workload("olden.mst", "BC", scale=0.1)
        out = run_matrix(["olden.mst"], ["BC"], scale=0.1)
        assert out[("olden.mst", "BC")] is direct


class TestDiskProgramCache:
    @pytest.fixture(autouse=True)
    def disk_cache(self, tmp_path):
        runner.set_trace_cache_dir(tmp_path)
        yield tmp_path
        runner.set_trace_cache_dir(None)

    def test_miss_writes_archive(self, disk_cache):
        before = runner.memo_stats()
        get_program("olden.treeadd", seed=1, scale=0.05)
        after = runner.memo_stats()
        assert after["program_misses"] == before["program_misses"] + 1
        assert list(disk_cache.glob("*.npz"))

    def test_fresh_process_simulation_hits_disk(self, disk_cache):
        import numpy as np

        prog = get_program("olden.treeadd", seed=1, scale=0.05)
        clear_caches()  # simulate a new process: memo empty, disk warm
        before = runner.memo_stats()
        again = get_program("olden.treeadd", seed=1, scale=0.05)
        after = runner.memo_stats()
        assert after["program_disk_hits"] == before["program_disk_hits"] + 1
        assert after["program_misses"] == before["program_misses"]
        assert np.array_equal(again.trace.pc, prog.trace.pc)
        assert np.array_equal(again.trace.value, prog.trace.value)
        assert again.final_image == prog.final_image

    def test_disk_loaded_program_simulates_identically(self, disk_cache):
        fresh = run_workload("olden.treeadd", "CPP", scale=0.05)
        clear_caches()
        from_disk = run_workload("olden.treeadd", "CPP", scale=0.05)
        assert from_disk.as_dict() == fresh.as_dict()

    def test_generator_version_partitions_cache(self, disk_cache, monkeypatch):
        get_program("olden.treeadd", seed=1, scale=0.05)
        clear_caches()
        monkeypatch.setattr(runner, "GENERATOR_VERSION", "test-bump")
        before = runner.memo_stats()
        get_program("olden.treeadd", seed=1, scale=0.05)
        after = runner.memo_stats()
        assert after["program_misses"] == before["program_misses"] + 1

    def test_corrupt_archive_falls_back_to_generation(self, disk_cache):
        get_program("olden.treeadd", seed=1, scale=0.05)
        clear_caches()
        for path in disk_cache.glob("*.npz"):
            path.write_bytes(b"not an archive")
        prog = get_program("olden.treeadd", seed=1, scale=0.05)
        assert prog.n_instructions > 0

    def test_disabled_by_default(self, tmp_path):
        runner.set_trace_cache_dir(None)
        get_program("olden.treeadd", seed=2, scale=0.05)
        assert not list(tmp_path.glob("*.npz"))
