"""Write-ahead journal: the store's crash-commit protocol.

A store write is only acknowledged after a two-step commit::

    1. stage   — the complete record is written (atomically, fsynced)
                 to ``journal/<digest>.wal``;
    2. publish — the record is written (atomically, fsynced) to its
                 object path and the journal entry is cleared.

Because both steps are individually atomic, a crash at *any* point
leaves one of exactly three on-disk states, all recoverable:

* nothing staged — the write never happened; the old state stands;
* staged but not published — recovery replays the journal entry into
  the object tree (the write wins);
* published but not cleared — recovery verifies the object and drops
  the stale journal entry (the write won already).

A torn *journal* entry (the crash hit the journal's own temp-write) is
impossible by the atomic-write contract; a journal entry that fails
verification anyway (disk corruption after the fact) is quarantined by
:meth:`repro.store.cas.ResultStore.recover`, never replayed.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.utils.atomic import atomic_write_text

__all__ = ["Journal"]

_WAL_SUFFIX = ".wal"


class Journal:
    """The on-disk write-ahead journal of one :class:`ResultStore`."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_of(self, digest: str) -> Path:
        """Journal entry path for one record digest."""
        return self.root / f"{digest}{_WAL_SUFFIX}"

    def stage(self, digest: str, record_text: str) -> Path:
        """Durably stage a record before it is published (step 1)."""
        return atomic_write_text(self.path_of(digest), record_text)

    def clear(self, digest: str) -> None:
        """Drop a journal entry once its record is published (step 2)."""
        self.path_of(digest).unlink(missing_ok=True)

    def pending(self) -> list[Path]:
        """All staged-but-not-cleared entries (oldest first)."""
        if not self.root.is_dir():
            return []
        return sorted(
            p for p in self.root.iterdir() if p.suffix == _WAL_SUFFIX
        )

    def read(self, path: Path) -> dict | None:
        """Parse one journal entry; None when unreadable/malformed."""
        try:
            record = json.loads(path.read_text("utf-8"))
        except (OSError, ValueError):
            return None
        return record if isinstance(record, dict) else None
