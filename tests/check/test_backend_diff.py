"""Backend lockstep differential checks (fast vs reference).

The bit-identicality contract is the load-bearing guarantee of the
backend layer: every leaf of the lossless result dict — cycles, cache
counters, bus word breakdowns, the Welford accumulators behind the
figures — must match between ``fast`` and ``reference``. These tests
exercise the comparison machinery itself, run randomized programs and a
full generated workload through both backends, and re-run a cell with
``REPRO_CHECK=1`` runtime audits armed under ``fast``.
"""

import pytest

from repro.check.diff import BackendDiffRunner, BackendDivergence, _dict_diff, random_program
from repro.check.runtime import set_runtime_checks


class TestDictDiff:
    def test_identical_dicts_have_no_diff(self):
        d = {"a": 1, "b": {"c": [1, 2.5, "x"]}}
        assert _dict_diff(d, dict(d)) is None

    def test_first_differing_leaf_is_reported_with_path(self):
        a = {"core": {"cycles": 100, "m2": 3.0}}
        b = {"core": {"cycles": 100, "m2": 3.0000000001}}
        path, va, vb = _dict_diff(a, b)
        assert path == "core.m2"
        assert (va, vb) == (3.0, 3.0000000001)

    def test_missing_key_is_reported_as_absent(self):
        found = _dict_diff({"a": 1}, {})
        assert found is not None and "<absent>" in map(str, found[1:])

    def test_list_length_mismatch_diffs(self):
        assert _dict_diff({"a": [1, 2]}, {"a": [1]}) is not None

    def test_list_element_paths_are_indexed(self):
        path, _, _ = _dict_diff({"a": [1, 2]}, {"a": [1, 3]})
        assert path == "a[1]"


class TestBackendDivergence:
    def test_describe_names_both_backends_and_the_path(self):
        div = BackendDivergence(
            "CPP", "rand-7", "core.m2", "reference", "fast", 1.0, 2.0
        )
        text = div.describe()
        assert "CPP" in text and "core.m2" in text
        assert "reference" in text and "fast" in text


class TestRandomProgram:
    def test_deterministic_per_seed(self):
        a = random_program(3, n_ops=50)
        b = random_program(3, n_ops=50)
        assert len(a.trace) == len(b.trace)
        assert a.trace.addr.tolist() == b.trace.addr.tolist()

    def test_distinct_seeds_differ(self):
        a = random_program(0, n_ops=50)
        b = random_program(1, n_ops=50)
        assert a.trace.addr.tolist() != b.trace.addr.tolist()


@pytest.mark.parametrize("config", ["BC", "CPP"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_lockstep_random_programs(config, seed):
    runner = BackendDiffRunner(config)
    divergence = runner.run(random_program(seed))
    assert divergence is None, divergence.describe()


def test_lockstep_full_workload():
    from repro.workloads import get_workload

    program = get_workload("olden.treeadd").generate(seed=1, scale=0.05)
    for config in ("BC", "CPP"):
        divergence = BackendDiffRunner(config).run(program)
        assert divergence is None, divergence.describe()


def test_lockstep_under_scaled_misses():
    divergence = BackendDiffRunner("CPP", miss_scale=0.5).run(random_program(4))
    assert divergence is None, divergence.describe()


def test_fast_backend_passes_runtime_invariant_audits():
    """REPRO_CHECK=1 semantics hold under the fast backend's hot loop."""
    from repro.sim.config import SimConfig
    from repro.sim.machine import Machine

    set_runtime_checks(True)
    try:
        program = random_program(5, n_ops=300)
        config = SimConfig(cache_config="CPP", backend="fast")
        result = Machine(config).run(program)
        assert result.cycles > 0
    finally:
        set_runtime_checks(False)
