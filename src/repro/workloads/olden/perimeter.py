"""olden.perimeter — perimeter of a region in a quadtree-coded image.

The original builds a quadtree over a binary image of a disk and computes
the region's perimeter by walking leaves and probing same-size neighbours.
Nodes are ``{color, level, child[4]}``; internal nodes are gray, leaves
black or white.

Behaviour captured: deep 4-way pointer fan-out (allocation in preorder →
prefix-local child pointers), a small enum ``color`` field tested by a
data-dependent branch at every node, and a leaf-heavy recursive walk.
"""

from __future__ import annotations

from repro.workloads.base import Program, ProgramBuilder, scaled

__all__ = ["build", "DEFAULT_DEPTH"]

DEFAULT_DEPTH = 7  #: quadtree levels; 4**7 = 16384 max leaves

_WHITE, _BLACK, _GRAY = 0, 1, 2
_COLOR = 0
_LEVEL = 4
_CHILD = 8  # four child pointers at 8, 12, 16, 20
_NODE_BYTES = 24


def _inside_disk(x: float, y: float) -> bool:
    return (x - 0.5) ** 2 + (y - 0.5) ** 2 <= 0.25


def _region_tag(x0: float, y0: float) -> int:
    """A packed fixed-point region descriptor sharing the level word's
    high bits — large values modeling the original's spatial metadata."""
    return ((int(x0 * 4096) & 0x7FF) << 20) | ((int(y0 * 4096) & 0x7FF) << 9)


def _region_color(x0: float, y0: float, size: float) -> int:
    """Color of a square region of the image: uniform or mixed (gray)."""
    corners = [
        _inside_disk(x0, y0),
        _inside_disk(x0 + size, y0),
        _inside_disk(x0, y0 + size),
        _inside_disk(x0 + size, y0 + size),
        _inside_disk(x0 + size / 2, y0 + size / 2),
    ]
    if all(corners):
        return _BLACK
    if not any(corners):
        return _WHITE
    return _GRAY


def _build_quadtree(
    pb: ProgramBuilder,
    x0: float,
    y0: float,
    size: float,
    level: int,
    parent_reg: str,
) -> int:
    addr = pb.malloc(_NODE_BYTES)
    color = _region_color(x0, y0, size)
    if level == 0 and color == _GRAY:
        # Bottom out: majority color at the finest resolution.
        color = _BLACK if _inside_disk(x0 + size / 2, y0 + size / 2) else _WHITE
    pb.store(addr + _LEVEL, level | _region_tag(x0, y0), base=parent_reg,
             label="pm.init.level")
    if color == _GRAY:
        pb.store(addr + _COLOR, _GRAY, base=parent_reg, label="pm.init.color")
        pb.branch("pm.build.split", taken=True)
        half = size / 2
        quads = ((x0, y0), (x0 + half, y0), (x0, y0 + half), (x0 + half, y0 + half))
        for k, (qx, qy) in enumerate(quads):
            pb.call_overhead("pm.build", 1)
            child = _build_quadtree(pb, qx, qy, half, level - 1, parent_reg)
            pb.store(addr + _CHILD + 4 * k, child, base=parent_reg, label="pm.init.child")
    else:
        pb.store(addr + _COLOR, color, base=parent_reg, label="pm.init.color")
        pb.branch("pm.build.split", taken=False)
        for k in range(4):
            pb.store(addr + _CHILD + 4 * k, 0, base=parent_reg, label="pm.init.child0")
    return addr


def _perimeter(pb: ProgramBuilder, node: int, node_reg: str, size: int, d: int) -> int:
    """Walk the tree; black leaves contribute 4*size (adjacency handled by
    the original's neighbour probes; we model their cost with the level
    loads and comparisons along the walk)."""
    color = pb.load(node + _COLOR, f"c{d}", base=node_reg, label="pm.walk.ldc")
    if pb.if_("pm.walk.gray", color == _GRAY, srcs=(f"c{d}",)):
        total = 0
        for k in range(4):
            child = pb.load(
                node + _CHILD + 4 * k, f"ch{d}", base=node_reg, label="pm.walk.ldch"
            )
            pb.call_overhead("pm.walk", 1)
            total += _perimeter(pb, child, f"ch{d}", size // 2, d + 1)
            pb.op("peri", ("peri",), label="pm.walk.acc")
        return total
    if pb.if_("pm.walk.black", color == _BLACK, srcs=(f"c{d}",)):
        level = pb.load(node + _LEVEL, f"lv{d}", base=node_reg, label="pm.walk.ldlv")
        pb.op("peri", ("peri", f"lv{d}"), label="pm.walk.addp")
        return 4 * max(size, 1)
    return 0


def build(seed: int = 1, scale: float = 1.0) -> Program:
    """Generate the perimeter program; *scale* adjusts tree depth."""
    depth = DEFAULT_DEPTH
    target_leaves = scaled(4**DEFAULT_DEPTH, scale)
    while 4**depth > target_leaves and depth > 2:
        depth -= 1
    while 4 ** (depth + 1) <= target_leaves:
        depth += 1

    pb = ProgramBuilder("olden.perimeter", seed)
    pb.op("root", (), label="pm.entry")
    root = _build_quadtree(pb, 0.0, 0.0, 1.0, depth, "root")
    pb.op("rootp", (), label="pm.rootp")
    peri = _perimeter(pb, root, "rootp", 1 << depth, 0)
    out = pb.static_array(1)
    pb.store(out, peri, src="peri", label="pm.result")
    return pb.build(
        description="quadtree perimeter (4-way pointer fan-out, enum branches)",
        params={"depth": depth, "perimeter": peri},
    )
