"""spec2000.197.parser — dictionary lookups and linkage construction.

(Extra workload: registered under the "extra" group, beyond the paper's
fourteen.)

Models the link-grammar parser's memory behaviour: a dictionary of words
held in a binary search tree of heap records (pointer chase per lookup),
per-sentence chains of "disjunct" records allocated and freed with a
free-list allocator (churn, like health), and a dynamic-programming
table of small counts swept per word pair.
"""

from __future__ import annotations

from repro.workloads.base import Program, ProgramBuilder, scaled

__all__ = ["build", "DEFAULT_WORDS", "DEFAULT_SENTENCES"]

DEFAULT_WORDS = 600  #: dictionary size
DEFAULT_SENTENCES = 18
_SENTENCE_LEN = 9

_W_KEY = 0
_W_LEFT = 4
_W_RIGHT = 8
_W_DEFS = 12
_W_BYTES = 16

_D_COST = 0
_D_NEXT = 4
_D_BYTES = 8


def build(seed: int = 1, scale: float = 1.0) -> Program:
    """Generate the parser program; *scale* adjusts sentence count."""
    n_words = DEFAULT_WORDS
    n_sentences = scaled(DEFAULT_SENTENCES, scale, minimum=1)

    pb = ProgramBuilder("spec2000.197.parser", seed, allocator="freelist")
    pb.op("g", (), label="ps.entry")

    # ---- dictionary: binary search tree keyed by word id ---------------------
    keys = sorted(pb.rng.choice(1 << 14, size=n_words, replace=False).tolist())

    def insert_order(lo: int, hi: int, out: list[int]) -> None:
        if lo > hi:
            return
        mid = (lo + hi) // 2
        out.append(mid)
        insert_order(lo, mid - 1, out)
        insert_order(mid + 1, hi, out)

    order: list[int] = []
    insert_order(0, n_words - 1, order)
    nodes: dict[int, int] = {}
    root_key = keys[order[0]]
    for idx in order:
        key = keys[idx]
        addr = pb.malloc(_W_BYTES)
        nodes[key] = addr
        pb.store(addr + _W_KEY, key, base="g", label="ps.dict.key")
        pb.store(addr + _W_LEFT, 0, base="g", label="ps.dict.l")
        pb.store(addr + _W_RIGHT, 0, base="g", label="ps.dict.r")
        pb.store(addr + _W_DEFS, int(pb.rng.integers(1, 5)), base="g",
                 label="ps.dict.defs")
        if key != root_key:
            # Walk from the root to the parent slot (BST insert).
            cur = root_key
            while True:
                pb.branch("ps.dict.walk", taken=True, srcs=("wp",))
                cur_node = nodes[cur]
                pb.load(cur_node + _W_KEY, "wk", base="wp", label="ps.dict.ldk")
                side = _W_LEFT if key < cur else _W_RIGHT
                child = pb.image.read_word(cur_node + side)
                pb.load(cur_node + side, "wp", base="wp", label="ps.dict.ldc")
                if child == 0:
                    pb.store(cur_node + side, addr, base="wp", label="ps.dict.link")
                    break
                cur = pb.image.read_word(child + _W_KEY)
            pb.branch("ps.dict.walk", taken=False, srcs=("wp",))

    def lookup(key: int) -> int:
        """BST search emitting the compare/descend chain."""
        cur = root_key
        pb.op("wp", (), label="ps.lookup.start")
        while True:
            cur_node = nodes[cur]
            k = pb.load(cur_node + _W_KEY, "wk", base="wp", label="ps.lk.ldk")
            if pb.if_("ps.lk.found", k == key, srcs=("wk",)):
                return cur_node
            side = _W_LEFT if key < k else _W_RIGHT
            pb.load(cur_node + side, "wp", base="wp", label="ps.lk.desc")
            cur = pb.image.read_word(pb.image.read_word(cur_node + side) + _W_KEY)

    # ---- parse sentences -------------------------------------------------------
    counts = pb.static_array(_SENTENCE_LEN * _SENTENCE_LEN)
    parsed = 0
    for _s in pb.for_range("ps.sentences", n_sentences, cond_srcs=("g",)):
        sentence = [int(pb.rng.choice(keys)) for _ in range(_SENTENCE_LEN)]
        # Look up each word; allocate its disjunct chain.
        chains: list[int] = []
        for key in sentence:
            node = lookup(key)
            n_defs = pb.image.read_word(node + _W_DEFS)
            prev = 0
            for _d in range(n_defs):
                dj = pb.malloc(_D_BYTES)
                pb.store(dj + _D_COST, pb.rand_small(1, 100), base="wp",
                         label="ps.dj.cost")
                pb.store(dj + _D_NEXT, prev, base="wp", label="ps.dj.next")
                prev = dj
            chains.append(prev)
        # DP count table over word pairs (small values).
        for i in range(_SENTENCE_LEN):
            for j in range(i + 1, _SENTENCE_LEN):
                idx = i * _SENTENCE_LEN + j
                c = pb.load(counts + 4 * idx, "c", base="g", label="ps.dp.ld")
                pb.op("c", ("c",), label="ps.dp.inc")
                pb.store(counts + 4 * idx, (c + 1) & 0x3FFF, base="g", src="c",
                         label="ps.dp.st")
        # Free the disjunct chains (allocation churn).
        for head in chains:
            cur = head
            while cur:
                pb.branch("ps.free.loop", taken=True, srcs=("wp",))
                nxt = pb.image.read_word(cur + _D_NEXT)
                pb.load(cur + _D_NEXT, "wp", base="wp", label="ps.free.ldn")
                pb.free(cur)
                cur = nxt
            pb.branch("ps.free.loop", taken=False, srcs=("wp",))
        parsed += 1

    out = pb.static_array(1)
    pb.store(out, parsed, src="c", label="ps.result")
    return pb.build(
        description="BST dictionary lookups + disjunct churn + DP counts",
        params={"words": n_words, "sentences": n_sentences},
    )
