"""Fixtures for the result-store tests (helpers live in store_helpers)."""

from __future__ import annotations

import pytest

from store_helpers import identity_store


@pytest.fixture
def store(tmp_path):
    return identity_store(tmp_path / "store")
