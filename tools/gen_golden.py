"""Regenerate the golden equivalence fixtures.

Runs a small (config x workload) matrix through the simulator and
serializes every :class:`SimResult` losslessly (via
``result_to_full_dict``) into ``tests/golden/golden_cells.json``. The
companion test ``tests/integration/test_golden_equivalence.py`` asserts
that the current code reproduces every recorded cell bit for bit —
the safety net that lets hot-path rewrites claim "identical output".

Usage::

    PYTHONPATH=src python tools/gen_golden.py [--out PATH]

Only regenerate the fixture when an *intentional* behaviour change has
been reviewed; a perf-only PR must leave it untouched.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.sim.config import SimConfig  # noqa: E402
from repro.sim.results_io import result_to_full_dict  # noqa: E402
from repro.sim.runner import run_workload  # noqa: E402
from repro.utils.atomic import atomic_write_text  # noqa: E402

#: Every hierarchy builder, including the non-paper extras.
CONFIGS = ("BC", "BCC", "HAC", "BCP", "CPP", "BSP", "BVC")
#: Small but structurally diverse workloads (pointer chasing, list
#: interpretation, tree allocation) — enough to exercise every cache
#: path without making the fixture slow to regenerate.
WORKLOADS = ("olden.treeadd", "spec95.130.li", "olden.health")
SEED = 1
SCALE = 0.05
#: One Figure 14 style cell (scaled miss penalties) per workload.
MISS_SCALE_CONFIG = "CPP"
MISS_SCALE = 0.5

DEFAULT_OUT = REPO / "tests" / "golden" / "golden_cells.json"


def cell_key(workload: str, config: str, miss_scale: float) -> str:
    return f"{workload}|{config}|seed{SEED}|scale{SCALE:g}|x{miss_scale:g}"


def generate_cells() -> dict[str, dict]:
    """Simulate every golden cell; returns {cell_key: full_result_dict}."""
    cells: dict[str, dict] = {}
    for workload in WORKLOADS:
        for config in CONFIGS:
            result = run_workload(
                workload, config, seed=SEED, scale=SCALE, use_cache=False
            )
            cells[cell_key(workload, config, 1.0)] = result_to_full_dict(result)
        scaled = SimConfig(cache_config=MISS_SCALE_CONFIG).with_miss_scale(
            MISS_SCALE
        )
        result = run_workload(
            workload, scaled, seed=SEED, scale=SCALE, use_cache=False
        )
        cells[cell_key(workload, MISS_SCALE_CONFIG, MISS_SCALE)] = (
            result_to_full_dict(result)
        )
    return cells


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    cells = generate_cells()
    payload = {
        "_meta": {
            "seed": SEED,
            "scale": SCALE,
            "configs": list(CONFIGS),
            "workloads": list(WORKLOADS),
            "miss_scale_cells": [MISS_SCALE_CONFIG, MISS_SCALE],
            "note": (
                "Lossless SimResult snapshots (result_to_full_dict). "
                "Regenerate only on reviewed behaviour changes: "
                "PYTHONPATH=src python tools/gen_golden.py"
            ),
        },
        "cells": cells,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(args.out, json.dumps(payload, indent=1, sort_keys=True))
    print(f"wrote {len(cells)} golden cells to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
