"""Store lifecycle GC: evict superseded code-version records.

The store is content-addressed by *key + code version*, so every code
change (package version, generator stamp, backend, codec) starts a new
record generation and strands the old one: still verifying, never again
addressed. Those records are pure disk liability — this module reclaims
them under an explicit protection policy:

* **Current generation is untouchable** — records whose ``code_version``
  equals the store's live one are never candidates, whatever the budget.
* **Pins are refcounts** — ``pins.json`` maps code versions to a pin
  count (``repro.store pin``/``--remove``); any version with a positive
  count is protected, so a long bisection or an A/B comparison can hold
  two generations alive deliberately.
* **Byte-budget watermark** — with no budget, every unprotected record
  goes. With ``budget_bytes``, nothing happens until the store exceeds
  it; then superseded records are evicted oldest-generation-first down
  to the low watermark (default 80 % of budget), and a problem is
  reported if the *protected* bytes alone still exceed the budget.

Every eviction appends to ``gc-ledger.jsonl`` (digest, version, bytes),
so "where did my record go" always has an answer. The service runs
:func:`gc_store` as a background task; ``python -m repro.store gc``
drives it by hand.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import span as _span
from repro.obs.metrics import REGISTRY
from repro.store.cas import ResultStore

__all__ = [
    "GcReport",
    "gc_ledger_entries",
    "gc_store",
    "load_pins",
    "pin_version",
    "unpin_version",
]

PINS_FILENAME = "pins.json"
GC_LEDGER_FILENAME = "gc-ledger.jsonl"

#: Fraction of the byte budget a triggered pass drains down to.
DEFAULT_LOW_WATERMARK = 0.8


@dataclass
class GcReport:
    """What one :func:`gc_store` pass saw, and what it reclaimed."""

    scanned: int = 0
    bytes_total: int = 0  #: object bytes before the pass
    candidates: int = 0  #: superseded, unpinned records
    candidate_bytes: int = 0
    evicted: int = 0
    evicted_bytes: int = 0
    budget_bytes: int | None = None
    dry_run: bool = False
    #: per-code-version: records, bytes, current, pins
    versions: dict = field(default_factory=dict)
    problems: list[str] = field(default_factory=list)

    @property
    def bytes_after(self) -> int:
        return self.bytes_total - self.evicted_bytes

    def as_dict(self) -> dict:
        """JSON-ready form (the ``GC-SUMMARY`` payload)."""
        return {
            "scanned": self.scanned,
            "bytes_total": self.bytes_total,
            "candidates": self.candidates,
            "candidate_bytes": self.candidate_bytes,
            "evicted": self.evicted,
            "evicted_bytes": self.evicted_bytes,
            "bytes_after": self.bytes_after,
            "budget_bytes": self.budget_bytes,
            "dry_run": self.dry_run,
            "versions": dict(self.versions),
            "problems": list(self.problems),
        }


# -- pins (version refcounts) ------------------------------------------------


def _pins_path(root: str | Path) -> Path:
    return Path(root) / PINS_FILENAME


def load_pins(root: str | Path) -> dict[str, int]:
    """Code version → pin count (positive counts protect from GC)."""
    path = _pins_path(root)
    try:
        data = json.loads(path.read_text("utf-8"))
    except (OSError, ValueError):
        return {}
    versions = data.get("versions", {}) if isinstance(data, dict) else {}
    out = {}
    for version, count in versions.items():
        try:
            count = int(count)
        except (TypeError, ValueError):
            continue
        if count > 0:
            out[str(version)] = count
    return out


def _save_pins(root: str | Path, pins: dict[str, int]) -> None:
    from repro.utils.atomic import atomic_write_text

    atomic_write_text(
        _pins_path(root),
        json.dumps({"versions": pins}, sort_keys=True, indent=2),
    )


def pin_version(root: str | Path, version: str) -> dict[str, int]:
    """Increment *version*'s pin refcount; returns the live pin map."""
    pins = load_pins(root)
    pins[version] = pins.get(version, 0) + 1
    _save_pins(root, pins)
    return pins


def unpin_version(root: str | Path, version: str) -> dict[str, int]:
    """Decrement *version*'s pin refcount (dropped at zero)."""
    pins = load_pins(root)
    count = pins.get(version, 0) - 1
    if count > 0:
        pins[version] = count
    else:
        pins.pop(version, None)
    _save_pins(root, pins)
    return pins


# -- the collector -----------------------------------------------------------


def _scan(store: ResultStore, report: GcReport) -> list[dict]:
    """Inventory every object: path, size, mtime, code_version."""
    inventory = []
    for path, digest in store.records():
        try:
            stat = path.stat()
            record = json.loads(path.read_text("utf-8"))
            version = str(record.get("code_version", "?"))
        except (OSError, ValueError) as exc:
            # fsck owns corruption; GC only refuses to touch what it
            # cannot attribute to a generation.
            report.problems.append(f"{path.name}: unreadable ({exc})")
            continue
        report.scanned += 1
        report.bytes_total += stat.st_size
        inventory.append(
            {
                "path": path,
                "digest": digest,
                "bytes": stat.st_size,
                "mtime": stat.st_mtime,
                "version": version,
            }
        )
    return inventory


def gc_store(
    store: ResultStore,
    *,
    budget_bytes: int | None = None,
    dry_run: bool = False,
    low_watermark: float = DEFAULT_LOW_WATERMARK,
) -> GcReport:
    """One GC pass over *store* (see module docstring for the policy)."""
    report = GcReport(budget_bytes=budget_bytes, dry_run=dry_run)
    with _span.span("store.gc", dry_run=dry_run):
        pins = load_pins(store.root)
        protected = {store.code_version} | set(pins)
        inventory = _scan(store, report)

        by_version: dict[str, list[dict]] = {}
        for item in inventory:
            by_version.setdefault(item["version"], []).append(item)
        for version, items in sorted(by_version.items()):
            report.versions[version] = {
                "records": len(items),
                "bytes": sum(i["bytes"] for i in items),
                "current": version == store.code_version,
                "pins": pins.get(version, 0),
            }

        candidates = [i for i in inventory if i["version"] not in protected]
        # Oldest generation first: order versions by their newest record,
        # so the generation most recently written is the last to go.
        freshness = {
            version: max(i["mtime"] for i in items)
            for version, items in by_version.items()
        }
        candidates.sort(key=lambda i: (freshness[i["version"]], i["digest"]))
        report.candidates = len(candidates)
        report.candidate_bytes = sum(i["bytes"] for i in candidates)

        if budget_bytes is None:
            to_evict = candidates
        elif report.bytes_total <= budget_bytes:
            to_evict = []
        else:
            target = int(budget_bytes * low_watermark)
            to_evict = []
            remaining = report.bytes_total
            for item in candidates:
                if remaining <= target:
                    break
                to_evict.append(item)
                remaining -= item["bytes"]
            if remaining > budget_bytes:
                protected_bytes = report.bytes_total - report.candidate_bytes
                report.problems.append(
                    f"still {remaining} bytes after evicting every "
                    f"candidate (protected generations hold "
                    f"{protected_bytes}; budget {budget_bytes}) — unpin a "
                    f"version or raise the budget"
                )

        for item in to_evict:
            if not dry_run:
                try:
                    item["path"].unlink()
                except OSError as exc:
                    report.problems.append(
                        f"{item['path'].name}: eviction failed ({exc})"
                    )
                    continue
                _ledger_append(
                    store.root,
                    {
                        "digest": item["digest"],
                        "code_version": item["version"],
                        "bytes": item["bytes"],
                        "time": time.time(),
                    },
                )
            report.evicted += 1
            report.evicted_bytes += item["bytes"]
        if report.evicted and not dry_run:
            REGISTRY.inc("store.gc_evicted", amount=report.evicted)
            REGISTRY.inc("store.gc_evicted_bytes", amount=report.evicted_bytes)
    return report


def _ledger_append(root: Path, entry: dict) -> None:
    try:
        with (root / GC_LEDGER_FILENAME).open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
    except OSError:
        pass  # the eviction already happened; the ledger is best effort


def gc_ledger_entries(root: str | Path) -> list[dict]:
    """Parsed gc-ledger lines (oldest first)."""
    path = Path(root) / GC_LEDGER_FILENAME
    if not path.exists():
        return []
    out = []
    for line in path.read_text("utf-8").splitlines():
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            out.append(record)
    return out
