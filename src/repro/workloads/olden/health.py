"""olden.health — hierarchical health-care simulation.

The original models a 4-ary tree of villages, each with linked lists of
patients; every timestep patients arrive (malloc), are assessed, possibly
transferred toward the root hospital, and eventually cured (free). It is
the allocation-churn benchmark of the suite: the free-list heap fragments
over time, which *degrades* pointer-prefix compressibility — a behaviour
the paper's per-benchmark variation reflects, so we keep it.

Structures:

* village: ``{id, hosp_free, child[4], waiting_head}``  (7 words)
* patient: ``{id, time, hosp_visits, next}``            (4 words)
"""

from __future__ import annotations

from repro.workloads.base import Program, ProgramBuilder, scaled

__all__ = ["build", "DEFAULT_LEVELS", "DEFAULT_STEPS"]

DEFAULT_LEVELS = 4  #: village tree levels (4-ary): 85 villages
DEFAULT_STEPS = 20  #: simulated timesteps
_CURE_TIME = 10  #: treatments before a patient is cured (sets list length)

_V_ID = 0
_V_FREE = 4
_V_CHILD = 8  # 4 children at 8..20
_V_WAIT = 24
_V_BYTES = 28

_P_ID = 0
_P_TIME = 4
_P_VISITS = 8
_P_DATA = 12  #: personal record handle — a large, incompressible value
_P_NEXT = 16
_P_BYTES = 20


def _build_villages(pb: ProgramBuilder, level: int, vid: int, reg: str) -> int:
    addr = pb.malloc(_V_BYTES)
    pb.store(addr + _V_ID, vid & 0x3FFF, base=reg, label="hl.init.id")
    pb.store(addr + _V_FREE, 3, base=reg, label="hl.init.free")
    pb.store(addr + _V_WAIT, 0, base=reg, label="hl.init.wait")
    for k in range(4):
        if level > 1:
            pb.call_overhead("hl.build", 1)
            child = _build_villages(pb, level - 1, vid * 4 + k + 1, reg)
        else:
            child = 0
        pb.store(addr + _V_CHILD + 4 * k, child, base=reg, label="hl.init.child")
        pb.branch("hl.build.more", taken=level > 1)
    return addr


class _Sim:
    """Generation-time mirror of the village tree (to drive the kernel)."""

    def __init__(self) -> None:
        self.villages: list[int] = []  # addresses, preorder
        self.waiting: dict[int, list[int]] = {}  # village addr -> patient addrs


def _collect(pb: ProgramBuilder, sim: _Sim, addr: int, reg: str) -> None:
    sim.villages.append(addr)
    sim.waiting[addr] = []
    for k in range(4):
        child = pb.image.read_word(addr + _V_CHILD + 4 * k)
        if child:
            _collect(pb, sim, child, reg)


def _step(pb: ProgramBuilder, sim: _Sim, step: int, next_pid: int) -> int:
    for v_addr in sim.villages:
        pb.op("vptr", (), label="hl.step.vptr")
        # Arrivals: a new patient joins this village's waiting list.
        arrive = (step + v_addr // _V_BYTES) % 4 != 0  # busy clinics: arrivals most steps
        if pb.if_("hl.step.arrive", arrive, srcs=("vptr",)):
            p = pb.malloc(_P_BYTES)
            pb.store(p + _P_ID, next_pid & 0x3FFF, base="vptr", label="hl.new.id")
            pb.store(p + _P_TIME, 0, base="vptr", label="hl.new.time")
            pb.store(p + _P_VISITS, 0, base="vptr", label="hl.new.visits")
            pb.store(p + _P_DATA, pb.rand_large(), base="vptr", label="hl.new.data")
            next_pid += 1
            head = pb.load(v_addr + _V_WAIT, "head", base="vptr", label="hl.new.ldh")
            pb.store(p + _P_NEXT, head, base="vptr", src="head", label="hl.new.link")
            pb.store(v_addr + _V_WAIT, p, base="vptr", label="hl.new.sth")
            sim.waiting[v_addr].insert(0, p)

        # Treat: walk the waiting list, bump times, cure the done ones.
        plist = sim.waiting[v_addr]
        cur = pb.load(v_addr + _V_WAIT, "p", base="vptr", label="hl.walk.ldh")
        survivors: list[int] = []
        idx = 0
        while pb.while_cond("hl.walk.loop", cur != 0, srcs=("p",)):
            t = pb.load(cur + _P_TIME, "t", base="p", label="hl.walk.ldt")
            pb.op("t", ("t",), label="hl.walk.inct")
            pb.store(cur + _P_TIME, t + 1, base="p", src="t", label="hl.walk.stt")
            pb.load(cur + _P_DATA, "pd", base="p", label="hl.walk.lddata")
            nxt = pb.load(cur + _P_NEXT, "pn", base="p", label="hl.walk.ldn")
            cured = t + 1 >= _CURE_TIME
            if pb.if_("hl.walk.cured", cured, srcs=("t",)):
                pb.free(cur)
            else:
                survivors.append(cur)
            cur = nxt
            pb.op("p", ("pn",), label="hl.walk.adv")
            idx += 1

        # Relink the survivor list (the original unlinks in place).
        prev_field = v_addr + _V_WAIT
        pb.store(prev_field, survivors[0] if survivors else 0, base="vptr", label="hl.relink.h")
        for i, p in enumerate(survivors):
            nxt = survivors[i + 1] if i + 1 < len(survivors) else 0
            pb.store(p + _P_NEXT, nxt, base="vptr", label="hl.relink.n")
        sim.waiting[v_addr] = survivors
    return next_pid


def build(seed: int = 1, scale: float = 1.0) -> Program:
    """Generate the health program; *scale* adjusts timestep count."""
    levels = DEFAULT_LEVELS
    steps = scaled(DEFAULT_STEPS, scale)

    pb = ProgramBuilder("olden.health", seed, allocator="freelist")
    pb.op("root", (), label="hl.entry")
    root = _build_villages(pb, levels, 0, "root")
    sim = _Sim()
    _collect(pb, sim, root, "root")

    next_pid = 1
    for step in pb.for_range("hl.main", steps, cond_srcs=("vptr",)):
        next_pid = _step(pb, sim, step, next_pid)
    out = pb.static_array(1)
    pb.store(out, next_pid, src="t", label="hl.result")
    return pb.build(
        description="village/patient simulation with malloc/free churn",
        params={"levels": levels, "steps": steps, "patients": next_pid - 1},
    )
