"""Codec golden vectors: exact bit budgets and round-trips at the edges.

Table-driven, mirroring ``test_scheme_boundaries.py``: every cell pins
an encoding the codecs must never drift from — zero lines, all-pointer
lines, incompressible lines, sign-extension min/max analogues, BDI
delta-overflow edges and C-Pack dictionary hits/misses. Bit budgets are
computed by hand from the documented encoding tables.
"""

import pytest

from repro.compression.codecs import (
    CODEC_NAMES,
    DEFAULT_CODEC,
    get_codec,
    require_word_scheme,
)
from repro.compression.codecs.bdi import BDIEncoding, signed_delta
from repro.compression.codecs.fpc import FPCPattern, classify_word
from repro.compression.scheme import PAPER_SCHEME
from repro.errors import ConfigurationError

BASE = 0x1000_0000
N = 16  # words per 64-byte line


def addrs_for(base, n=N):
    return [base + 4 * i for i in range(n)]


def roundtrip(codec, values, base=BASE):
    addrs = addrs_for(base, len(values))
    encoded = codec.compress_line(values, addrs)
    decoded = codec.decompress_line(encoded, addrs)
    assert decoded == [v & 0xFFFFFFFF for v in values]
    pack = codec.pack_line(values, addrs)
    assert encoded.bits == pack.total_bits
    return encoded, pack


ZERO_LINE = [0] * N
POINTER_LINE = addrs_for(BASE)  # every word points into its own line
JUNK_LINE = [0xDEAD_BEE1 + 0x1111_0000 * i for i in range(N)]  # nothing matches
SMALL_LINE = [5] * N


# ---- exact bit budgets, one table per codec --------------------------------

CPP_GOLDEN = [
    # (values, expected_total_bits): compressible words cost 16, literals
    # 32, plus one VC flag per word.
    (ZERO_LINE, N * 16 + N),
    (SMALL_LINE, N * 16 + N),
    (POINTER_LINE, N * 16 + N),
    ([PAPER_SCHEME.small_max] * N, N * 16 + N),
    ([PAPER_SCHEME.small_min & 0xFFFFFFFF] * N, N * 16 + N),
    ([(PAPER_SCHEME.small_max + 1)] * N, N * 32 + N),  # one past the edge
    (JUNK_LINE, N * 32 + N),
]

FPC_GOLDEN = [
    # Zero runs cap at 8 words: 16 zeros = two 6-bit run tokens.
    (ZERO_LINE, 2 * 6),
    ([5] * N, N * 7),  # SE4 max-adjacent
    ([7] * N, N * 7),  # SE4 positive max
    ([8] * N, N * 11),  # one past SE4 → SE8
    ([0x7F] * N, N * 11),  # SE8 positive max
    ([0x80] * N, N * 19),  # one past SE8 → SE16
    ([0xFFFF_FF80] * N, N * 11),  # SE8 negative min
    ([0xFFFF_FF7F] * N, N * 19),  # one past → SE16
    ([0xABAB_ABAB] * N, N * 11),  # repeated bytes
    ([0x7FFF] * N, N * 19),  # SE16 positive max
    ([0x0012_0000] * N, N * 19),  # halfword padded with zero halfword
    ([0x007F_FF80] * N, N * 19),  # two halfwords, each an SE byte
    (JUNK_LINE, N * 35),  # uncompressed literals
    ([0] * 9 + [0x0BAD_BEE1] + [0] * 6, 6 + 6 + 35 + 6),  # split zero run
]

BDI_GOLDEN = [
    (ZERO_LINE, 3),  # tag only
    ([0x2BAD_F00D] * N, 3 + 32),  # repeated value
    ([7 * i for i in range(N)], 3 + 32 + N * 9),  # zero-base 1-byte deltas
    ([0x80] * N, 3 + 32),  # repeated beats base+delta
    ([0x10000 + i for i in range(N)], 3 + 32 + N * 9),  # base + tiny deltas
    ([0x10000 + 0x80 * i for i in range(N)], 3 + 32 + N * 17),  # 2-byte deltas
    ([0x1_0000 * (i + 1) for i in range(N)], 3 + 32 * N),  # deltas overflow
    ([3, 0x4000_0000, 0x4000_007F, 100] + [0] * 12, 3 + 32 + N * 9),  # dual base
]

CPACK_GOLDEN = [
    (ZERO_LINE, N * 2),  # zzzz
    ([0x12] * N, N * 12),  # zzzx
    ([0xDEAD_BEEF] * N, 34 + (N - 1) * 6),  # miss then full matches
    ([0xDEAD_BEEF, 0xDEAD_BE00] + [0] * (N - 2), 34 + 16 + (N - 2) * 2),  # mmmx
    ([0xDEAD_BEEF, 0xDEAD_1234] + [0] * (N - 2), 34 + 24 + (N - 2) * 2),  # mmxx
    (JUNK_LINE, N * 34),  # every word a dictionary miss
]


@pytest.mark.parametrize("values,bits", CPP_GOLDEN)
def test_cpp_golden(values, bits):
    encoded, pack = roundtrip(get_codec("cpp"), values)
    assert encoded.bits == bits


@pytest.mark.parametrize("values,bits", FPC_GOLDEN)
def test_fpc_golden(values, bits):
    encoded, pack = roundtrip(get_codec("fpc"), values)
    assert encoded.bits == bits


@pytest.mark.parametrize("values,bits", BDI_GOLDEN)
def test_bdi_golden(values, bits):
    encoded, pack = roundtrip(get_codec("bdi"), values)
    assert encoded.bits == bits


@pytest.mark.parametrize("values,bits", CPACK_GOLDEN)
def test_cpack_golden(values, bits):
    encoded, pack = roundtrip(get_codec("cpack"), values)
    assert encoded.bits == bits


# ---- degenerate and boundary shapes (all codecs) ---------------------------


@pytest.mark.parametrize("name", CODEC_NAMES)
class TestDegenerate:
    def test_empty_line(self, name):
        codec = get_codec(name)
        addrs = []
        encoded = codec.compress_line([], addrs)
        assert codec.decompress_line(encoded, addrs) == []
        pack = codec.pack_line([], addrs)
        assert encoded.bits == pack.total_bits
        assert pack.ratio == pytest.approx(1.0) or pack.total_bits > 0

    def test_single_word(self, name):
        for v in (0, 1, 0xFFFF_FFFF, 0x8000_0000, 0x7FFF_FFFF):
            roundtrip(get_codec(name), [v])

    def test_never_expands_past_bound(self, name):
        # Worst case per word is bounded: 35 bits (FPC literal+prefix) or
        # 34 (C-Pack) or 32+flags/tags; a line never exceeds 36n+40 bits.
        _, pack = roundtrip(get_codec(name), JUNK_LINE)
        assert pack.total_bits <= 36 * N + 40

    def test_effective_ratio_positive(self, name):
        codec = get_codec(name)
        ratio = codec.effective_ratio(ZERO_LINE, addrs_for(BASE))
        assert ratio > 1.0  # a zero line must win even after overhead
        junk = codec.effective_ratio(JUNK_LINE, addrs_for(BASE))
        assert 0.0 < junk <= 1.0  # overhead makes junk a (bounded) loss

    def test_timing_model_sane(self, name):
        t = get_codec(name).timing
        assert t.compress_cycles >= 0 and t.decompress_cycles >= 0


def test_default_codec_timing_is_hidden():
    # The paper's claim: CPP pays zero cycles either direction.
    t = get_codec(DEFAULT_CODEC).timing
    assert t.compression_hidden and t.decompression_hidden
    assert not get_codec("cpack").timing.decompression_hidden


# ---- BDI specifics: delta overflow and wraparound --------------------------


class TestBDIBoundaries:
    def test_signed_delta_wraparound(self):
        assert signed_delta(0x0000_0005, 0xFFFF_FFF0) == 0x15
        assert signed_delta(0xFFFF_FFF0, 0x0000_0005) == -0x15
        assert signed_delta(0x8000_0000, 0) == -(1 << 31)

    def test_delta_exactly_at_width(self):
        codec = get_codec("bdi")
        base = 0x4000_0000
        ok = [base, base + 0x7F]  # fits 1-byte signed delta
        encoded, _ = roundtrip(codec, ok + [0] * (N - 2))
        assert encoded.tokens[0][0] is BDIEncoding.B4D1
        over = [base, base + 0x80]  # one past → needs 2-byte deltas
        encoded, _ = roundtrip(codec, over + [0] * (N - 2))
        assert encoded.tokens[0][0] is BDIEncoding.B4D2

    def test_wraparound_line_compresses(self):
        # Base near 2^32, neighbours across the wrap: must not overflow.
        vals = [0xFFFF_FFF0, 0xFFFF_FFFF, 0x0000_0005, 0xFFFF_FFA0] * 4
        encoded, _ = roundtrip(get_codec("bdi"), vals)
        assert encoded.tokens[0][0] is BDIEncoding.B4D1


# ---- C-Pack specifics: dictionary discipline -------------------------------


class TestCPackBoundaries:
    def test_dictionary_miss_falls_back_to_literal(self):
        codec = get_codec("cpack")
        encoded, _ = roundtrip(codec, JUNK_LINE)
        assert all(t[0].name == "XXXX" for t in encoded.tokens)

    def test_zzzx_words_not_pushed(self):
        # A zzzx word must not enter the dictionary: a later identical
        # word is re-coded zzzx (12 bits), not as a 6-bit mmmm hit.
        codec = get_codec("cpack")
        encoded, _ = roundtrip(codec, [0x12, 0x12] + [0] * (N - 2))
        assert [t[0].name for t in encoded.tokens[:2]] == ["ZZZX", "ZZZX"]

    def test_fifo_eviction_after_capacity(self):
        # 17th distinct word evicts the first; matching it afterwards
        # must miss (the FIFO forgot it) — decoder must still agree.
        codec = get_codec("cpack")
        distinct = [0x1111_0000 + 0x0101_0101 * i for i in range(17)]
        vals = distinct + [distinct[0]]
        encoded, _ = roundtrip(codec, vals, base=BASE)
        assert encoded.tokens[-1][0].name == "XXXX"


# ---- FPC specifics: pattern classification at the edges --------------------


@pytest.mark.parametrize(
    "value,pattern",
    [
        (0, FPCPattern.ZERO_RUN),
        (7, FPCPattern.SE4),
        (8, FPCPattern.SE8),
        (0xFFFF_FFF8, FPCPattern.SE4),
        (0xFFFF_FFF7, FPCPattern.SE8),
        (0x7F, FPCPattern.SE8),
        (0x80, FPCPattern.SE16),
        (0xFFFF_FF80, FPCPattern.SE8),
        (0xFFFF_FF7F, FPCPattern.SE16),
        (0xABAB_ABAB, FPCPattern.REP8),
        (0x7FFF, FPCPattern.SE16),
        (0x8000, FPCPattern.UNCOMP),  # low-half sign bit: no pattern fits
        (0x0012_0000, FPCPattern.HI16),
        (0x007F_FF80, FPCPattern.TWO_SE8),
        (0x1234_5678, FPCPattern.UNCOMP),
    ],
)
def test_fpc_classification_edges(value, pattern):
    assert classify_word(value) is pattern


# ---- registry / facet contract ---------------------------------------------


def test_registry_names_and_instances():
    assert CODEC_NAMES == ("cpp", "fpc", "bdi", "cpack")
    for name in CODEC_NAMES:
        assert get_codec(name).name == name


def test_unknown_codec_rejected():
    with pytest.raises(ConfigurationError):
        get_codec("lz77")


def test_line_only_codecs_refuse_word_slots():
    for name in ("bdi", "cpack"):
        with pytest.raises(ConfigurationError):
            require_word_scheme(get_codec(name))
    for name in ("cpp", "fpc"):
        assert require_word_scheme(get_codec(name)) is not None


def test_cpp_word_facet_is_the_paper_scheme():
    assert get_codec("cpp").word_scheme == PAPER_SCHEME
