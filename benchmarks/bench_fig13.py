"""Figure 13 bench: L2 miss comparison, normalized to BC."""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments.common import GEOMEAN
from repro.experiments.fig13_l2_misses import run as run_fig13


def test_fig13_l2_misses(benchmark):
    out = run_once(benchmark, run_fig13, seed=BENCH_SEED, scale=BENCH_SCALE)
    avg = {cfg: out.series[cfg][GEOMEAN] for cfg in ("HAC", "BCP", "CPP")}
    benchmark.extra_info.update(
        {f"avg_{k.lower()}_pct": round(v, 1) for k, v in avg.items()}
    )
    benchmark.extra_info["paper"] = "CPP's paired fills cut L2 misses vs BC"
    # CPP's free affiliated-line prefetch removes L2 misses:
    assert avg["CPP"] < 90.0
    # BCP's demand misses are absorbed by its buffers (see EXPERIMENTS.md
    # for why this lands lower here than in the paper's figure):
    assert avg["BCP"] < 100.0
