"""Span-based tracing: where did a *distributed* campaign's time go?

Phases (:mod:`repro.obs.phases`) answer "how much" per process; spans
answer "when, where, and under what" across processes. A
:class:`SpanRecord` is one timed operation — a supervised fork attempt,
a cell's simulation, a golden replay — with wall-clock start/end, an
optional op-clock interval (simulated cycles / stream positions, so
host time and simulated time can be correlated), and a
``trace_id / span_id / parent_id`` triple that stitches records emitted
by *different processes* into one tree.

The API mirrors the tracer's zero-cost contract: a module-global
:data:`ACTIVE` gate, off by default; :func:`span` is a context manager
for straight-line code, :func:`start_span` / :func:`finish_span` serve
concurrent callers (the fork supervisor has many attempts in flight at
once and cannot use a stack). When disarmed, both paths reduce to one
attribute load and a branch.

Cross-process propagation: the supervisor passes ``(trace_id,
span_id)`` of the attempt span to its child, which calls :func:`adopt`
— every span the child records then parents under the supervisor's
attempt. Serialization is plain dicts (:meth:`SpanRecord.as_dict`),
spooled and merged by :mod:`repro.obs.telemetry`.
"""

from __future__ import annotations

import itertools
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "SpanRecord",
    "ACTIVE",
    "span",
    "start_span",
    "finish_span",
    "install",
    "uninstall",
    "adopt",
    "current_context",
    "drain",
    "finished_spans",
    "new_trace_id",
]

#: Fast-path gate checked by instrumented code; mutated only by
#: :func:`install` / :func:`uninstall`.
ACTIVE = False

_COUNTER = itertools.count(1)
_TRACE_ID: str = ""
_STACK: list[str] = []  #: open span ids, innermost last
_REMOTE_PARENT: str | None = None  #: adopted parent for root spans
_FINISHED: list["SpanRecord"] = []


def new_trace_id() -> str:
    """A fresh trace id, unique across processes and runs."""
    return f"{os.getpid():08x}{time.time_ns() & 0xFFFF_FFFF_FFFF:012x}"


def _new_span_id() -> str:
    return f"{os.getpid():08x}{next(_COUNTER):08x}"


@dataclass
class SpanRecord:
    """One timed operation in the campaign's trace tree."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start: float  #: wall-clock seconds (``time.time``)
    end: float = 0.0
    status: str = "ok"  #: ``ok`` / ``error``
    #: JSON-safe annotations (workload, config, attempt, worker slot...).
    attrs: dict = field(default_factory=dict)
    #: Optional simulated-time interval covered by this span.
    op_start: int | None = None
    op_end: int | None = None
    pid: int = field(default_factory=os.getpid)

    @property
    def duration(self) -> float:
        """Wall-clock seconds from start to end (0.0 while open)."""
        return max(0.0, self.end - self.start)

    def set_op_clock(self, start: int, end: int) -> None:
        """Attach the simulated-time interval this span covered."""
        self.op_start = int(start)
        self.op_end = int(end)

    def as_dict(self) -> dict:
        """Plain-dict (JSON-ready) form."""
        out = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": dict(self.attrs),
            "pid": self.pid,
        }
        if self.op_start is not None:
            out["op_start"] = self.op_start
            out["op_end"] = self.op_end
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SpanRecord":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


def install(trace_id: str | None = None) -> str:
    """Arm span recording; returns the active trace id.

    Idempotent: re-installing keeps an existing trace id unless a new
    one is given (so ``obs.enable`` can arm spans without severing a
    context adopted from a parent process).
    """
    global ACTIVE, _TRACE_ID
    if trace_id is not None:
        _TRACE_ID = trace_id
    elif not _TRACE_ID:
        _TRACE_ID = new_trace_id()
    ACTIVE = True
    return _TRACE_ID


def uninstall() -> list[SpanRecord]:
    """Disarm recording; returns (and forgets) the finished spans."""
    global ACTIVE, _TRACE_ID, _REMOTE_PARENT, _FINISHED
    ACTIVE = False
    _TRACE_ID = ""
    _REMOTE_PARENT = None
    _STACK.clear()
    done, _FINISHED = _FINISHED, []
    return done


def adopt(trace_id: str, parent_span_id: str | None) -> None:
    """Join a trace started in another process.

    Arms recording with the caller's *trace_id*; spans recorded here
    with no local parent attach under *parent_span_id* — the supervisor
    side of the fork.
    """
    global _REMOTE_PARENT
    install(trace_id)
    _REMOTE_PARENT = parent_span_id


def current_context() -> tuple[str, str] | None:
    """``(trace_id, span_id)`` of the innermost open span, or None."""
    if not ACTIVE or not _STACK:
        return None
    return (_TRACE_ID, _STACK[-1])


def start_span(
    name: str,
    *,
    parent: SpanRecord | str | None = None,
    **attrs,
) -> SpanRecord | None:
    """Begin a span outside the context-manager stack (concurrent use).

    *parent* may be a :class:`SpanRecord`, a span id, or None (attach
    to the innermost open stack span, the adopted remote parent, or the
    root). The returned record is **not** pushed on the stack — pair it
    with :func:`finish_span`. Returns None when disarmed.
    """
    if not ACTIVE:
        return None
    if isinstance(parent, SpanRecord):
        parent_id = parent.span_id
    elif isinstance(parent, str):
        parent_id = parent
    else:
        parent_id = _STACK[-1] if _STACK else _REMOTE_PARENT
    return SpanRecord(
        name=name,
        trace_id=_TRACE_ID,
        span_id=_new_span_id(),
        parent_id=parent_id,
        start=time.time(),
        attrs=attrs,
    )


def finish_span(
    record: SpanRecord | None, *, status: str = "ok", **attrs
) -> None:
    """End a span from :func:`start_span` and record it (None is a no-op,
    so call sites need no gate of their own)."""
    if record is None:
        return
    record.end = time.time()
    record.status = status
    if attrs:
        record.attrs.update(attrs)
    if ACTIVE:
        _FINISHED.append(record)


@contextmanager
def span(name: str, **attrs):
    """Record a nested span around a block: ``with span("simulate"): ...``

    Yields the open :class:`SpanRecord` (annotate via ``.attrs`` or
    :meth:`~SpanRecord.set_op_clock`), or None when disarmed. An escaping
    exception marks the span ``status="error"`` and re-raises.
    """
    if not ACTIVE:
        yield None
        return
    record = start_span(name, **attrs)
    _STACK.append(record.span_id)
    try:
        yield record
        status = "ok"
    except BaseException:
        status = "error"
        raise
    finally:
        _STACK.pop()
        finish_span(record, status=status)


def finished_spans() -> list[SpanRecord]:
    """Finished spans recorded so far (oldest first), without draining."""
    return list(_FINISHED)


def drain() -> list[SpanRecord]:
    """Return and forget all finished spans (spool-flush semantics)."""
    global _FINISHED
    done, _FINISHED = _FINISHED, []
    return done
