"""Tests for the instruction-cache model."""

import pytest

from repro.cpu.icache import SimpleICache
from repro.cpu.pipeline import CoreConfig, OutOfOrderCore
from repro.errors import ConfigurationError
from repro.isa.opcodes import OpClass
from repro.isa.trace import TraceBuilder
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.workloads.registry import generate

from tests.conftest import make_tiny


class TestSimpleICache:
    def test_sequential_within_line_free(self):
        ic = SimpleICache(size_bytes=512, line_bytes=64, miss_latency=10)
        assert ic.fetch_penalty(0x400000) == 10  # cold line
        assert ic.fetch_penalty(0x400008) == 0  # same line
        assert ic.fetch_penalty(0x400038) == 0

    def test_line_transition_hits_after_install(self):
        ic = SimpleICache(size_bytes=512, line_bytes=64, miss_latency=10)
        ic.fetch_penalty(0x400000)
        ic.fetch_penalty(0x400040)  # next line: miss, installs
        assert ic.fetch_penalty(0x400000) == 0  # back: hit
        assert ic.fetch_penalty(0x400040) == 0

    def test_conflict_eviction(self):
        ic = SimpleICache(size_bytes=128, line_bytes=64, miss_latency=10)  # 2 sets
        ic.fetch_penalty(0x400000)
        ic.fetch_penalty(0x400080)  # same set, evicts
        assert ic.fetch_penalty(0x400000) == 10

    def test_miss_rate(self):
        ic = SimpleICache(size_bytes=512, line_bytes=64)
        ic.fetch_penalty(0x400000)
        ic.fetch_penalty(0x400040)
        ic.fetch_penalty(0x400000)
        assert ic.accesses == 3
        assert ic.misses == 2
        assert ic.miss_rate == pytest.approx(2 / 3)

    def test_geometry_checked(self):
        with pytest.raises(ConfigurationError):
            SimpleICache(size_bytes=100)
        with pytest.raises(ConfigurationError):
            SimpleICache(size_bytes=32, line_bytes=64)


class TestPipelineIntegration:
    @staticmethod
    def wide_code_trace(n_lines, per_line=4):
        """Instructions spread across many code lines (64 B apart)."""
        tb = TraceBuilder("icache")
        for i in range(n_lines * per_line):
            pc = 0x400000 + (i // per_line) * 64 + (i % per_line) * 8
            tb.append(pc, OpClass.IALU, dest=i % 32)
        return tb.build()

    def test_icache_misses_slow_fetch(self):
        trace = self.wide_code_trace(200)
        fast = OutOfOrderCore(
            make_tiny("BC"), CoreConfig(icache_enabled=False)
        ).run(trace)
        # Tiny icache: 4 lines, 200 distinct code lines -> cold misses.
        slow = OutOfOrderCore(
            make_tiny("BC"),
            CoreConfig(icache_enabled=True, icache_size=256, icache_line=64),
        ).run(trace)
        assert slow.cycles > fast.cycles + 100

    def test_paper_geometry_changes_nothing_on_kernels(self):
        """The synthetic kernels' code fits the paper's 8 KB I-cache, so
        enabling it must leave the evaluation untouched (the documented
        justification for the perfect-fetch default)."""
        program = generate("olden.mst", seed=1, scale=0.1)
        off = Machine(SimConfig(cache_config="BC")).run(program)
        on = Machine(
            SimConfig(cache_config="BC", core=CoreConfig(icache_enabled=True))
        ).run(program)
        # A handful of cold misses at most; steady state identical.
        assert abs(on.cycles - off.cycles) <= 64 * 10

    def test_loop_code_hits_after_warmup(self):
        trace = self.wide_code_trace(4)  # 4 code lines, revisited? no loop
        core = OutOfOrderCore(
            make_tiny("BC"),
            CoreConfig(icache_enabled=True, icache_size=512, icache_line=64),
        )
        core.run(trace)
        # only compulsory misses: 4 lines
        # (reach into nothing: recompute via a fresh icache)
        ic = SimpleICache(size_bytes=512, line_bytes=64)
        penalties = sum(
            1
            for i in range(16)
            if ic.fetch_penalty(0x400000 + (i // 4) * 64 + (i % 4) * 8)
        )
        assert penalties == 4
