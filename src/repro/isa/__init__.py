"""Instruction-set abstraction for the trace-driven simulator.

Traces are sequences of dynamic instructions — already-executed operations
with resolved addresses, values and branch outcomes — stored columnar in
NumPy arrays for compactness (tens of millions of instructions fit easily)
and wrapped in a typed API.
"""

from repro.isa.opcodes import OpClass, is_branch, is_mem
from repro.isa.instruction import Instruction, NO_REG
from repro.isa.trace import Trace, TraceBuilder

__all__ = [
    "OpClass",
    "is_branch",
    "is_mem",
    "Instruction",
    "NO_REG",
    "Trace",
    "TraceBuilder",
]
