"""run_matrix_store integration: store-backed campaigns end to end."""

from __future__ import annotations

from repro.sim.runner import run_workload
from repro.store import (
    CampaignQueue,
    ResultStore,
    StoreCheckpoint,
    campaign_name,
    run_matrix_store,
)

WORKLOADS = ["olden.treeadd"]
CONFIGS = ["BC", "CPP"]
SCALE = 0.05


def run(tmp_path, **kwargs):
    return run_matrix_store(
        WORKLOADS,
        CONFIGS,
        store_dir=tmp_path / "store",
        seed=1,
        scale=SCALE,
        max_workers=2,
        lease_ttl=10.0,
        **kwargs,
    )


def test_campaign_computes_commits_and_drains(tmp_path):
    outcome = run(tmp_path)
    assert len(outcome.results) == 2
    assert not outcome.failures
    assert outcome.reused == 0
    store = ResultStore(tmp_path / "store")
    assert store.object_count() == 2
    queue = CampaignQueue(store.root / "queue", campaign_name(1, SCALE))
    assert queue.drained()


def test_second_run_reuses_every_cell(tmp_path):
    run(tmp_path)
    first_log = ResultStore(tmp_path / "store").compute_log()
    outcome = run(tmp_path)
    assert outcome.reused == 2
    assert len(outcome.results) == 2
    # Nothing recomputed: the compute log did not grow.
    assert ResultStore(tmp_path / "store").compute_log() == first_log


def test_campaign_results_match_direct_simulation(tmp_path):
    outcome = run(tmp_path)
    for config in CONFIGS:
        key = ("olden.treeadd", 1, SCALE, config, 1.0)
        direct = run_workload("olden.treeadd", config, seed=1, scale=SCALE)
        assert outcome.results[key] == direct


def test_corrupted_cell_is_requarantined_and_recomputed(tmp_path):
    run(tmp_path)
    store = ResultStore(tmp_path / "store")
    key = ("olden.treeadd", 1, SCALE, "BC", 1.0)
    store.object_path(store.digest_of(key)).write_bytes(b"rotted")
    outcome = run(tmp_path)
    assert outcome.reused == 1  # the intact cell
    assert len(outcome.results) == 2  # the rotted one was recomputed
    direct = run_workload("olden.treeadd", "BC", seed=1, scale=SCALE)
    assert outcome.results[key] == direct
    assert ResultStore(tmp_path / "store").quarantined_count() == 1


def test_store_checkpoint_adapter_round_trip(tmp_path):
    store = ResultStore(tmp_path / "store")
    checkpoint = StoreCheckpoint(store, worker="w1")
    key = ("olden.treeadd", 1, SCALE, "BC", 1.0)
    assert key not in checkpoint
    result = run_workload("olden.treeadd", "BC", seed=1, scale=SCALE)
    checkpoint.add(key, result)
    assert key in checkpoint
    assert checkpoint.get(key) == result
    assert len(store.compute_log()) == 1
    # Re-adding an identical cell is not a fresh compute.
    checkpoint.add(key, result)
    assert len(store.compute_log()) == 1
