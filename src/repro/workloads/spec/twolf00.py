"""spec2000.300.twolf — simulated-annealing standard-cell placement.

Models twolf's inner loop (``uloop``/``ucxx``): pick two random cells,
tentatively swap their positions, recompute the half-perimeter wirelength
of every net touching them by walking the nets' terminal lists, and
accept or reject.

The random cell pairs make the access stream *scattered*: in a
direct-mapped cache the cell and terminal records conflict heavily. The
paper singles out twolf (with health) as a benchmark where conflict
misses dominate and CPP consequently beats BCP — this workload is built
to preserve that character (random indexed accesses across a working set
larger than L1).

Cell: ``{x, y, net_head, pad}``; terminal: ``{cell_ptr, net_id, next}``;
net: ``{term_head, n_terms}``. Coordinates and ids are small values;
the link fields are heap pointers.
"""

from __future__ import annotations

from repro.workloads.base import Program, ProgramBuilder, scaled

__all__ = ["build", "DEFAULT_CELLS", "DEFAULT_NETS", "DEFAULT_SWAPS"]

DEFAULT_CELLS = 2000
DEFAULT_NETS = 1000
DEFAULT_SWAPS = 120

_C_X = 0
_C_Y = 4
_C_NET = 8
_C_BYTES = 16

_T_CELL = 0
_T_NET = 4
_T_NEXT = 8
_T_BYTES = 12

_N_HEAD = 0
_N_COUNT = 4
_N_BYTES = 8


def build(seed: int = 1, scale: float = 1.0) -> Program:
    """Generate the twolf program; *scale* adjusts swap count."""
    n_cells = DEFAULT_CELLS
    n_nets = DEFAULT_NETS
    swaps = scaled(DEFAULT_SWAPS, scale, minimum=4)

    pb = ProgramBuilder("spec2000.300.twolf", seed)
    pb.op("g", (), label="tw.entry")

    cells: list[int] = []
    pos: dict[int, tuple[int, int]] = {}
    for _ in pb.for_range("tw.mkcells", n_cells, cond_srcs=("g",)):
        a = pb.malloc(_C_BYTES)
        cells.append(a)
        x, y = int(pb.rng.integers(0, 512)), int(pb.rng.integers(0, 512))
        pos[a] = (x, y)
        pb.store(a + _C_X, x, base="g", label="tw.init.x")
        pb.store(a + _C_Y, y, base="g", label="tw.init.y")
        pb.store(a + _C_NET, 0, base="g", label="tw.init.net")

    nets: list[int] = []
    net_terms: dict[int, list[int]] = {}
    cell_nets: dict[int, list[int]] = {a: [] for a in cells}
    for ni in pb.for_range("tw.mknets", n_nets, cond_srcs=("g",)):
        net = pb.malloc(_N_BYTES)
        nets.append(net)
        members = [cells[int(pb.rng.integers(0, n_cells))]
                   for _ in range(int(pb.rng.integers(2, 6)))]
        net_terms[net] = members
        head = 0
        for c in members:
            t = pb.malloc(_T_BYTES)
            pb.store(t + _T_CELL, c, base="g", label="tw.init.tc")
            pb.store(t + _T_NET, ni & 0x3FFF, base="g", label="tw.init.tn")
            pb.store(t + _T_NEXT, head, base="g", label="tw.init.tx")
            head = t
            cell_nets[c].append(net)
        pb.store(net + _N_HEAD, head, base="g", label="tw.init.nh")
        pb.store(net + _N_COUNT, len(members), base="g", label="tw.init.nc")

    def net_hpwl(net: int) -> int:
        """Walk a net's terminal list computing its bounding box.

        The emitted loads chase the real list pointers (terminal record ->
        cell record -> coordinates); the Python-side min/max mirrors what
        the loaded values contain.
        """
        term = pb.load(net + _N_HEAD, "t", base="np", label="tw.hpwl.ldh")
        xmin = ymin = 1 << 20
        xmax = ymax = -1
        while pb.while_cond("tw.hpwl.loop", term != 0, srcs=("t",)):
            cp = pb.load(term + _T_CELL, "cp", base="t", label="tw.hpwl.ldc")
            x = pb.load(cp + _C_X, "x", base="cp", label="tw.hpwl.ldx")
            y = pb.load(cp + _C_Y, "y", base="cp", label="tw.hpwl.ldy")
            term = pb.load(term + _T_NEXT, "t", base="t", label="tw.hpwl.ldn")
            xmin, xmax = min(xmin, x), max(xmax, x)
            ymin, ymax = min(ymin, y), max(ymax, y)
            pb.op("bbox", ("bbox", "x"), label="tw.hpwl.bx")
            pb.op("bbox", ("bbox", "y"), label="tw.hpwl.by")
        return (xmax - xmin) + (ymax - ymin)

    accepted = 0
    cost_acc = 0
    # Annealing bookkeeping: per-attempt cost records (the original logs
    # scaled float costs — large bit patterns).
    history = pb.static_array(swaps)
    for s in pb.for_range("tw.swaps", swaps, cond_srcs=("g",)):
        a = cells[int(pb.rng.integers(0, n_cells))]
        b = cells[int(pb.rng.integers(0, n_cells))]
        pb.op("ca", (), label="tw.pick.a")
        pb.op("cb", (), label="tw.pick.b")
        touched = sorted(set(cell_nets[a]) | set(cell_nets[b]))

        old_cost = 0
        for net in touched:
            pb.op("np", (), label="tw.cost.np")
            old_cost += net_hpwl(net)
        # Tentatively swap coordinates.
        ax = pb.load(a + _C_X, "ax", base="ca", label="tw.swap.ldax")
        ay = pb.load(a + _C_Y, "ay", base="ca", label="tw.swap.lday")
        bx = pb.load(b + _C_X, "bx", base="cb", label="tw.swap.ldbx")
        by = pb.load(b + _C_Y, "by", base="cb", label="tw.swap.ldby")
        pb.store(a + _C_X, bx, base="ca", src="bx", label="tw.swap.stax")
        pb.store(a + _C_Y, by, base="ca", src="by", label="tw.swap.stay")
        pb.store(b + _C_X, ax, base="cb", src="ax", label="tw.swap.stbx")
        pb.store(b + _C_Y, ay, base="cb", src="ay", label="tw.swap.stby")
        pos[a], pos[b] = pos[b], pos[a]

        new_cost = 0
        for net in touched:
            pb.op("np", (), label="tw.cost.np2")
            new_cost += net_hpwl(net)
        pb.store(history + 4 * s, (new_cost << 16) | 0x4000_0000, base="g",
                 src="bbox", label="tw.log.cost")

        # Annealing acceptance: keep improvements, sometimes keep others.
        accept = new_cost <= old_cost or pb.rng.random() < 0.25
        if pb.if_("tw.accept", accept, srcs=("bbox",)):
            accepted += 1
            cost_acc += old_cost - new_cost
        else:
            # Revert the swap.
            pb.store(a + _C_X, ax, base="ca", src="ax", label="tw.revert.ax")
            pb.store(a + _C_Y, ay, base="ca", src="ay", label="tw.revert.ay")
            pb.store(b + _C_X, bx, base="cb", src="bx", label="tw.revert.bx")
            pb.store(b + _C_Y, by, base="cb", src="by", label="tw.revert.by")
            pos[a], pos[b] = pos[b], pos[a]

    out = pb.static_array(1)
    pb.store(out, accepted, src="bbox", label="tw.result")
    return pb.build(
        description="random cell swaps + net bounding-box walks (conflict-heavy)",
        params={"cells": n_cells, "nets": n_nets, "swaps": swaps, "accepted": accepted},
    )
