"""Shared machinery for the normalized comparison figures (10-13).

Each of those figures runs the full (workload x configuration) matrix and
reports one metric per run normalized to the BC baseline = 100 %.

Failure tolerance: cells are obtained through
:func:`repro.sim.fault.try_cell`, so a cell that failed (in a supervised
matrix run, or freshly while regenerating this figure) yields ``None``
and renders as an explicit ``—`` hole instead of aborting the figure.
A missing BC baseline holes out the whole workload row (there is nothing
to normalize against); averages are taken over the surviving workloads.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.analysis.normalize import normalize_to_baseline
from repro.experiments.common import GEOMEAN, ExperimentOutput, average, resolve_workloads
from repro.sim import fault as _fault
from repro.sim.results import SimResult

__all__ = ["normalized_comparison", "DEFAULT_CONFIGS"]

DEFAULT_CONFIGS = ("BC", "BCC", "HAC", "BCP", "CPP")


def _round(value: float | None, ndigits: int) -> float | None:
    return None if value is None else round(value, ndigits)


def normalized_comparison(
    *,
    figure: str,
    title: str,
    metric: Callable[[SimResult], float],
    workloads: Sequence[str] | None,
    configs: Sequence[str] = DEFAULT_CONFIGS,
    seed: int = 1,
    scale: float = 1.0,
    paper_reference: str = "",
    notes: str = "",
) -> ExperimentOutput:
    """Run the matrix and normalize ``metric`` to BC per workload."""
    names = resolve_workloads(workloads)
    configs = list(configs)
    if "BC" not in configs:
        configs = ["BC", *configs]

    series: dict[str, dict[str, float]] = {cfg: {} for cfg in configs}
    rows: list[list[object]] = []
    for workload in names:
        results = {
            cfg: _fault.try_cell(workload, cfg, seed=seed, scale=scale)
            for cfg in configs
        }
        present = {cfg: r for cfg, r in results.items() if r is not None}
        if "BC" in present:
            scored = normalize_to_baseline(present, metric, baseline="BC")
            normalized = {cfg: scored.get(cfg) for cfg in configs}
        else:
            # No baseline: nothing to normalize against — hole the row.
            normalized = {cfg: None for cfg in configs}
        for cfg in configs:
            if normalized[cfg] is not None:
                series[cfg][workload] = normalized[cfg]
        rows.append([workload, *(_round(normalized[cfg], 1) for cfg in configs)])

    for cfg in configs:
        series_avg = average(
            {k: v for k, v in series[cfg].items() if k != GEOMEAN}
        )
        if series_avg is not None:
            series[cfg][GEOMEAN] = series_avg
    rows.append(
        [GEOMEAN, *(_round(series[cfg].get(GEOMEAN), 1) for cfg in configs)]
    )

    return ExperimentOutput(
        figure=figure,
        title=title,
        headers=["workload", *configs],
        rows=rows,
        series={cfg: series[cfg] for cfg in configs if cfg != "BC"},
        unit="%",
        baseline_value=100.0,
        paper_reference=paper_reference,
        notes=notes,
    )
