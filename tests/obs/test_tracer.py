"""Event tracer: ring wraparound, sampling, JSONL round-trips, guards."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import tracer
from repro.obs.tracer import EventTracer, read_jsonl


@pytest.fixture(autouse=True)
def _clean_tracer():
    tracer.uninstall()
    yield
    tracer.uninstall()


class TestRingBuffer:
    def test_retains_under_capacity(self):
        t = EventTracer(capacity=8)
        for i in range(5):
            t.emit("promotion", {"line": i})
        assert len(t) == 5
        assert [e["line"] for e in t.events()] == [0, 1, 2, 3, 4]

    def test_wraparound_keeps_most_recent(self):
        t = EventTracer(capacity=4)
        for i in range(10):
            t.emit("promotion", {"line": i})
        events = t.events()
        assert len(events) == 4
        assert [e["line"] for e in events] == [6, 7, 8, 9]
        assert t.dropped == 6
        assert t.count("promotion") == 10  # counts survive wraparound

    def test_wraparound_twice(self):
        t = EventTracer(capacity=3)
        for i in range(9):
            t.emit("stash", {"line": i})
        assert [e["line"] for e in t.events()] == [6, 7, 8]

    def test_seq_is_monotonic_across_wrap(self):
        t = EventTracer(capacity=2)
        for i in range(5):
            t.emit("promotion", {"line": i})
        seqs = [e["seq"] for e in t.events()]
        assert seqs == sorted(seqs)

    def test_clear(self):
        t = EventTracer(capacity=4)
        t.emit("stash", {"line": 1})
        t.clear()
        assert len(t) == 0
        assert t.counts == {}
        assert t.seq == 0


class TestSampling:
    def test_sample_every_keeps_one_in_n(self):
        t = EventTracer(capacity=100, sample_every=4)
        for i in range(20):
            t.emit("cache_access", {"addr": i})
        assert len(t) == 5  # seq 0, 4, 8, 12, 16
        assert t.count("cache_access") == 20  # counting is unsampled

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            EventTracer(capacity=0)
        with pytest.raises(ConfigurationError):
            EventTracer(sample_every=0)


class TestTypeChecking:
    def test_unknown_event_type_rejected(self):
        t = EventTracer()
        with pytest.raises(ConfigurationError):
            t.emit("no_such_event", {})


class TestJsonl:
    def test_round_trip(self, tmp_path):
        t = EventTracer(capacity=16)
        t.emit("cache_access", {"level": "L1", "addr": 4096, "hit": True})
        t.emit("affiliated_hit", {"level": "L1", "addr": 4100, "write": False})
        t.emit("bus_transfer", {"kind": "fill", "words": 32})
        path = t.write_jsonl(tmp_path / "events.jsonl")
        loaded = read_jsonl(path)
        assert loaded == t.events()

    def test_round_trip_after_wraparound(self, tmp_path):
        t = EventTracer(capacity=3)
        for i in range(7):
            t.emit("promotion", {"line": i})
        loaded = read_jsonl(t.write_jsonl(tmp_path / "e.jsonl"))
        assert [e["line"] for e in loaded] == [4, 5, 6]

    def test_empty_stream(self, tmp_path):
        t = EventTracer()
        loaded = read_jsonl(t.write_jsonl(tmp_path / "empty.jsonl"))
        assert loaded == []


class TestModuleGuard:
    def test_off_by_default(self):
        assert tracer.ACTIVE is False
        assert tracer.get_tracer() is None
        tracer.emit("promotion", line=1)  # silently dropped

    def test_install_arms_the_flag(self):
        t = tracer.install(EventTracer())
        assert tracer.ACTIVE is True
        tracer.emit("promotion", line=7)
        assert t.count("promotion") == 1
        old = tracer.uninstall()
        assert old is t
        assert tracer.ACTIVE is False
        tracer.emit("promotion", line=8)  # dropped again
        assert t.count("promotion") == 1
