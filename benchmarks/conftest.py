"""Shared benchmark configuration.

The figure benches regenerate each paper figure at a reduced input scale
(``BENCH_SCALE``) so the full harness completes in minutes; the runner's
memoization means figures that share the (workload x config) matrix
(10-13) pay for the simulations once.

Every bench records its headline numbers in ``extra_info`` so the
pytest-benchmark JSON/console output doubles as the paper-vs-measured
record.
"""

from __future__ import annotations

import pytest

from repro.sim.runner import clear_caches

BENCH_SCALE = 0.35
BENCH_SEED = 1


@pytest.fixture(scope="session", autouse=True)
def _shared_run_cache():
    """One memoized matrix for the whole bench session."""
    clear_caches()
    yield
    clear_caches()


def run_once(benchmark, fn, *args, **kwargs):
    """Measure a single execution (simulations are deterministic; rounds
    would only re-measure the memo cache)."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )
