"""Fault models: what a soft error can corrupt, and how it is tracked.

A *fault* is a transient bit flip at one of five targets:

``data``
    A resident word value in a cache frame — a primary word of a
    :class:`~repro.caches.compressed_frame.CompressedFrame` (or a word
    of a classic :class:`~repro.caches.line.CacheLine`), or a clean
    affiliated word riding in a freed slot.
``meta``
    A per-word metadata flag of a frame: ``PA`` (primary availability),
    ``AA`` (affiliated availability), ``VCP`` (the compressibility
    memo — the stored VC/VT flags), or the frame's dirty bit. For
    classic lines the flags are ``dirty`` and ``valid``.
``tag``
    A bit of the frame's stored tag (``line_no``).
``bus``
    A word in transit across the off-chip bus (fill, pair-fill,
    prefetch or write-back transfer).
``mem``
    A stored word of the memory image (a DRAM upset).

A :class:`FaultSpec` is the *plan-time* description: deterministic given
the campaign seed (site selection uses ``site_seed``, derived via
:func:`repro.utils.rng.derive_seed`). A :class:`Corruption` is the
*run-time* record the session keeps after the flip lands: site identity
plus the pristine and corrupted values, which is what protection models
check on use and what SECDED repairs from.

Site identity for ``data`` corruption is logical — ``(level, line_no,
word index)`` — not a frame pointer, so the record keeps tracking the
corrupted word through promotions and stashes that move it between the
primary and affiliated places of the same level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "TARGETS",
    "CACHE_TARGETS",
    "LEVELS",
    "FaultSpec",
    "Corruption",
    "flip_bits",
]

#: Every supported fault target.
TARGETS = ("data", "meta", "tag", "bus", "mem")

#: Targets that corrupt cache-resident state (need a level).
CACHE_TARGETS = ("data", "meta", "tag")

#: Cache levels a fault can land in.
LEVELS = ("l1", "l2")


def flip_bits(value: int, positions: list[int]) -> int:
    """Flip the given bit *positions* of *value*."""
    for p in positions:
        value ^= 1 << p
    return value


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault (deterministic given the campaign seed).

    ``trigger`` is an index on the session's event clock: the CPU-access
    count for cache and memory targets, the off-chip transfer count for
    ``bus`` targets. ``bits`` is the number of bits flipped in the
    protected unit — ``1`` models a single-event upset (correctable by
    SECDED), ``2`` a double upset (detectable but not correctable).
    """

    fault_id: int
    seed: int  #: master cell seed (stream + image)
    target: str  #: one of :data:`TARGETS`
    level: str  #: "l1" / "l2" for cache targets, "" for bus/mem
    trigger: int  #: event-clock index at which the fault fires (>= 1)
    bits: int = 1  #: bits flipped per fault
    site_seed: int = 0  #: RNG seed for site selection at fire time

    def as_dict(self) -> dict:
        """JSON-safe form (campaign checkpoints and reports)."""
        return {
            "fault_id": self.fault_id,
            "seed": self.seed,
            "target": self.target,
            "level": self.level,
            "trigger": self.trigger,
            "bits": self.bits,
            "site_seed": self.site_seed,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FaultSpec":
        """Inverse of :meth:`as_dict`."""
        return cls(
            fault_id=int(d["fault_id"]),
            seed=int(d["seed"]),
            target=str(d["target"]),
            level=str(d["level"]),
            trigger=int(d["trigger"]),
            bits=int(d.get("bits", 1)),
            site_seed=int(d.get("site_seed", 0)),
        )


@dataclass
class Corruption:
    """Run-time record of one landed fault.

    ``kind`` is the target kind; ``level`` is ``"l1"``/``"l2"`` for
    cache state and ``"mem"`` for memory-image corruption. Data sites
    are identified logically by ``(level, line_no, widx)``; metadata and
    tag sites additionally pin the physical ``frame`` object (their
    corruption cannot be located by value alone) and remember the
    frame's home ``set_index`` — tag and flag bits are read on every
    probe of that set, which is where protection checks fire.
    """

    spec: FaultSpec
    kind: str
    level: str
    line_no: int = -1  #: logical line of the corrupted word / frame
    widx: int = -1  #: data: word index inside the line
    field_name: str = ""  #: meta: "pa"/"aa"/"vcp"/"dirty"/"valid"; tag: "line_no"
    addr: int = -1  #: mem: byte address of the corrupted word
    set_index: int = -1  #: cache targets: the frame's home set
    frame: object = None  #: meta/tag: the physical frame object
    pristine: int = 0
    corrupt: int = 0
    n_bits: int = 1  #: bits flipped in the protected unit
    live: bool = True  #: still resident and corrupted
    detected: bool = False
    disposition: str = ""  #: corrected/recovered/uncorrectable/overwritten/evicted/propagated
    events: list = field(default_factory=list)

    def note(self, event: str) -> None:
        """Append a timeline entry (surfaced in the outcome record)."""
        self.events.append(event)

    def describe_site(self) -> str:
        """Short human-readable site label."""
        if self.kind == "data":
            return f"{self.level} line {self.line_no:#x} word {self.widx}"
        if self.kind in ("meta", "tag"):
            return (
                f"{self.level} line {self.line_no:#x} {self.field_name} "
                f"set {self.set_index}"
            )
        if self.kind == "mem":
            return f"mem word {self.addr:#010x}"
        return self.kind
