"""spec2000.164.gzip — LZ77 window matching over a byte stream.

(Extra workload: registered under the "extra" group, beyond the paper's
fourteen.)

Models gzip's deflate inner loop: a sliding window of recent input, a
head/prev hash-chain index, and for each position a chain walk comparing
candidate match positions byte by byte. Arrays of small values with
hash-scattered chain hops — like compress but with longer dependent
chains and a sequential input the prefetchers love.
"""

from __future__ import annotations

from repro.workloads.base import Program, ProgramBuilder, scaled

__all__ = ["build", "DEFAULT_INPUT_LEN"]

DEFAULT_INPUT_LEN = 4000
_WINDOW = 4096
_HASH_SIZE = 2048
_MAX_CHAIN = 6


def build(seed: int = 1, scale: float = 1.0) -> Program:
    """Generate the gzip program; *scale* adjusts input length."""
    n = scaled(DEFAULT_INPUT_LEN, scale, minimum=128)

    pb = ProgramBuilder("spec2000.164.gzip", seed)
    pb.op("g", (), label="gz.entry")

    window = pb.static_array(_WINDOW)
    head = pb.static_array(_HASH_SIZE)
    prev = pb.static_array(_WINDOW)
    out = pb.static_array(n)

    # Input with repeated phrases so matches exist.
    symbols: list[int] = []
    phrase = [int(pb.rng.integers(32, 127)) for _ in range(24)]
    for _ in range(n):
        if pb.rng.random() < 0.3:
            symbols.extend(phrase[: int(pb.rng.integers(4, len(phrase)))])
        else:
            symbols.append(int(pb.rng.integers(32, 127)))
    symbols = symbols[:n]

    head_state = [0] * _HASH_SIZE
    prev_state = [0] * _WINDOW
    window_state = [0] * _WINDOW
    n_matches = 0
    n_literals = 0

    for pos in pb.for_range("gz.main", n - 3, cond_srcs=("pos",)):
        c = symbols[pos]
        wpos = pos % _WINDOW
        pb.store(window + 4 * wpos, c, base="g", label="gz.win.st")
        window_state[wpos] = c
        h = (symbols[pos] * 33 + symbols[pos + 1] * 7 + symbols[pos + 2]) % _HASH_SIZE
        pb.op("h", ("pos",), label="gz.hash")

        # Probe the hash chain for the best match.
        cand = pb.load(head + 4 * h, "cand", base="h", label="gz.chain.ldh")
        cand_val = head_state[h]
        best_len = 0
        for step in range(_MAX_CHAIN):
            alive = cand_val != 0 and step < _MAX_CHAIN - 1
            pb.branch("gz.chain.loop", taken=alive, srcs=("cand",))
            if cand_val == 0:
                break
            # Compare a few bytes at the candidate position.
            match_len = 0
            cpos = cand_val % _WINDOW
            for j in range(3):
                w = pb.load(window + 4 * ((cpos + j) % _WINDOW), "w", base="cand",
                            label="gz.cmp.ldw")
                same = window_state[(cpos + j) % _WINDOW] == symbols[min(pos + j, n - 1)]
                if pb.if_("gz.cmp.eq", same, srcs=("w",)):
                    match_len += 1
                else:
                    break
            best_len = max(best_len, match_len)
            nxt = pb.load(prev + 4 * cpos, "cand", base="cand", label="gz.chain.ldp")
            cand_val = prev_state[cpos]

        if pb.if_("gz.emit.match", best_len >= 3, srcs=("cand",)):
            n_matches += 1
            pb.store(out + 4 * (n_matches + n_literals - 1), best_len | 0x100,
                     base="g", label="gz.emit.m")
        else:
            n_literals += 1
            pb.store(out + 4 * (n_matches + n_literals - 1), c, base="g",
                     label="gz.emit.l")

        # Insert this position into the chain.
        pb.store(prev + 4 * wpos, head_state[h], base="h", label="gz.ins.prev")
        prev_state[wpos] = head_state[h]
        pb.store(head + 4 * h, pos + 1, base="h", label="gz.ins.head")
        head_state[h] = pos + 1

    result = pb.static_array(2)
    pb.store(result, n_matches, src="cand", label="gz.result.m")
    pb.store(result + 4, n_literals, src="cand", label="gz.result.l")
    return pb.build(
        description="LZ77 hash-chain matching over a sliding window",
        params={"input_len": n, "matches": n_matches, "literals": n_literals},
    )
