"""Selectable simulation backends for the core+cache inner loop.

Two backends execute a program on a hierarchy:

* ``reference`` — the pure-python cycle loop in
  :class:`repro.cpu.pipeline.OutOfOrderCore`. Always available, always
  correct; every other backend is defined by bit-identicality to it.
* ``fast`` — :class:`repro.cpu.fastcore.FastCore`: flat-array pipeline
  state over pre-decoded traces (:mod:`repro.isa.predecode`), an
  event-driven clock, and O(1) compressibility probes against a
  whole-image table (:mod:`repro.compression.comptable`). Replays the
  golden cells bit-for-bit and falls back to ``reference`` whenever an
  observation hook (tracing, fault injection, load verification, a warm
  predictor, the i-cache model) needs the fully general loop.

Selection precedence: an explicit ``SimConfig.backend`` beats the
``REPRO_BACKEND`` environment variable, which beats the default
(``reference``). The environment variable is the cross-process channel —
:func:`set_default_backend` writes it so forked matrix workers inherit
the choice, mirroring how ``repro.check`` propagates REPRO_CHECK.
"""

from __future__ import annotations

import os

from repro.errors import ConfigurationError, UsageError

__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "create_core",
    "default_backend",
    "resolve_backend",
    "set_default_backend",
]

#: Registered backend names, in documentation order.
BACKEND_NAMES = ("reference", "fast")

DEFAULT_BACKEND = "reference"

#: Environment variable naming the default backend for this process tree.
ENV_VAR = "REPRO_BACKEND"


def default_backend() -> str:
    """The backend selected by the environment (no per-config override).

    Raises :class:`~repro.errors.UsageError` when ``REPRO_BACKEND`` names
    an unknown backend — a typo must fail loudly, not silently fall back
    to the slow loop.
    """
    env = os.environ.get(ENV_VAR, "").strip()
    if not env:
        return DEFAULT_BACKEND
    if env not in BACKEND_NAMES:
        raise UsageError(
            f"unknown backend {env!r} in ${ENV_VAR}",
            argument=ENV_VAR,
            choices=BACKEND_NAMES,
        )
    return env


def resolve_backend(explicit: str = "") -> str:
    """Resolve the effective backend name.

    *explicit* is a per-config override (``SimConfig.backend``); empty
    means "defer to the environment".
    """
    if explicit:
        if explicit not in BACKEND_NAMES:
            raise ConfigurationError(
                f"unknown simulation backend {explicit!r}; "
                f"choose from {BACKEND_NAMES}"
            )
        return explicit
    return default_backend()


def set_default_backend(name: str | None) -> None:
    """Set (or clear, with ``None``/empty) the process-default backend.

    Writes ``REPRO_BACKEND`` so worker processes forked later inherit
    the selection.
    """
    if not name:
        os.environ.pop(ENV_VAR, None)
        return
    if name not in BACKEND_NAMES:
        raise UsageError(
            f"unknown backend {name!r}",
            argument="backend",
            choices=BACKEND_NAMES,
        )
    os.environ[ENV_VAR] = name


def create_core(backend: str, hierarchy, core_config, *, verify_loads: bool = False):
    """Instantiate the core implementation for *backend* (a resolved name)."""
    if backend == "fast":
        from repro.cpu.fastcore import FastCore

        return FastCore(hierarchy, core_config, verify_loads=verify_loads)
    if backend == "reference":
        from repro.cpu.pipeline import OutOfOrderCore

        return OutOfOrderCore(hierarchy, core_config, verify_loads=verify_loads)
    raise ConfigurationError(
        f"unknown simulation backend {backend!r}; choose from {BACKEND_NAMES}"
    )
