"""spec2000.175.vpr — FPGA routing: maze expansion over a routing grid.

Models vpr's route phase: for each net, a breadth-first wavefront expands
from the source across a grid of routing-resource records until it
reaches the sink, then the path is traced back and its occupancies
bumped. Grid records are array-resident structs with small fields
(occupancy, congestion cost) plus a back-pointer written during
expansion; nets are linked source/sink pairs.

Access pattern: spatially local wavefronts (good for prefetching) mixed
with per-net random start points (scattered), landing vpr mid-pack in
every figure — as in the paper.
"""

from __future__ import annotations

from collections import deque

from repro.workloads.base import Program, ProgramBuilder, scaled

__all__ = ["build", "DEFAULT_GRID", "DEFAULT_NETS"]

DEFAULT_GRID = 96
DEFAULT_NETS = 26

_G_OCC = 0
_G_COST = 4
_G_PREV = 8
_G_BYTES = 12


def build(seed: int = 1, scale: float = 1.0) -> Program:
    """Generate the vpr program; *scale* adjusts net count."""
    g = DEFAULT_GRID
    n_nets = scaled(DEFAULT_NETS, scale, minimum=2)

    pb = ProgramBuilder("spec2000.175.vpr", seed)
    pb.op("g", (), label="vp.entry")

    n_sq = g * g
    grid = pb.static_array(n_sq * (_G_BYTES // 4))
    occ = [0] * n_sq

    def cell_addr(sq: int) -> int:
        return grid + sq * _G_BYTES

    # Congestion costs are float bit patterns in the original — large,
    # incompressible values; occupancies are small counters.
    cost_bits = [pb.rand_large() for _ in range(n_sq)]
    for i in pb.for_range("vp.mkgrid", n_sq, cond_srcs=("g",)):
        pb.store(cell_addr(i) + _G_OCC, 0, base="g", label="vp.init.occ")
        pb.store(cell_addr(i) + _G_COST, cost_bits[i], base="g", label="vp.init.cost")
        pb.store(cell_addr(i) + _G_PREV, 0, base="g", label="vp.init.prev")

    def neighbors(sq: int) -> list[int]:
        r, c = divmod(sq, g)
        out = []
        if r > 0:
            out.append(sq - g)
        if r < g - 1:
            out.append(sq + g)
        if c > 0:
            out.append(sq - 1)
        if c < g - 1:
            out.append(sq + 1)
        return out

    routed = 0
    total_len = 0
    for _net in pb.for_range("vp.nets", n_nets, cond_srcs=("g",)):
        src = int(pb.rng.integers(0, n_sq))
        sink = int(pb.rng.integers(0, n_sq))
        pb.op("wavep", (), label="vp.route.start")

        # BFS wavefront from src to sink over uncongested cells.
        prev: dict[int, int] = {src: src}
        frontier = deque([src])
        found = src == sink
        expansions = 0
        while frontier and not found and expansions < 600:
            sq = frontier.popleft()
            pb.branch("vp.wave.loop", taken=True, srcs=("wavep",))
            for nb in neighbors(sq):
                o = pb.load(cell_addr(nb) + _G_OCC, "o", base="wavep",
                            label="vp.wave.ldo")
                c = pb.load(cell_addr(nb) + _G_COST, "c", base="wavep",
                            label="vp.wave.ldc")
                pb.op("pcost", ("o", "c"), label="vp.wave.cost")
                fresh = nb not in prev and occ[nb] < 3
                if pb.if_("vp.wave.fresh", fresh, srcs=("pcost",)):
                    prev[nb] = sq
                    frontier.append(nb)
                    pb.store(cell_addr(nb) + _G_PREV, cell_addr(sq), base="wavep",
                             label="vp.wave.stprev")
                    if nb == sink:
                        found = True
            expansions += 1
        pb.branch("vp.wave.loop", taken=False, srcs=("wavep",))

        if pb.if_("vp.route.found", found, srcs=("pcost",)):
            # Trace back the path via the prev pointers, bumping occupancy.
            routed += 1
            sq = sink
            path_len = 0
            pb.op("tb", (), label="vp.trace.start")
            while pb.while_cond("vp.trace.loop", sq != src, srcs=("tb",)):
                pb.load(cell_addr(sq) + _G_PREV, "tb", base="tb",
                        label="vp.trace.ldprev")
                o = pb.load(cell_addr(sq) + _G_OCC, "o", base="tb",
                            label="vp.trace.ldo")
                occ[sq] += 1
                pb.op("o", ("o",), label="vp.trace.inc")
                pb.store(cell_addr(sq) + _G_OCC, occ[sq], base="tb", src="o",
                         label="vp.trace.sto")
                sq = prev[sq]
                path_len += 1
            total_len += path_len

    out = pb.static_array(2)
    pb.store(out, routed, src="o", label="vp.result.routed")
    pb.store(out + 4, total_len & 0x3FFF, src="o", label="vp.result.len")
    return pb.build(
        description="maze-routing wavefronts over a routing-resource grid",
        params={"grid": g, "nets": n_nets, "routed": routed, "total_len": total_len},
    )
