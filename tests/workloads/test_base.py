"""Unit tests for the ProgramBuilder kernel-authoring layer."""

import pytest

from repro.errors import WorkloadError
from repro.isa.opcodes import OpClass
from repro.workloads.base import CODE_BASE, ProgramBuilder


class TestRegistersAndLabels:
    def test_register_interning(self):
        pb = ProgramBuilder("t")
        assert pb.reg("x") == pb.reg("x")
        assert pb.reg("x") != pb.reg("y")

    def test_pc_interning(self):
        pb = ProgramBuilder("t")
        first = pb.pc("loop")
        assert pb.pc("loop") == first
        assert pb.pc("other") == first + 8
        assert first == CODE_BASE


class TestEmission:
    def test_load_reads_live_image(self):
        pb = ProgramBuilder("t")
        addr = pb.malloc(16)
        pb.store(addr, 123, label="init")
        assert pb.load(addr, "v", label="ld") == 123
        prog = pb.build()
        assert prog.trace[1].value == 123
        assert prog.trace[1].op is OpClass.LOAD

    def test_store_records_value_and_updates_image(self):
        pb = ProgramBuilder("t")
        addr = pb.malloc(8)
        pb.store(addr, 0xBEEF, label="st")
        assert pb.image.read_word(addr) == 0xBEEF
        assert pb.build().trace[0].value == 0xBEEF

    def test_load_dependence_wiring(self):
        pb = ProgramBuilder("t")
        addr = pb.malloc(8)
        pb.store(addr, 1)
        pb.load(addr, "v", base="p")
        trace = pb.build().trace
        assert trace[1].src1 == pb.reg("p")
        assert trace[1].dest == pb.reg("v")

    def test_op_rejects_memory_kinds(self):
        pb = ProgramBuilder("t")
        with pytest.raises(WorkloadError):
            pb.op("x", kind=OpClass.LOAD)

    def test_branch_outcome_recorded(self):
        pb = ProgramBuilder("t")
        pb.branch("b", taken=True)
        pb.branch("b", taken=False)
        trace = pb.build().trace
        assert bool(trace.taken[0]) and not bool(trace.taken[1])

    def test_for_range_backedge_pattern(self):
        pb = ProgramBuilder("t")
        list(pb.for_range("loop", 4))
        taken = list(pb.build().trace.taken)
        assert taken == [True, True, True, False]

    def test_while_cond_passthrough(self):
        pb = ProgramBuilder("t")
        assert pb.while_cond("w", True) is True
        assert pb.while_cond("w", False) is False


class TestSegments:
    def test_static_array_distinct(self):
        pb = ProgramBuilder("t")
        a = pb.static_array(10)
        b = pb.static_array(10)
        assert b >= a + 40

    def test_stack_grows_down(self):
        pb = ProgramBuilder("t")
        f1 = pb.stack_frame(4)
        f2 = pb.stack_frame(4)
        assert f2 < f1

    def test_free_requires_freelist(self):
        pb = ProgramBuilder("t")  # bump allocator
        addr = pb.malloc(8)
        with pytest.raises(WorkloadError):
            pb.free(addr)

    def test_freelist_allocator(self):
        pb = ProgramBuilder("t", allocator="freelist")
        addr = pb.malloc(8)
        pb.free(addr)  # no error

    def test_unknown_allocator(self):
        with pytest.raises(WorkloadError):
            ProgramBuilder("t", allocator="slab")


class TestBuild:
    def test_program_carries_final_image(self):
        pb = ProgramBuilder("t")
        addr = pb.malloc(8)
        pb.store(addr, 5)
        prog = pb.build(description="d", params={"k": 1})
        assert prog.final_image is not None
        assert prog.final_image.read_word(addr) == 5
        assert prog.params == {"k": 1}

    def test_value_helpers_ranges(self):
        pb = ProgramBuilder("t", seed=3)
        for _ in range(50):
            assert 0 <= pb.rand_small() < 16000
            assert pb.rand_large() >= 1 << 30
