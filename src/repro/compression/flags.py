"""Flag constants of the paper's value representation (Figure 2).

``VC`` (Value Compressed) is stored *separately* from the value — in the
cache it becomes the per-word ``VCP`` bit of the primary line. ``VT``
(Value Type) is stored *inside* the compressed 16-bit slot as its top bit
and distinguishes a compressed small value from a compressed pointer.
"""

from __future__ import annotations

__all__ = [
    "VC_UNCOMPRESSED",
    "VC_COMPRESSED",
    "VT_SMALL",
    "VT_POINTER",
    "vt_name",
]

VC_UNCOMPRESSED = 0
VC_COMPRESSED = 1

VT_SMALL = 0
VT_POINTER = 1


def vt_name(vt: int) -> str:
    """Human-readable name of a VT flag value."""
    if vt == VT_SMALL:
        return "small"
    if vt == VT_POINTER:
        return "pointer"
    raise ValueError(f"invalid VT flag {vt!r}")
