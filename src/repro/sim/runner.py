"""High-level run helpers with per-process memoization.

Experiments share (workload, seed, scale) traces and (workload, config)
results; generating a trace or simulating a configuration twice would
double the cost of every figure, so both are cached keyed by their full
parameterization. Caches are plain dicts — safe because programs and
results are treated as immutable once produced.

Observability: trace generation and simulation run under
:mod:`repro.obs.phases` timers, memoization hits/misses are counted (and
published to the metrics registry), and — when a manifest directory is
configured via :func:`repro.obs.enable` — every *fresh* simulation
writes a :class:`~repro.obs.manifest.RunManifest` (memo hits are not
runs and write nothing).
"""

from __future__ import annotations

import time

from repro.errors import ExperimentError
from repro.obs import manifest as _manifest
from repro.obs import phases as _phases
from repro.obs import progress as _progress
from repro.obs import tracer as _trace
from repro.obs.metrics import REGISTRY
from repro.sim.config import SIM_CONFIGS, SimConfig
from repro.sim.machine import Machine
from repro.sim.results import SimResult
from repro.workloads.base import Program
from repro.workloads.registry import generate

__all__ = [
    "run_program",
    "run_workload",
    "run_matrix",
    "clear_caches",
    "get_program",
    "memo_stats",
    "inject_results",
]

_PROGRAM_CACHE: dict[tuple[str, int, float], Program] = {}
#: (workload, seed, scale, cache_config, miss_scale) -> result. The key
#: fully determines the run (programs are pure functions of their key),
#: so results computed in worker processes can be injected here.
_RESULT_CACHE: dict[tuple[str, int, float, str, float], SimResult] = {}

#: Memoization effectiveness counters (exposed in manifests and reports).
_MEMO = {
    "program_hits": 0,
    "program_misses": 0,
    "result_hits": 0,
    "result_misses": 0,
}


def memo_stats() -> dict[str, int]:
    """Snapshot of the runner's memoization hit/miss counters."""
    return dict(_MEMO)


def clear_caches() -> None:
    """Drop all memoized programs and results (counters survive)."""
    _PROGRAM_CACHE.clear()
    _RESULT_CACHE.clear()


def inject_results(results) -> int:
    """Seed the result cache with externally computed cells.

    *results* maps the canonical cell key
    ``(workload, seed, scale, cache_config, miss_scale)`` — the same
    shape the cache uses — to a :class:`SimResult`. This is how the
    supervised matrix engine (and checkpoint resume) hands completed
    cells to the serial figure harnesses: subsequent
    :func:`run_workload` calls with matching parameters are memo hits,
    so nothing is re-simulated. Returns the number of cells injected.
    """
    for key, result in results.items():
        if len(key) != 5:
            raise ExperimentError(
                f"result key {key!r} is not (workload, seed, scale, "
                "cache_config, miss_scale)"
            )
        _RESULT_CACHE[tuple(key)] = result
    return len(results)


def get_program(workload: str, *, seed: int = 1, scale: float = 1.0) -> Program:
    """Generate (or reuse) a workload's program."""
    key = (workload, seed, scale)
    prog = _PROGRAM_CACHE.get(key)
    if prog is None:
        _MEMO["program_misses"] += 1
        REGISTRY.inc("memo.program.misses")
        with _phases.phase("trace_gen"):
            prog = generate(workload, seed=seed, scale=scale)
        _PROGRAM_CACHE[key] = prog
    else:
        _MEMO["program_hits"] += 1
        REGISTRY.inc("memo.program.hits")
    return prog


def run_program(
    program: Program, config: SimConfig | str, *, verify_loads: bool = False
) -> SimResult:
    """Run an already-generated program on a named or explicit config."""
    with _phases.phase("simulate"):
        return Machine(config, verify_loads=verify_loads).run(program)


def _write_manifest(
    config: SimConfig,
    result: SimResult,
    *,
    seed: int,
    scale: float,
    timings: dict[str, float],
    trace_counts: dict[str, int],
) -> None:
    """Record one fresh simulation as a run manifest."""
    manifest = _manifest.RunManifest(
        workload=result.workload,
        config=result.config,
        cache_config=config.cache_config,
        seed=seed,
        scale=scale,
        miss_scale=config.miss_scale,
        timings=timings,
        memoization=memo_stats(),
        headline=result.as_dict(),
        events={
            "l1": result.l1.as_dict(),
            "l2": result.l2.as_dict(),
            "bus": {
                "total_words": result.bus_words,
                "fill_words": result.bus_fill_words,
                "prefetch_words": result.bus_prefetch_words,
                "writeback_words": result.bus_writeback_words,
            },
        },
        trace_events=trace_counts,
    )
    _manifest.write_manifest(manifest)


def run_workload(
    workload: str,
    config: SimConfig | str = "BC",
    *,
    seed: int = 1,
    scale: float = 1.0,
    verify_loads: bool = False,
    use_cache: bool = True,
) -> SimResult:
    """Generate the workload and simulate it on *config* (memoized)."""
    if isinstance(config, str):
        config = SIM_CONFIGS.get(config.upper(), SimConfig(cache_config=config))
    key = (workload, seed, scale, config.cache_config, config.miss_scale)
    if use_cache and not verify_loads:
        hit = _RESULT_CACHE.get(key)
        if hit is not None:
            _MEMO["result_hits"] += 1
            REGISTRY.inc("memo.result.hits")
            return hit
    _MEMO["result_misses"] += 1
    REGISTRY.inc("memo.result.misses")

    tracer = _trace.get_tracer()
    counts_before = dict(tracer.counts) if tracer is not None else {}
    t0 = time.perf_counter()
    program = get_program(workload, seed=seed, scale=scale)
    t1 = time.perf_counter()
    result = run_program(program, config, verify_loads=verify_loads)
    t2 = time.perf_counter()

    if _manifest.manifest_dir() is not None:
        trace_counts: dict[str, int] = {}
        if tracer is not None:
            for event_type, count in tracer.counts.items():
                delta = count - counts_before.get(event_type, 0)
                if delta:
                    trace_counts[event_type] = delta
        _write_manifest(
            config,
            result,
            seed=seed,
            scale=scale,
            timings={"trace_gen": t1 - t0, "simulate": t2 - t1},
            trace_counts=trace_counts,
        )
    if use_cache and not verify_loads:
        _RESULT_CACHE[key] = result
    return result


def prewarm_parallel(
    workloads: list[str],
    configs: list[str],
    *,
    seed: int = 1,
    scale: float = 1.0,
    miss_scales: tuple[float, ...] = (1.0,),
    max_workers: int | None = None,
) -> int:
    """Fill the result cache using all cores; returns cells computed.

    Subsequent :func:`run_workload` calls with matching parameters are
    cache hits, so the (serial) experiment harnesses get the parallel
    speedup without knowing about it.
    """
    from repro.sim.parallel import run_matrix_parallel_configs

    n = 0
    with _phases.phase("prewarm"):
        for miss_scale in miss_scales:
            cfgs = [
                SIM_CONFIGS.get(c.upper(), SimConfig(cache_config=c)).with_miss_scale(
                    miss_scale
                )
                for c in configs
            ]
            results = run_matrix_parallel_configs(
                workloads, cfgs, seed=seed, scale=scale, max_workers=max_workers
            )
            for (workload, cache_config, ms), result in results.items():
                _RESULT_CACHE[(workload, seed, scale, cache_config, ms)] = result
                n += 1
    return n


def run_matrix(
    workloads: list[str],
    configs: list[str],
    *,
    seed: int = 1,
    scale: float = 1.0,
    progress: bool = False,
) -> dict[tuple[str, str], SimResult]:
    """Simulate the full (workload x config) matrix the figures are built
    from; returns ``{(workload, config): result}``."""
    out: dict[tuple[str, str], SimResult] = {}
    total = len(workloads) * len(configs)
    done = 0
    for workload in workloads:
        for config in configs:
            if progress:
                done += 1
                _progress.report(
                    f"running {workload} on {config} ({done}/{total})"
                )
            out[(workload, config)] = run_workload(
                workload, config, seed=seed, scale=scale
            )
    return out
