"""Deterministic random-number-generator construction.

Every stochastic choice in the library (workload shapes, value
distributions) flows through a :class:`numpy.random.Generator` built here,
so a (workload, seed) pair always produces the identical trace — a
requirement for the paper's Figure 14 methodology, which reruns the same
program under two latency configurations and relies on the misses landing
on the same instructions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "derive_seed"]

_DERIVE_SALT = 0x9E37_79B9  # golden-ratio odd constant, splitmix-style


def make_rng(seed: int) -> np.random.Generator:
    """Create a PCG64 generator from an integer seed."""
    if seed < 0:
        raise ValueError("seed must be non-negative")
    return np.random.default_rng(seed)


def derive_seed(seed: int, *labels: int | str) -> int:
    """Derive a stable sub-seed from a master seed and a label path.

    Used to give each workload phase its own independent stream without the
    phases perturbing one another when one of them changes how much
    randomness it consumes.
    """
    h = seed & 0xFFFF_FFFF_FFFF_FFFF
    for label in labels:
        if isinstance(label, str):
            data = label.encode("utf-8")
        else:
            data = int(label).to_bytes(8, "little", signed=False)
        for b in data:
            h ^= b
            h = (h * 0x100_0000_01B3) & 0xFFFF_FFFF_FFFF_FFFF  # FNV-1a step
        h ^= _DERIVE_SALT
    return h
