"""Instruction-cache model (paper Figure 9: I-cache hit 1, miss 10).

A tag-only direct-mapped cache consulted by the fetch stage whenever it
crosses into a new instruction line; a miss stalls fetch for the miss
latency. Disabled by default (``CoreConfig.icache_enabled``) because the
synthetic workloads' kernels are a few hundred static instructions —
they fit any realistic I-cache and the model then only costs time; it
exists so the fetch path is *modeled*, and its cost measurable, rather
than silently assumed perfect. Enabling it with the paper's 8 KB
geometry leaves every figure unchanged (asserted in the tests), which is
itself the right result for kernels this small.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.intmath import is_pow2, log2i

__all__ = ["SimpleICache"]


class SimpleICache:
    """Tag-only direct-mapped instruction cache."""

    def __init__(
        self,
        *,
        size_bytes: int = 8 * 1024,
        line_bytes: int = 64,
        miss_latency: int = 10,
    ) -> None:
        if not (is_pow2(size_bytes) and is_pow2(line_bytes)):
            raise ConfigurationError("icache geometry must be powers of two")
        if size_bytes < line_bytes:
            raise ConfigurationError("icache smaller than one line")
        if miss_latency < 0:
            raise ConfigurationError("icache miss latency must be non-negative")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.miss_latency = miss_latency
        self.line_shift = log2i(line_bytes)
        self.n_sets = size_bytes // line_bytes
        self._tags = np.full(self.n_sets, -1, dtype=np.int64)
        self._last_line = -1
        self.accesses = 0
        self.misses = 0

    def fetch_penalty(self, pc: int) -> int:
        """Latency added to fetching the instruction at *pc*.

        Zero within the same line as the previous fetch (the common
        sequential case costs nothing extra), zero on a tag hit, the miss
        latency on a tag miss (the line is then installed).
        """
        line_no = pc >> self.line_shift
        if line_no == self._last_line:
            return 0
        self._last_line = line_no
        self.accesses += 1
        idx = line_no % self.n_sets
        if self._tags[idx] == line_no:
            return 0
        self._tags[idx] = line_no
        self.misses += 1
        return self.miss_latency

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0
