"""The paper's prefix scheme as a :class:`~.protocol.Codec` ("cpp").

This is the existing sign/pointer-prefix compressor of
:mod:`repro.compression.scheme` lifted behind the formal protocol: the
scheme object itself is the per-word facet (:attr:`Codec.word_scheme`),
so the CPP cache, the fastscalar closures and the
:class:`~repro.compression.comptable.ImageCompTable` keep their existing
O(1)/vectorized probes unchanged — the default codec perturbs nothing.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.compression.codec import pack_line as _scheme_pack_line
from repro.compression.codecs.protocol import (
    Codec,
    EncodedLine,
    LinePack,
    TagOverhead,
)
from repro.compression.scheme import CompressClass, CompressionScheme, PAPER_SCHEME
from repro.compression.timing import CodecTiming, GateDelayModel
from repro.utils.bitops import MASK32

__all__ = ["CPPCodec"]


class CPPCodec(Codec):
    """Prefix elimination: small values and same-chunk pointers → 16 bits.

    Token stream: one ``(CompressClass, payload)`` pair per word;
    incompressible words carry their 32-bit literal. Per-word VC flags
    (1 bit each) travel with the line, matching
    :func:`repro.compression.codec.pack_line`.
    """

    name = "cpp"

    def __init__(self, scheme: CompressionScheme = PAPER_SCHEME) -> None:
        self.scheme = scheme
        self.word_scheme = scheme

    # ---- line coding ------------------------------------------------------

    def compress_line(
        self, values: Sequence[int], addrs: Sequence[int]
    ) -> EncodedLine:
        """Classify each word and keep its (class, payload) token plus VC flag."""
        scheme = self.scheme
        tokens = []
        bits = 0
        for value, addr in zip(values, addrs):
            value &= MASK32
            cls = scheme.classify(value, addr & MASK32)
            if cls is CompressClass.INCOMPRESSIBLE:
                tokens.append((cls, value))
                bits += 32
            else:
                tokens.append((cls, scheme.payload_of(value)))
                bits += scheme.compressed_bits
        bits += len(tokens)  # one VC flag per word
        return EncodedLine(
            codec=self.name, n_words=len(tokens), tokens=tuple(tokens), bits=bits
        )

    def decompress_line(
        self, encoded: EncodedLine, addrs: Sequence[int]
    ) -> list[int]:
        """Expand each token back to 32 bits (pointers need their address)."""
        scheme = self.scheme
        out = []
        for (cls, payload), addr in zip(encoded.tokens, addrs):
            if cls is CompressClass.INCOMPRESSIBLE:
                out.append(payload)
            elif cls is CompressClass.SMALL:
                out.append(scheme.expand_small(payload) & MASK32)
            else:
                out.append(scheme.expand_pointer(payload, addr & MASK32))
        return out

    def pack_line(
        self, values: Sequence[int], addrs: Sequence[int]
    ) -> LinePack:
        """Bit accounting via the paper's slot-packing rules (§2.1)."""
        result = _scheme_pack_line(values, addrs, self.scheme)
        return LinePack(
            n_words=result.n_words,
            n_compressed=result.n_compressible,
            data_bits=result.payload_bits,
            meta_bits=result.flag_bits,
        )

    # ---- cost models ------------------------------------------------------

    @property
    def timing(self) -> CodecTiming:
        """Both directions hidden (§3.2): 8/2 gate levels, zero cycles."""
        gates = GateDelayModel(self.scheme)
        return CodecTiming(
            compress_cycles=0,
            decompress_cycles=0,
            compress_gate_delays=gates.compress_gate_delays,
            decompress_gate_delays=gates.decompress_gate_delays,
        )

    def tag_overhead(self) -> TagOverhead:
        """One VC flag per word in the tag array (paper Figure 2); the VT
        bit lives inside the compressed slot and is already counted in
        the stream."""
        return TagOverhead(per_word_bits=1.0, per_line_bits=0.0)
