"""Request handlers of the experiment service (pure, synchronous).

Each handler is ``(service, request, **path_params) -> Response`` with
no asyncio in sight — the app runs them in a thread so slow store I/O
never stalls the accept loop, and the tests call them directly.

The degraded-mode contract every read endpoint honors:

* **Present and verified** → ``200`` with the full payload.
* **Corrupt** → the store quarantines it on read, the handler reopens
  and re-enqueues the cell, and the client sees the same ``202`` it
  would for a never-computed cell — corruption is a cache miss, not an
  error.
* **Pending** → ``202`` with a ``Retry-After`` header and a partial
  body annotating exactly which cells are holes and why.
* **Permanently failed** → ``200`` with ``status: "failed"`` and the
  queue's failure record; the client can decide to ``reopen``.

Nothing here ever lets a traceback reach the wire: typed errors map to
``400``, everything else to a ``500`` JSON envelope (see the app).
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field

from repro.errors import UsageError
from repro.experiments.registry import (
    EXPERIMENTS,
    MATRIX_CONFIGS,
    NO_MATRIX_FIGURES,
    miss_scales_for,
)
from repro.sim import fault as _fault
from repro.store.campaign import campaign_name
from repro.store.queue import CampaignQueue
from repro.workloads.registry import WORKLOAD_NAMES

__all__ = ["Request", "Response", "ROUTES", "dispatch", "enqueue_matrix"]

#: Seconds a 202 asks the client to wait before polling again.
RETRY_AFTER = 2


@dataclass
class Request:
    """One parsed HTTP request (the app fills it, handlers read it)."""

    method: str
    path: str
    params: dict = field(default_factory=dict)
    body: dict = field(default_factory=dict)


@dataclass
class Response:
    """One JSON response; the app serializes and writes it."""

    status: int = 200
    payload: dict = field(default_factory=dict)
    headers: dict = field(default_factory=dict)

    @classmethod
    def accepted(cls, payload: dict, retry_after: int = RETRY_AFTER):
        return cls(202, payload, {"Retry-After": str(retry_after)})


# -- parameter parsing -------------------------------------------------------


def _param(request: Request, name: str, default=None, *, cast=str):
    raw = request.params.get(name, request.body.get(name, default))
    if raw is None:
        return None
    try:
        return cast(raw)
    except (TypeError, ValueError) as exc:
        raise UsageError(f"bad value for {name!r}: {raw!r}") from exc


def _require(request: Request, name: str, *, cast=str):
    value = _param(request, name, cast=cast)
    if value is None:
        raise UsageError(f"missing required parameter {name!r}")
    return value


def _check_workload(workload: str) -> str:
    if workload not in WORKLOAD_NAMES:
        raise UsageError(
            f"unknown workload {workload!r}; known: {', '.join(WORKLOAD_NAMES)}"
        )
    return workload


def _check_config(config: str) -> str:
    if config not in MATRIX_CONFIGS:
        raise UsageError(
            f"unknown cache config {config!r}; known: {', '.join(MATRIX_CONFIGS)}"
        )
    return config


def _cell_spec(request: Request) -> tuple:
    """(task, key, seed, scale) for one matrix cell from the request."""
    workload = _check_workload(_require(request, "workload"))
    config = _check_config(_require(request, "config"))
    seed = _param(request, "seed", 1, cast=int)
    scale = _param(request, "scale", 1.0, cast=float)
    miss_scale = _param(request, "miss_scale", 1.0, cast=float)
    task = (workload, config, miss_scale, seed, scale)
    return task, _fault.matrix_task_key(task), seed, scale


def _queue_for(service, seed: int, scale: float) -> CampaignQueue:
    store = service.store()
    return CampaignQueue(
        store.root / "queue",
        campaign_name(seed, scale),
        lease_ttl=service.lease_ttl,
    )


def _failed_record(queue: CampaignQueue, key: tuple) -> dict | None:
    for record in queue.failed_records():
        if tuple(record.get("key", ())) == key:
            return record
    return None


def _result_payload(result) -> dict:
    from repro.sim.results_io import result_to_full_dict

    return result_to_full_dict(result)


# -- handlers ----------------------------------------------------------------


def healthz(service, request: Request) -> Response:
    """Liveness: pid and uptime, nothing that can block."""
    return Response(200, {"status": "ok", "pid": service.pid,
                          "uptime": round(service.uptime(), 3)})


def stats(service, request: Request) -> Response:
    """Store stats, per-campaign queue snapshots, last GC report."""
    store = service.store()
    campaigns = {}
    queue_root = store.root / "queue"
    if queue_root.is_dir():
        for entry in sorted(queue_root.iterdir()):
            if entry.is_dir():
                queue = CampaignQueue(
                    queue_root, entry.name, lease_ttl=service.lease_ttl
                )
                campaigns[entry.name] = queue.snapshot()
    return Response(
        200,
        {
            "store": store.stats(),
            "campaigns": campaigns,
            "gc": service.last_gc,
            "uptime": round(service.uptime(), 3),
        },
    )


def workers(service, request: Request) -> Response:
    """The worker pool as the supervisor sees it (empty if read-only)."""
    if service.pool is None:
        return Response(200, {"size": 0, "workers": []})
    return Response(200, service.pool.status())


def get_result(service, request: Request) -> Response:
    """One matrix cell: 200 complete/failed, or 202 pending."""
    task, key, seed, scale = _cell_spec(request)
    store = service.store()
    result = store.get(key)  # verified; corrupt records quarantine here
    if result is not None:
        return Response(
            200,
            {
                "status": "complete",
                "key": list(key),
                "digest": store.digest_of(key),
                "result": _result_payload(result),
            },
        )
    queue = _queue_for(service, seed, scale)
    failed = _failed_record(queue, key)
    if failed is not None:
        return Response(
            200, {"status": "failed", "key": list(key), "failure": failed}
        )
    # Miss (or just-quarantined record): (re)open the cell and enqueue.
    queue.reopen(key)
    queue.enqueue(key, task)
    return Response.accepted(
        {
            "status": "pending",
            "key": list(key),
            "campaign": queue.campaign,
            "queue": queue.snapshot(),
        },
        service.retry_after,
    )


def _figure_cells(name: str, workloads, seed: int, scale: float):
    """Every (task, key) the figure's slice of the matrix needs."""
    cells = []
    for workload in workloads:
        for config in MATRIX_CONFIGS:
            for miss_scale in miss_scales_for([name]):
                task = (workload, config, miss_scale, seed, scale)
                cells.append((task, _fault.matrix_task_key(task)))
    return cells


def _output_payload(output) -> dict:
    return {
        "figure": output.figure,
        "title": output.title,
        "headers": list(output.headers),
        "rows": [list(r) for r in output.rows],
        "series": output.series,
        "unit": output.unit,
        "baseline_value": output.baseline_value,
        "paper_reference": output.paper_reference,
        "notes": output.notes,
    }


def get_figure(service, request: Request, *, name: str) -> Response:
    """One figure: render when every cell is in, else 202 with holes."""
    if name not in EXPERIMENTS:
        raise UsageError(
            f"unknown figure {name!r}; known: {', '.join(EXPERIMENTS)}"
        )
    raw = _param(request, "workloads")
    workloads = [
        _check_workload(w) for w in (raw.split(",") if raw else WORKLOAD_NAMES)
    ]
    seed = _param(request, "seed", 1, cast=int)
    scale = _param(request, "scale", 1.0, cast=float)

    from repro.experiments.registry import run_experiment

    if name in NO_MATRIX_FIGURES:
        # Analytical figures need no matrix: render right here.
        output = run_experiment(name, workloads, seed=seed, scale=scale)
        return Response(
            200, {"status": "complete", "output": _output_payload(output)}
        )

    store = service.store()
    queue = _queue_for(service, seed, scale)
    results, holes, failed = {}, [], []
    for task, key in _figure_cells(name, workloads, seed, scale):
        result = store.get(key)
        if result is not None:
            results[key] = result
            continue
        record = _failed_record(queue, key)
        if record is not None:
            failed.append({"key": list(key), "failure": record})
            continue
        queue.reopen(key)
        queue.enqueue(key, task)
        holes.append(list(key))
    if holes:
        return Response.accepted(
            {
                "status": "pending",
                "figure": name,
                "campaign": queue.campaign,
                "complete": len(results),
                "holes": holes,
                "failed": failed,
                "queue": queue.snapshot(),
            },
            service.retry_after,
        )

    from repro.sim.runner import inject_results

    inject_results(results)
    output = run_experiment(name, workloads, seed=seed, scale=scale)
    payload = {"status": "complete", "output": _output_payload(output)}
    if failed:
        # Render proceeds with holes for permanently failed cells; the
        # client sees exactly which cells are missing and why.
        payload["status"] = "partial"
        payload["failed"] = failed
    return Response(200, payload)


def enqueue_matrix(
    service,
    *,
    workloads,
    configs=MATRIX_CONFIGS,
    miss_scales=(1.0,),
    seed: int = 1,
    scale: float = 1.0,
) -> dict:
    """Enqueue one campaign matrix; already-stored cells are marked done.

    Shared by ``POST /v1/campaign`` and the ``--enqueue`` bootstrap.
    """
    store = service.store()
    queue = _queue_for(service, seed, scale)
    enqueued = reused = 0
    for workload in workloads:
        for config in configs:
            for miss_scale in miss_scales:
                task = (workload, config, miss_scale, seed, scale)
                key = _fault.matrix_task_key(task)
                if store.get(key) is not None:
                    queue.ensure_done(key, worker="serve")
                    reused += 1
                else:
                    queue.reopen(key)
                    if queue.enqueue(key, task):
                        enqueued += 1
    return {
        "campaign": queue.campaign,
        "enqueued": enqueued,
        "reused": reused,
        "total": len(workloads) * len(configs) * len(miss_scales),
    }


def post_campaign(service, request: Request) -> Response:
    """Enqueue a whole matrix; returns the campaign id to poll."""
    body = request.body
    figures = body.get("figures")
    if figures:
        unknown = [f for f in figures if f not in EXPERIMENTS]
        if unknown:
            raise UsageError(f"unknown figures: {', '.join(unknown)}")
        miss_scales = miss_scales_for(figures)
    else:
        miss_scales = tuple(body.get("miss_scales") or (1.0,))
    workloads = [
        _check_workload(w) for w in (body.get("workloads") or WORKLOAD_NAMES)
    ]
    configs = [_check_config(c) for c in (body.get("configs") or MATRIX_CONFIGS)]
    seed = _param(request, "seed", 1, cast=int)
    scale = _param(request, "scale", 1.0, cast=float)
    summary = enqueue_matrix(
        service,
        workloads=workloads,
        configs=configs,
        miss_scales=miss_scales,
        seed=seed,
        scale=scale,
    )
    queue = _queue_for(service, seed, scale)
    summary["status"] = "accepted"
    summary["queue"] = queue.snapshot()
    return Response.accepted(summary, service.retry_after)


def get_campaign(service, request: Request, *, name: str) -> Response:
    """Progress of one campaign (404 when it never existed)."""
    store = service.store()
    root = store.root / "queue" / name
    if not root.is_dir():
        return Response(
            404, {"error": "NotFound", "message": f"no campaign {name!r}"}
        )
    queue = CampaignQueue(
        store.root / "queue", name, lease_ttl=service.lease_ttl
    )
    snapshot = queue.snapshot()
    drained = queue.drained()
    payload = {
        "campaign": name,
        "queue": snapshot,
        "drained": drained,
        "failed": queue.failed_records(),
    }
    if drained:
        return Response(200, payload)
    payload["status"] = "running"
    return Response.accepted(payload, service.retry_after)


def get_gc(service, request: Request) -> Response:
    """Dry-run GC report (what *would* be reclaimed)."""
    from repro.store.gc import gc_store

    budget = _param(request, "budget", service.gc_budget_bytes, cast=int)
    report = gc_store(service.store(), budget_bytes=budget, dry_run=True)
    return Response(200, report.as_dict())


def post_gc(service, request: Request) -> Response:
    """Run one real GC pass now (the background task uses the same path)."""
    budget = _param(request, "budget", service.gc_budget_bytes, cast=int)
    report = service.run_gc(budget_bytes=budget)
    return Response(200, report.as_dict())


# -- routing -----------------------------------------------------------------

ROUTES = [
    ("GET", re.compile(r"^/v1/healthz$"), healthz),
    ("GET", re.compile(r"^/v1/stats$"), stats),
    ("GET", re.compile(r"^/v1/workers$"), workers),
    ("GET", re.compile(r"^/v1/result$"), get_result),
    ("GET", re.compile(r"^/v1/figure/(?P<name>[\w.]+)$"), get_figure),
    ("POST", re.compile(r"^/v1/campaign$"), post_campaign),
    ("GET", re.compile(r"^/v1/campaign/(?P<name>[\w.-]+)$"), get_campaign),
    ("GET", re.compile(r"^/v1/gc$"), get_gc),
    ("POST", re.compile(r"^/v1/gc$"), post_gc),
]


def dispatch(service, request: Request) -> Response:
    """Route one request; 404/405 for unknown paths and methods."""
    path_matched = False
    for method, pattern, handler in ROUTES:
        match = pattern.match(request.path)
        if match is None:
            continue
        path_matched = True
        if method != request.method:
            continue
        started = time.perf_counter()
        response = handler(service, request, **match.groupdict())
        service.observe_request(
            handler.__name__, response.status, time.perf_counter() - started
        )
        return response
    if path_matched:
        return Response(
            405,
            {"error": "MethodNotAllowed", "message": request.method},
        )
    return Response(
        404, {"error": "NotFound", "message": f"no route for {request.path}"}
    )
