"""Protection models: how (and whether) corrupted state is noticed.

Three models, checked wherever protected state is *used* — a CPU access
resolving to the corrupted word, a set probe reading the corrupted tag
or flag bits, a serve or eviction reading the frame out, an off-chip
transfer, a DRAM read:

``none``
    No redundancy. Corruption is never detected; it is either masked
    (overwritten or evicted clean before use) or becomes silent data
    corruption.
``parity``
    One parity bit per protected unit (a 32-bit physical slot plus its
    per-word PA/AA/VCP flag bits). Detects any odd number of flipped
    bits; corrects nothing — a detection hands off to the recovery
    policy (:mod:`repro.inject.recover`).
``secded``
    A SECDED (extended Hamming) code over each physical slot plus its
    flag bits — the natural granule for CPP, where one slot may carry
    two compressed values whose integrity must be judged together.
    Corrects single-bit upsets in place; double upsets are detected and
    handed to the recovery policy; triple-and-worse upsets can alias to
    a valid codeword and are modelled as undetected.

Latency costs route through :class:`repro.compression.timing.ECCDelayModel`,
the same gate-level arithmetic the paper uses for the (de)compressor:
a check that fits in the per-cycle gate budget is hidden under tag
match and free, anything wider costs whole cycles. The session
accumulates those modelled cycles in the ``check_cycles`` /
``recovery_cycles`` counters (they are reported, not fed back into the
pipeline model).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.timing import ECCDelayModel
from repro.errors import ConfigurationError

__all__ = ["PROTECTION_NAMES", "Protection", "build_protection"]

#: Valid ``--protect`` choices.
PROTECTION_NAMES = ("none", "parity", "secded")

#: Per-word flag bits co-protected with each slot (PA, AA, VCP).
_FLAG_BITS = 3

#: Default gate budget per pipeline cycle; 8 is the paper's compressor
#: depth, which §3.2 argues fits comfortably in a cycle.
_GATE_DELAYS_PER_CYCLE = 8


@dataclass(frozen=True)
class Protection:
    """One protection model with its modelled latency costs.

    ``detect_cycles`` is charged on every protection check at a use
    point; ``correct_cycles`` additionally on every in-place SECDED
    correction. Both are usually zero — the trees fit the cycle budget.
    """

    name: str
    detect_cycles: int = 0
    correct_cycles: int = 0

    def detects(self, n_bits: int) -> bool:
        """Does reading the protected unit expose *n_bits* flipped bits?"""
        if self.name == "parity":
            return n_bits % 2 == 1
        if self.name == "secded":
            return 1 <= n_bits <= 2
        return False

    def corrects(self, n_bits: int) -> bool:
        """Can the model repair *n_bits* flipped bits in place?"""
        return self.name == "secded" and n_bits == 1


def build_protection(
    name: str,
    *,
    slot_bits: int = 32,
    gate_delays_per_cycle: int = _GATE_DELAYS_PER_CYCLE,
) -> Protection:
    """Build a :class:`Protection`, pricing it via :class:`ECCDelayModel`.

    *slot_bits* is the physical slot width the code covers (32 for the
    frame's word slots); the per-word flag bits ride in the same unit.
    """
    key = name.strip().lower()
    if key not in PROTECTION_NAMES:
        raise ConfigurationError(
            f"unknown protection model {name!r}; "
            f"choose from {', '.join(PROTECTION_NAMES)}"
        )
    if key == "none":
        return Protection("none")
    delays = ECCDelayModel(data_bits=slot_bits + _FLAG_BITS)
    if key == "parity":
        return Protection(
            "parity",
            detect_cycles=delays.cycles(
                delays.parity_gate_delays, gate_delays_per_cycle
            ),
        )
    return Protection(
        "secded",
        detect_cycles=delays.cycles(
            delays.syndrome_gate_delays, gate_delays_per_cycle
        ),
        correct_cycles=delays.cycles(
            delays.correct_gate_delays, gate_delays_per_cycle
        ),
    )
