"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without also
catching programming errors (``TypeError`` etc.).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "MemoryError_",
    "UnmappedAddressError",
    "AlignmentError",
    "AllocationError",
    "TraceError",
    "CacheProtocolError",
    "WorkloadError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid simulator, cache or workload configuration was supplied."""


class MemoryError_(ReproError):
    """Base class for simulated-memory errors.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError` (which indicates the *host* ran out of memory).
    """


class UnmappedAddressError(MemoryError_):
    """A simulated access touched an address with no backing page."""

    def __init__(self, addr: int) -> None:
        super().__init__(f"access to unmapped simulated address {addr:#010x}")
        self.addr = addr


class AlignmentError(MemoryError_):
    """A simulated access violated the required alignment."""

    def __init__(self, addr: int, alignment: int) -> None:
        super().__init__(
            f"address {addr:#010x} is not aligned to {alignment} bytes"
        )
        self.addr = addr
        self.alignment = alignment


class AllocationError(MemoryError_):
    """The simulated heap allocator could not satisfy a request."""


class TraceError(ReproError):
    """An instruction trace is malformed or used inconsistently."""


class CacheProtocolError(ReproError):
    """An internal cache invariant was violated.

    These indicate bugs in a cache model (or an externally-driven misuse of
    the level-to-level protocol), never user error; they are raised eagerly
    so model bugs surface as failures instead of silently skewing results.
    """


class WorkloadError(ReproError):
    """A workload generator was asked for something it cannot produce."""


class ExperimentError(ReproError):
    """An experiment harness failure (unknown figure id, bad matrix, ...)."""
