"""Whole-image compressibility precompute (fast backend, tentpole §2).

The CPP hot paths repeatedly classify words that come straight out of
the memory image: demand fills classify the fetched line, the
piggy-backed affiliated prefetch classifies its payload, and compressed
bus transfers count compressible words to charge packed traffic. All of
those classifications are pure functions of *(word value, word
address)* — so for data read from memory they are pure functions of the
image itself.

:class:`ImageCompTable` memoizes that function: one 1024-bit mask per
touched 4 KB page (bit *i* = word *i* of the page is compressible under
the table's scheme), built lazily with the vectorized classifier from
:mod:`repro.compression.vectorized` and updated incrementally when
:class:`~repro.memory.main_memory.MainMemory` writes lines back. A
line's compressibility mask becomes an O(1) shift-and-mask probe
(:meth:`line_comp`) instead of a per-word classifier loop.

The table is attached by the Machine only under the ``fast`` backend
(and never during fault-injection campaigns, whose hooks mutate values
in flight); the ``reference`` backend always classifies from scratch, so
backend-vs-backend lockstep genuinely exercises both code paths.
"""

from __future__ import annotations

import numpy as np

from repro.compression.fastscalar import compressibility_fn
from repro.compression.vectorized import compressible_mask
from repro.errors import UnmappedAddressError
from repro.memory.image import MemoryImage, PAGE_WORDS, WORD_BYTES

__all__ = ["ImageCompTable"]

_PAGE_SHIFT = 12
_PAGE_MASK = (1 << _PAGE_SHIFT) - 1


class ImageCompTable:
    """Per-page compressibility bitmasks mirroring a :class:`MemoryImage`.

    The invariant: for every built page, bit *i* of its mask equals
    ``scheme.is_compressible(image word i of the page, its address)``
    for the image's *current* content. Writers must call
    :meth:`note_write` (or :meth:`invalidate`) for every image mutation;
    :class:`~repro.memory.main_memory.MainMemory` does so once a table
    is attached.
    """

    __slots__ = ("image", "scheme", "_is_comp", "_masks")

    def __init__(self, image: MemoryImage, scheme) -> None:
        self.image = image
        self.scheme = scheme
        self._is_comp = compressibility_fn(scheme)
        self._masks: dict[int, int] = {}

    # ---- probes ---------------------------------------------------------------

    def line_comp(self, addr: int, n_words: int) -> int | None:
        """Compressibility mask of the *n_words* line at *addr* (O(1)).

        Lines are line-size aligned and pages are line-size multiples,
        so a line never straddles a page boundary on the hot paths; a
        straddling probe (diagnostics, oversized spans) is still
        answered correctly by stitching the covered pages' masks
        together. Returns ``None`` when any covered page cannot be
        classified (a strict image with unmapped words inside the
        page) — callers fall back to classifying.
        """
        off = (addr & _PAGE_MASK) >> 2
        if off + n_words <= PAGE_WORDS:
            mask = self._page_mask(addr >> _PAGE_SHIFT)
            if mask is None:
                return None
            return (mask >> off) & ((1 << n_words) - 1)
        # Straddle: words past the page end live in the following
        # page(s); a plain shift would misreport them as incompressible.
        out = 0
        done = 0
        page_no = addr >> _PAGE_SHIFT
        while done < n_words:
            take = min(PAGE_WORDS - off, n_words - done)
            mask = self._page_mask(page_no)
            if mask is None:
                return None
            out |= ((mask >> off) & ((1 << take) - 1)) << done
            done += take
            page_no += 1
            off = 0
        return out

    def _page_mask(self, page_no: int) -> int | None:
        """The built (or lazily built) mask of *page_no*, else ``None``."""
        mask = self._masks.get(page_no)
        if mask is None:
            try:
                mask = self._build(page_no)
            except UnmappedAddressError:
                return None
            self._masks[page_no] = mask
        return mask

    def _build(self, page_no: int) -> int:
        base = page_no << _PAGE_SHIFT
        values = self.image.read_words(base, PAGE_WORDS)
        addrs = base + WORD_BYTES * np.arange(PAGE_WORDS, dtype=np.uint32)
        comp = compressible_mask(values, addrs.astype(np.uint32), self.scheme)
        return int.from_bytes(
            np.packbits(comp, bitorder="little").tobytes(), "little"
        )

    # ---- incremental maintenance ---------------------------------------------

    def note_write(
        self, addr: int, values, mask: int, comp: int | None = None
    ) -> None:
        """Refresh table bits after *mask*-selected *values* hit the image.

        *comp*, when given, is the writer's compressibility mask for the
        written words under this table's scheme (the VCP memo of a
        same-scheme evicted line); ``None`` classifies here. Unbuilt
        pages stay lazy — their eventual build reads the post-write
        image.
        """
        page_no = addr >> _PAGE_SHIFT
        off = (addr & _PAGE_MASK) >> 2
        if off + len(values) > PAGE_WORDS:
            # Page-straddling writes don't occur on the line-transfer
            # paths; drop rather than split to stay obviously correct.
            # Every covered page must go — a wide write can span more
            # than two, and any survivor would keep a stale mask.
            if values:
                last_page = (addr + ((len(values) - 1) << 2)) >> _PAGE_SHIFT
            else:
                last_page = page_no
            for p in range(page_no, last_page + 1):
                self._masks.pop(p, None)
            return
        page_mask = self._masks.get(page_no)
        if page_mask is None:
            return
        if comp is None:
            comp = 0
            is_comp = self._is_comp
            m = mask
            while m:
                low = m & -m
                i = low.bit_length() - 1
                m ^= low
                if is_comp(int(values[i]), addr + (i << 2)):
                    comp |= low
        self._masks[page_no] = (page_mask | ((comp & mask) << off)) & ~(
            (mask & ~comp) << off
        )

    def invalidate(self, addr: int) -> None:
        """Forget the page holding *addr* (rebuilt lazily on next probe)."""
        self._masks.pop(addr >> _PAGE_SHIFT, None)

    @property
    def n_pages(self) -> int:
        """Number of pages with a built mask (lazy pages excluded)."""
        return len(self._masks)
