"""Guard the zero-cost contract of the observability layer.

Instrumented hot paths pay one module-attribute load plus a branch when
tracing is off (``if _trace.ACTIVE:``) — nothing else. These benchmarks
compare the same cache-hierarchy drive loop with tracing disarmed
vs. armed, and exercise the raw guarded-emit pattern in isolation.
``tools/check_obs_overhead.py`` turns the disarmed comparison into a
pass/fail gate for CI (<= 2% overhead with obs disabled).
"""

import numpy as np
import pytest

import repro.obs as obs
from repro.caches.hierarchy import build_hierarchy
from repro.memory.image import MemoryImage
from repro.memory.main_memory import MainMemory
from repro.obs import tracer as _trace

BASE = 0x1000_0000


@pytest.fixture(autouse=True)
def _obs_disarmed():
    obs.disable()
    yield
    obs.disable()


def _mixed_addrs(n):
    rng = np.random.default_rng(5)
    seq = (BASE + 4 * (np.arange(n) % 4096)).astype(np.int64)
    rand = (BASE + 4 * rng.integers(0, 4096, n)).astype(np.int64)
    out = np.where(rng.random(n) < 0.5, seq, rand)
    return [int(a) for a in out]


def _drive(config, addrs):
    h = build_hierarchy(config, MainMemory(MemoryImage(), latency=100))
    latency = 0
    for i, addr in enumerate(addrs):
        if i % 4 == 0:
            h.store(addr, i, i)
        else:
            latency += h.load(addr, i).latency
    return latency


@pytest.mark.parametrize("config", ["BC", "CPP"])
def test_hierarchy_with_obs_disabled(benchmark, config):
    """The instrumented simulator with tracing off — the baseline that
    must stay within 2% of the pre-instrumentation cost."""
    addrs = _mixed_addrs(20_000)
    assert not obs.enabled()
    assert benchmark(_drive, config, addrs) > 0


@pytest.mark.parametrize("config", ["BC", "CPP"])
def test_hierarchy_with_obs_enabled(benchmark, config):
    """Same drive with tracing armed — the price of a full event stream."""
    addrs = _mixed_addrs(20_000)
    obs.enable(capacity=65536)

    def drive_traced():
        _trace.get_tracer().clear()
        return _drive(config, addrs)

    assert benchmark(drive_traced) > 0
    benchmark.extra_info["events"] = _trace.get_tracer().seq


def test_guarded_emit_disabled_is_branch_only(benchmark):
    """The raw guard pattern: with tracing off, a guarded emit site costs
    one attribute load and a branch per event."""
    assert not _trace.ACTIVE

    def spin(n=100_000):
        hits = 0
        for i in range(n):
            if _trace.ACTIVE:
                _trace.emit("cache_access", addr=i, hit=True)
                hits += 1
        return hits

    assert benchmark(spin) == 0


def test_guarded_emit_enabled(benchmark):
    """The same loop with tracing armed, for the per-event cost."""
    obs.enable(capacity=4096, sample_every=16)

    def spin(n=100_000):
        _trace.get_tracer().clear()
        for i in range(n):
            if _trace.ACTIVE:
                _trace.emit("cache_access", addr=i, hit=True)
        return _trace.get_tracer().seq

    assert benchmark(spin) == 100_000
