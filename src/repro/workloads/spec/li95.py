"""spec95.130.li — xlisp-style interpreter: cons cells, eval, GC sweep.

Three phases modeled on the interpreter's behaviour:

1. **build** — allocate cons cells ``{type, flags, car, cdr}`` forming
   many small lists (the node layout of the paper's own motivating
   example in §2.2: two pointers, a type field, and a value);
2. **eval** — repeatedly traverse lists summing elements whose type
   matches, i.e. literally the ``if (p->type == T) sum += p->info``
   loop of paper Figure 5;
3. **mark/sweep** — a GC pass: pointer-chasing mark over the lists, then
   a *sequential* sweep over the whole cell arena (the phase where
   next-line prefetching shines).

Cell fields are two heap pointers + two small ints — the strongly
compressible profile the paper highlights for 130.li.
"""

from __future__ import annotations

from repro.workloads.base import Program, ProgramBuilder, scaled

__all__ = ["build", "DEFAULT_LISTS", "DEFAULT_LIST_LEN", "DEFAULT_EVALS"]

DEFAULT_LISTS = 120
DEFAULT_LIST_LEN = 30
DEFAULT_EVALS = 5

_TYPE = 0
_FLAGS = 4
_CAR = 8  # value for leaf cells, pointer for list cells
_CDR = 12
_CELL_BYTES = 16

_T_INT, _T_CONS, _T_SYM = 1, 2, 3


def build(seed: int = 1, scale: float = 1.0) -> Program:
    """Generate the li program; *scale* adjusts eval-loop count."""
    n_lists = DEFAULT_LISTS
    list_len = DEFAULT_LIST_LEN
    evals = scaled(DEFAULT_EVALS, scale, minimum=1)

    pb = ProgramBuilder("spec95.130.li", seed)
    pb.op("g", (), label="li.entry")

    # ---- phase 1: build the lists -------------------------------------------
    heads: list[int] = []
    cells: list[int] = []
    values: dict[int, tuple[int, int]] = {}  # addr -> (type, car value)
    for _li in pb.for_range("li.mklists", n_lists, cond_srcs=("g",)):
        prev = 0
        for _k in pb.for_range("li.mkcells", list_len, cond_srcs=("g",)):
            a = pb.malloc(_CELL_BYTES)
            cells.append(a)
            ctype = _T_INT if pb.rng.random() < 0.7 else _T_SYM
            # Symbol cells carry a hash handle into the (distant) symbol
            # table — an incompressible bit pattern; int cells are small.
            car = pb.rand_small(0, 4000) if ctype == _T_INT else pb.rand_large()
            values[a] = (ctype, car)
            pb.store(a + _TYPE, ctype, base="g", label="li.init.type")
            pb.store(a + _FLAGS, 0, base="g", label="li.init.flags")
            pb.store(a + _CAR, car, base="g", label="li.init.car")
            pb.store(a + _CDR, prev, base="g", label="li.init.cdr")
            prev = a
        heads.append(prev)

    # ---- phase 2: eval — the paper's Figure 5 loop ---------------------------
    total = 0
    for _e in pb.for_range("li.evals", evals, cond_srcs=("g",)):
        for head in heads:
            pb.op("p", (), label="li.eval.head")
            p = head
            while pb.while_cond("li.eval.loop", p != 0, srcs=("p",)):
                # (1) load type; (2) load next; (3) maybe load info; (4) loop
                ctype = pb.load(p + _TYPE, "t", base="p", label="li.eval.ldt")
                nxt = pb.load(p + _CDR, "pn", base="p", label="li.eval.ldn")
                if pb.if_("li.eval.istype", ctype == _T_INT, srcs=("t",)):
                    info = pb.load(p + _CAR, "info", base="p", label="li.eval.ldi")
                    pb.op("sum", ("sum", "info"), label="li.eval.add")
                    total += info
                p = nxt
                pb.op("p", ("pn",), label="li.eval.adv")

    # ---- phase 3: GC — mark (pointer chase) then sweep (sequential) -----------
    for head in heads:
        pb.op("p", (), label="li.mark.head")
        p = head
        while pb.while_cond("li.mark.loop", p != 0, srcs=("p",)):
            flags = pb.load(p + _FLAGS, "f", base="p", label="li.mark.ldf")
            pb.store(p + _FLAGS, flags | 1, base="p", src="f", label="li.mark.stf")
            p = pb.load(p + _CDR, "p", base="p", label="li.mark.ldn")
    live = 0
    for a in cells:
        pb.branch("li.sweep.loop", taken=True, srcs=("sw",))
        flags = pb.load(a + _FLAGS, "f", base="sw", label="li.sweep.ldf")
        if pb.if_("li.sweep.live", flags & 1 == 1, srcs=("f",)):
            live += 1
            pb.store(a + _FLAGS, 0, base="sw", src="f", label="li.sweep.clr")
    pb.branch("li.sweep.loop", taken=False, srcs=("sw",))

    out = pb.static_array(2)
    pb.store(out, total & 0x7FFF_FFFF, src="sum", label="li.result.sum")
    pb.store(out + 4, live & 0x3FFF, src="f", label="li.result.live")
    return pb.build(
        description="cons-cell interpreter: typed list eval + mark/sweep GC",
        params={
            "lists": n_lists,
            "list_len": list_len,
            "evals": evals,
            "sum": total,
            "live_cells": live,
        },
    )
