"""Unit tests for the flat-latency DRAM model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.memory.bus import TrafficKind
from repro.memory.image import MemoryImage
from repro.memory.main_memory import MainMemory


class TestReadLine:
    def test_reads_and_charges_full_width(self):
        mem = MainMemory(MemoryImage())
        mem.poke_word(0x1000, 7)
        data = mem.read_line(0x1000, 16)
        assert data[0] == 7
        assert mem.bus.fill_words == 16
        assert mem.n_reads == 1

    def test_custom_bus_words(self):
        mem = MainMemory(MemoryImage())
        mem.read_line(0x1000, 16, bus_words=9)
        assert mem.bus.fill_words == 9

    def test_prefetch_kind(self):
        mem = MainMemory(MemoryImage())
        mem.read_line(0x1000, 16, kind=TrafficKind.PREFETCH)
        assert mem.bus.prefetch_words == 16
        assert mem.bus.fill_words == 0

    def test_default_latency_is_100(self):
        assert MainMemory(MemoryImage()).latency == 100

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            MainMemory(MemoryImage(), latency=-1)


class TestWriteLine:
    def test_full_writeback(self):
        mem = MainMemory(MemoryImage())
        mem.write_line(0x2000, np.array([1, 2, 3, 4], dtype=np.uint32))
        assert mem.peek_word(0x2008) == 3
        assert mem.bus.writeback_words == 4
        assert mem.n_writes == 1

    def test_masked_writeback_preserves_holes(self):
        mem = MainMemory(MemoryImage())
        mem.poke_word(0x2004, 99)
        mem.write_line(
            0x2000,
            np.array([1, 2, 3, 4], dtype=np.uint32),
            mask=np.array([True, False, True, True]),
        )
        assert mem.peek_word(0x2000) == 1
        assert mem.peek_word(0x2004) == 99  # hole kept old value
        assert mem.bus.writeback_words == 3  # only valid words travel

    def test_masked_with_custom_bus_words(self):
        mem = MainMemory(MemoryImage())
        mem.write_line(
            0x2000,
            np.array([1, 2], dtype=np.uint32),
            mask=np.array([True, True]),
            bus_words=1,
        )
        assert mem.bus.writeback_words == 1


class TestHelpers:
    def test_word_addrs(self):
        mem = MainMemory(MemoryImage())
        addrs = mem.word_addrs(0x1000, 4)
        assert list(addrs) == [0x1000, 0x1004, 0x1008, 0x100C]
        assert addrs.dtype == np.uint32

    def test_poke_peek_do_not_touch_bus(self):
        mem = MainMemory(MemoryImage())
        mem.poke_word(0x1000, 5)
        assert mem.peek_word(0x1000) == 5
        assert mem.bus.total_words == 0
