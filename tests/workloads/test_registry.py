"""Registry and per-workload structural tests.

Every workload is generated at reduced scale and checked for the
properties the evaluation relies on: valid traces, determinism, real
memory behaviour, and the intended compressibility character.
"""

import numpy as np
import pytest

from repro.compression.vectorized import compression_summary
from repro.errors import WorkloadError
from repro.workloads.registry import WORKLOAD_NAMES, WORKLOADS, generate, get_workload

SCALE = 0.25  # keep the suite quick; structure is scale-invariant


@pytest.fixture(scope="module")
def programs():
    return {name: generate(name, seed=1, scale=SCALE) for name in WORKLOAD_NAMES}


class TestRegistry:
    def test_fourteen_benchmarks(self):
        assert len(WORKLOADS) == 14

    def test_suites_represented(self):
        suites = {w.suite for w in WORKLOADS.values()}
        assert suites == {"olden", "spec95", "spec2000"}

    def test_seven_olden(self):
        assert sum(w.suite == "olden" for w in WORKLOADS.values()) == 7

    def test_unknown_name(self):
        with pytest.raises(WorkloadError):
            get_workload("olden.nonexistent")

    def test_bad_scale(self):
        with pytest.raises(WorkloadError):
            get_workload("olden.treeadd").generate(1, scale=0)


class TestEveryWorkload:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_trace_is_valid(self, programs, name):
        prog = programs[name]
        prog.trace.validate()
        assert prog.name == name
        assert len(prog.trace) > 1000

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_has_all_instruction_kinds(self, programs, name):
        trace = programs[name].trace
        assert trace.n_loads > 0
        assert trace.n_stores > 0
        assert trace.n_branches > 0

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_deterministic_per_seed(self, name):
        a = generate(name, seed=5, scale=0.1).trace
        b = generate(name, seed=5, scale=0.1).trace
        assert len(a) == len(b)
        assert np.array_equal(a.addr, b.addr)
        assert np.array_equal(a.value, b.value)
        assert np.array_equal(a.taken, b.taken)

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_loads_read_what_was_stored(self, programs, name):
        """Replaying the trace against a flat memory must reproduce every
        load value — the ground truth the cache simulations are checked
        against."""
        from repro.memory.image import MemoryImage

        trace = programs[name].trace
        img = MemoryImage()
        from repro.isa.opcodes import OpClass

        for ins in trace:
            if ins.op is OpClass.STORE:
                img.write_word(ins.addr, ins.value)
            elif ins.op is OpClass.LOAD:
                assert img.read_word(ins.addr) == ins.value, ins

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_final_image_matches_trace_replay(self, programs, name):
        from repro.isa.opcodes import OpClass
        from repro.memory.image import MemoryImage

        prog = programs[name]
        img = MemoryImage()
        for ins in prog.trace:
            if ins.op is OpClass.STORE:
                img.write_word(ins.addr, ins.value)
        assert img == prog.final_image


class TestCompressibilityCharacter:
    """Each workload's Figure 3 character, as designed."""

    def frac(self, programs, name):
        return compression_summary(
            *programs[name].trace.accessed_values()
        ).fraction_compressible

    @pytest.mark.parametrize(
        "name", ["olden.treeadd", "olden.perimeter", "spec95.130.li"]
    )
    def test_pointer_kernels_highly_compressible(self, programs, name):
        assert self.frac(programs, name) > 0.7

    @pytest.mark.parametrize("name", ["olden.bisort", "olden.em3d", "olden.tsp"])
    def test_value_heavy_kernels_poorly_compressible(self, programs, name):
        assert self.frac(programs, name) < 0.45

    def test_average_near_paper(self, programs):
        fracs = [self.frac(programs, n) for n in WORKLOAD_NAMES]
        assert 0.45 < float(np.mean(fracs)) < 0.75  # paper: 0.59

    @pytest.mark.parametrize("name", ["olden.treeadd", "spec95.130.li", "olden.mst"])
    def test_pointer_workloads_have_pointer_values(self, programs, name):
        s = compression_summary(*programs[name].trace.accessed_values())
        assert s.fraction_pointer > 0.15

    @pytest.mark.parametrize("name", ["spec95.129.compress", "spec95.099.go"])
    def test_array_workloads_have_no_pointers(self, programs, name):
        s = compression_summary(*programs[name].trace.accessed_values())
        assert s.fraction_pointer < 0.05


class TestScaling:
    def test_scale_changes_size(self):
        small = generate("olden.treeadd", seed=1, scale=0.1)
        large = generate("olden.treeadd", seed=1, scale=1.0)
        assert len(large.trace) > 2 * len(small.trace)

    def test_seed_changes_values(self):
        a = generate("olden.bisort", seed=1, scale=0.1).trace
        b = generate("olden.bisort", seed=2, scale=0.1).trace
        assert not (
            len(a) == len(b) and np.array_equal(a.value, b.value)
        )
