"""Scalar compressibility fast path for the per-word hot loops.

The cache models classify a handful of words at a time (a line fill, a
store, a stash). At that size the vectorized NumPy classifier of
:mod:`repro.compression.vectorized` loses to plain int arithmetic — the
array construction alone costs more than the classification — so the
hot paths use a closure built here instead.

:func:`compressibility_fn` specializes on the scheme once per cache
instance: for the paper's prefix scheme it inlines the small-value and
pointer tests as three int comparisons; any duck-typed scheme (e.g.
:class:`~repro.compression.frequent.FrequentValueScheme`) falls back to
its own ``is_compressible``. Both paths are bit-identical to
``scheme.is_compressible`` (property-tested against the vectorized
classifier in ``tests/compression/test_vectorized.py``).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.compression.scheme import CompressionScheme
from repro.utils.bitops import MASK32, WORD_BITS

__all__ = [
    "compressibility_fn",
    "packed_bus_words_masked",
    "packed_bus_words_from_comp",
]


def compressibility_fn(scheme) -> Callable[[int, int], bool]:
    """A fast ``f(value, addr) -> bool`` equal to ``scheme.is_compressible``.

    Callers guarantee *value* and *addr* are already masked to 32 bits
    (trace values and line addresses always are).
    """
    if type(scheme) is CompressionScheme:
        shift_small = WORD_BITS - scheme.small_check_bits
        all_ones = (1 << scheme.small_check_bits) - 1
        shift_ptr = WORD_BITS - scheme.pointer_prefix_bits

        def is_compressible(value: int, addr: int) -> bool:
            top = value >> shift_small
            return (
                top == 0
                or top == all_ones
                or (value >> shift_ptr) == (addr >> shift_ptr)
            )

        return is_compressible

    bound = scheme.is_compressible

    def is_compressible_fallback(value: int, addr: int) -> bool:
        return bool(bound(value & MASK32, addr & MASK32))

    return is_compressible_fallback


def packed_bus_words_masked(
    values: list[int],
    base_addr: int,
    mask: int,
    is_compressible: Callable[[int, int], bool],
    compressed_bits: int,
) -> int:
    """Bus beats to transfer the *mask*-selected words compressed.

    Scalar equivalent of
    :func:`repro.compression.vectorized.packed_bus_words_vec` applied to
    ``values[mask]`` (flag bits counted): per-word VC flags travel with
    the line, payload is ``compressed_bits`` for compressible words and
    32 for the rest, and the total is rounded up to whole bus words.
    """
    n = 0
    n_comp = 0
    m = mask
    while m:
        low = m & -m
        i = low.bit_length() - 1
        m ^= low
        n += 1
        if is_compressible(values[i], base_addr + (i << 2)):
            n_comp += 1
    if n == 0:
        return 0
    bits = compressed_bits * n_comp + 32 * (n - n_comp) + n
    return -(-bits // 32)


def packed_bus_words_from_comp(mask: int, comp: int, compressed_bits: int) -> int:
    """:func:`packed_bus_words_masked` when compressibility is pre-known.

    *comp* carries the per-word compressibility bits (a comp-table probe
    or a VCP memo), reducing the packing computation to two popcounts.
    """
    n = mask.bit_count()
    if n == 0:
        return 0
    n_comp = (comp & mask).bit_count()
    bits = compressed_bits * n_comp + 32 * (n - n_comp) + n
    return -(-bits // 32)
