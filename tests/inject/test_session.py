"""Planted-fault scenarios against the armed injection session.

Each test builds a tiny CPP hierarchy over a known image, arms a
session around a hand-written :class:`FaultSpec`, replays a fixed access
pattern and checks the end-to-end classification — the acceptance
scenarios of the subsystem (silent corruption without protection, the
same corruption caught under SECDED/parity, correct refetch of
affiliated state).
"""

from __future__ import annotations

import pytest

from repro.caches.hierarchy import build_hierarchy
from repro.inject import hooks
from repro.inject.campaign import campaign_params
from repro.inject.faults import FaultSpec
from repro.inject.protect import build_protection
from repro.inject.session import InjectionSession
from repro.memory.image import MemoryImage
from repro.memory.main_memory import MainMemory

HEAP = 0x1000_0000
N_WORDS = 2048  # 8 KiB of mapped heap


def _memory() -> MainMemory:
    """Small, fully compressible values so affiliated lines fill whole."""
    img = MemoryImage()
    for i in range(N_WORDS):
        img.write_word(HEAP + 4 * i, i + 1)
    return MainMemory(img)


def _planted(
    protect: str,
    *,
    target: str = "data",
    level: str = "l1",
    trigger: int = 20,
    bits: int = 1,
    recovery: str = "refetch",
    site_seed: int = 99,
):
    """Arm one planted fault over a fixed two-line read workload.

    Reads every word of an L1 line and of its CPP pairing partner,
    twice, so any resident corruption in either place is consumed by a
    load after the trigger. Returns ``(outcome, session, ok)`` where
    *ok* is True iff every load returned its pristine value.
    """
    memory = _memory()
    hierarchy = build_hierarchy("CPP", memory, campaign_params())
    spec = FaultSpec(
        fault_id=0,
        seed=0,
        target=target,
        level=level,
        trigger=trigger,
        bits=bits,
        site_seed=site_seed,
    )
    session = InjectionSession(spec, build_protection(protect), recovery)
    session.attach(hierarchy)
    l1 = session._cores["l1"]
    base_ln = HEAP >> l1.line_shift
    pair_ln = base_ln ^ l1.policy.mask
    addrs = [HEAP + 4 * i for i in range(l1.line_words)]
    addrs += [(pair_ln << l1.line_shift) + 4 * i for i in range(l1.line_words)]
    expected = {a: memory.peek_word(a) for a in addrs}
    session.mem_candidates = sorted(set(addrs))

    loads: list[tuple[int, int]] = []
    hooks.activate(session)
    try:
        now = 0
        for _ in range(2):
            for a in addrs:
                loads.append((a, hierarchy.load(a, now).value))
                now += 1
        session.finalize()
        hierarchy.flush()
    finally:
        hooks.deactivate()

    ok = all(value == expected[a] for a, value in loads)
    for a in addrs:
        ok = ok and memory.peek_word(a) == expected[a]
    return session.classify(not ok), session, ok


class TestGate:
    def test_disabled_by_default(self):
        assert hooks.ACTIVE is False
        assert hooks.SESSION is None

    def test_activate_deactivate(self):
        session = object()
        hooks.activate(session)
        try:
            assert hooks.ACTIVE and hooks.SESSION is session
        finally:
            hooks.deactivate()
        assert not hooks.ACTIVE and hooks.SESSION is None

    def test_disabled_runs_are_identical(self):
        """With the gate off, two runs of the same stream are bit-identical
        (the hook edits cost nothing and change nothing)."""

        def run():
            memory = _memory()
            h = build_hierarchy("CPP", memory, campaign_params())
            values = [
                h.load(HEAP + 4 * i, now).value
                for now, i in enumerate(range(64))
            ]
            h.flush()
            return values, [memory.peek_word(HEAP + 4 * i) for i in range(64)]

        assert run() == run()


class TestDataFaults:
    def test_unprotected_fault_is_silent(self):
        outcome, session, ok = _planted("none")
        assert session.counters["fired"] == 1
        assert session.counters["detected"] == 0
        assert not ok
        assert outcome == "sdc"

    def test_secded_corrects_same_fault(self):
        outcome, session, ok = _planted("secded")
        assert session.counters["fired"] == 1
        assert session.counters["corrected"] == 1
        assert ok
        assert outcome == "detected_recovered"

    def test_parity_detects_and_refetches(self):
        outcome, session, ok = _planted("parity")
        assert session.counters["detected"] == 1
        assert ok
        assert outcome == "detected_recovered"

    def test_secded_double_bit_recovers_by_refetch(self):
        outcome, session, ok = _planted("secded", bits=2)
        assert session.counters["detected"] == 1
        assert session.counters["corrected"] == 0
        assert ok
        assert outcome == "detected_recovered"

    def test_not_fired_when_trigger_past_end(self):
        outcome, session, ok = _planted("none", trigger=10_000)
        assert session.counters["fired"] == 0
        assert ok
        assert outcome == "not_fired"


def _affiliated_site_seed() -> int:
    """A site seed whose planted L1 data fault lands in an affiliated slot."""
    for site_seed in range(200):
        _, session, _ = _planted("none", site_seed=site_seed)
        rec = session.records[0]
        if rec.events and "affiliated" in rec.events[0]:
            return site_seed
    raise AssertionError("no affiliated site found in 200 seeds")


class TestAffiliatedRecovery:
    def test_affiliated_fault_refetched_correctly(self):
        """The acceptance pair: a fault in a prefetched affiliated word is
        silent unprotected, and detected + refetched cleanly under a
        detect-only protection with the refetch policy."""
        site_seed = _affiliated_site_seed()
        outcome, _, ok = _planted("none", site_seed=site_seed)
        assert outcome == "sdc" and not ok
        outcome, session, ok = _planted(
            "secded", bits=2, site_seed=site_seed, recovery="refetch"
        )
        assert ok
        assert outcome == "detected_recovered"
        rec = session.records[0]
        assert rec.detected and rec.disposition == "recovered"

    def test_drop_affiliated_policy(self):
        site_seed = _affiliated_site_seed()
        outcome, session, ok = _planted(
            "secded", bits=2, site_seed=site_seed, recovery="drop_affiliated"
        )
        assert ok
        assert outcome == "detected_recovered"

    def test_degrade_policy_pins_lines(self):
        site_seed = _affiliated_site_seed()
        outcome, session, ok = _planted(
            "secded", bits=2, site_seed=site_seed, recovery="degrade"
        )
        assert ok
        assert outcome == "detected_recovered"
        assert session.degraded  # the faulting pair is pinned uncompressed


class TestOtherTargets:
    def test_meta_fault_secded(self):
        outcome, session, ok = _planted("secded", target="meta")
        assert session.counters["fired"] == 1
        assert ok
        assert outcome in ("detected_recovered", "masked")

    def test_tag_fault_secded(self):
        outcome, session, ok = _planted("secded", target="tag")
        assert session.counters["fired"] == 1
        assert ok
        assert outcome in ("detected_recovered", "masked")

    def test_bus_fault_none_vs_secded(self):
        none_outcome, none_session, none_ok = _planted(
            "none", target="bus", level="", trigger=1
        )
        assert none_session.counters["fired"] == 1
        sec_outcome, sec_session, sec_ok = _planted(
            "secded", target="bus", level="", trigger=1
        )
        assert sec_ok
        assert sec_outcome == "detected_recovered"
        assert sec_session.counters["corrected"] == 1
        # The unprotected transfer delivered a corrupt fill.
        assert none_outcome in ("sdc", "masked")

    def test_mem_fault_none_vs_secded(self):
        none_outcome, none_session, none_ok = _planted(
            "none", target="mem", level=""
        )
        assert none_session.counters["fired"] == 1
        assert none_outcome in ("sdc", "masked")
        sec_outcome, sec_session, sec_ok = _planted(
            "secded", target="mem", level=""
        )
        assert sec_ok
        assert sec_outcome in ("detected_recovered", "masked")


class TestLatencyAccounting:
    def test_checks_charge_cycles_only_when_modelled(self):
        _, session, _ = _planted("secded")
        assert session.counters["checks"] >= 1
        # The default gate budget hides the syndrome tree: zero cycles.
        assert session.check_cycles == 0

    def test_snapshot_is_json_safe(self):
        import json

        _, session, _ = _planted("secded")
        snapshot = session.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["counters"]["fired"] == 1
        assert snapshot["records"][0]["site"]
