"""The CPP cache: compression-enabled partial cache line prefetching.

Implements the design of paper §3:

* each frame holds a **primary** line plus, in slots freed by compression,
  words of its **affiliated** line ``primary XOR mask`` (mask = 0x1, i.e.
  next-line pairing);
* CPU reads probe the primary and affiliated locations; an affiliated hit
  costs one extra cycle; a **write** hit in the affiliated place first
  *promotes* the line to its primary place (§3.3);
* inter-level requests are **word-based**: an L2 hit returns whatever
  words of the requested line are present (a partial line) plus the
  compressible other-half words that ride along in the compressed slots;
* on an L2 miss, the demand line and its affiliated line are fetched
  together from memory in one line's worth of bus traffic
  (:meth:`MemoryPort.fetch_pair`) — prefetching without extra bandwidth;
* victims are **stashed** into their affiliated place on eviction when the
  neighbouring frame holds their pair as primary (clean partial copy;
  dirty data is written back first);
* a store that turns a compressible word incompressible reclaims the slot:
  the affiliated word there is evicted (primary priority, §3.3).

The model stores uncompressed values plus format flags; all space-legality
rules are enforced by :class:`CompressedFrame` and audited by
:meth:`CompressionCache.check_invariants`.

Hot-path representation: per-word flags are packed ints and word values
plain lists (see :class:`CompressedFrame`). The frame's ``VCP`` mask is
the *memoized* compressibility of its resident primary words —
compressibility is a pure function of (value, line address), so it is
recomputed only where a value changes (stores, fills, write-backs) and
reused for stash, ride-along and serve decisions, which previously
re-classified whole lines per event.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.compressed_frame import CompressedFrame
from repro.caches.interface import (
    AccessResult,
    CODE_OF_SERVED,
    FetchResponse,
    LineSource,
    MemoryPort,
)
from repro.caches.stats import CacheStats
from repro.check.runtime import runtime_checks_enabled
from repro.compression.fastscalar import compressibility_fn
from repro.compression.scheme import CompressionScheme, PAPER_SCHEME
from repro.errors import CacheProtocolError, ConfigurationError
from repro.inject import hooks as _inject
from repro.memory.bus import TrafficKind
from repro.memory.image import WORD_BYTES
from repro.obs import tracer as _trace
from repro.utils.bitmask import as_mask, as_words
from repro.utils.bitops import MASK32
from repro.utils.intmath import is_pow2, log2i


def scheme_compressed_bits(scheme) -> int:
    """Compressed-slot width of any scheme (duck-typed)."""
    return int(getattr(scheme, "compressed_bits", 16))


__all__ = ["CPPPolicy", "CompressionCache"]


@dataclass(frozen=True)
class CPPPolicy:
    """Tunable policy knobs of the CPP design (defaults = the paper).

    Attributes
    ----------
    mask:
        Affiliated-line pairing mask applied to the line number. The paper
        uses ``0x1`` — consecutive lines, i.e. next-line prefetch.
    stash_victims:
        Keep a clean partial copy of evicted lines in their affiliated
        place when possible (§3.3).
    affiliated_extra_latency:
        Extra cycles for data served from the affiliated location ("the
        data item is returned in the next cycle").
    serve_partial:
        Word-based lower-level requests: a hit needs only the requested
        word. ``False`` is the ablation that restores line-based requests
        (any hole forces a full refetch from below).
    """

    mask: int = 0x1
    stash_victims: bool = True
    affiliated_extra_latency: int = 1
    serve_partial: bool = True

    def __post_init__(self) -> None:
        if self.mask <= 0:
            raise ConfigurationError("pairing mask must be positive")
        if self.affiliated_extra_latency < 0:
            raise ConfigurationError("extra latency must be non-negative")


class CompressionCache:
    """A CPP cache level (used for both L1 and L2)."""

    def __init__(
        self,
        name: str,
        *,
        size_bytes: int,
        assoc: int,
        line_bytes: int,
        hit_latency: int,
        downstream: LineSource,
        scheme: CompressionScheme = PAPER_SCHEME,
        policy: CPPPolicy | None = None,
        stats: CacheStats | None = None,
    ) -> None:
        if not (is_pow2(size_bytes) and is_pow2(line_bytes) and assoc >= 1):
            raise ConfigurationError("cache geometry must use power-of-two sizes")
        if size_bytes % (line_bytes * assoc):
            raise ConfigurationError(
                f"{name}: size {size_bytes} not divisible by line*assoc"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.line_words = line_bytes // WORD_BYTES
        self.n_sets = size_bytes // (line_bytes * assoc)
        if not is_pow2(self.n_sets):
            raise ConfigurationError(f"{name}: set count must be a power of two")
        self.line_shift = log2i(line_bytes)
        self.set_mask = self.n_sets - 1
        self.hit_latency = hit_latency
        self.downstream = downstream
        self.scheme = scheme
        self.policy = policy if policy is not None else CPPPolicy()
        self.stats = stats if stats is not None else CacheStats(name=name)
        #: Can an affiliated word share a slot with a *compressed* primary
        #: word? Only when two compressed values fit in one 32-bit slot
        #: (true for the paper's 16-bit scheme; a wider scheme's affiliated
        #: words can ride only in absent-primary slots).
        self._pair_in_slot = 2 * scheme_compressed_bits(self.scheme) <= 32
        self.full_mask = (1 << self.line_words) - 1
        self._is_comp = compressibility_fn(scheme)
        # Prefix-scheme constants for the inlined classifier loop in
        # _comp_bits (None = duck-typed scheme, go through _is_comp).
        self._prefix_params: tuple[int, int, int] | None = None
        if type(scheme) is CompressionScheme:
            self._prefix_params = (
                32 - scheme.small_check_bits,
                (1 << scheme.small_check_bits) - 1,
                32 - scheme.pointer_prefix_bits,
            )
        # A downstream with an identical scheme classifies words exactly as
        # we do, so comp masks on its responses (copies of its VCP/AA
        # memos) and our VCP on write-backs can cross the level boundary
        # instead of being re-derived word by word on every transfer.
        self._shared_scheme = getattr(downstream, "scheme", None) == scheme
        self._sets: list[list[CompressedFrame]] = [
            [CompressedFrame(self.line_words) for _ in range(assoc)]
            for _ in range(self.n_sets)
        ]
        # Opt-in runtime audits (REPRO_CHECK=1 / --check): every mutating
        # protocol operation re-verifies the structural invariants. The
        # gate is one env lookup at construction, so the disabled path
        # costs nothing per access.
        if runtime_checks_enabled():
            from repro.check.invariants import install_runtime_checks

            install_runtime_checks(self)

    # ---- geometry ------------------------------------------------------------

    def line_no(self, addr: int) -> int:
        """Line number (full address without the offset bits) of *addr*."""
        return addr >> self.line_shift

    def line_addr(self, line_no: int) -> int:
        """Base byte address of line *line_no*."""
        return line_no << self.line_shift

    def set_index(self, line_no: int) -> int:
        """Set a line maps to (low index bits of the line number)."""
        return line_no & self.set_mask

    def word_index(self, addr: int) -> int:
        """Word offset of *addr* inside its line."""
        return (addr >> 2) & (self.line_words - 1)

    def affiliated_line(self, line_no: int) -> int:
        """``<Tag, Set> XOR mask`` — the paper's pairing function."""
        return line_no ^ self.policy.mask

    def _comp_bits(self, line_no: int, values: list[int], mask: int) -> int:
        """Compressibility bitmask of the *mask*-selected words of *values*
        if stored at line *line_no* (classification happens only here)."""
        base = line_no << self.line_shift
        out = 0
        m = mask
        params = self._prefix_params
        if params is not None:
            # Paper prefix scheme, classifier inlined (same math as the
            # compressibility_fn closure, minus a call per word).
            shift_small, all_ones, shift_ptr = params
            while m:
                low = m & -m
                i = low.bit_length() - 1
                m ^= low
                v = values[i]
                top = v >> shift_small
                if (
                    top == 0
                    or top == all_ones
                    or (v >> shift_ptr) == ((base + (i << 2)) >> shift_ptr)
                ):
                    out |= low
            return out
        is_comp = self._is_comp
        while m:
            low = m & -m
            i = low.bit_length() - 1
            m ^= low
            if is_comp(values[i], base + (i << 2)):
                out |= low
        return out

    def _slot_mask(self, frame: CompressedFrame) -> int:
        """Slots able to hold an affiliated word under this scheme's width
        (absent primary always qualifies; compressed primary only when two
        compressed values fit in one slot)."""
        if self._pair_in_slot:
            return (frame.pa ^ self.full_mask) | frame.vcp
        return frame.pa ^ self.full_mask

    # ---- lookup -----------------------------------------------------------------

    def _find_primary(self, line_no: int, *, touch: bool = True) -> CompressedFrame | None:
        ways = self._sets[line_no & self.set_mask]
        for i, frame in enumerate(ways):
            if frame.line_no == line_no:
                if touch and i:
                    ways.insert(0, ways.pop(i))
                return frame
        return None

    def _find_affiliated(self, line_no: int, *, touch: bool = True) -> CompressedFrame | None:
        """Frame holding *line_no* as its affiliated line (if any AA word)."""
        holder_no = line_no ^ self.policy.mask
        ways = self._sets[holder_no & self.set_mask]
        for i, frame in enumerate(ways):
            if frame.line_no == holder_no and frame.aa:
                if touch and i:
                    ways.insert(0, ways.pop(i))
                return frame
        return None

    def probe_word(self, addr: int) -> str | None:
        """Where is this word right now? 'primary' / 'affiliated' / None.

        Pure inspection: no LRU update, no stats.
        """
        ln = self.line_no(addr)
        widx = self.word_index(addr)
        f = self._find_primary(ln, touch=False)
        if f is not None and (f.pa >> widx) & 1:
            return "primary"
        g = self._find_affiliated(ln, touch=False)
        if g is not None and (g.aa >> widx) & 1:
            return "affiliated"
        return None

    # ---- eviction / stash ----------------------------------------------------------

    def _evict_lru(self, set_idx: int) -> CompressedFrame:
        """Evict the LRU way: write back dirty words, stash a clean copy."""
        ways = self._sets[set_idx]
        victim = ways[-1]
        if victim.line_no >= 0:
            if _inject.ACTIVE:
                _inject.SESSION.before_evict(self, victim)
            if victim.dirty:
                self.stats.writebacks += 1
                self.downstream.write_back(
                    self.line_addr(victim.line_no),
                    victim.pvals,
                    victim.pa,
                    victim.vcp if self._shared_scheme else None,
                )
            self._stash(victim)
            # The victim's own affiliated content is clean; it is dropped
            # together with the primary line (its AA flags die with the frame).
        victim.invalidate()
        return victim

    def _stash(self, victim: CompressedFrame) -> None:
        """Try to keep a clean partial copy of *victim* in its affiliated place."""
        if not self.policy.stash_victims:
            return
        target = self._find_primary(
            self.affiliated_line(victim.line_no), touch=False
        )
        if target is None:
            return
        # victim.vcp is exactly (pa & compressibility) by the VCP memo
        # invariant, so no re-classification is needed here.
        comp = victim.vcp & self._slot_mask(target)
        stored = target.set_affiliated_words(victim.pvals, comp)
        if stored:
            self.stats.stashes += 1
            if _trace.ACTIVE:
                _trace.emit(
                    "stash",
                    level=self.name,
                    line=victim.line_no,
                    words=comp.bit_count(),
                )

    # ---- fill ------------------------------------------------------------------------

    def _fill(
        self, line_no: int, need_widx: int, kind: TrafficKind, now: int = 0
    ) -> tuple[CompressedFrame, int, str]:
        """Bring line *line_no* in as primary; returns (frame, latency, source)."""
        addr = self.line_addr(line_no)
        if isinstance(self.downstream, MemoryPort):
            # Bottom level: fetch the demand line and its affiliated line
            # together for one line's worth of bus traffic (§3.3).
            affil_addr = self.line_addr(self.affiliated_line(line_no))
            values, affil_values = self.downstream.fetch_pair(
                addr, self.line_words, affil_addr, kind=kind
            )
            # When the port's memory carries a comp table for our scheme,
            # probe it instead of re-classifying the fetched words in
            # _install_fill; the table mirrors the image the words were
            # just read from, so the bits are identical by construction.
            comp = affil_comp = None
            if self._shared_scheme:
                comp = self.downstream.line_comp(addr, self.line_words)
                if affil_values is not None:
                    affil_comp = self.downstream.line_comp(
                        affil_addr, self.line_words
                    )
            # affil_values is None when the partner line does not exist
            # (outside the mapped image / address space): the fill then
            # carries no prefetch payload rather than fabricating one.
            resp = FetchResponse(
                values=values,
                avail=self.full_mask,
                latency=self.downstream.memory.latency,
                served_by="memory",
                comp=comp,
                affil_values=affil_values,
                affil_avail=None if affil_values is None else self.full_mask,
                affil_comp=affil_comp,
            )
        else:
            resp = self.downstream.fetch(
                addr,
                self.line_words,
                need_widx,
                kind=kind,
                now=now,
                pair_addr=self.line_addr(self.affiliated_line(line_no)),
            )
            resp.validate(self.line_words, need_widx)
        frame = self._install_fill(line_no, resp)
        return frame, resp.latency, resp.served_by

    def _install_fill(self, line_no: int, resp: FetchResponse) -> CompressedFrame:
        """Install/merge a fill response as the primary copy of *line_no*."""
        # A same-scheme source's comp masks are its own VCP/AA memos and
        # classify exactly as we would — reuse them instead of running the
        # classifier over the filled words.
        resp_comp = resp.comp if self._shared_scheme else None
        frame = self._find_primary(line_no)
        if frame is not None:
            # Partial primary line present: fill only the holes — resident
            # words may be dirty and newer than the response.
            new = resp.avail & ~frame.pa
            if new:
                pvals = frame.pvals
                rvals = resp.values
                m = new
                while m:
                    low = m & -m
                    i = low.bit_length() - 1
                    m ^= low
                    pvals[i] = rvals[i]
                frame.pa |= new
                frame.vcp |= (
                    resp_comp & new
                    if resp_comp is not None
                    else self._comp_bits(line_no, pvals, new)
                )
            # Space rule may now exclude previously legal affiliated words
            # (scheme-aware: a wide scheme's affiliated words may ride only
            # in absent-primary slots, so any filled slot evicts them).
            illegal = frame.aa & ~self._slot_mask(frame)
            if illegal:
                self.stats.dropped_affiliated_words += illegal.bit_count()
                frame.aa &= ~illegal
        else:
            set_idx = self.set_index(line_no)
            victim = self._evict_lru(set_idx)
            comp = (
                resp_comp
                if resp_comp is not None
                else self._comp_bits(line_no, resp.values, resp.avail)
            )
            victim.install_primary(line_no, resp.values, resp.avail, comp)
            ways = self._sets[set_idx]
            ways.insert(0, ways.pop(ways.index(victim)))
            frame = victim
        if resp.avail != self.full_mask:
            self.stats.partial_fills += 1
            if _trace.ACTIVE:
                _trace.emit(
                    "partial_fill",
                    level=self.name,
                    line=line_no,
                    words_present=resp.avail.bit_count(),
                    words_total=self.line_words,
                )

        # Single-copy invariant: if a clean affiliated copy of this line
        # exists, merge any words the fill lacked, then clear it.
        holder = self._find_primary(self.affiliated_line(line_no), touch=False)
        if holder is not None and holder is not frame and holder.aa:
            extra = holder.aa & ~frame.pa
            if extra:
                pvals = frame.pvals
                avals = holder.avals
                m = extra
                while m:
                    low = m & -m
                    i = low.bit_length() - 1
                    m ^= low
                    pvals[i] = avals[i]
                frame.pa |= extra
                frame.vcp |= extra  # affiliated words are compressible
            holder.clear_affiliated()

        # Install the piggy-backed affiliated payload (the partial prefetch),
        # unless the affiliated line is already present as a primary line
        # ("the prefetched affiliated line is discarded if it is already in
        # the cache").
        aff_no = self.affiliated_line(line_no)
        if (
            resp.affil_values is not None
            and self._find_primary(aff_no, touch=False) is None
        ):
            candidates = resp.affil_avail & self._slot_mask(frame) & ~frame.aa
            affil_comp = resp.affil_comp if self._shared_scheme else None
            legal = (
                affil_comp & candidates
                if affil_comp is not None
                else self._comp_bits(aff_no, resp.affil_values, candidates)
            )
            if legal:
                avals = frame.avals
                rvals = resp.affil_values
                m = legal
                while m:
                    low = m & -m
                    i = low.bit_length() - 1
                    m ^= low
                    avals[i] = rvals[i]
                frame.aa |= legal
                n_words = legal.bit_count()
                self.stats.prefetched_words += n_words
                if _trace.ACTIVE:
                    # The piggy-backed partial prefetch: affiliated words
                    # installed for free alongside the demand fill.
                    _trace.emit(
                        "prefetch", level=self.name, line=aff_no, words=n_words
                    )
        if _inject.ACTIVE:
            _inject.SESSION.after_fill(self, frame)
        return frame

    # ---- promotion ---------------------------------------------------------------------

    def _promote(self, line_no: int, holder: CompressedFrame) -> CompressedFrame:
        """Move *line_no* from its affiliated place to its primary place.

        The moved copy is clean and partial (only the AA words exist).
        "The effect is the same as that of bringing a prefetched cache line
        into the cache from the prefetch buffer in a traditional cache."
        """
        if self._find_primary(line_no, touch=False) is not None:
            raise CacheProtocolError(
                f"{self.name}: promoting {line_no:#x} which is already primary"
            )
        self.stats.promotions += 1
        if _trace.ACTIVE:
            _trace.emit(
                "promotion",
                level=self.name,
                line=line_no,
                words=holder.aa.bit_count(),
            )
        values = list(holder.avals)
        avail = holder.aa
        holder.clear_affiliated()
        set_idx = self.set_index(line_no)
        victim = self._evict_lru(set_idx)
        victim.install_primary(line_no, values, avail, avail)
        ways = self._sets[set_idx]
        ways.insert(0, ways.pop(ways.index(victim)))
        return victim

    # ---- CPU-facing role -----------------------------------------------------------------

    def access(
        self, addr: int, write: bool = False, value: int | None = None, now: int = 0
    ) -> AccessResult:
        """One word-sized CPU access against the CPP L1."""
        if _inject.ACTIVE:
            _inject.SESSION.before_access(self, addr, write)
        ln = addr >> self.line_shift
        widx = (addr >> 2) & (self.line_words - 1)

        # Fast path: the MRU way (invalid frames have line_no == -1, so a
        # bare tag compare suffices); fall back to the LRU-updating scan.
        frame = self._sets[ln & self.set_mask][0]
        if frame.line_no != ln:
            frame = self._find_primary(ln)
        if frame is not None and (frame.pa >> widx) & 1:
            stats = self.stats
            stats.accesses += 1
            stats.hits += 1
            if _trace.ACTIVE:
                _trace.emit(
                    "cache_access",
                    level=self.name,
                    addr=addr,
                    hit=True,
                    write=write,
                    place="primary",
                )
            if write:
                self._cpu_write(frame, widx, addr, value)
            return AccessResult(
                self.hit_latency, "l1", None if write else frame.pvals[widx]
            )

        holder = self._find_affiliated(ln)
        if holder is not None and (holder.aa >> widx) & 1:
            self.stats.record_access(hit=True)
            self.stats.affiliated_hits += 1
            if _trace.ACTIVE:
                _trace.emit(
                    "cache_access",
                    level=self.name,
                    addr=addr,
                    hit=True,
                    write=write,
                    place="affiliated",
                )
                _trace.emit(
                    "affiliated_hit", level=self.name, addr=addr, write=write
                )
            loaded = None if write else holder.avals[widx]
            if write:
                # A write hit in the affiliated line brings the line to its
                # primary place (§3.3), then writes there.
                promoted = self._promote(ln, holder)
                self._cpu_write(promoted, widx, addr, value)
            return AccessResult(
                latency=self.hit_latency + self.policy.affiliated_extra_latency,
                served_by="l1-affiliated",
                value=loaded,
            )

        # Miss (including a hole in an otherwise-present partial line).
        hole = frame is not None or holder is not None
        if hole:
            self.stats.hole_misses += 1
        self.stats.record_access(hit=False)
        if _trace.ACTIVE:
            _trace.emit(
                "cache_access",
                level=self.name,
                addr=addr,
                hit=False,
                write=write,
                hole=hole,
            )
        frame, latency, served = self._fill(ln, widx, TrafficKind.FILL, now)
        if not (frame.pa >> widx) & 1:
            raise CacheProtocolError(f"{self.name}: fill did not deliver the word")
        if write:
            self._cpu_write(frame, widx, addr, value)
        return AccessResult(
            latency=latency,
            served_by=served,
            value=None if write else frame.pvals[widx],
        )

    def _cpu_write(
        self, frame: CompressedFrame, widx: int, addr: int, value: int | None
    ) -> None:
        if value is None:
            raise CacheProtocolError("store access requires a value")
        bit = 1 << widx
        if not frame.pa & bit:
            raise CacheProtocolError("write to an absent primary word")
        value &= MASK32
        frame.pvals[widx] = value
        params = self._prefix_params
        if params is not None:
            # Inlined prefix-scheme classifier (as in _comp_bits).
            shift_small, all_ones, shift_ptr = params
            top = value >> shift_small
            comp = (
                top == 0
                or top == all_ones
                or (value >> shift_ptr) == (addr >> shift_ptr)
            )
        else:
            comp = self._is_comp(value, addr)
        if comp:
            frame.vcp |= bit
            keeps_slot = self._pair_in_slot
        else:
            frame.vcp &= ~bit
            keeps_slot = False
        if not keeps_slot and frame.aa & bit:
            # The primary word now needs the full slot (it became
            # incompressible, or the scheme is too wide to pair two values
            # in one slot); the affiliated word there is evicted (primary
            # priority, §3.3). Affiliated words are always clean.
            frame.aa &= ~bit
            self.stats.dropped_affiliated_words += 1
        frame.dirty = True

    # ---- word-ops (fast backend) --------------------------------------------------

    def load_word(self, addr: int, now: int = 0) -> int:
        """Word load returning ``latency << 3 | code`` (see interface).

        Code 0 is an *uncounted* MRU primary-word hit — the caller
        batches ``accesses``/``hits``; anything else goes through
        :meth:`access` and is counted there. Callers must ensure no
        observation hook (tracing, injection, audits) is active.
        """
        ln = addr >> self.line_shift
        frame = self._sets[ln & self.set_mask][0]
        if frame.line_no == ln and (frame.pa >> ((addr >> 2) & (self.line_words - 1))) & 1:
            return self.hit_latency << 3
        result = self.access(addr, False, None, now)
        return (result.latency << 3) | CODE_OF_SERVED[result.served_by]

    def store_word(self, addr: int, value: int, now: int = 0) -> bool:
        """Word store; True = uncounted MRU hit (caller batches stats)."""
        ln = addr >> self.line_shift
        widx = (addr >> 2) & (self.line_words - 1)
        frame = self._sets[ln & self.set_mask][0]
        if frame.line_no == ln and (frame.pa >> widx) & 1:
            self._cpu_write(frame, widx, addr, value)
            return True
        self.access(addr, True, value, now)
        return False

    # ---- LineSource role (serving the level above) -------------------------------------------

    def _slice_hit(
        self, ln: int, offset: int, n_words: int, need_idx: int
    ) -> tuple[list[int], int, int, int, str] | None:
        """Locate line *ln*; returns (values, avail, comp, extra_latency, tag)
        full-line views, or None on miss (per serve_partial policy)."""
        frame = self._find_primary(ln)
        if frame is not None:
            if self.policy.serve_partial:
                ok = (frame.pa >> need_idx) & 1
            else:
                seg = ((1 << n_words) - 1) << offset
                ok = (frame.pa & seg) == seg
            if ok:
                return frame.pvals, frame.pa, frame.vcp, 0, "l2"
        holder = self._find_affiliated(ln)
        if holder is not None:
            if self.policy.serve_partial:
                ok = (holder.aa >> need_idx) & 1
            else:
                seg = ((1 << n_words) - 1) << offset
                ok = (holder.aa & seg) == seg
            if ok:
                return (
                    holder.avals,
                    holder.aa,
                    holder.aa,  # affiliated words are compressible by invariant
                    self.policy.affiliated_extra_latency,
                    "l2-affiliated",
                )
        return None

    def fetch(
        self,
        addr: int,
        n_words: int,
        need_word: int,
        *,
        kind: TrafficKind = TrafficKind.FILL,
        now: int = 0,
        pair_addr: int | None = None,
    ) -> FetchResponse:
        """Serve a word-based sub-line request from the level above.

        A hit needs only the requested word present; the response carries
        the available words of the requested sub-line, plus — when the
        requester's affiliated line (*pair_addr*) lives in the same line
        here — its words wherever the compressed pairing lets them ride.
        """
        if addr % (n_words * WORD_BYTES):
            raise CacheProtocolError(f"unaligned fetch at {addr:#x}")
        if self.line_words % n_words:
            raise CacheProtocolError(
                f"{self.name}: cannot serve {n_words}-word fetch from "
                f"{self.line_words}-word lines"
            )
        ln = self.line_no(addr)
        offset = (addr >> 2) & (self.line_words - 1)
        need_idx = offset + need_word

        if _inject.ACTIVE:
            _inject.SESSION.before_serve(self, addr, pair_addr)
        located = self._slice_hit(ln, offset, n_words, need_idx)
        if located is not None:
            self.stats.record_access(hit=True)
            values, avail, comp, extra, tag = located
            if tag == "l2-affiliated":
                self.stats.affiliated_hits += 1
                if _trace.ACTIVE:
                    _trace.emit(
                        "affiliated_hit", level=self.name, addr=addr, write=False
                    )
            if _trace.ACTIVE:
                _trace.emit(
                    "cache_access", level=self.name, addr=addr, hit=True
                )
            latency = self.hit_latency + extra
        else:
            if (
                self._find_primary(ln, touch=False) is not None
                or self._find_affiliated(ln, touch=False) is not None
            ):
                self.stats.hole_misses += 1
            self.stats.record_access(hit=False)
            if _trace.ACTIVE:
                _trace.emit(
                    "cache_access", level=self.name, addr=addr, hit=False
                )
            frame, fill_latency, _ = self._fill(ln, need_idx, kind, now)
            values, avail, comp = frame.pvals, frame.pa, frame.vcp
            latency = self.hit_latency + fill_latency
            tag = "memory"

        sub_mask = (1 << n_words) - 1
        out_values = values[offset : offset + n_words]
        out_avail = (avail >> offset) & sub_mask
        out_comp = (comp >> offset) & sub_mask

        affil_values = affil_avail = None
        if pair_addr is not None and pair_addr >> self.line_shift == ln:
            # The requester's affiliated line lives in this same line (for
            # the paper's geometry — mask 0x1, double-width L2 lines — it
            # is the other half). Its compressible words ride in the freed
            # slots: an affiliated word travels iff it is compressible and
            # the corresponding requested word is compressed or absent.
            pair_off = (pair_addr >> 2) & (self.line_words - 1)
            if self._pair_in_slot:
                slot_ok = (out_avail ^ sub_mask) | ((comp >> offset) & sub_mask)
            else:
                slot_ok = out_avail ^ sub_mask
            ride = (
                (avail >> pair_off) & (comp >> pair_off) & slot_ok & sub_mask
            )
            affil_values = values[pair_off : pair_off + n_words]
            affil_avail = ride
        return FetchResponse(
            values=out_values,
            avail=out_avail,
            latency=latency,
            served_by=tag,
            affil_values=affil_values,
            affil_avail=affil_avail,
            comp=out_comp,
            affil_comp=affil_avail,  # ride-along words are compressible
        )

    def write_back(self, addr: int, values, mask, comp: int | None = None) -> None:
        """Accept a dirty partial line evicted by the level above.

        *comp*, when given, is the upper level's compressibility mask for
        the written words (bit *i* = ``values[i]``) under **this** scheme —
        callers pass their VCP only across same-scheme boundaries.
        """
        values = as_words(values)
        mask = as_mask(mask)
        n_words = len(values)
        if addr % (n_words * WORD_BYTES):
            raise CacheProtocolError(f"unaligned writeback at {addr:#x}")
        ln = self.line_no(addr)
        offset = (addr >> 2) & (self.line_words - 1)
        frame = self._find_primary(ln)
        if frame is None:
            holder = self._find_affiliated(ln)
            if holder is not None:
                # Writes to an affiliated copy promote it first (§3.3).
                frame = self._promote(ln, holder)
            else:
                frame, _, _ = self._fill(ln, offset, TrafficKind.FILL)
        pvals = frame.pvals
        m = mask
        while m:
            low = m & -m
            i = low.bit_length() - 1
            m ^= low
            pvals[offset + i] = values[i] & MASK32
        line_mask = mask << offset
        frame.pa |= line_mask
        comp = (
            (comp & mask) << offset
            if comp is not None
            else self._comp_bits(ln, pvals, line_mask)
        )
        frame.vcp = (frame.vcp & ~line_mask) | comp
        # Primary priority (§3.3), scheme-aware: the written words reclaim
        # any slot the space rule no longer lets an affiliated word share.
        conflict = frame.aa & ~self._slot_mask(frame)
        if conflict:
            self.stats.dropped_affiliated_words += conflict.bit_count()
            frame.aa &= ~conflict
        frame.dirty = True

    # ---- verification -----------------------------------------------------------

    def check_invariants(self) -> None:
        """Audit all structural invariants; raises on violation.

        Delegates to :func:`repro.check.invariants.audit`, which verifies

        * frame-local flag consistency and the scheme-aware space rule
          (``AA`` within the legal slot mask for this scheme's width);
        * ``VCP`` equals true compressibility for every present primary word
          (the memo is in sync);
        * every ``AA`` word is genuinely compressible at its own address;
        * single-copy: no line is simultaneously a primary line and an
          affiliated resident, and primary tags are unique;
        * replacement-state sanity (set sizes, distinct frames)

        and raises :class:`repro.errors.InvariantViolation` (a
        :class:`CacheProtocolError`) carrying a serialized frame dump.
        """
        from repro.check.invariants import audit

        audit(self)

    def flush(self) -> None:
        """Write back every dirty primary line and invalidate all frames.

        Affiliated content is clean by invariant and is simply dropped.
        """
        for ways in self._sets:
            for frame in ways:
                if frame.valid:
                    if _inject.ACTIVE:
                        _inject.SESSION.before_evict(self, frame)
                    if frame.dirty:
                        self.stats.writebacks += 1
                        self.downstream.write_back(
                            self.line_addr(frame.line_no),
                            list(frame.pvals),
                            frame.pa,
                            frame.vcp if self._shared_scheme else None,
                        )
                frame.invalidate()

    def contents(self) -> list[tuple[int, int, int, bool]]:
        """(line_no, n_primary_words, n_affiliated_words, dirty) per frame."""
        return [
            (f.line_no, f.n_primary_words, f.n_affiliated_words, f.dirty)
            for ways in self._sets
            for f in ways
            if f.valid
        ]
