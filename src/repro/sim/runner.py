"""High-level run helpers with per-process memoization.

Experiments share (workload, seed, scale) traces and (workload, config)
results; generating a trace or simulating a configuration twice would
double the cost of every figure, so both are cached keyed by their full
parameterization. Caches are plain dicts — safe because programs and
results are treated as immutable once produced.
"""

from __future__ import annotations

from repro.sim.config import SIM_CONFIGS, SimConfig
from repro.sim.machine import Machine
from repro.sim.results import SimResult
from repro.workloads.base import Program
from repro.workloads.registry import generate

__all__ = ["run_program", "run_workload", "run_matrix", "clear_caches", "get_program"]

_PROGRAM_CACHE: dict[tuple[str, int, float], Program] = {}
#: (workload, seed, scale, cache_config, miss_scale) -> result. The key
#: fully determines the run (programs are pure functions of their key),
#: so results computed in worker processes can be injected here.
_RESULT_CACHE: dict[tuple[str, int, float, str, float], SimResult] = {}


def clear_caches() -> None:
    """Drop all memoized programs and results."""
    _PROGRAM_CACHE.clear()
    _RESULT_CACHE.clear()


def get_program(workload: str, *, seed: int = 1, scale: float = 1.0) -> Program:
    """Generate (or reuse) a workload's program."""
    key = (workload, seed, scale)
    prog = _PROGRAM_CACHE.get(key)
    if prog is None:
        prog = generate(workload, seed=seed, scale=scale)
        _PROGRAM_CACHE[key] = prog
    return prog


def run_program(
    program: Program, config: SimConfig | str, *, verify_loads: bool = False
) -> SimResult:
    """Run an already-generated program on a named or explicit config."""
    return Machine(config, verify_loads=verify_loads).run(program)


def run_workload(
    workload: str,
    config: SimConfig | str = "BC",
    *,
    seed: int = 1,
    scale: float = 1.0,
    verify_loads: bool = False,
    use_cache: bool = True,
) -> SimResult:
    """Generate the workload and simulate it on *config* (memoized)."""
    if isinstance(config, str):
        config = SIM_CONFIGS.get(config.upper(), SimConfig(cache_config=config))
    key = (workload, seed, scale, config.cache_config, config.miss_scale)
    if use_cache and not verify_loads:
        hit = _RESULT_CACHE.get(key)
        if hit is not None:
            return hit
    program = get_program(workload, seed=seed, scale=scale)
    result = run_program(program, config, verify_loads=verify_loads)
    if use_cache and not verify_loads:
        _RESULT_CACHE[key] = result
    return result


def prewarm_parallel(
    workloads: list[str],
    configs: list[str],
    *,
    seed: int = 1,
    scale: float = 1.0,
    miss_scales: tuple[float, ...] = (1.0,),
    max_workers: int | None = None,
) -> int:
    """Fill the result cache using all cores; returns cells computed.

    Subsequent :func:`run_workload` calls with matching parameters are
    cache hits, so the (serial) experiment harnesses get the parallel
    speedup without knowing about it.
    """
    from repro.sim.parallel import run_matrix_parallel_configs

    n = 0
    for miss_scale in miss_scales:
        cfgs = [
            SIM_CONFIGS.get(c.upper(), SimConfig(cache_config=c)).with_miss_scale(
                miss_scale
            )
            for c in configs
        ]
        results = run_matrix_parallel_configs(
            workloads, cfgs, seed=seed, scale=scale, max_workers=max_workers
        )
        for (workload, cache_config, ms), result in results.items():
            _RESULT_CACHE[(workload, seed, scale, cache_config, ms)] = result
            n += 1
    return n


def run_matrix(
    workloads: list[str],
    configs: list[str],
    *,
    seed: int = 1,
    scale: float = 1.0,
    progress: bool = False,
) -> dict[tuple[str, str], SimResult]:
    """Simulate the full (workload x config) matrix the figures are built
    from; returns ``{(workload, config): result}``."""
    out: dict[tuple[str, str], SimResult] = {}
    for workload in workloads:
        for config in configs:
            if progress:  # pragma: no cover - cosmetic
                print(f"  running {workload} on {config} ...", flush=True)
            out[(workload, config)] = run_workload(
                workload, config, seed=seed, scale=scale
            )
    return out
