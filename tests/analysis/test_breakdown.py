"""Tests for three-C miss classification."""

import pytest

from repro.analysis.breakdown import classify_misses
from repro.errors import ConfigurationError
from repro.isa.opcodes import OpClass
from repro.isa.trace import TraceBuilder
from repro.workloads.registry import generate

BASE = 0x1000_0000


def trace_of_addrs(addrs):
    tb = TraceBuilder("bk")
    for a in addrs:
        tb.append(0x400000, OpClass.LOAD, dest=1, addr=a)
    return tb.build()


class TestSyntheticStreams:
    def test_single_touch_is_all_compulsory(self):
        trace = trace_of_addrs([BASE + 64 * i for i in range(32)])
        bk = classify_misses(trace, size_bytes=8192, assoc=1, line_bytes=64)
        assert bk.compulsory == 32
        assert bk.capacity == 0
        assert bk.conflict == 0

    def test_cyclic_overflow_is_capacity(self):
        # 256 lines cycled twice through a 128-line fully-assoc cache:
        # second pass misses everything -> capacity.
        addrs = [BASE + 64 * i for i in range(256)] * 2
        trace = trace_of_addrs(addrs)
        bk = classify_misses(trace, size_bytes=8192, assoc=128, line_bytes=64)
        assert bk.compulsory == 256
        assert bk.capacity == 256
        assert bk.conflict == 0

    def test_two_way_removes_pure_conflicts(self):
        # Two lines aliasing to the same direct-mapped set, alternated.
        a, b = BASE, BASE + 8192
        trace = trace_of_addrs([a, b] * 50)
        direct = classify_misses(trace, size_bytes=8192, assoc=1, line_bytes=64)
        assert direct.conflict == 98  # everything after the 2 cold misses
        assert direct.capacity == 0
        two_way = classify_misses(trace, size_bytes=8192, assoc=2, line_bytes=64)
        assert two_way.conflict == 0

    def test_fractions_and_totals(self):
        trace = trace_of_addrs([BASE, BASE + 8192] * 10)
        bk = classify_misses(trace, size_bytes=8192, assoc=1, line_bytes=64)
        assert bk.total == bk.compulsory + bk.capacity + bk.conflict
        assert bk.fraction("compulsory") + bk.fraction("capacity") + bk.fraction(
            "conflict"
        ) == pytest.approx(1.0)
        assert 0.0 < bk.miss_rate <= 1.0

    def test_geometry_checked(self):
        trace = trace_of_addrs([BASE])
        with pytest.raises(ConfigurationError):
            classify_misses(trace, size_bytes=1000)
        with pytest.raises(ConfigurationError):
            classify_misses(trace, size_bytes=64, assoc=2, line_bytes=64)


class TestPaperClaims:
    def test_compress_is_conflict_dominated_in_the_paper_l1(self):
        """§4.3's predicate ("conflict misses are dominant") holds most
        strongly for compress in our suite: its two 64 KB hash tables
        alias heavily in the 8 KB direct-mapped L1 — and Figure 11 shows
        HAC and CPP beating BCP there, exactly the paper's mechanism."""
        program = generate("spec95.129.compress", seed=1, scale=0.3)
        bk = classify_misses(program.trace)  # the paper's 8 KB direct-mapped L1
        assert bk.conflict_dominated
        assert bk.fraction("conflict") > 0.5

    def test_sequential_treeadd_is_not_conflict_dominated(self):
        program = generate("olden.treeadd", seed=1, scale=0.3)
        bk = classify_misses(program.trace)
        assert bk.fraction("conflict") < 0.5

    def test_higher_associativity_reduces_conflicts_only(self):
        program = generate("spec2000.300.twolf", seed=1, scale=0.25)
        direct = classify_misses(program.trace, assoc=1)
        two_way = classify_misses(program.trace, assoc=2)
        assert two_way.conflict < direct.conflict
        assert two_way.compulsory == direct.compulsory
