"""Metrics registry: label identity, type safety, histogram bucketing."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
    percentiles_from_buckets,
)


class TestMetricKey:
    def test_no_labels_is_bare_name(self):
        assert metric_key("cache.hits", {}) == "cache.hits"

    def test_labels_sorted_into_key(self):
        key = metric_key("cache.hits", {"level": "L1", "config": "CPP"})
        assert key == "cache.hits{config=CPP,level=L1}"

    def test_label_order_does_not_matter(self):
        a = metric_key("m", {"a": 1, "b": 2})
        b = metric_key("m", {"b": 2, "a": 1})
        assert a == b


class TestLabelIdentity:
    def test_same_labels_return_same_instrument(self):
        reg = MetricsRegistry()
        c1 = reg.counter("cache.hits", level="L1", config="CPP")
        c2 = reg.counter("cache.hits", config="CPP", level="L1")
        assert c1 is c2
        c1.inc(3)
        c2.inc(2)
        assert reg.value("cache.hits", level="L1", config="CPP") == 5

    def test_different_labels_are_distinct(self):
        reg = MetricsRegistry()
        reg.inc("cache.hits", 1, level="L1")
        reg.inc("cache.hits", 10, level="L2")
        assert reg.value("cache.hits", level="L1") == 1
        assert reg.value("cache.hits", level="L2") == 10
        assert reg.value("cache.hits") is None  # unlabelled never created

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m", level="L1")
        with pytest.raises(ConfigurationError):
            reg.gauge("m", level="L1")

    def test_collect_and_snapshot_filter_by_prefix(self):
        reg = MetricsRegistry()
        reg.inc("cache.hits", 2, level="L1")
        reg.set_gauge("core.ipc", 0.8, workload="olden.mst")
        cache_only = reg.collect("cache.")
        assert [m.name for m in cache_only] == ["cache.hits"]
        snap = reg.snapshot("core.")
        assert snap == {"core.ipc{workload=olden.mst}": 0.8}

    def test_reset_empties_registry(self):
        reg = MetricsRegistry()
        reg.inc("m")
        reg.reset()
        assert len(reg) == 0
        assert reg.get("m") is None


class TestCounter:
    def test_rejects_negative(self):
        c = Counter("m", {})
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_accumulates(self):
        c = Counter("m", {})
        c.inc()
        c.inc(4)
        assert c.value == 5


class TestGauge:
    def test_set_and_add_both_directions(self):
        g = Gauge("m", {})
        g.set(10.0)
        g.add(-3.0)
        assert g.value == 7.0


class TestHistogram:
    def test_integer_edges_are_inclusive(self):
        h = Histogram("lat", {}, bounds=(1, 2, 4))
        for v in (1, 2, 2, 4, 5):
            h.observe(v)
        d = h.as_dict()
        assert d["buckets"] == {"1": 1, "2": 2, "4": 1, "inf": 1}
        assert d["count"] == 5
        assert d["mean"] == pytest.approx(14 / 5)

    def test_bad_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("m", {}, bounds=())
        with pytest.raises(ConfigurationError):
            Histogram("m", {}, bounds=(4, 2, 1))

    def test_registry_observe_path(self):
        reg = MetricsRegistry()
        reg.observe("core.load_latency", 3, hierarchy="CPP")
        reg.observe("core.load_latency", 300, hierarchy="CPP")
        h = reg.get("core.load_latency", hierarchy="CPP")
        assert h.count == 2
        assert reg.value("core.load_latency", hierarchy="CPP") is None  # not scalar


class TestPercentiles:
    def test_empty_histogram_reports_zero(self):
        h = Histogram("m", {})
        d = h.as_dict()
        assert d["p50"] == 0.0 and d["p95"] == 0.0 and d["p99"] == 0.0

    def test_single_value_pins_every_quantile(self):
        h = Histogram("m", {})
        h.observe(7)
        d = h.as_dict()
        assert d["p50"] == d["p95"] == d["p99"] == 7

    def test_interpolation_inside_bucket(self):
        # 100 samples uniform over the (4, 8] bucket: the p50 estimate
        # lands mid-bucket, well away from either edge.
        h = Histogram("m", {}, bounds=(4, 8))
        for _ in range(100):
            h.observe(6)
        p50 = h.percentile(0.5)
        assert 4 < p50 < 8

    def test_estimates_clamped_to_observed_range(self):
        h = Histogram("m", {}, bounds=(100,))
        h.observe(3)
        h.observe(5)
        d = h.as_dict()
        # Coarse bucketing would interpolate far above 5; the observed
        # max bounds it.
        assert d["p99"] <= 5
        assert d["p50"] >= 3

    def test_overflow_bucket_bounded_by_observed_max(self):
        h = Histogram("m", {}, bounds=(1, 2))
        for v in (10, 20, 30):
            h.observe(v)
        assert h.percentile(0.99) <= 30

    def test_ordering_of_quantiles(self):
        h = Histogram("m", {})
        for v in (1, 2, 4, 8, 16, 32, 64, 128, 256, 300):
            h.observe(v)
        d = h.as_dict()
        assert d["p50"] <= d["p95"] <= d["p99"] <= d["max"]

    def test_percentiles_from_buckets_empty(self):
        out = percentiles_from_buckets((1, 2), [0, 0, 0], 0, 0.0, 0.0)
        assert out == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_custom_quantile_labels(self):
        out = percentiles_from_buckets(
            (10,), [4, 0], 4, 1.0, 9.0, qs=(0.25, 0.75)
        )
        assert set(out) == {"p25", "p75"}
        assert out["p25"] <= out["p75"]

    def test_dump_is_typed(self):
        reg = MetricsRegistry()
        reg.inc("a.count", 2)
        reg.set_gauge("a.rate", 0.5)
        reg.observe("a.lat", 3)
        dump = reg.dump()
        assert dump["a.count"] == {"type": "counter", "value": 2}
        assert dump["a.rate"] == {"type": "gauge", "value": 0.5}
        assert dump["a.lat"]["type"] == "histogram"
        assert dump["a.lat"]["data"]["p50"] == 3
