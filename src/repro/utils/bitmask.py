"""Packed-int per-word mask helpers for the cache hot paths.

The cache models keep per-word flags (availability, compressibility,
affiliated residency) as plain Python ints: bit *i* describes word *i*
of the line. Plain-int bitwise ops are allocation-free and an order of
magnitude cheaper than the tiny (8–32 element) NumPy arrays they
replace, which paid array-construction and ufunc-dispatch overhead on
every access.

These helpers normalize the *public* boundaries (``write_back``, buffer
inserts, memory writes), so tests and tools may keep passing NumPy bool
arrays or lists; the internal hot paths always deal in ints and lists.
"""

from __future__ import annotations

__all__ = ["as_mask", "as_words", "mask_bits"]


def as_mask(mask) -> int:
    """Normalize a per-word mask to a packed int.

    Accepts an int (returned unchanged), or any iterable of truthy
    per-word flags (NumPy bool array, list of bools) where element *i*
    maps to bit *i*.
    """
    if isinstance(mask, int):
        return mask
    m = 0
    bit = 1
    for flag in mask:
        if flag:
            m |= bit
        bit <<= 1
    return m


def as_words(values) -> list[int]:
    """Normalize a word-value sequence to a list of Python ints.

    Lists pass through unchanged (no copy — callers own their data);
    NumPy arrays and other sequences are converted element-wise.
    """
    if type(values) is list:
        return values
    return [int(v) for v in values]


def mask_bits(mask: int) -> list[int]:
    """Indices of the set bits of *mask*, ascending (tests/debug)."""
    out = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out
