"""Unit tests for the statistics accumulators."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import Counter, Histogram, RunningMean


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert int(c) == 5

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_reset(self):
        c = Counter("x", 7)
        c.reset()
        assert c.value == 0


class TestRunningMean:
    def test_empty(self):
        m = RunningMean()
        assert m.mean == 0.0
        assert m.variance == 0.0

    def test_known_values(self):
        m = RunningMean()
        for x in (2.0, 4.0, 6.0):
            m.add(x)
        assert m.mean == pytest.approx(4.0)
        assert m.variance == pytest.approx(np.var([2, 4, 6]))

    def test_weighted_add(self):
        m = RunningMean()
        m.add(3.0, weight=4)
        assert m.count == 4
        assert m.mean == pytest.approx(3.0)

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            RunningMean().add(1.0, weight=0)
        with pytest.raises(ValueError):
            RunningMean().add_bulk(1.0, weight=0)

    @given(st.lists(st.tuples(st.floats(-1e6, 1e6),
                              st.integers(min_value=1, max_value=50)),
                    min_size=1, max_size=30))
    def test_bulk_matches_numpy(self, samples):
        m = RunningMean()
        expanded = []
        for x, w in samples:
            m.add_bulk(x, w)
            expanded.extend([x] * w)
        assert m.count == len(expanded)
        assert m.mean == pytest.approx(np.mean(expanded), rel=1e-9, abs=1e-9)
        assert m.variance == pytest.approx(np.var(expanded), rel=1e-6, abs=1e-6)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100))
    def test_add_matches_numpy(self, xs):
        m = RunningMean()
        for x in xs:
            m.add(x)
        assert m.mean == pytest.approx(np.mean(xs), rel=1e-9, abs=1e-9)


class TestHistogram:
    def test_mean(self):
        h = Histogram()
        h.add(1, 2)
        h.add(3)
        assert h.total == 3
        assert h.mean == pytest.approx(5 / 3)

    def test_zero_weight_is_noop(self):
        h = Histogram()
        h.add(5, 0)
        assert h.total == 0

    def test_percentile(self):
        h = Histogram()
        for v in range(1, 11):
            h.add(v)
        assert h.percentile(50) == 5
        assert h.percentile(100) == 10
        assert h.percentile(0) == 1

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram().percentile(50)

    def test_percentile_range_checked(self):
        h = Histogram()
        h.add(1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_merge(self):
        a, b = Histogram(), Histogram()
        a.add(1, 2)
        b.add(1, 3)
        b.add(2, 1)
        a.merge(b)
        assert a.counts == {1: 5, 2: 1}

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            Histogram().add(1, -1)
