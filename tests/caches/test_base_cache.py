"""Unit tests for the conventional set-associative cache."""

import numpy as np
import pytest

from repro.caches.base import Cache
from repro.caches.interface import MemoryPort
from repro.errors import CacheProtocolError, ConfigurationError
from repro.memory.image import MemoryImage
from repro.memory.main_memory import MainMemory

BASE = 0x1000_0000


def make_cache(size=512, assoc=1, line=64, mem=None, hit_latency=1):
    mem = mem or MainMemory(MemoryImage(), latency=100)
    port = MemoryPort(mem)
    cache = Cache(
        "T",
        size_bytes=size,
        assoc=assoc,
        line_bytes=line,
        hit_latency=hit_latency,
        downstream=port,
    )
    return cache, mem


class TestGeometry:
    def test_derived_fields(self):
        cache, _ = make_cache(size=8192, assoc=2, line=64)
        assert cache.n_sets == 64
        assert cache.line_words == 16
        assert cache.set_index(cache.line_no(BASE)) == (BASE >> 6) % 64

    @pytest.mark.parametrize(
        "kw",
        [
            {"size": 1000},
            {"line": 48},
            {"assoc": 0},
            {"size": 64, "assoc": 2, "line": 64},  # zero sets
        ],
    )
    def test_invalid_geometry(self, kw):
        with pytest.raises(ConfigurationError):
            make_cache(**kw)

    def test_negative_latency(self):
        with pytest.raises(ConfigurationError):
            make_cache(hit_latency=-1)


class TestAccessBasics:
    def test_cold_miss_then_hit(self):
        cache, mem = make_cache()
        mem.poke_word(BASE, 123)
        miss = cache.access(BASE, write=False)
        assert miss.served_by == "memory"
        assert miss.latency == 100
        assert miss.value == 123
        hit = cache.access(BASE, write=False)
        assert hit.served_by == "l1"
        assert hit.latency == 1
        assert cache.stats.accesses == 2
        assert cache.stats.misses == 1

    def test_spatial_locality_within_line(self):
        cache, _ = make_cache()
        cache.access(BASE, write=False)
        for offset in range(4, 64, 4):
            assert cache.access(BASE + offset, write=False).served_by == "l1"

    def test_write_read_own_data(self):
        cache, _ = make_cache()
        cache.access(BASE, write=True, value=0xABCD)
        assert cache.access(BASE, write=False).value == 0xABCD

    def test_write_requires_value(self):
        cache, _ = make_cache()
        with pytest.raises(CacheProtocolError):
            cache.access(BASE, write=True)


class TestReplacement:
    def test_direct_mapped_conflict(self):
        cache, _ = make_cache(size=512, assoc=1, line=64)  # 8 sets
        conflicting = BASE + 512  # same set, different tag
        cache.access(BASE, write=False)
        cache.access(conflicting, write=False)
        assert cache.access(BASE, write=False).served_by == "memory"  # evicted

    def test_two_way_keeps_both(self):
        cache, _ = make_cache(size=512, assoc=2, line=64)  # 4 sets
        cache.access(BASE, write=False)
        cache.access(BASE + 256, write=False)  # same set, other way
        assert cache.access(BASE, write=False).served_by == "l1"
        assert cache.access(BASE + 256, write=False).served_by == "l1"

    def test_lru_order(self):
        cache, _ = make_cache(size=512, assoc=2, line=64)
        a, b, c = BASE, BASE + 256, BASE + 512  # all map to one set
        cache.access(a, write=False)
        cache.access(b, write=False)
        cache.access(a, write=False)  # a becomes MRU
        cache.access(c, write=False)  # evicts b (LRU)
        assert cache.access(a, write=False).served_by == "l1"
        assert cache.access(b, write=False).served_by == "memory"

    def test_dirty_eviction_writes_back(self):
        cache, mem = make_cache(size=512, assoc=1, line=64)
        cache.access(BASE, write=True, value=77)
        cache.access(BASE + 512, write=False)  # evicts dirty line
        assert mem.peek_word(BASE) == 77
        assert cache.stats.writebacks == 1
        assert mem.bus.writeback_words == 16

    def test_clean_eviction_no_writeback(self):
        cache, mem = make_cache(size=512, assoc=1, line=64)
        cache.access(BASE, write=False)
        cache.access(BASE + 512, write=False)
        assert mem.bus.writeback_words == 0


class TestLineSourceRole:
    def test_subline_fetch(self):
        l2_cache, mem = make_cache(size=2048, assoc=2, line=128)
        mem.poke_word(BASE + 64, 55)
        resp = l2_cache.fetch(BASE + 64, 16, 0)
        assert resp.avail == (1 << 16) - 1
        assert resp.values[0] == 55
        assert resp.latency == 1 + 100  # L2 "hit latency" 1 + memory

        resp2 = l2_cache.fetch(BASE + 64, 16, 3)
        assert resp2.latency == 1  # now resident

    def test_fetch_alignment_checked(self):
        l2_cache, _ = make_cache(size=2048, line=128)
        with pytest.raises(CacheProtocolError):
            l2_cache.fetch(BASE + 4, 16, 0)

    def test_fetch_width_checked(self):
        l2_cache, _ = make_cache(size=2048, line=128)
        with pytest.raises(CacheProtocolError):
            l2_cache.fetch(BASE, 64, 0)  # wider than my line

    def test_writeback_merges_into_resident_line(self):
        l2_cache, mem = make_cache(size=2048, assoc=2, line=128)
        l2_cache.fetch(BASE, 32, 0)
        values = np.arange(16, dtype=np.uint32) + 200
        mask = np.ones(16, dtype=bool)
        l2_cache.write_back(BASE + 64, values, mask)
        resp = l2_cache.fetch(BASE + 64, 16, 0)
        assert list(resp.values) == list(values)

    def test_writeback_allocates_when_absent(self):
        l2_cache, mem = make_cache(size=2048, assoc=2, line=128)
        mem.poke_word(BASE, 9)  # word outside the written half
        values = np.full(16, 300, dtype=np.uint32)
        l2_cache.write_back(BASE + 64, values, np.ones(16, dtype=bool))
        # merged: fetched line holds both the old word and the new data
        resp = l2_cache.fetch(BASE, 16, 0)
        assert resp.values[0] == 9
        resp2 = l2_cache.fetch(BASE + 64, 16, 0)
        assert resp2.values[0] == 300

    def test_record_false_suppresses_stats(self):
        l2_cache, _ = make_cache(size=2048, line=128)
        l2_cache.fetch(BASE, 16, 0, record=False)
        assert l2_cache.stats.accesses == 0


class TestMaintenance:
    def test_flush_writes_dirty(self):
        cache, mem = make_cache()
        cache.access(BASE, write=True, value=5)
        cache.access(BASE + 64, write=False)
        cache.flush()
        assert mem.peek_word(BASE) == 5
        assert cache.contents() == []

    def test_peek_line(self):
        cache, mem = make_cache()
        mem.poke_word(BASE, 4)
        cache.access(BASE, write=False)
        data = cache.peek_line(cache.line_no(BASE))
        assert data is not None and data[0] == 4
        assert cache.peek_line(cache.line_no(BASE + 0x1000)) is None

    def test_probe_no_side_effects(self):
        cache, _ = make_cache()
        assert not cache.probe(BASE)
        assert cache.stats.accesses == 0
