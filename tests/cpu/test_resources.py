"""Unit tests for the functional-unit pool."""

import pytest

from repro.cpu.resources import FuCounts, FuPool
from repro.errors import ConfigurationError
from repro.isa.opcodes import OpClass


class TestFuCounts:
    def test_paper_defaults(self):
        fu = FuCounts()
        assert fu.ialu == 4
        assert fu.imult == 1
        assert fu.mem_ports == 2
        assert fu.falu == 4
        assert fu.fmult == 1

    def test_zero_units_rejected(self):
        with pytest.raises(ConfigurationError):
            FuCounts(ialu=0)


class TestFuPool:
    def test_alu_slots_per_cycle(self):
        pool = FuPool()
        assert all(pool.try_issue(OpClass.IALU) for _ in range(4))
        assert not pool.try_issue(OpClass.IALU)

    def test_new_cycle_resets(self):
        pool = FuPool()
        for _ in range(4):
            pool.try_issue(OpClass.IALU)
        pool.new_cycle()
        assert pool.try_issue(OpClass.IALU)

    def test_mult_and_div_share_the_unit(self):
        pool = FuPool()
        assert pool.try_issue(OpClass.IMULT)
        assert not pool.try_issue(OpClass.IDIV)

    def test_loads_and_stores_share_mem_ports(self):
        pool = FuPool()
        assert pool.try_issue(OpClass.LOAD)
        assert pool.try_issue(OpClass.STORE)
        assert not pool.try_issue(OpClass.LOAD)

    def test_branch_uses_alu(self):
        pool = FuPool()
        for _ in range(4):
            assert pool.try_issue(OpClass.BRANCH)
        assert not pool.try_issue(OpClass.IALU)

    def test_fp_units_independent_of_int(self):
        pool = FuPool()
        for _ in range(4):
            pool.try_issue(OpClass.IALU)
        assert pool.try_issue(OpClass.FALU)
        assert pool.try_issue(OpClass.FMULT)

    def test_free_slots_introspection(self):
        pool = FuPool()
        assert pool.free_slots(OpClass.IALU) == 4
        pool.try_issue(OpClass.IALU)
        assert pool.free_slots(OpClass.IALU) == 3
