"""Tests for trace save/load."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.isa.opcodes import OpClass
from repro.isa.trace import TraceBuilder
from repro.isa.traceio import load_trace, save_trace
from repro.workloads.registry import generate


def small_trace():
    tb = TraceBuilder("io-test")
    tb.append(0x400000, OpClass.LOAD, dest=1, addr=0x1000, value=7)
    tb.append(0x400008, OpClass.IALU, dest=2, src1=1)
    tb.append(0x400010, OpClass.STORE, src2=2, addr=0x1004, value=9)
    tb.append(0x400018, OpClass.BRANCH, src1=2, taken=True)
    return tb.build()


class TestRoundTrip:
    def test_columns_identical(self, tmp_path):
        trace = small_trace()
        path = save_trace(trace, tmp_path / "t")
        assert path.suffix == ".npz"
        loaded = load_trace(path)
        assert loaded.name == trace.name
        for col in ("pc", "op", "dest", "src1", "src2", "addr", "value", "taken"):
            assert np.array_equal(getattr(loaded, col), getattr(trace, col)), col

    def test_real_workload_roundtrip(self, tmp_path):
        trace = generate("olden.mst", seed=1, scale=0.1).trace
        loaded = load_trace(save_trace(trace, tmp_path / "mst.npz"))
        assert len(loaded) == len(trace)
        assert np.array_equal(loaded.value, trace.value)

    def test_suffix_appended_once(self, tmp_path):
        path = save_trace(small_trace(), tmp_path / "x.npz")
        assert path.name == "x.npz"


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "nope.npz")

    def test_not_a_trace_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(TraceError):
            load_trace(path)

    def test_wrong_version(self, tmp_path):
        import json

        trace = small_trace()
        path = tmp_path / "old.npz"
        meta = json.dumps({"version": 0, "name": "x"})
        np.savez(
            path,
            meta=np.frombuffer(meta.encode(), dtype=np.uint8),
            **{
                c: getattr(trace, c)
                for c in ("pc", "op", "dest", "src1", "src2", "addr", "value", "taken")
            },
        )
        with pytest.raises(TraceError):
            load_trace(path)


class TestProgramArchives:
    def test_program_roundtrip(self, tmp_path):
        from repro.isa.traceio import load_program, save_program

        prog = generate("olden.treeadd", seed=3, scale=0.05)
        path = save_program(prog, tmp_path / "prog")
        loaded = load_program(path)
        assert loaded.name == prog.name
        assert loaded.description == prog.description
        assert loaded.params == prog.params
        for col in ("pc", "op", "dest", "src1", "src2", "addr", "value", "taken"):
            assert np.array_equal(
                getattr(loaded.trace, col), getattr(prog.trace, col)
            ), col
        assert loaded.final_image == prog.final_image

    def test_program_without_image(self, tmp_path):
        from repro.isa.traceio import load_program, save_program
        from repro.workloads.base import Program

        prog = generate("olden.treeadd", seed=1, scale=0.05)
        bare = Program(name=prog.name, trace=prog.trace)
        loaded = load_program(save_program(bare, tmp_path / "bare"))
        assert loaded.final_image is None

    def test_load_missing(self, tmp_path):
        from repro.isa.traceio import load_program

        with pytest.raises(TraceError):
            load_program(tmp_path / "nope.npz")

    def test_load_rejects_plain_trace_archive(self, tmp_path):
        from repro.isa.traceio import load_program

        path = save_trace(small_trace(), tmp_path / "t")
        with pytest.raises(TraceError):
            load_program(path)

    def test_cache_path_encodes_full_key(self, tmp_path):
        from repro.isa.traceio import program_cache_path

        a = program_cache_path(
            tmp_path, "olden.mst", seed=1, scale=0.5, generator_version="1"
        )
        b = program_cache_path(
            tmp_path, "olden.mst", seed=2, scale=0.5, generator_version="1"
        )
        c = program_cache_path(
            tmp_path, "olden.mst", seed=1, scale=0.5, generator_version="2"
        )
        d = program_cache_path(
            tmp_path, "olden.mst", seed=1, scale=0.25, generator_version="1"
        )
        assert len({a, b, c, d}) == 4
        assert a.parent == tmp_path
