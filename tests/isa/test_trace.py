"""Unit tests for instruction records and columnar traces."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.isa.instruction import NO_REG, Instruction
from repro.isa.opcodes import EXEC_LATENCY, OpClass, is_branch, is_mem
from repro.isa.trace import Trace, TraceBuilder


class TestOpcodes:
    def test_mem_predicate(self):
        assert is_mem(OpClass.LOAD) and is_mem(OpClass.STORE)
        assert not is_mem(OpClass.IALU)

    def test_branch_predicate(self):
        assert is_branch(OpClass.BRANCH)
        assert not is_branch(OpClass.LOAD)

    def test_every_opclass_has_latency(self):
        for op in OpClass:
            assert EXEC_LATENCY[op] >= 1

    def test_multiply_slower_than_alu(self):
        assert EXEC_LATENCY[OpClass.IMULT] > EXEC_LATENCY[OpClass.IALU]
        assert EXEC_LATENCY[OpClass.IDIV] > EXEC_LATENCY[OpClass.IMULT]


class TestInstruction:
    def test_load_properties(self):
        ins = Instruction(pc=0x400000, op=OpClass.LOAD, dest=1, addr=0x1000)
        assert ins.is_load and ins.is_mem and not ins.is_store

    def test_defaults(self):
        ins = Instruction(pc=0, op=OpClass.IALU)
        assert ins.dest == NO_REG
        assert not ins.taken

    def test_frozen(self):
        ins = Instruction(pc=0, op=OpClass.NOP)
        with pytest.raises(AttributeError):
            ins.pc = 4


class TestTraceBuilder:
    def test_build_roundtrip(self):
        tb = TraceBuilder("t")
        tb.append(0x400000, OpClass.LOAD, dest=3, src1=2, addr=0x1000, value=7)
        tb.append(0x400008, OpClass.IALU, dest=4, src1=3)
        tb.append(0x400010, OpClass.BRANCH, src1=4, taken=True)
        trace = tb.build()
        assert len(trace) == 3
        first = trace[0]
        assert first.op is OpClass.LOAD
        assert first.dest == 3 and first.addr == 0x1000 and first.value == 7
        assert trace[2].taken

    def test_negative_index(self):
        tb = TraceBuilder()
        tb.append(0, OpClass.NOP)
        tb.append(8, OpClass.IALU, dest=1)
        assert tb.build()[-1].op is OpClass.IALU

    def test_unaligned_mem_rejected(self):
        tb = TraceBuilder()
        with pytest.raises(TraceError):
            tb.append(0, OpClass.LOAD, dest=1, addr=0x1001)

    def test_address_on_alu_rejected(self):
        tb = TraceBuilder()
        with pytest.raises(TraceError):
            tb.append(0, OpClass.IALU, dest=1, addr=0x1000)

    def test_store_with_dest_rejected(self):
        tb = TraceBuilder()
        with pytest.raises(TraceError):
            tb.append(0, OpClass.STORE, dest=1, addr=0x1000)

    def test_register_range_checked(self):
        tb = TraceBuilder()
        with pytest.raises(TraceError):
            tb.append(0, OpClass.IALU, dest=40000)

    def test_extend_from_instructions(self):
        tb = TraceBuilder()
        tb.extend(
            [
                Instruction(pc=0, op=OpClass.IALU, dest=1),
                Instruction(pc=8, op=OpClass.STORE, src2=1, addr=0x10, value=5),
            ]
        )
        assert tb.build().n_stores == 1


class TestTraceViews:
    @pytest.fixture
    def trace(self) -> Trace:
        tb = TraceBuilder("views")
        tb.append(0, OpClass.LOAD, dest=1, addr=0x100, value=11)
        tb.append(8, OpClass.IALU, dest=2, src1=1)
        tb.append(16, OpClass.STORE, src2=2, addr=0x104, value=12)
        tb.append(24, OpClass.BRANCH, src1=2, taken=False)
        return tb.build()

    def test_masks(self, trace):
        assert trace.n_mem == 2
        assert trace.n_loads == 1
        assert trace.n_stores == 1
        assert trace.n_branches == 1

    def test_accessed_values_order(self, trace):
        values, addrs = trace.accessed_values()
        assert list(values) == [11, 12]
        assert list(addrs) == [0x100, 0x104]

    def test_summary(self, trace):
        s = trace.summary()
        assert s["instructions"] == 4
        assert s["loads"] == 1

    def test_iteration(self, trace):
        ops = [ins.op for ins in trace]
        assert ops == [OpClass.LOAD, OpClass.IALU, OpClass.STORE, OpClass.BRANCH]

    def test_column_dtypes(self, trace):
        assert trace.addr.dtype == np.uint32
        assert trace.op.dtype == np.uint8
        assert trace.dest.dtype == np.int16

    def test_validate_catches_corruption(self, trace):
        trace.addr[1] = 0x5000  # address on an ALU op
        with pytest.raises(TraceError):
            trace.validate()

    def test_mismatched_columns_rejected(self):
        with pytest.raises(TraceError):
            Trace(
                pc=np.zeros(2, dtype=np.uint32),
                op=np.zeros(1, dtype=np.uint8),
                dest=np.zeros(2, dtype=np.int16),
                src1=np.zeros(2, dtype=np.int16),
                src2=np.zeros(2, dtype=np.int16),
                addr=np.zeros(2, dtype=np.uint32),
                value=np.zeros(2, dtype=np.uint32),
                taken=np.zeros(2, dtype=bool),
            )
