"""Shared experiment plumbing: result container and rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.utils.tables import format_bar_chart, format_table
from repro.workloads.registry import WORKLOAD_NAMES

__all__ = ["ExperimentOutput", "render_output", "resolve_workloads", "GEOMEAN"]

GEOMEAN = "average"


@dataclass
class ExperimentOutput:
    """The regenerated content of one paper figure.

    ``series`` maps a series label (usually a cache configuration) to
    ``{workload: value}``; ``headers``/``rows`` hold the same data as a
    printable table. ``paper_reference`` states what the paper reported so
    EXPERIMENTS.md can juxtapose paper-vs-measured.
    """

    figure: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    series: dict[str, dict[str, float]] = field(default_factory=dict)
    unit: str = ""
    baseline_value: float | None = None
    paper_reference: str = ""
    notes: str = ""


def resolve_workloads(workloads: Sequence[str] | None) -> list[str]:
    """Default to the full 14-benchmark suite."""
    return list(workloads) if workloads else list(WORKLOAD_NAMES)


def average(values: dict[str, float]) -> float | None:
    """Arithmetic mean over workloads (the paper reports plain averages).

    ``None`` entries — cells that failed and rendered as holes — are
    excluded; an all-hole series averages to ``None`` (another hole)
    rather than a misleading number.
    """
    present = [v for v in values.values() if v is not None]
    return sum(present) / len(present) if present else None


def render_output(out: ExperimentOutput, *, charts: bool = True) -> str:
    """Render an experiment's output as table + per-series bar charts."""
    blocks = [
        format_table(
            out.headers, out.rows, title=f"{out.figure}: {out.title}", ndigits=3
        )
    ]
    if charts:
        for label, data in out.series.items():
            blocks.append(
                format_bar_chart(
                    data,
                    title=f"-- {label} --",
                    unit=out.unit,
                    baseline=out.baseline_value,
                )
            )
    if out.paper_reference:
        blocks.append(f"[paper] {out.paper_reference}")
    if out.notes:
        blocks.append(f"[notes] {out.notes}")
    return "\n\n".join(blocks)
