"""spec95.147.vortex — object-database transactions.

(Extra workload: registered under the "extra" group, beyond the paper's
fourteen.)

Models vortex's object-store behaviour: a hash-indexed object table of
heap records (``{id, kind, payload[4], next}``), transactions that look
objects up, read and rewrite their payloads, occasionally create and
delete objects (free-list churn), and periodic index-order scans.
Pointers and small ids compress; payload words are large handles.
"""

from __future__ import annotations

from repro.workloads.base import Program, ProgramBuilder, scaled

__all__ = ["build", "DEFAULT_OBJECTS", "DEFAULT_TRANSACTIONS"]

DEFAULT_OBJECTS = 800
DEFAULT_TRANSACTIONS = 350
_BUCKETS = 256

_O_ID = 0
_O_KIND = 4
_O_PAYLOAD = 8  # 4 words
_O_NEXT = 24
_O_BYTES = 28


def build(seed: int = 1, scale: float = 1.0) -> Program:
    """Generate the vortex program; *scale* adjusts transaction count."""
    n_objects = DEFAULT_OBJECTS
    n_txn = scaled(DEFAULT_TRANSACTIONS, scale, minimum=8)

    pb = ProgramBuilder("spec95.147.vortex", seed, allocator="freelist")
    pb.op("g", (), label="vx.entry")

    table = pb.static_array(_BUCKETS)
    buckets: dict[int, list[int]] = {b: [] for b in range(_BUCKETS)}
    objects: dict[int, int] = {}  # id -> addr

    def insert_object(obj_id: int) -> int:
        addr = pb.malloc(_O_BYTES)
        b = obj_id % _BUCKETS
        head = pb.load(table + 4 * b, "head", base="g", label="vx.ins.ldh")
        pb.store(addr + _O_ID, obj_id & 0x3FFF, base="g", label="vx.ins.id")
        pb.store(addr + _O_KIND, obj_id % 7, base="g", label="vx.ins.kind")
        for w in range(4):
            pb.store(addr + _O_PAYLOAD + 4 * w, pb.rand_large(), base="g",
                     label="vx.ins.payload")
        pb.store(addr + _O_NEXT, head, base="g", src="head", label="vx.ins.next")
        pb.store(table + 4 * b, addr, base="g", label="vx.ins.sth")
        buckets[b].insert(0, addr)
        objects[obj_id] = addr
        return addr

    def chain_lookup(obj_id: int) -> int | None:
        """Walk the bucket chain to the object (emits the pointer chase)."""
        b = obj_id % _BUCKETS
        cur = pb.load(table + 4 * b, "p", base="g", label="vx.lk.ldh")
        target = objects.get(obj_id)
        for addr in buckets[b]:
            pb.branch("vx.lk.loop", taken=True, srcs=("p",))
            oid = pb.load(addr + _O_ID, "oid", base="p", label="vx.lk.ldid")
            pb.load(addr + _O_NEXT, "p", base="p", label="vx.lk.ldn")
            if pb.if_("vx.lk.hit", addr == target, srcs=("oid",)):
                return addr
        pb.branch("vx.lk.loop", taken=False, srcs=("p",))
        return None

    # ---- build the store --------------------------------------------------------
    next_id = 0
    for _ in pb.for_range("vx.populate", n_objects, cond_srcs=("g",)):
        insert_object(next_id)
        next_id += 1

    # ---- transactions -------------------------------------------------------------
    commits = 0
    for t in pb.for_range("vx.txns", n_txn, cond_srcs=("g",)):
        op = pb.rng.random()
        if op < 0.70 and objects:
            # Read-modify-write transaction.
            obj_id = int(pb.rng.choice(list(objects)))
            addr = chain_lookup(obj_id)
            if addr is not None:
                for w in range(4):
                    v = pb.load(addr + _O_PAYLOAD + 4 * w, "pv", base="p",
                                label="vx.rmw.ld")
                    pb.op("pv", ("pv",), label="vx.rmw.xform")
                    pb.store(addr + _O_PAYLOAD + 4 * w, (v ^ 0x5A5A_0000) | 1,
                             base="p", src="pv", label="vx.rmw.st")
                commits += 1
        elif op < 0.85:
            insert_object(next_id)
            next_id += 1
            commits += 1
        elif objects:
            # Delete: unlink from its chain and free.
            obj_id = int(pb.rng.choice(list(objects)))
            addr = objects.pop(obj_id)
            b = obj_id % _BUCKETS
            chain = buckets[b]
            idx = chain.index(addr)
            nxt = pb.image.read_word(addr + _O_NEXT)
            if idx == 0:
                pb.store(table + 4 * b, nxt, base="g", label="vx.del.sth")
            else:
                pb.store(chain[idx - 1] + _O_NEXT, nxt, base="p",
                         label="vx.del.unlink")
            chain.pop(idx)
            pb.free(addr)
            commits += 1
        # Periodic index scan over a bucket range (sequential-ish reads).
        if t % 16 == 0:
            for b in range(0, _BUCKETS, 8):
                pb.load(table + 4 * b, "scan", base="g", label="vx.scan.ld")
            pb.branch("vx.scan.done", taken=False, srcs=("scan",))

    out = pb.static_array(1)
    pb.store(out, commits & 0x3FFF, src="pv", label="vx.result")
    return pb.build(
        description="hash-indexed object store: lookups, RMW, create/delete churn",
        params={"objects": n_objects, "transactions": n_txn, "commits": commits},
    )
