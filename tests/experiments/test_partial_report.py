"""Graceful degradation: failed cells become holes, not tracebacks."""

import os

import pytest

from repro.analysis.report import failure_summary
from repro.experiments.common import render_output
from repro.experiments.registry import run_experiment
from repro.experiments.runall import main
from repro.sim import fault
from repro.sim.runner import clear_caches

SCALE = 0.1
WORKLOADS = ["olden.mst", "olden.treeadd"]


def _fail_cell(workload, config, *, miss_scale=1.0):
    key = fault.cell_key(workload, config, seed=1, scale=SCALE)
    key = (*key[:4], miss_scale)
    fault.LEDGER.record(
        fault.CellFailure(
            key=key, kind=fault.KIND_TIMEOUT, message="injected for test",
            attempts=3, timeout=1.0,
        )
    )


@pytest.fixture(autouse=True)
def _fresh():
    clear_caches()
    yield
    clear_caches()


class TestPartialFigures:
    def test_failed_cell_renders_as_hole(self):
        _fail_cell("olden.treeadd", "CPP")
        out = run_experiment("fig12", WORKLOADS, scale=SCALE)
        by_name = {row[0]: row for row in out.rows}
        cpp_col = out.headers.index("CPP")
        assert by_name["olden.treeadd"][cpp_col] is None
        # The sibling cells of the same row survive:
        assert by_name["olden.treeadd"][out.headers.index("BC")] == 100.0
        assert by_name["olden.mst"][cpp_col] is not None
        rendered = render_output(out, charts=False)
        assert "—" in rendered
        # The average skips the hole instead of poisoning the column:
        assert by_name["average"][cpp_col] is not None

    def test_missing_baseline_holes_the_row(self):
        _fail_cell("olden.treeadd", "BC")
        out = run_experiment("fig10", WORKLOADS, scale=SCALE)
        by_name = {row[0]: row for row in out.rows}
        assert all(cell is None for cell in by_name["olden.treeadd"][1:])
        assert by_name["olden.mst"][1] is not None

    def test_fig15_holes_one_row(self):
        _fail_cell("olden.treeadd", "CPP")
        out = run_experiment("fig15", WORKLOADS, scale=SCALE)
        by_name = {row[0]: row for row in out.rows}
        assert by_name["olden.treeadd"][1:] == [None, None, None]
        assert by_name["olden.mst"][3] is not None

    def test_failure_summary_names_the_cell(self):
        assert failure_summary() == ""
        _fail_cell("olden.treeadd", "CPP")
        text = failure_summary()
        assert "partial evaluation" in text
        assert "olden.treeadd" in text and "timeout" in text


class TestCliFailurePaths:
    def _args(self, tmp_path, *extra):
        return [
            "fig12", "--workloads", *WORKLOADS, "--scale", str(SCALE),
            "--retries", "0", "--no-charts", "--no-profile",
            "--checkpoint", str(tmp_path / "ck.jsonl"), *extra,
        ]

    @pytest.fixture()
    def _crash_one_cell(self, monkeypatch):
        """Make the (olden.treeadd, CPP) cell die hard, end to end."""
        real = fault._matrix_cell_worker

        def injected(task):
            if (task[0], task[1]) == ("olden.treeadd", "CPP"):
                os._exit(17)
            return real(task)

        monkeypatch.setattr(fault, "_matrix_cell_worker", injected)

    def test_crash_yields_holes_and_exit_1(self, tmp_path, capsys,
                                           _crash_one_cell):
        rc = main(self._args(tmp_path))
        captured = capsys.readouterr()
        assert rc == 1
        assert "—" in captured.out
        assert "partial evaluation" in captured.out
        assert "crash" in captured.out
        assert "Traceback" not in captured.out + captured.err

    def test_fail_fast_aborts_with_one_line(self, tmp_path, capsys,
                                            _crash_one_cell):
        rc = main(self._args(tmp_path, "--fail-fast"))
        captured = capsys.readouterr()
        assert rc == 1
        assert "CellCrashError" in captured.err
        assert "Traceback" not in captured.out + captured.err

    def test_second_run_resumes_from_checkpoint(self, tmp_path, capsys):
        assert main(self._args(tmp_path)) == 0
        capsys.readouterr()
        assert main(self._args(tmp_path)) == 0
        captured = capsys.readouterr()
        assert "10 from checkpoint" in captured.err

    def test_no_resume_ignores_checkpoint(self, tmp_path, capsys):
        assert main(self._args(tmp_path)) == 0
        capsys.readouterr()
        assert main(self._args(tmp_path, "--no-resume")) == 0
        captured = capsys.readouterr()
        assert "0 from checkpoint" in captured.err
