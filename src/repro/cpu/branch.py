"""Bimodal branch predictor (the paper's baseline predictor, Figure 9).

A table of 2-bit saturating counters indexed by low PC bits, exactly
SimpleScalar's ``bimod``. Counter semantics: 0-1 predict not-taken, 2-3
predict taken; increment on taken, decrement on not-taken.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.intmath import is_pow2

__all__ = ["BimodPredictor"]


class BimodPredictor:
    """2-bit saturating-counter branch direction predictor."""

    def __init__(self, n_entries: int = 2048) -> None:
        if not is_pow2(n_entries):
            raise ConfigurationError("predictor table size must be a power of two")
        self.n_entries = n_entries
        self._mask = n_entries - 1
        # Weakly taken initially, matching SimpleScalar.
        self._table = np.full(n_entries, 2, dtype=np.int8)
        self.lookups = 0
        self.correct = 0

    def _index(self, pc: int) -> int:
        # Word-aligned PCs: drop the low 3 bits as SimpleScalar's bimod does.
        return (pc >> 3) & self._mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at *pc* (True = taken)."""
        return bool(self._table[self._index(pc)] >= 2)

    def update(self, pc: int, taken: bool) -> bool:
        """Record the actual outcome; returns True if it was predicted right."""
        idx = self._index(pc)
        predicted = bool(self._table[idx] >= 2)
        if taken:
            if self._table[idx] < 3:
                self._table[idx] += 1
        else:
            if self._table[idx] > 0:
                self._table[idx] -= 1
        self.lookups += 1
        if predicted == taken:
            self.correct += 1
        return predicted == taken

    @property
    def mispredicts(self) -> int:
        return self.lookups - self.correct

    @property
    def accuracy(self) -> float:
        return self.correct / self.lookups if self.lookups else 0.0
