"""Unit + property tests for the paper's compression scheme (§2.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.scheme import PAPER_SCHEME, CompressClass, CompressionScheme
from repro.errors import ConfigurationError
from repro.utils.bitops import MASK32, to_uint32

words = st.integers(min_value=0, max_value=MASK32)
aligned_addrs = st.integers(min_value=0, max_value=MASK32 // 4).map(lambda x: x * 4)


class TestPaperGeometry:
    """The exact constants the paper states."""

    def test_compressed_width_is_16_bits(self):
        assert PAPER_SCHEME.compressed_bits == 16

    def test_pointer_prefix_is_17_bits(self):
        assert PAPER_SCHEME.pointer_prefix_bits == 17

    def test_small_check_is_18_bits(self):
        assert PAPER_SCHEME.small_check_bits == 18

    def test_small_value_range(self):
        # "small values within the range [-16384, 16383] are compressible"
        assert PAPER_SCHEME.small_min == -16384
        assert PAPER_SCHEME.small_max == 16383

    def test_pointer_chunk_is_32k(self):
        # "pointers within a 32K memory chunk ... are compressible"
        assert PAPER_SCHEME.pointer_chunk_bytes == 32 * 1024


class TestSmallValues:
    @pytest.mark.parametrize("v", [0, 1, 100, 16383])
    def test_positive_small(self, v):
        assert PAPER_SCHEME.is_small(v)

    @pytest.mark.parametrize("v", [-1, -100, -16384])
    def test_negative_small(self, v):
        assert PAPER_SCHEME.is_small(to_uint32(v))

    @pytest.mark.parametrize("v", [16384, -16385, 1 << 20, 0xDEADBEEF])
    def test_out_of_range(self, v):
        assert not PAPER_SCHEME.is_small(to_uint32(v))

    @given(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
    def test_matches_range_definition(self, v):
        assert PAPER_SCHEME.is_small(to_uint32(v)) == (-16384 <= v <= 16383)


class TestPointers:
    def test_same_chunk(self):
        assert PAPER_SCHEME.is_pointer(0x1000_2000, 0x1000_7FFC)

    def test_chunk_boundary(self):
        # 32 KB chunks are aligned: 0x...0000-0x...7FFF vs 0x...8000-.
        assert not PAPER_SCHEME.is_pointer(0x1000_7FFC, 0x1000_8000)

    def test_far_apart(self):
        assert not PAPER_SCHEME.is_pointer(0x1000_0000, 0x2000_0000)

    @given(words, aligned_addrs)
    def test_matches_prefix_definition(self, v, addr):
        same_chunk = (v >> 15) == (addr >> 15)
        assert PAPER_SCHEME.is_pointer(v, addr) == same_chunk


class TestClassify:
    def test_small_wins_over_pointer(self):
        # A small value stored at a low address passes both tests; the
        # hardware reports it as a sign-extension compressible value.
        addr = 0x0000_1000
        value = 0x0000_1004
        assert PAPER_SCHEME.is_small(value) and PAPER_SCHEME.is_pointer(value, addr)
        assert PAPER_SCHEME.classify(value, addr) is CompressClass.SMALL

    def test_pointer_class(self):
        assert (
            PAPER_SCHEME.classify(0x1000_2000, 0x1000_0000)
            is CompressClass.POINTER
        )

    def test_incompressible(self):
        assert (
            PAPER_SCHEME.classify(0xDEAD_BEEF, 0x1000_0000)
            is CompressClass.INCOMPRESSIBLE
        )

    @given(words, aligned_addrs)
    def test_is_compressible_consistent(self, v, addr):
        assert PAPER_SCHEME.is_compressible(v, addr) == (
            PAPER_SCHEME.classify(v, addr) is not CompressClass.INCOMPRESSIBLE
        )


class TestExpansion:
    @given(st.integers(min_value=-16384, max_value=16383))
    def test_small_roundtrip(self, v):
        u = to_uint32(v)
        assert PAPER_SCHEME.expand_small(PAPER_SCHEME.payload_of(u)) == u

    @given(aligned_addrs, st.integers(min_value=0, max_value=0x7FFF))
    def test_pointer_roundtrip(self, addr, offset):
        ptr = (addr & ~0x7FFF) | offset
        assert PAPER_SCHEME.expand_pointer(PAPER_SCHEME.payload_of(ptr), addr) == ptr


class TestParameterization:
    def test_width_8(self):
        s = CompressionScheme(payload_bits=7)
        assert s.compressed_bits == 8
        assert s.small_min == -64 and s.small_max == 63
        assert s.pointer_chunk_bytes == 128

    def test_width_24(self):
        s = CompressionScheme(payload_bits=23)
        assert s.compressed_bits == 24
        assert s.pointer_chunk_bytes == 1 << 23

    @pytest.mark.parametrize("bad", [0, -1, 31, 40])
    def test_invalid_width_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            CompressionScheme(payload_bits=bad)

    @given(
        st.integers(min_value=4, max_value=30),
        words,
        aligned_addrs,
    )
    def test_wider_payload_compresses_superset(self, p, v, addr):
        """Anything compressible at payload p is compressible at p+... only
        for the small test; assert monotonicity of the small predicate."""
        narrow = CompressionScheme(payload_bits=p - 1)
        wide = CompressionScheme(payload_bits=p)
        if narrow.is_small(v):
            assert wide.is_small(v)
