"""The compression scheme itself: classification of 32-bit words.

The paper compresses 32-bit words to 16 bits (a 1-bit ``VT`` type flag +
15 payload bits); §2.1 cites a study [16] showing 16 bits is the sweet
spot. We parameterize the payload width so the width ablation bench can
sweep it, with :data:`PAPER_SCHEME` fixed at the paper's numbers:

* payload 15 bits → pointer prefix = 17 bits, small-value check = 18 bits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.utils.bitops import MASK32, WORD_BITS, high_bits, low_bits, sign_extend

__all__ = ["CompressClass", "CompressionScheme", "PAPER_SCHEME"]


class CompressClass(enum.IntEnum):
    """Outcome of classifying one (value, address) pair.

    The integer values are stable and used by the vectorized analysis.
    """

    INCOMPRESSIBLE = 0
    SMALL = 1  #: 18 high bits all zeros or all ones
    POINTER = 2  #: 17 high bits equal those of the word's own address


@dataclass(frozen=True)
class CompressionScheme:
    """A prefix-elimination compression scheme for 32-bit words.

    Parameters
    ----------
    payload_bits:
        Number of low-order value bits kept in a compressed slot. The
        compressed slot is ``payload_bits + 1`` wide (one ``VT`` bit). The
        paper uses 15, i.e. 16-bit compressed slots.
    """

    payload_bits: int = 15

    def __post_init__(self) -> None:
        if not 1 <= self.payload_bits <= WORD_BITS - 2:
            raise ConfigurationError(
                f"payload_bits must be in [1, {WORD_BITS - 2}], got "
                f"{self.payload_bits}"
            )

    # ---- derived geometry -------------------------------------------------

    @property
    def compressed_bits(self) -> int:
        """Width of a compressed slot including the VT flag (paper: 16)."""
        return self.payload_bits + 1

    @property
    def pointer_prefix_bits(self) -> int:
        """High-order bits a pointer must share with its address (paper: 17)."""
        return WORD_BITS - self.payload_bits

    @property
    def small_check_bits(self) -> int:
        """High-order bits that must be uniform for a small value (paper: 18).

        One more than the discarded prefix because the retained payload's
        top bit doubles as the sign.
        """
        return WORD_BITS - self.payload_bits + 1

    @property
    def small_min(self) -> int:
        """Most negative compressible small value (paper: -16384)."""
        return -(1 << (self.payload_bits - 1))

    @property
    def small_max(self) -> int:
        """Most positive compressible small value (paper: 16383)."""
        return (1 << (self.payload_bits - 1)) - 1

    @property
    def pointer_chunk_bytes(self) -> int:
        """Size of the memory chunk within which pointers compress (32 KB)."""
        return 1 << self.payload_bits

    # ---- classification ---------------------------------------------------

    def is_small(self, value: int) -> bool:
        """True iff the high ``small_check_bits`` of *value* are uniform."""
        top = high_bits(value & MASK32, self.small_check_bits)
        return top == 0 or top == (1 << self.small_check_bits) - 1

    def is_pointer(self, value: int, addr: int) -> bool:
        """True iff *value* shares its high prefix with its own address."""
        n = self.pointer_prefix_bits
        return high_bits(value & MASK32, n) == high_bits(addr & MASK32, n)

    def classify(self, value: int, addr: int) -> CompressClass:
        """Classify a word; pointers are tried after the small-value test.

        The order matters only for attribution statistics — a word passing
        both tests is compressible either way — and follows the hardware,
        which checks the three conditions in parallel and reports "small"
        for values that are sign-extension compressible.
        """
        if self.is_small(value):
            return CompressClass.SMALL
        if self.is_pointer(value, addr):
            return CompressClass.POINTER
        return CompressClass.INCOMPRESSIBLE

    def is_compressible(self, value: int, addr: int) -> bool:
        """True iff the word can be stored in a compressed slot."""
        return self.is_small(value) or self.is_pointer(value, addr)

    # ---- raw payload transforms (used by the codec) -----------------------

    def payload_of(self, value: int) -> int:
        """Low-order payload bits retained in the compressed slot."""
        return low_bits(value & MASK32, self.payload_bits)

    def expand_small(self, payload: int) -> int:
        """Reconstruct a small value: sign-extend the payload to 32 bits."""
        return sign_extend(payload, self.payload_bits)

    def expand_pointer(self, payload: int, addr: int) -> int:
        """Reconstruct a pointer: graft the address's high prefix on."""
        prefix_mask = MASK32 & ~((1 << self.payload_bits) - 1)
        return ((addr & MASK32) & prefix_mask) | low_bits(payload, self.payload_bits)


PAPER_SCHEME = CompressionScheme(payload_bits=15)
"""The exact scheme evaluated in the paper (16-bit compressed slots)."""
