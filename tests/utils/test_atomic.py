"""Atomic write hardening: typed errors, no tmp litter, durability calls."""

from __future__ import annotations

import os

import pytest

from repro.errors import AtomicWriteError, ReproError
from repro.utils import atomic
from repro.utils.atomic import atomic_write_bytes, atomic_write_text


def no_tmp_litter(directory) -> bool:
    return not list(directory.glob("*.tmp"))


def test_round_trip(tmp_path):
    target = tmp_path / "out.json"
    assert atomic_write_text(target, "hello") == target
    assert target.read_text("utf-8") == "hello"
    assert no_tmp_litter(tmp_path)


def test_bytes_round_trip(tmp_path):
    target = tmp_path / "out.bin"
    atomic_write_bytes(target, b"\x00\xff")
    assert target.read_bytes() == b"\x00\xff"


def test_overwrite_is_all_or_nothing(tmp_path):
    target = tmp_path / "out.json"
    atomic_write_text(target, "old")
    atomic_write_text(target, "new")
    assert target.read_text("utf-8") == "new"
    assert no_tmp_litter(tmp_path)


def test_write_failure_is_typed_and_unlinks_tmp(tmp_path, monkeypatch):
    """ENOSPC mid-write: typed AtomicWriteError, no tmp file left, and
    the previous committed content untouched."""
    target = tmp_path / "out.json"
    atomic_write_text(target, "committed")

    def broken_fsync(fd):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr(os, "fsync", broken_fsync)
    with pytest.raises(AtomicWriteError) as excinfo:
        atomic_write_text(target, "lost")
    assert isinstance(excinfo.value, ReproError)  # part of the typed tree
    assert target.read_text("utf-8") == "committed"
    assert no_tmp_litter(tmp_path)


def test_rename_failure_unlinks_tmp(tmp_path, monkeypatch):
    target = tmp_path / "out.json"

    def broken_replace(src, dst, **kwargs):
        raise OSError(5, "Input/output error")

    monkeypatch.setattr(os, "replace", broken_replace)
    with pytest.raises(AtomicWriteError):
        atomic_write_text(target, "x")
    assert not target.exists()
    assert no_tmp_litter(tmp_path)


def test_unlink_failure_does_not_mask_original_error(tmp_path, monkeypatch):
    target = tmp_path / "out.json"
    monkeypatch.setattr(
        os, "fsync", lambda fd: (_ for _ in ()).throw(OSError(5, "EIO"))
    )
    monkeypatch.setattr(
        "pathlib.Path.unlink",
        lambda self, missing_ok=False: (_ for _ in ()).throw(OSError(30, "EROFS")),
    )
    with pytest.raises(AtomicWriteError, match="EIO"):
        atomic_write_text(target, "x")


def test_concurrent_writers_use_distinct_tmp_names(tmp_path, monkeypatch):
    """Two writers of one target must never share a temp path (a second
    process renaming the shared name away broke concurrent enqueues)."""
    target = tmp_path / "out.json"
    seen = []
    real_replace = os.replace

    def recording_replace(src, dst, **kwargs):
        seen.append(os.fspath(src))
        return real_replace(src, dst, **kwargs)

    monkeypatch.setattr(os, "replace", recording_replace)
    atomic_write_text(target, "a")
    atomic_write_text(target, "b")
    assert len(seen) == 2
    assert seen[0] != seen[1]
    assert str(os.getpid()) in os.path.basename(seen[0])


def test_parent_directories_are_created(tmp_path):
    target = tmp_path / "a" / "b" / "out.json"
    atomic_write_text(target, "x")
    assert target.read_text("utf-8") == "x"


def test_fsync_dir_tolerates_unopenable_path(tmp_path):
    atomic.fsync_dir(tmp_path / "does-not-exist")  # must not raise
