"""Frequent-value compression — the related-work alternative ([6], §5).

The paper contrasts its prefix scheme with the authors' earlier
*Frequent Value Cache* work: "data could be compressed at both levels by
exploiting frequent values found from programs". There a word is
compressible iff its value appears in a small table of the program's
most frequent values, and the compressed form is an index into that
table.

Implementing it here lets the repository ask a question the paper leaves
open: how much of CPP's win comes from the *prefix* scheme specifically,
versus any scheme with a similar hit rate? (Answer, per
``bench_extension_fvc``: the prefix scheme needs no profiling pass and
catches pointers FVC misses; FVC catches repeated incompressible
constants the prefix scheme misses.)

A :class:`FrequentValueScheme` is duck-compatible with
:class:`~repro.compression.scheme.CompressionScheme` everywhere the cache
models need it (``is_compressible``, ``compressed_bits``) and plugs into
the vectorized classifier through the ``mask_compressible`` hook.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.isa.trace import Trace
from repro.utils.intmath import ceil_div

__all__ = ["FrequentValueScheme", "profile_frequent_values"]


class FrequentValueScheme:
    """Value-table compressibility: a word compresses iff its value is in
    the table (address-independent, unlike the prefix scheme)."""

    def __init__(self, values: Iterable[int]) -> None:
        table = sorted({int(v) & 0xFFFF_FFFF for v in values})
        if not table:
            raise ConfigurationError("frequent-value table must not be empty")
        self._sorted = np.asarray(table, dtype=np.uint32)
        self._set = frozenset(table)
        index_bits = max(1, (len(table) - 1).bit_length())
        if index_bits + 1 > 16:
            # A 16-bit slot holds a 15-bit index + flag; a bigger table
            # would silently truncate indices if we capped the width.
            raise ConfigurationError(
                f"frequent-value table of {len(table)} entries needs "
                f"{index_bits}-bit indices, which do not fit the 16-bit "
                f"compressed slot (max {1 << 15} entries)"
            )
        #: compressed slot: table index + one flag bit, byte-rounded like
        #: the hardware in [6]; never wider than the paper's 16-bit slot.
        self.compressed_bits = 8 * ceil_div(index_bits + 1, 8)

    # ---- geometry -----------------------------------------------------------

    @property
    def table_size(self) -> int:
        return len(self._sorted)

    @property
    def payload_bits(self) -> int:
        return self.compressed_bits - 1

    # ---- predicates -------------------------------------------------------------

    def is_compressible(self, value: int, addr: int) -> bool:
        """Table membership; the address plays no role in FVC."""
        return (value & 0xFFFF_FFFF) in self._set

    def mask_compressible(
        self, values: np.ndarray, addrs: np.ndarray
    ) -> np.ndarray:
        """Vectorized membership test (hook for the bulk classifier)."""
        values = np.ascontiguousarray(values, dtype=np.uint32)
        idx = np.searchsorted(self._sorted, values)
        idx = np.clip(idx, 0, len(self._sorted) - 1)
        return self._sorted[idx] == values

    def table_values(self) -> list[int]:
        """The table contents, ascending (introspection/debug)."""
        return [int(v) for v in self._sorted]


def profile_frequent_values(trace: Trace, top_n: int = 128) -> FrequentValueScheme:
    """Build an FVC table from a trace's most frequently accessed values.

    This is the profiling pass the FVC design requires (and the prefix
    scheme does not) — the methodological cost the paper's §5 alludes to.
    """
    if top_n < 1:
        raise ConfigurationError("top_n must be positive")
    values, _ = trace.accessed_values()
    counts = Counter(values.tolist())
    table = [value for value, _count in counts.most_common(top_n)]
    return FrequentValueScheme(table)
