"""``python -m repro.store`` — operate the result store.

Subcommands::

    fsck     recover the journal, verify every record, quarantine what
             fails, sweep crash litter; prints a report and a
             machine-readable ``FSCK-SUMMARY`` JSON tail line
    migrate  import a legacy JSONL matrix checkpoint into the store
    stats    one-line store/queue state summary
    gc       evict superseded code-version records (refcount/pin policy,
             optional byte budget); prints a ``GC-SUMMARY`` JSON tail
    pin      hold a code version's records against gc (``--remove`` to
             release, ``--list`` to inspect)

Exit codes: ``fsck`` exits 0 when the store verifies after the pass
(repairs and quarantines are reported, not fatal) and 1 only when
problems survive; ``--strict`` additionally fails when anything needed
repairing. ``migrate`` exits 1 when nothing could be imported. ``gc``
exits 1 when the pass reports problems (an unevictable over-budget
store, unreadable records).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ReproError, UsageError
from repro.store.cas import ResultStore, default_store_dir
from repro.utils.atomic import atomic_write_text

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-store", description="Operate the content-addressed result store."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fsck = sub.add_parser("fsck", help="verify, repair and report")
    fsck.add_argument("--store", default=None, metavar="DIR")
    fsck.add_argument(
        "--no-repair",
        action="store_true",
        help="report only: do not replay the journal or quarantine",
    )
    fsck.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when anything needed repairing or quarantining",
    )
    fsck.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write the JSON report to PATH (CI artifact)",
    )

    migrate = sub.add_parser(
        "migrate", help="import a legacy JSONL checkpoint into the store"
    )
    migrate.add_argument("checkpoint", metavar="CHECKPOINT.jsonl")
    migrate.add_argument("--store", default=None, metavar="DIR")

    stats = sub.add_parser("stats", help="print store/queue counts")
    stats.add_argument("--store", default=None, metavar="DIR")

    gc = sub.add_parser(
        "gc", help="evict superseded code-version records"
    )
    gc.add_argument("--store", default=None, metavar="DIR")
    gc.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="only collect when the object tree exceeds BYTES, and only "
        "down to the low watermark (default: evict every superseded, "
        "unpinned record)",
    )
    gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be evicted without touching anything",
    )
    gc.add_argument(
        "--json", action="store_true", help="print the full JSON report"
    )

    pin = sub.add_parser(
        "pin", help="pin a code version's records against gc"
    )
    pin.add_argument("version", nargs="?", default=None, metavar="VERSION")
    pin.add_argument("--store", default=None, metavar="DIR")
    pin.add_argument(
        "--remove", action="store_true", help="drop one pin refcount instead"
    )
    pin.add_argument(
        "--list", action="store_true", help="show current pins and exit"
    )
    return parser


def _open_store(arg: str | None) -> ResultStore:
    root = Path(arg) if arg else default_store_dir()
    return ResultStore(root)


def _cmd_fsck(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    report = store.fsck(repair=not args.no_repair)
    payload = report.as_dict()
    payload["store"] = str(store.root)
    for line in (
        f"store: {store.root}",
        f"  scanned:     {report.scanned}",
        f"  verified:    {report.verified}",
        f"  replayed:    {report.replayed} (journal entries rolled forward)",
        f"  cleared:     {report.cleared} (stale journal entries)",
        f"  quarantined: {report.quarantined} (this pass; "
        f"{report.quarantine_total} total in quarantine)",
        f"  swept tmp:   {report.swept_tmp}",
    ):
        print(line)
    for problem in report.problems:
        print(f"  problem: {problem}")
    if args.report:
        atomic_write_text(args.report, json.dumps(payload, indent=2, sort_keys=True))
    print("FSCK-SUMMARY " + json.dumps(payload, sort_keys=True))
    if report.problems or report.scanned != report.verified:
        return 1
    if args.strict and report.repaired:
        return 1
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    from repro.sim.results_io import load_jsonl

    path = Path(args.checkpoint)
    if not path.exists():
        raise UsageError(f"checkpoint {path} does not exist", argument="checkpoint")
    store = _open_store(args.store)
    store.recover()
    imported = skipped = malformed = 0
    from repro.sim.results_io import result_from_dict

    bad_lines: list[int] = []
    for record in load_jsonl(
        path, on_malformed=lambda lineno, _msg: bad_lines.append(lineno)
    ):
        raw_key = record.get("key")
        if not isinstance(raw_key, list) or "result" not in record:
            malformed += 1
            continue
        try:
            result = result_from_dict(record["result"])
        except ReproError:
            malformed += 1
            continue
        if store.put(tuple(raw_key), result):
            imported += 1
        else:
            skipped += 1
    malformed += len(bad_lines)
    print(
        f"migrated {path} -> {store.root}: {imported} imported, "
        f"{skipped} already present, {malformed} malformed record(s)"
    )
    print(
        "MIGRATE-SUMMARY "
        + json.dumps(
            {
                "imported": imported,
                "skipped": skipped,
                "malformed": malformed,
                "store": str(store.root),
            },
            sort_keys=True,
        )
    )
    return 0 if (imported or skipped) else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    stats = store.stats()
    queue_root = store.root / "queue"
    campaigns = {}
    if queue_root.is_dir():
        from repro.store.queue import CampaignQueue

        for entry in sorted(queue_root.iterdir()):
            if entry.is_dir():
                campaigns[entry.name] = CampaignQueue(
                    queue_root, entry.name
                ).snapshot()
    stats["campaigns"] = campaigns
    print(json.dumps(stats, indent=2, sort_keys=True))
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    from repro.store.gc import gc_store

    store = _open_store(args.store)
    store.recover()
    report = gc_store(
        store, budget_bytes=args.budget, dry_run=args.dry_run
    )
    verb = "would evict" if args.dry_run else "evicted"
    print(
        f"store: {store.root}\n"
        f"  scanned:    {report.scanned} record(s), {report.bytes_total} bytes\n"
        f"  candidates: {report.candidates} superseded ({report.candidate_bytes} bytes)\n"
        f"  {verb}: {report.evicted} record(s), {report.evicted_bytes} bytes"
    )
    for version, info in sorted(report.versions.items()):
        tags = [t for t, on in (("current", info["current"]),
                                ("pinned", info["pins"])) if on]
        suffix = f" [{', '.join(tags)}]" if tags else ""
        print(
            f"  version {version}: {info['records']} record(s), "
            f"{info['bytes']} bytes{suffix}"
        )
    for problem in report.problems:
        print(f"  problem: {problem}")
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    print("GC-SUMMARY " + json.dumps(report.as_dict(), sort_keys=True))
    return 1 if report.problems else 0


def _cmd_pin(args: argparse.Namespace) -> int:
    from repro.store.gc import load_pins, pin_version, unpin_version

    store = _open_store(args.store)
    if args.list or args.version is None:
        if args.version is None and not args.list and args.remove:
            raise UsageError("--remove needs a VERSION", argument="version")
        pins = load_pins(store.root)
        print(json.dumps({"versions": pins}, indent=2, sort_keys=True))
        return 0
    if args.remove:
        pins = unpin_version(store.root, args.version)
    else:
        pins = pin_version(store.root, args.version)
    print(json.dumps({"versions": pins}, indent=2, sort_keys=True))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "fsck":
            return _cmd_fsck(args)
        if args.command == "migrate":
            return _cmd_migrate(args)
        if args.command == "gc":
            return _cmd_gc(args)
        if args.command == "pin":
            return _cmd_pin(args)
        return _cmd_stats(args)
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
