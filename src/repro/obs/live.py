"""Live TTY dashboard for supervised campaigns.

When a campaign runs interactively, a scrolling wall of per-cell lines
is the wrong interface: what the operator wants is *state at a glance* —
how far along, who is stuck, when it will finish. On a TTY (and in the
default ``auto`` progress mode) the supervised fork engine swaps its
per-cell stderr lines for an in-place dashboard:

* a **cell-state grid** — one glyph per cell (``·`` pending, ``▸``
  running, ``█`` done, ``x`` failed), campaign shape at a glance;
* **worker occupancy** — one row per busy worker slot with its current
  cell and how long it has been running (stragglers stand out);
* an **EMA throughput** estimate (cells/s, exponentially smoothed so a
  straggler doesn't whipsaw it) and the derived **ETA**.

Everything redraws in place with ANSI cursor movement on stderr; stdout
stays clean for figure tables. On non-TTY output (CI, pipes, ``plain``
or ``json`` progress modes) :func:`maybe_dashboard` returns None and the
engine falls back to the PR 1 line-per-event reporting — logs stay
stable and scrapable.
"""

from __future__ import annotations

import os
import sys
import time

from repro.obs import progress as _progress

__all__ = ["LiveDashboard", "maybe_dashboard", "should_use"]

_GLYPH_DONE = "█"
_GLYPH_RUN = "▸"
_GLYPH_PEND = "·"
_GLYPH_FAIL = "x"
_GRID_WIDTH = 64  #: grids wider than this collapse to counts only

#: EMA smoothing factor for the throughput estimate: heavy enough to
#: follow a real speed change within ~4 cells, light enough that one
#: straggler doesn't zero the ETA.
_EMA_ALPHA = 0.25


def should_use(stream=None) -> bool:
    """Should the dashboard replace line-by-line progress here?

    Only on a real TTY, only in ``auto`` progress mode, and never on a
    terminal that can't move the cursor (``TERM=dumb``).
    """
    stream = stream if stream is not None else sys.stderr
    try:
        if not stream.isatty():
            return False
    except (AttributeError, ValueError):
        return False
    if os.environ.get("TERM", "") == "dumb":
        return False
    return _progress.mode() == "auto"


def maybe_dashboard(total: int, workers: int) -> "LiveDashboard | None":
    """A dashboard when the environment supports one, else None."""
    if total <= 0 or not should_use():
        return None
    return LiveDashboard(total, workers)


class LiveDashboard:
    """In-place campaign view; the fork engine drives its transitions."""

    def __init__(self, total: int, workers: int, stream=None) -> None:
        self.total = total
        self.workers = workers
        self.stream = stream if stream is not None else sys.stderr
        self.states: dict[tuple, str] = {}  #: key -> run/done/fail glyph
        self.order: list[tuple] = []  #: keys in first-seen order
        self.running: dict[tuple, tuple[int, float, str]] = {}
        self.done = 0
        self.failed = 0
        self.reused = 0
        self.ema_rate = 0.0
        self._last_finish: float | None = None
        self._drawn_lines = 0
        self._last_draw = 0.0

    # -- state transitions (called by the supervisor) ------------------------

    def resumed(self, count: int) -> None:
        """*count* cells were satisfied from the checkpoint up front."""
        self.reused = count
        self.done += count
        self._draw(force=True)

    def started(self, key: tuple, slot: int, label: str) -> None:
        """A cell attempt began on worker *slot*."""
        if key not in self.states:
            self.order.append(key)
        self.states[key] = _GLYPH_RUN
        self.running[key] = (slot, time.monotonic(), label)
        self._draw(force=True)

    def finished(self, key: tuple, ok: bool) -> None:
        """A cell completed permanently (success or exhausted retries)."""
        self.running.pop(key, None)
        self.states[key] = _GLYPH_DONE if ok else _GLYPH_FAIL
        self.done += 1
        if not ok:
            self.failed += 1
        now = time.monotonic()
        if self._last_finish is not None:
            dt = max(1e-6, now - self._last_finish)
            rate = 1.0 / dt
            self.ema_rate = (
                rate
                if self.ema_rate == 0.0
                else _EMA_ALPHA * rate + (1.0 - _EMA_ALPHA) * self.ema_rate
            )
        self._last_finish = now
        self._draw(force=True)

    def retrying(self, key: tuple) -> None:
        """A cell attempt failed and is backing off for a retry."""
        self.running.pop(key, None)
        self.states[key] = _GLYPH_PEND
        self._draw(force=True)

    def tick(self) -> None:
        """Periodic refresh so running-cell timers advance (throttled)."""
        self._draw(force=False)

    def close(self, summary: str = "") -> None:
        """Clear the dashboard and leave one final plain line behind."""
        self._erase()
        if summary:
            print(f"[repro] {summary}", file=self.stream, flush=True)

    # -- rendering -----------------------------------------------------------

    def eta_seconds(self) -> float | None:
        """Estimated seconds to completion (None before any sample)."""
        if self.ema_rate <= 0.0:
            return None
        return max(0, self.total - self.done) / self.ema_rate

    def _grid(self) -> str:
        if self.total > _GRID_WIDTH:
            return ""
        cells = [self.states.get(k, _GLYPH_PEND) for k in self.order]
        cells.extend(
            _GLYPH_DONE for _ in range(self.reused)
        )  # checkpointed cells never enter `order`
        cells.extend(_GLYPH_PEND for _ in range(self.total - len(cells)))
        return "".join(cells[: self.total])

    def render(self) -> list[str]:
        """The dashboard's current lines (pure; drawing is separate)."""
        eta = self.eta_seconds()
        parts = [f"cells {self.done}/{self.total}"]
        grid = self._grid()
        if grid:
            parts.insert(0, grid)
        parts.append(f"{len(self.running)} running")
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.reused:
            parts.append(f"{self.reused} resumed")
        if self.ema_rate > 0.0:
            parts.append(f"{self.ema_rate:.2f} cell/s")
        if eta is not None:
            parts.append(f"ETA {eta:.0f}s")
        lines = ["[repro] " + " · ".join(parts)]
        now = time.monotonic()
        for key in sorted(self.running, key=lambda k: self.running[k][0]):
            slot, started, label = self.running[key]
            lines.append(f"  w{slot} {_GLYPH_RUN} {label} {now - started:.1f}s")
        return lines

    def _erase(self) -> None:
        if self._drawn_lines:
            # Cursor up to the first dashboard line, clear to screen end.
            self.stream.write(f"\x1b[{self._drawn_lines}F\x1b[J")
            self._drawn_lines = 0

    def _draw(self, *, force: bool) -> None:
        now = time.monotonic()
        if not force and now - self._last_draw < 0.25:
            return
        self._last_draw = now
        lines = self.render()
        self._erase()
        self.stream.write("\n".join(lines) + "\n")
        self.stream.flush()
        self._drawn_lines = len(lines)
