"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro.experiments all
    python -m repro.experiments fig10 fig11 --scale 0.5
    repro-experiments fig3 --workloads olden.treeadd spec95.130.li

Fault tolerance: the simulation matrix behind the figures runs through
the supervised engine (:mod:`repro.sim.fault`) — every cell in its own
process with per-attempt ``--timeout`` and bounded ``--retries`` — and
completed cells checkpoint incrementally to
``results/checkpoints/matrix-seed<seed>-scale<scale>.jsonl``. An
interrupted campaign (Ctrl-C, crash, OOM kill) re-run with ``--resume``
(the default) picks up from the checkpoint and produces bit-identical
figures; cells that fail permanently render as explicit ``—`` holes with
a failure summary and a non-zero exit code, never a bare traceback.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import ReproError, UsageError
from repro.experiments.common import render_output
from repro.experiments.registry import (
    EXPERIMENTS,
    MATRIX_CONFIGS,
    NO_MATRIX_FIGURES,
    miss_scales_for,
    run_experiment,
)
from repro.obs import export as _export
from repro.obs import phases as _phases
from repro.obs import progress as _progress
from repro.obs import span as _span
from repro.obs import telemetry as _telemetry
from repro.compression import codecs as _codecs
from repro.sim import backend as _backend
from repro.sim import fault as _fault
from repro.sim.parallel import default_workers
from repro.sim.runner import inject_results, memo_stats
from repro.utils.signals import interrupt_on_signal
from repro.workloads.registry import WORKLOAD_NAMES

__all__ = ["main"]

#: Back-compat aliases (the canonical homes are in the registry).
_MATRIX_CONFIGS = MATRIX_CONFIGS
_NO_MATRIX_FIGURES = NO_MATRIX_FIGURES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation figures of 'Enabling Partial Cache "
            "Line Prefetching Through Data Compression' (ICPP 2003)."
        ),
    )
    parser.add_argument(
        "figures",
        nargs="+",
        help=f"figure ids ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    parser.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        metavar="NAME",
        help=f"subset of workloads (default: all 14; known: {', '.join(WORKLOAD_NAMES)})",
    )
    parser.add_argument("--seed", type=int, default=1, help="workload RNG seed")
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="input-size scale factor (e.g. 0.3 for a quick pass)",
    )
    parser.add_argument(
        "--no-charts", action="store_true", help="print tables only"
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="run the simulation matrix across all CPU cores",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the matrix (default: 1, or cores - 1 with --parallel)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell attempt timeout; hung workers are terminated (default: none)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retries per failed cell, with exponential backoff (default: 1)",
    )
    parser.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse checkpointed cells from a previous (interrupted) run "
        "(--no-resume starts fresh)",
    )
    parser.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort the whole campaign on the first permanent cell failure",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="matrix checkpoint file (default: "
        "results/checkpoints/matrix-seed<seed>-scale<scale>.jsonl)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="durable content-addressed result store: completed cells "
        "commit to DIR through a write-ahead journal and are verified on "
        "read; multiple processes pointed at the same DIR drain one "
        "campaign queue without double-computing (replaces --checkpoint)",
    )
    parser.add_argument(
        "--serve",
        nargs="?",
        const="127.0.0.1:8765",
        default=None,
        metavar="HOST:PORT",
        help="instead of computing inline, boot the resilient experiment "
        "service on HOST:PORT (default 127.0.0.1:8765; port 0 picks a "
        "free one): the requested figures' matrix is pre-enqueued, a "
        "self-healing worker pool drains it, and results are served "
        "over HTTP (GET /v1/figure/<name>; 202 + Retry-After until "
        "ready). Requires --store",
    )
    parser.add_argument(
        "--no-profile",
        action="store_true",
        help="suppress the wall-clock/memoization breakdown at the end",
    )
    parser.add_argument(
        "--profile",
        type=int,
        default=None,
        metavar="N",
        help="run the campaign under cProfile and print the N hottest "
        "functions next to the phase breakdown",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="audit every cache's structural invariants after every "
        "mutating operation (same as REPRO_CHECK=1; slow, for debugging "
        "and CI correctness cells)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="simulation backend for every cell: 'reference' (pure-python "
        "loop) or 'fast' (compiled/vectorized, bit-identical); exported "
        "as REPRO_BACKEND so matrix workers inherit it",
    )
    parser.add_argument(
        "--codec",
        default=None,
        metavar="NAME",
        help="compression codec for every cell: 'cpp' (the paper's "
        "prefix scheme, default), 'fpc', 'bdi' or 'cpack'; exported as "
        "REPRO_CODEC so matrix workers inherit it. Only word-capable "
        "codecs (cpp, fpc) can drive the simulated hierarchy; line-only "
        "codecs are for the fig3c ratio/timing sweep",
    )
    parser.add_argument(
        "--progress",
        choices=_progress.MODES,
        default=None,
        help="progress output mode (overrides REPRO_PROGRESS): auto "
        "(default; live dashboard on a TTY), plain (line-per-event), "
        "json (machine-readable lines), quiet",
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="DIR",
        help="record a cross-process telemetry run into DIR: per-cell "
        "span/metric spools, a merged telemetry.json, a Perfetto-loadable "
        "trace.json and a flat spans.jsonl",
    )
    return parser


def _validate(args: argparse.Namespace) -> None:
    """Reject malformed arguments with typed, traceback-free errors."""
    if args.backend is not None and args.backend not in _backend.BACKEND_NAMES:
        raise UsageError(
            f"unknown backend {args.backend!r}",
            argument="--backend",
            choices=_backend.BACKEND_NAMES,
        )
    if args.codec is not None and args.codec not in _codecs.CODEC_NAMES:
        raise UsageError(
            f"unknown codec {args.codec!r}",
            argument="--codec",
            choices=_codecs.CODEC_NAMES,
        )
    if args.codec is not None and _codecs.get_codec(args.codec).word_scheme is None:
        figures = list(EXPERIMENTS) if "all" in args.figures else args.figures
        needs_matrix = [f for f in figures if f not in _NO_MATRIX_FIGURES]
        if needs_matrix:
            # Fail fast instead of burning supervised retries on every
            # cell: the machine would reject the codec identically.
            raise UsageError(
                f"codec {args.codec!r} is line-granular only and cannot "
                f"drive the simulated hierarchy needed by "
                f"{', '.join(needs_matrix)}; use a word-capable codec "
                "(cpp, fpc) or an analytical figure (fig3c)",
                argument="--codec",
            )
    if args.seed < 0:
        raise UsageError("--seed must be non-negative", argument="--seed")
    if args.scale <= 0:
        raise UsageError("--scale must be positive", argument="--scale")
    if args.timeout is not None and args.timeout <= 0:
        raise UsageError("--timeout must be positive", argument="--timeout")
    if args.retries < 0:
        raise UsageError("--retries must be non-negative", argument="--retries")
    if args.workers is not None and args.workers < 1:
        raise UsageError("--workers must be positive", argument="--workers")
    if args.profile is not None and args.profile < 1:
        raise UsageError("--profile must be positive", argument="--profile")
    if args.store is not None and args.checkpoint is not None:
        raise UsageError(
            "--store and --checkpoint are mutually exclusive (the store "
            "subsumes the checkpoint; import an old checkpoint with "
            "`python -m repro.store migrate`)",
            argument="--store",
        )
    if args.serve is not None:
        if args.store is None:
            raise UsageError(
                "--serve needs --store DIR (the service serves the store)",
                argument="--serve",
            )
        host, sep, port = args.serve.rpartition(":")
        if not sep or not port.lstrip("-").isdigit() or int(port) < 0:
            raise UsageError(
                f"--serve expects HOST:PORT, got {args.serve!r}",
                argument="--serve",
            )
    if args.store is not None and not args.resume:
        raise UsageError(
            "--no-resume makes no sense with --store (the store is "
            "idempotent and verified; delete the store directory to "
            "start fresh)",
            argument="--store",
        )
    for figure in args.figures:
        if figure != "all" and figure not in EXPERIMENTS:
            raise UsageError(
                f"unknown figure {figure!r}",
                argument="figures",
                choices=tuple(EXPERIMENTS) + ("all",),
            )
    for workload in args.workloads or ():
        if workload not in WORKLOAD_NAMES:
            raise UsageError(
                f"unknown workload {workload!r}",
                argument="--workloads",
                choices=tuple(WORKLOAD_NAMES),
            )


def _profile_summary(profiler=None, top_n: int = 0) -> str:
    """Where the wall-clock went, plus memoization effectiveness.

    With a cProfile *profiler* (``--profile N``), appends the *top_n*
    hottest functions by self time under the phase breakdown, so the
    function-level view lines up with the phase-level one.
    """
    lines = [_phases.PHASES.render()]
    memo = memo_stats()
    for kind in ("program", "result"):
        hits = memo[f"{kind}_hits"]
        total = hits + memo[f"{kind}_misses"]
        rate = f"{hits / total:.1%}" if total else "n/a"
        lines.append(
            f"memoization: {kind} cache {hits}/{total} hits ({rate})"
        )
    if profiler is not None:
        import io
        import pstats

        buf = io.StringIO()
        pstats.Stats(profiler, stream=buf).sort_stats("tottime").print_stats(
            top_n
        )
        lines.append(buf.getvalue().rstrip())
    return "\n".join(lines)


def _precompute_matrix(args, sim_figures: list[str]) -> None:
    """Run every needed matrix cell through the supervised engine.

    Completed cells are injected into the runner's memo cache, so the
    (serial) figure harnesses hit them; failed cells stay in the fault
    ledger and render as holes.
    """
    workloads = args.workloads or list(WORKLOAD_NAMES)
    miss_scales = miss_scales_for(sim_figures)
    workers = args.workers or (default_workers() if args.parallel else 1)
    policy = _fault.FaultPolicy(
        timeout=args.timeout, retries=args.retries, fail_fast=args.fail_fast
    )
    t0 = time.perf_counter()
    if args.store:
        from repro.store import run_matrix_store

        outcome = run_matrix_store(
            workloads,
            _MATRIX_CONFIGS,
            store_dir=args.store,
            seed=args.seed,
            scale=args.scale,
            miss_scales=miss_scales,
            policy=policy,
            max_workers=workers,
            progress=True,
            prewarm_programs=args.timeout is None,
        )
        reused = f"{outcome.reused} reused"
        state_home = f"store: {args.store}"
    else:
        checkpoint_path = args.checkpoint or _fault.default_checkpoint_path(
            args.seed, args.scale
        )
        outcome = _fault.run_matrix_supervised(
            workloads,
            _MATRIX_CONFIGS,
            seed=args.seed,
            scale=args.scale,
            miss_scales=miss_scales,
            policy=policy,
            max_workers=workers,
            checkpoint_path=checkpoint_path,
            resume=args.resume,
            progress=True,
            prewarm_programs=args.timeout is None,
        )
        reused = f"{outcome.reused} from checkpoint"
        state_home = f"checkpoint: {checkpoint_path}"
    inject_results(outcome.results)
    _progress.report(
        f"matrix ready in {time.perf_counter() - t0:.1f}s: "
        f"{len(outcome.results)} cells "
        f"({reused}, {len(outcome.failures)} failed); "
        f"{state_home}"
    )


def _render_figure(figure: str, args: argparse.Namespace) -> None:
    """Regenerate and print one figure (the matrix is already in)."""
    t0 = time.perf_counter()
    with _phases.phase(f"figure.{figure}"), _span.span(f"figure.{figure}"):
        output = run_experiment(
            figure, args.workloads, seed=args.seed, scale=args.scale
        )
    elapsed = time.perf_counter() - t0
    print(render_output(output, charts=not args.no_charts))
    print(f"[{figure} regenerated in {elapsed:.1f}s]\n")


def _export_telemetry(store, directory: str) -> None:
    """Finalize the run's telemetry and write both export formats."""
    from pathlib import Path

    _telemetry.finalize_run()
    out = Path(directory)
    trace = _export.write_chrome_trace(store, out / _export.CHROME_TRACE_FILENAME)
    spans = _export.write_spans_jsonl(store, out / _export.SPANS_FILENAME)
    _progress.report(
        f"telemetry: {out / _telemetry.STORE_FILENAME} "
        f"(chrome trace: {trace}, spans: {spans}; "
        f"render with `python -m repro.obs.report telemetry {out}`)",
        event="telemetry_written",
        dir=str(out),
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Exit codes: 0 clean, 1 on errors or a partial evaluation (holes),
    130 on interrupt. A cell failure never produces a bare traceback —
    it produces a rendered report with holes and a failure summary.
    """
    args = _build_parser().parse_args(argv)
    try:
        _validate(args)
    except UsageError as exc:
        _progress.report(f"error: {exc}")
        return 1
    if args.progress:
        _progress.configure(args.progress)
    if args.backend:
        # Environment, not per-config: forked matrix workers inherit it.
        _backend.set_default_backend(args.backend)
    if args.codec:
        # Same channel as --backend; the store's code-version salt picks
        # it up so non-default-codec results never collide with cpp's.
        _codecs.set_default_codec(args.codec)
    if args.check:
        from repro.check.runtime import set_runtime_checks

        set_runtime_checks(True)
    telem_store = (
        _telemetry.configure(args.telemetry) if args.telemetry else None
    )
    figures = list(EXPERIMENTS) if "all" in args.figures else args.figures
    sim_figures = [f for f in figures if f not in _NO_MATRIX_FIGURES]
    if args.serve is not None:
        # Service mode: pre-enqueue the figures' matrix and hand the
        # campaign to repro.serve's self-healing worker pool. Blocks
        # until SIGTERM/SIGINT (graceful drain) and exits 0.
        from repro.serve.app import run_service

        host, _, port = args.serve.rpartition(":")
        return run_service(
            args.store,
            host=host,
            port=int(port),
            workers=args.workers or default_workers(),
            cell_timeout=args.timeout,
            retries=args.retries,
            enqueue={
                "figures": sim_figures,
                "workloads": args.workloads,
                "seed": args.seed,
                "scale": args.scale,
            },
        )
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        # SIGTERM (what init systems and CI send first) unwinds exactly
        # like Ctrl-C: held queue leases are released by the campaign
        # engines' cleanup and the checkpoint stays a clean prefix.
        with interrupt_on_signal():
            if sim_figures:
                _precompute_matrix(args, sim_figures)
            for figure in figures:
                _render_figure(figure, args)
    except KeyboardInterrupt:
        _progress.report(
            "interrupted — completed cells are checkpointed; "
            "re-run with --resume to continue where this run stopped"
        )
        return 130
    except ReproError as exc:
        # Typed failures (fail-fast aborts, bad arguments, unknown
        # figures) report one line, not a traceback.
        _progress.report(f"error: {type(exc).__name__}: {exc}")
        return 1
    finally:
        if telem_store is not None:
            _export_telemetry(telem_store, args.telemetry)
            _telemetry.configure(None)
        if args.progress:
            _progress.configure(None)
    if profiler is not None:
        profiler.disable()
    rc = 0
    summary = _fault.LEDGER.summary()
    if summary:
        print(f"!! partial evaluation — '—' cells are holes\n{summary}\n")
        rc = 1
    if args.store:
        from repro.store import ResultStore

        quarantine = ResultStore(args.store).quarantine_summary()
        if quarantine:
            print(f"!! store quarantine — corrupt records set aside\n{quarantine}\n")
    if not args.no_profile:
        print(_profile_summary(profiler, args.profile or 0))
    return rc


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
