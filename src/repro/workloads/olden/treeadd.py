"""olden.treeadd — recursive sum over a binary tree.

The original benchmark allocates a complete binary tree of nodes
``{int val; tree_t *left; tree_t *right; int pad}`` and recursively adds
the ``val`` fields. The kernel is a pure pointer chase: each recursion
level loads two child pointers, so the loads serialize on the dependence
chain and tree-node cache misses sit squarely on the critical path.

Compressibility profile: child pointers are heap-local (bump allocation
in preorder keeps subtrees within a 32 KB chunk), ``val`` is small —
a strongly compressible workload, like the original.
"""

from __future__ import annotations

from repro.workloads.base import Program, ProgramBuilder, scaled

__all__ = ["build", "DEFAULT_DEPTH"]

DEFAULT_DEPTH = 13  #: 2**13 - 1 = 8191 nodes (128 KB of tree, 2x the L2)

_VAL = 0
_LEFT = 4
_RIGHT = 8
_PAD = 12
_NODE_BYTES = 16


def _build_tree(pb: ProgramBuilder, depth: int, parent_reg: str) -> int:
    """Allocate and initialize a subtree; returns its root address.

    Emits the stores of the original's ``TreeAlloc``: every field written
    once, children linked after their recursive construction.
    """
    addr = pb.malloc(_NODE_BYTES)
    pb.store(addr + _VAL, 1, base=parent_reg, label="ta.init.val")
    # The pad word models the node's non-pointer payload; real programs
    # carry some incompressible data even in pointer-dominated structures.
    pb.store(addr + _PAD, pb.rand_large(), base=parent_reg, label="ta.init.pad")
    if depth > 1:
        pb.call_overhead("ta.alloc", 1)
        left = _build_tree(pb, depth - 1, parent_reg)
        right = _build_tree(pb, depth - 1, parent_reg)
        pb.store(addr + _LEFT, left, base=parent_reg, label="ta.init.left")
        pb.store(addr + _RIGHT, right, base=parent_reg, label="ta.init.right")
        pb.branch("ta.alloc.leaf", taken=False)
    else:
        pb.store(addr + _LEFT, 0, base=parent_reg, label="ta.init.left")
        pb.store(addr + _RIGHT, 0, base=parent_reg, label="ta.init.right")
        pb.branch("ta.alloc.leaf", taken=True)
    return addr


def _tree_add(pb: ProgramBuilder, node: int, node_reg: str, depth: int) -> int:
    """The recursive ``TreeAdd``: returns the subtree sum.

    ``node_reg`` holds the node address; child-pointer loads are based on
    it, and the recursive calls are based on the loaded child registers —
    the load-to-load dependence chain of real pointer chasing.
    """
    left = pb.load(node + _LEFT, f"l{depth}", base=node_reg, label="ta.sum.ldl")
    right = pb.load(node + _RIGHT, f"r{depth}", base=node_reg, label="ta.sum.ldr")
    value = pb.load(node + _VAL, f"v{depth}", base=node_reg, label="ta.sum.ldv")
    if pb.if_("ta.sum.isleaf", left == 0, srcs=(f"l{depth}",)):
        return value
    pb.call_overhead("ta.sum", 1)
    total = value
    total += _tree_add(pb, left, f"l{depth}", depth - 1)
    pb.op("sum", ("sum", f"v{depth}"), label="ta.sum.accl")
    total += _tree_add(pb, right, f"r{depth}", depth - 1)
    pb.op("sum", ("sum", f"v{depth}"), label="ta.sum.accr")
    return total


def build(seed: int = 1, scale: float = 1.0) -> Program:
    """Generate the treeadd program.

    *scale* adjusts the node count (depth grows with log2 of scale).
    """
    depth = DEFAULT_DEPTH
    n_nodes = scaled((1 << depth) - 1, scale)
    while (1 << depth) - 1 > n_nodes and depth > 2:
        depth -= 1
    while (1 << (depth + 1)) - 1 <= n_nodes:
        depth += 1

    pb = ProgramBuilder("olden.treeadd", seed)
    pb.op("root", (), label="ta.entry")
    root = _build_tree(pb, depth, "root")
    pb.op("rootp", (), label="ta.rootp")
    total = _tree_add(pb, root, "rootp", depth)
    # The original prints the sum; model the use of the result.
    out = pb.static_array(1)
    pb.store(out, total, src="sum", label="ta.result")
    return pb.build(
        description="recursive sum over a binary tree (pointer chase)",
        params={"depth": depth, "nodes": (1 << depth) - 1, "sum": total},
    )
