"""Process-parallel execution of the (workload x configuration) matrix.

The evaluation matrix is embarrassingly parallel — every cell is an
independent, deterministic simulation — so each cell runs as its own
isolated, supervised child process (:mod:`repro.sim.fault`): workers
regenerate their own traces (cheap, and it avoids shipping
multi-megabyte arrays through pickling), results flow back as plain
picklable dataclasses, and a crashed, hung or failing cell costs one
cell — classified, retried per policy, and surfaced as a typed
:class:`~repro.errors.MatrixPartialFailure` carrying every completed
result — instead of aborting the campaign.

Determinism is preserved: a cell's result is a pure function of
``(workload, config, seed, scale)``, so the parallel matrix equals the
serial one bit for bit (asserted in ``tests/sim/test_parallel.py``).

Observability: when the telemetry pipeline is armed
(:func:`repro.obs.telemetry.configure`, or ``--telemetry`` on the
experiments CLI), every cell attempt gets a supervisor-side span and the
child spools its own spans/metrics/phases back for a deterministic
cross-process merge — no flags here; the supervised engine picks it up
from the module-global gate.

Speedup is bounded by the largest single cell (the matrix is wide but
cells are unequal); on a 4-core machine the full-scale matrix drops from
~90 s to ~30 s. ``REPRO_MAX_WORKERS`` caps the default worker count for
CI and shared machines.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

from repro.errors import ConfigurationError, ExperimentError
from repro.sim import fault as _fault
from repro.sim.results import SimResult

__all__ = ["run_matrix_parallel", "run_matrix_parallel_configs", "default_workers"]


def default_workers() -> int:
    """A polite default: leave one core for the caller.

    The ``REPRO_MAX_WORKERS`` environment variable caps the result
    (clamped to >= 1), so CI jobs and shared machines can bound
    parallelism without touching call sites; a non-integer value raises
    :class:`~repro.errors.ConfigurationError` rather than being silently
    ignored.
    """
    workers = max(1, (os.cpu_count() or 2) - 1)
    raw = os.environ.get("REPRO_MAX_WORKERS")
    if raw is None or not raw.strip():
        return workers
    try:
        cap = int(raw.strip())
    except ValueError:
        raise ConfigurationError(
            f"REPRO_MAX_WORKERS must be an integer, got {raw!r}"
        ) from None
    return max(1, min(workers, cap))


def _run_cell(task: tuple[str, str, int, float]) -> SimResult:
    """Worker entry point: simulate one named-config matrix cell."""
    from repro.sim.runner import run_workload

    workload, config, seed, scale = task
    return run_workload(workload, config, seed=seed, scale=scale)


def _named_key(task: tuple[str, str, int, float]) -> tuple[str, str]:
    return (task[0], task[1])


def run_matrix_parallel(
    workloads: Sequence[str],
    configs: Sequence[str],
    *,
    seed: int = 1,
    scale: float = 1.0,
    max_workers: int | None = None,
    progress: bool = False,
    policy: _fault.FaultPolicy | None = None,
    checkpoint: _fault.Checkpoint | None = None,
) -> dict[tuple[str, str], SimResult]:
    """Simulate the full matrix across supervised processes.

    Returns the same ``{(workload, config): result}`` mapping as
    :func:`repro.sim.runner.run_matrix`. *progress* reports each
    completed cell through the same :mod:`repro.obs.progress` funnel as
    the serial path. *policy* tunes timeouts/retries (default: one retry,
    no timeout); if any cell fails permanently a
    :class:`~repro.errors.MatrixPartialFailure` is raised carrying the
    completed results.
    """
    if not workloads or not configs:
        raise ExperimentError("workloads and configs must be non-empty")
    workers = max_workers if max_workers is not None else default_workers()
    if workers < 1:
        raise ExperimentError("max_workers must be positive")
    tasks = [
        (workload, config, seed, scale)
        for workload in workloads
        for config in configs
    ]
    outcome = _fault.run_supervised(
        tasks,
        _run_cell,
        key_of=_named_key,
        policy=policy,
        max_workers=workers,
        checkpoint=checkpoint,
        progress=progress,
        phase_name="parallel_matrix",
    )
    outcome.raise_if_failed()
    return outcome.results


def _run_config_cell(task) -> SimResult:
    """Worker entry for explicit SimConfig objects (e.g. miss-scaled)."""
    from repro.sim.machine import Machine
    from repro.sim.runner import get_program

    workload, config, seed, scale = task
    return Machine(config).run(get_program(workload, seed=seed, scale=scale))


def _config_key(task) -> tuple[str, str, float]:
    workload, config = task[0], task[1]
    return (workload, config.cache_config_key, config.miss_scale)


def run_matrix_parallel_configs(
    workloads: Sequence[str],
    configs: Sequence,
    *,
    seed: int = 1,
    scale: float = 1.0,
    max_workers: int | None = None,
    progress: bool = False,
    policy: _fault.FaultPolicy | None = None,
) -> dict[tuple[str, str, float], SimResult]:
    """Like :func:`run_matrix_parallel` but over explicit
    :class:`~repro.sim.config.SimConfig` objects (which carry miss
    scaling); keys are ``(workload, cache_config, miss_scale)``.
    *progress* reports per-cell completion through
    :mod:`repro.obs.progress`, exactly like the named-config path.
    """
    if not workloads or not configs:
        raise ExperimentError("workloads and configs must be non-empty")
    workers = max_workers if max_workers is not None else default_workers()
    if workers < 1:
        raise ExperimentError("max_workers must be positive")
    tasks = [
        (workload, config, seed, scale)
        for workload in workloads
        for config in configs
    ]
    outcome = _fault.run_supervised(
        tasks,
        _run_config_cell,
        key_of=_config_key,
        policy=policy,
        max_workers=workers,
        progress=progress,
        phase_name="parallel_matrix",
    )
    outcome.raise_if_failed()
    return outcome.results
