"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro.experiments all
    python -m repro.experiments fig10 fig11 --scale 0.5
    repro-experiments fig3 --workloads olden.treeadd spec95.130.li
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.common import render_output
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.obs import phases as _phases
from repro.obs import progress as _progress
from repro.sim.runner import memo_stats
from repro.workloads.registry import WORKLOAD_NAMES

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation figures of 'Enabling Partial Cache "
            "Line Prefetching Through Data Compression' (ICPP 2003)."
        ),
    )
    parser.add_argument(
        "figures",
        nargs="+",
        help=f"figure ids ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    parser.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        metavar="NAME",
        help=f"subset of workloads (default: all 14; known: {', '.join(WORKLOAD_NAMES)})",
    )
    parser.add_argument("--seed", type=int, default=1, help="workload RNG seed")
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="input-size scale factor (e.g. 0.3 for a quick pass)",
    )
    parser.add_argument(
        "--no-charts", action="store_true", help="print tables only"
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="pre-compute the simulation matrix across all CPU cores",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --parallel (default: cores - 1)",
    )
    parser.add_argument(
        "--no-profile",
        action="store_true",
        help="suppress the wall-clock/memoization breakdown at the end",
    )
    return parser


def _profile_summary() -> str:
    """Where the wall-clock went, plus memoization effectiveness."""
    lines = [_phases.PHASES.render()]
    memo = memo_stats()
    for kind in ("program", "result"):
        hits = memo[f"{kind}_hits"]
        total = hits + memo[f"{kind}_misses"]
        rate = f"{hits / total:.1%}" if total else "n/a"
        lines.append(
            f"memoization: {kind} cache {hits}/{total} hits ({rate})"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    figures = list(EXPERIMENTS) if "all" in args.figures else args.figures
    if args.parallel:
        from repro.sim.runner import prewarm_parallel

        sim_figures = [f for f in figures if f not in ("fig3", "fig9")]
        if sim_figures:
            workloads = args.workloads or list(WORKLOAD_NAMES)
            miss_scales = (1.0, 0.5) if "fig14" in sim_figures else (1.0,)
            t0 = time.perf_counter()
            n = prewarm_parallel(
                workloads,
                ["BC", "BCC", "HAC", "BCP", "CPP"],
                seed=args.seed,
                scale=args.scale,
                miss_scales=miss_scales,
                max_workers=args.workers,
            )
            _progress.report(
                f"prewarmed {n} matrix cells in "
                f"{time.perf_counter() - t0:.1f}s across processes"
            )
    for figure in figures:
        t0 = time.perf_counter()
        with _phases.phase(f"figure.{figure}"):
            output = run_experiment(
                figure, args.workloads, seed=args.seed, scale=args.scale
            )
        elapsed = time.perf_counter() - t0
        print(render_output(output, charts=not args.no_charts))
        print(f"[{figure} regenerated in {elapsed:.1f}s]\n")
    if not args.no_profile:
        print(_profile_summary())
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
