"""Content-addressed result store with verify-on-read integrity.

Every simulated cell the project ever computes is addressable here by
the digest of its full parameterization — ``(workload, seed, scale,
cache_config, miss_scale)`` plus the code version — and is stored as one
self-describing JSON record carrying its own payload checksum::

    objects/<d0d1>/<digest>.json
        {"format": 1, "digest": ..., "key": [...],
         "code_version": ..., "checksum": sha256(payload), "payload": {...}}

The store's three load-bearing properties:

* **Crash safety** — writes go through the write-ahead journal
  (:mod:`repro.store.journal`): stage, publish, clear, each step atomic
  and fsynced. A SIGKILL or ENOSPC at any instant leaves the store in a
  state :meth:`ResultStore.recover` completes or rolls forward; no
  torn record is ever visible at an object path.
* **Verify-on-read** — :meth:`ResultStore.get` recomputes the payload
  checksum (and the record's address) before serving. A record that
  fails is moved to ``quarantine/``, written to the corruption ledger
  as a typed :class:`~repro.errors.StoreCorruptionError` entry, counted
  in the ``store.quarantined`` metric — and reported as a miss, so the
  cell is recomputed rather than served corrupt or silently dropped.
* **Idempotence** — :meth:`ResultStore.put` of an already-present,
  verifying record is a no-op, so concurrent workers and resumed
  campaigns can re-put without risk of torn overlap.

``python -m repro.store fsck`` drives :meth:`ResultStore.fsck`: recover
the journal, verify every object, quarantine what fails, sweep crash
litter, and report.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import StoreCorruptionError, StoreError
from repro.obs import span as _span
from repro.obs.metrics import REGISTRY
from repro.store.integrity import (
    canonical_json,
    cell_digest,
    fault_point,
    payload_checksum,
)
from repro.store.journal import Journal
from repro.utils.atomic import atomic_write_text

__all__ = ["ResultStore", "FsckReport", "default_code_version", "default_store_dir"]

#: On-disk record layout version.
RECORD_FORMAT = 1

LEDGER_FILENAME = "corruption-ledger.jsonl"
COMPUTE_LOG_FILENAME = "compute.log"


def default_code_version() -> str:
    """The store's notion of "which code produced this": package version,
    the workload generators' version stamp, the resolved simulation
    backend and — when non-default — the resolved compression codec (any
    changing makes every old record address stale, never wrong).
    Backends are bit-identical by construction, but the salt means a
    backend bug can never silently poison the other backend's cached
    cells — and ``fsck``/diff tooling can attribute a record. Codecs, by
    contrast, genuinely change results; the default (``cpp``) is omitted
    so every pre-zoo record keeps its address."""
    import repro
    from repro.compression.codecs import DEFAULT_CODEC, default_codec
    from repro.sim.backend import default_backend
    from repro.workloads.registry import GENERATOR_VERSION

    version = (
        f"{getattr(repro, '__version__', '0')}+gen{GENERATOR_VERSION}"
        f"+be.{default_backend()}"
    )
    codec = default_codec()
    if codec != DEFAULT_CODEC:
        version += f"+codec.{codec}"
    return version


def default_store_dir() -> Path:
    """Where campaigns keep their store unless told otherwise."""
    return Path(os.environ.get("REPRO_STORE_DIR") or Path("results") / "store")


@dataclass
class FsckReport:
    """What one :meth:`ResultStore.fsck` pass found (and fixed)."""

    scanned: int = 0
    verified: int = 0
    quarantined: int = 0  #: corrupt records moved aside this pass
    replayed: int = 0  #: journal entries rolled forward into objects
    cleared: int = 0  #: stale journal entries dropped (already published)
    swept_tmp: int = 0  #: crash-orphaned ``*.tmp`` files removed
    quarantine_total: int = 0  #: files in quarantine after the pass
    problems: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing needed fixing and every record verifies —
        the state a pass run *after* a recovery pass must report."""
        return not self.problems and not self.repaired and self.scanned == self.verified

    @property
    def repaired(self) -> bool:
        """Did this pass change anything on disk?"""
        return bool(self.quarantined or self.replayed or self.cleared or self.swept_tmp)

    def as_dict(self) -> dict:
        """JSON-ready form of the report (the ``FSCK-SUMMARY`` payload)."""
        return {
            "scanned": self.scanned,
            "verified": self.verified,
            "quarantined": self.quarantined,
            "replayed": self.replayed,
            "cleared": self.cleared,
            "swept_tmp": self.swept_tmp,
            "quarantine_total": self.quarantine_total,
            "problems": list(self.problems),
            "clean": self.clean,
        }


class ResultStore:
    """A content-addressed, crash-safe, verify-on-read record store.

    *encode* / *decode* translate between in-memory results and the
    JSON payload stored on disk; the defaults are the lossless
    :func:`~repro.sim.results_io.result_to_full_dict` /
    :func:`~repro.sim.results_io.result_from_dict` pair, so a
    :class:`~repro.sim.results.SimResult` served from the store is
    bit-identical to the one that was put.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        code_version: str | None = None,
        encode=None,
        decode=None,
    ) -> None:
        self.root = Path(root)
        self.code_version = (
            code_version if code_version is not None else default_code_version()
        )
        self._encode = encode
        self._decode = decode
        self.objects_dir = self.root / "objects"
        self.quarantine_dir = self.root / "quarantine"
        self.journal = Journal(self.root / "journal")
        self.root.mkdir(parents=True, exist_ok=True)

    # -- codec ---------------------------------------------------------------

    def _encode_payload(self, result) -> dict:
        if self._encode is None:
            from repro.sim.results_io import result_to_full_dict

            self._encode = result_to_full_dict
        return self._encode(result)

    def _decode_payload(self, payload: dict):
        if self._decode is None:
            from repro.sim.results_io import result_from_dict

            self._decode = result_from_dict
        return self._decode(payload)

    # -- addressing ----------------------------------------------------------

    def digest_of(self, key: tuple | list) -> str:
        """Content address of *key* under this store's code version."""
        return cell_digest(key, code_version=self.code_version)

    def object_path(self, digest: str) -> Path:
        """Object-tree path of one record digest (two-level fan-out)."""
        return self.objects_dir / digest[:2] / f"{digest}.json"

    # -- write path ----------------------------------------------------------

    def put(self, key: tuple | list, result) -> bool:
        """Commit one record; returns False if it already verified.

        The commit protocol (journal stage → publish → clear) makes the
        write all-or-nothing across any crash point; see the module
        docstring for the recovery argument.
        """
        digest = self.digest_of(key)
        path = self.object_path(digest)
        with _span.span("store.put", digest=digest[:12]):
            if path.exists() and self._load_verified(path, digest) is not None:
                REGISTRY.inc("store.put_dups")
                return False
            payload = self._encode_payload(result)
            record = {
                "format": RECORD_FORMAT,
                "digest": digest,
                "key": list(key),
                "code_version": self.code_version,
                "checksum": payload_checksum(payload),
                "payload": payload,
            }
            text = canonical_json(record)
            fault_point("put.before_journal")
            self.journal.stage(digest, text)
            fault_point("put.after_journal")
            atomic_write_text(path, text)
            fault_point("put.after_publish")
            self.journal.clear(digest)
            fault_point("put.after_clear")
        REGISTRY.inc("store.puts")
        return True

    # -- read path -----------------------------------------------------------

    def contains(self, key: tuple | list) -> bool:
        """Cheap existence probe (verification happens at :meth:`get`)."""
        return self.object_path(self.digest_of(key)).exists()

    def get(self, key: tuple | list, *, strict: bool = False):
        """Serve one record, verified; None on miss *or* quarantined.

        A record that fails verification is quarantined (ledger entry,
        ``store.quarantined`` metric) and reported as a miss so the
        caller recomputes; ``strict=True`` raises the
        :class:`~repro.errors.StoreCorruptionError` instead.
        """
        digest = self.digest_of(key)
        path = self.object_path(digest)
        with _span.span("store.get", digest=digest[:12]):
            if not path.exists():
                REGISTRY.inc("store.misses")
                return None
            record = self._load_verified(path, digest, strict=strict)
            if record is None:
                REGISTRY.inc("store.misses")
                return None
            try:
                result = self._decode_payload(record["payload"])
            except Exception as exc:  # noqa: BLE001 - undecodable == corrupt
                error = self._quarantine_record(
                    path, f"payload does not decode: {exc}", digest
                )
                REGISTRY.inc("store.misses")
                if strict:
                    raise error from exc
                return None
        REGISTRY.inc("store.hits")
        return result

    def _verify_failure(self, path: Path, record, digest: str) -> str | None:
        """Why *record* is untrustworthy (None when it verifies)."""
        if not isinstance(record, dict):
            return "record is not a JSON object"
        if record.get("format") != RECORD_FORMAT:
            return f"unsupported record format {record.get('format')!r}"
        for field_name in ("digest", "key", "code_version", "checksum", "payload"):
            if field_name not in record:
                return f"missing field {field_name!r}"
        if record["digest"] != digest:
            return "record digest does not match its address"
        expected = cell_digest(
            record["key"], code_version=str(record["code_version"])
        )
        if expected != digest:
            return "key/code_version do not hash to the record's address"
        actual = payload_checksum(record["payload"])
        if actual != record["checksum"]:
            return (
                f"payload checksum mismatch (stored {record['checksum'][:12]}…, "
                f"actual {actual[:12]}…)"
            )
        return None

    def _load_verified(
        self, path: Path, digest: str, *, strict: bool = False
    ) -> dict | None:
        """Read + verify one object file; quarantine and None on failure."""
        try:
            record = json.loads(path.read_text("utf-8"))
        except (OSError, ValueError) as exc:
            error = self._quarantine_record(path, f"unreadable record: {exc}", digest)
            if strict:
                raise error from exc
            return None
        reason = self._verify_failure(path, record, digest)
        if reason is not None:
            error = self._quarantine_record(path, reason, digest)
            if strict:
                raise error
            return None
        return record

    # -- quarantine ----------------------------------------------------------

    def _quarantine_record(
        self, path: Path, reason: str, digest: str
    ) -> StoreCorruptionError:
        """Move a corrupt file aside and ledger the incident (never raise)."""
        error = StoreCorruptionError(path, reason, digest=digest)
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        dest = self.quarantine_dir / path.name
        n = 0
        while dest.exists():
            n += 1
            dest = self.quarantine_dir / f"{path.name}.{n}"
        try:
            os.replace(path, dest)
        except OSError:
            dest = None
        self._ledger_append(
            {
                "error": "StoreCorruptionError",
                "time": time.time(),
                "digest": digest,
                "path": str(path),
                "quarantined_as": str(dest) if dest else None,
                "reason": reason,
            }
        )
        REGISTRY.inc("store.quarantined")
        return error

    def _ledger_append(self, entry: dict) -> None:
        """Append one ledger line (O_APPEND; a single short write)."""
        try:
            with (self.root / LEDGER_FILENAME).open("a", encoding="utf-8") as fh:
                fh.write(json.dumps(entry, sort_keys=True) + "\n")
        except OSError:
            pass  # the quarantine move already preserved the evidence

    def ledger_entries(self) -> list[dict]:
        """All corruption-ledger entries (oldest first)."""
        path = self.root / LEDGER_FILENAME
        if not path.exists():
            return []
        entries = []
        for line in path.read_text("utf-8").splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                entries.append(record)
        return entries

    def quarantined_count(self) -> int:
        """Files currently sitting in the quarantine directory."""
        if not self.quarantine_dir.is_dir():
            return 0
        return sum(1 for p in self.quarantine_dir.iterdir() if p.is_file())

    def quarantine_summary(self) -> str:
        """One human line about quarantined records ('' when none)."""
        n = self.quarantined_count()
        if not n:
            return ""
        return (
            f"{n} corrupt store record(s) quarantined in {self.quarantine_dir} "
            f"(ledger: {self.root / LEDGER_FILENAME}; "
            f"inspect with `python -m repro.store fsck --store {self.root}`)"
        )

    # -- compute log ---------------------------------------------------------

    def log_compute(self, key: tuple | list, worker: str) -> None:
        """Record that *worker* freshly computed *key* (exactly-once audits)."""
        try:
            with (self.root / COMPUTE_LOG_FILENAME).open(
                "a", encoding="utf-8"
            ) as fh:
                fh.write(
                    json.dumps(
                        {"digest": self.digest_of(key), "key": list(key), "worker": worker},
                        sort_keys=True,
                    )
                    + "\n"
                )
        except OSError:
            pass

    def compute_log(self) -> list[dict]:
        """Parsed compute-log entries (for double-compute assertions)."""
        path = self.root / COMPUTE_LOG_FILENAME
        if not path.exists():
            return []
        out = []
        for line in path.read_text("utf-8").splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                out.append(record)
        return out

    # -- recovery ------------------------------------------------------------

    def recover(self) -> FsckReport:
        """Complete or roll forward every interrupted write (idempotent).

        For each pending journal entry: if the object already verifies,
        the write won — drop the entry; else if the journal entry itself
        verifies, replay it into the object tree; else quarantine the
        entry. Called by every campaign open and by ``fsck``.
        """
        report = FsckReport()
        for wal in self.journal.pending():
            digest = wal.name[: -len(".wal")]
            record = self.journal.read(wal)
            obj = self.object_path(digest)
            if obj.exists() and self._load_verified(obj, digest) is not None:
                wal.unlink(missing_ok=True)
                report.cleared += 1
                continue
            if record is not None and self._verify_failure(wal, record, digest) is None:
                atomic_write_text(obj, canonical_json(record))
                wal.unlink(missing_ok=True)
                report.replayed += 1
                REGISTRY.inc("store.journal_replayed")
                continue
            self._quarantine_record(wal, "unreplayable journal entry", digest)
            report.quarantined += 1
        return report

    def _sweep_tmp(self) -> int:
        """Remove ``*.tmp`` litter a SIGKILLed writer left mid-write."""
        swept = 0
        for base in (self.objects_dir, self.journal.root):
            if not base.is_dir():
                continue
            for tmp in base.rglob("*.tmp"):
                tmp.unlink(missing_ok=True)
                swept += 1
        return swept

    def records(self):
        """Iterate ``(path, digest)`` over every object file."""
        if not self.objects_dir.is_dir():
            return
        for path in sorted(self.objects_dir.rglob("*.json")):
            yield path, path.stem

    def fsck(self, *, repair: bool = True) -> FsckReport:
        """Scan, verify, repair-from-journal and report.

        With ``repair`` (the default) this is the full recovery pass:
        journal entries are replayed or quarantined, corrupt objects are
        quarantined, crash litter is swept. ``repair=False`` only
        reports (corrupt objects are listed as problems, not moved).
        """
        with _span.span("store.fsck"):
            report = self.recover() if repair else FsckReport()
            if repair:
                report.swept_tmp = self._sweep_tmp()
            for path, digest in self.records():
                report.scanned += 1
                if repair:
                    if self._load_verified(path, digest) is not None:
                        report.verified += 1
                    else:
                        # Quarantined and ledgered by _load_verified; the
                        # object tree no longer holds it.
                        report.quarantined += 1
                        report.scanned -= 1
                else:
                    try:
                        record = json.loads(path.read_text("utf-8"))
                        reason = self._verify_failure(path, record, digest)
                    except (OSError, ValueError) as exc:
                        reason = f"unreadable record: {exc}"
                    if reason is None:
                        report.verified += 1
                    else:
                        report.problems.append(f"{path.name}: {reason}")
            report.quarantine_total = self.quarantined_count()
        return report

    # -- bookkeeping ---------------------------------------------------------

    def object_count(self) -> int:
        """Number of records currently published."""
        return sum(1 for _ in self.records())

    def stats(self) -> dict:
        """Counts a dashboard or the ``stats`` CLI subcommand wants."""
        return {
            "root": str(self.root),
            "code_version": self.code_version,
            "objects": self.object_count(),
            "journal_pending": len(self.journal.pending()),
            "quarantined": self.quarantined_count(),
            "ledger_entries": len(self.ledger_entries()),
        }
