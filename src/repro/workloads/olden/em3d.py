"""olden.em3d — electromagnetic wave propagation on a bipartite graph.

The original alternates updates between E-field and H-field node sets:
each node's value becomes a weighted difference of its neighbours'
values. Node values and weights are floating-point — bit patterns that do
**not** compress — while the neighbour structure is all heap pointers,
which do. em3d is therefore the suite's mixed-compressibility member.

Node layout: ``{value, degree, from_ptrs[deg], coeff[deg]}`` — value and
two inline arrays (the original uses separately allocated arrays; inline
keeps the same pointer-load pattern with one fewer indirection, noted in
DESIGN.md).
"""

from __future__ import annotations

import struct

from repro.isa.opcodes import OpClass
from repro.workloads.base import Program, ProgramBuilder, scaled

__all__ = ["build", "DEFAULT_NODES", "DEFAULT_DEGREE", "DEFAULT_ITERS"]

DEFAULT_NODES = 1000  #: nodes per side (E and H)
DEFAULT_DEGREE = 3
DEFAULT_ITERS = 4

_N_VALUE = 0
_N_DEGREE = 4
_N_ARRAYS = 8  # from-pointers then coefficients


def _float_bits(x: float) -> int:
    """IEEE-754 single-precision bit pattern (what memory really holds)."""
    return struct.unpack("<I", struct.pack("<f", x))[0]


def build(seed: int = 1, scale: float = 1.0) -> Program:
    """Generate the em3d program; *scale* adjusts node count."""
    n = scaled(DEFAULT_NODES, scale, minimum=8)
    degree = DEFAULT_DEGREE
    iters = DEFAULT_ITERS

    pb = ProgramBuilder("olden.em3d", seed)
    pb.op("g", (), label="em.entry")

    node_bytes = _N_ARRAYS + 8 * degree

    def make_side(side: str) -> list[int]:
        addrs = []
        for _ in pb.for_range(f"em.mk{side}", n, cond_srcs=("g",)):
            a = pb.malloc(node_bytes)
            addrs.append(a)
            pb.store(a + _N_VALUE, _float_bits(float(pb.rng.normal())), base="g",
                     label=f"em.init.{side}v")
            pb.store(a + _N_DEGREE, degree, base="g", label=f"em.init.{side}d")
        return addrs

    e_nodes = make_side("e")
    h_nodes = make_side("h")

    # Wire each node to `degree` random nodes of the other side.
    neighbors: dict[int, list[int]] = {}
    for side, mine, other in (("e", e_nodes, h_nodes), ("h", h_nodes, e_nodes)):
        for i in pb.for_range(f"em.wire{side}", n, cond_srcs=("g",)):
            a = mine[i]
            nbrs = [other[int(pb.rng.integers(0, n))] for _ in range(degree)]
            neighbors[a] = nbrs
            for k, nb in enumerate(nbrs):
                pb.store(a + _N_ARRAYS + 4 * k, nb, base="g", label="em.wire.ptr")
                coeff = _float_bits(float(pb.rng.uniform(0.1, 0.9)))
                pb.store(a + _N_ARRAYS + 4 * degree + 4 * k, coeff, base="g",
                         label="em.wire.coef")

    # ---- compute phase: alternating relaxation sweeps ------------------------
    for it in pb.for_range("em.iters", iters, cond_srcs=("g",)):
        for side, nodes in (("e", e_nodes), ("h", h_nodes)):
            for a in nodes:
                pb.branch(f"em.sweep.{side}", taken=True, srcs=("np",))
                pb.op("np", (), label=f"em.sweep.{side}.ptr")
                acc_bits = pb.load(a + _N_VALUE, "acc", base="np", label="em.calc.ldv")
                acc = struct.unpack("<f", struct.pack("<I", acc_bits))[0]
                for k, nb in enumerate(neighbors[a]):
                    nbp = pb.load(a + _N_ARRAYS + 4 * k, "nbp", base="np",
                                  label="em.calc.ldp")
                    nv_bits = pb.load(nb + _N_VALUE, "nv", base="nbp",
                                      label="em.calc.ldnv")
                    c_bits = pb.load(a + _N_ARRAYS + 4 * degree + 4 * k, "c",
                                     base="np", label="em.calc.ldc")
                    nv = struct.unpack("<f", struct.pack("<I", nv_bits))[0]
                    c = struct.unpack("<f", struct.pack("<I", c_bits))[0]
                    pb.op("prod", ("nv", "c"), kind=OpClass.FMULT, label="em.calc.mul")
                    pb.op("acc", ("acc", "prod"), kind=OpClass.FALU, label="em.calc.sub")
                    acc -= c * nv
                pb.store(a + _N_VALUE, _float_bits(acc), base="np", src="acc",
                         label="em.calc.stv")
            pb.branch(f"em.sweep.{side}", taken=False, srcs=("np",))

    out = pb.static_array(1)
    pb.store(out, _float_bits(0.0), src="acc", label="em.result")
    return pb.build(
        description="bipartite E/H relaxation: FP values (incompressible) + heap pointers",
        params={"nodes": n, "degree": degree, "iters": iters},
    )
