"""Tests for the frequent-value compression extension."""

import numpy as np
import pytest

from repro.compression.frequent import FrequentValueScheme, profile_frequent_values
from repro.compression.vectorized import compressible_mask, compression_summary
from repro.errors import ConfigurationError
from repro.workloads.registry import generate

BASE = 0x1000_0000


class TestScheme:
    def test_membership(self):
        s = FrequentValueScheme([0, 1, 0xDEAD_BEEF])
        assert s.is_compressible(0, BASE)
        assert s.is_compressible(0xDEAD_BEEF, BASE)  # FVC catches junk values!
        assert not s.is_compressible(2, BASE)

    def test_address_independent(self):
        s = FrequentValueScheme([5])
        assert s.is_compressible(5, 0) == s.is_compressible(5, 0x7FFF_0000)

    def test_compressed_bits_scales_with_table(self):
        assert FrequentValueScheme(range(2)).compressed_bits == 8
        assert FrequentValueScheme(range(128)).compressed_bits == 8
        assert FrequentValueScheme(range(129)).compressed_bits == 16
        assert FrequentValueScheme(range(4096)).compressed_bits == 16

    def test_duplicates_collapsed(self):
        s = FrequentValueScheme([7, 7, 7])
        assert s.table_size == 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequentValueScheme([])

    def test_vectorized_matches_scalar(self):
        s = FrequentValueScheme([1, 100, 0xCAFEBABE])
        values = np.array([1, 2, 100, 0xCAFEBABE, 0], dtype=np.uint32)
        addrs = np.full(5, BASE, dtype=np.uint32)
        mask = s.mask_compressible(values, addrs)
        for i in range(5):
            assert mask[i] == s.is_compressible(int(values[i]), BASE)

    def test_plugs_into_bulk_classifier(self):
        s = FrequentValueScheme([9])
        values = np.array([9, 10], dtype=np.uint32)
        addrs = np.full(2, BASE, dtype=np.uint32)
        assert list(compressible_mask(values, addrs, s)) == [True, False]
        summary = compression_summary(values, addrs, s)
        assert summary.n_compressible == 1


class TestProfiling:
    def test_top_values_selected(self):
        program = generate("spec95.129.compress", seed=1, scale=0.1)
        scheme = profile_frequent_values(program.trace, top_n=64)
        assert scheme.table_size == 64
        # The most frequent single value must be in the table:
        values, _ = program.trace.accessed_values()
        top = np.bincount(values % (1 << 16)).argmax()  # cheap sanity proxy
        summary = compression_summary(*program.trace.accessed_values(), scheme)
        assert summary.fraction_compressible > 0.1

    def test_top_n_checked(self):
        program = generate("olden.mst", seed=1, scale=0.1)
        with pytest.raises(ConfigurationError):
            profile_frequent_values(program.trace, top_n=0)


class TestEndToEndWithCPP:
    def test_cpp_runs_verified_with_fvc_scheme(self):
        """The whole CPP machinery must work unchanged over the
        alternative compressibility predicate."""
        from repro.caches.hierarchy import HierarchyParams, build_hierarchy
        from repro.cpu.pipeline import OutOfOrderCore
        from repro.memory.main_memory import MainMemory
        from repro.sim.config import SimConfig

        program = generate("spec95.130.li", seed=1, scale=0.15)
        scheme = profile_frequent_values(program.trace, top_n=256)
        config = SimConfig(
            cache_config="CPP", hierarchy=HierarchyParams(scheme=scheme)
        )
        memory = MainMemory(latency=config.effective_memory_latency())
        hierarchy = build_hierarchy("CPP", memory, config.effective_hierarchy())
        OutOfOrderCore(hierarchy, config.core, verify_loads=True).run(program.trace)
        hierarchy.check_invariants()
        hierarchy.flush()
        assert memory.image == program.final_image
        assert hierarchy.l1_stats.prefetched_words > 0  # FVC-driven prefetch


class TestTableWidthBoundary:
    """Regression: oversized tables silently capped compressed_bits at 16
    while their indices needed more than the 15-bit payload."""

    def test_max_table_size_accepted(self):
        s = FrequentValueScheme(range(1 << 15))
        assert s.compressed_bits == 16
        assert s.table_size == 1 << 15
        # Every index must fit the payload.
        assert (s.table_size - 1).bit_length() <= s.payload_bits

    def test_oversized_table_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequentValueScheme(range((1 << 15) + 1))

    def test_dedup_keeps_geometry_consistent(self):
        # 200 raw entries collapsing to 2 must size the slot for 2.
        s = FrequentValueScheme([1, 2] * 100)
        assert s.table_size == 2
        assert s.compressed_bits == 8
        assert (s.table_size - 1).bit_length() <= s.payload_bits
