"""Micro-benchmarks of simulator throughput (accesses and instructions per
second), per configuration — the numbers that bound experiment runtime."""

import numpy as np
import pytest

from repro.caches.hierarchy import build_hierarchy
from repro.memory.image import MemoryImage
from repro.memory.main_memory import MainMemory
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.workloads.registry import generate

BASE = 0x1000_0000


def _mixed_addrs(n):
    rng = np.random.default_rng(5)
    seq = (BASE + 4 * (np.arange(n) % 4096)).astype(np.int64)
    rand = (BASE + 4 * rng.integers(0, 4096, n)).astype(np.int64)
    out = np.where(rng.random(n) < 0.5, seq, rand)
    return [int(a) for a in out]


@pytest.mark.parametrize("config", ["BC", "BCP", "CPP"])
def test_hierarchy_access_throughput(benchmark, config):
    addrs = _mixed_addrs(20_000)

    def drive():
        h = build_hierarchy(config, MainMemory(MemoryImage(), latency=100))
        latency = 0
        for i, addr in enumerate(addrs):
            if i % 4 == 0:
                h.store(addr, i, i)
            else:
                latency += h.load(addr, i).latency
        return latency

    assert benchmark(drive) > 0
    benchmark.extra_info["accesses"] = len(addrs)


@pytest.mark.parametrize("backend", ["reference", "fast"])
@pytest.mark.parametrize("config", ["BC", "CPP"])
def test_full_machine_instructions_per_second(benchmark, config, backend):
    program = generate("spec95.130.li", seed=1, scale=0.3)
    sim_config = SimConfig(cache_config=config, backend=backend)
    machine = Machine(sim_config)
    if backend == "fast":
        machine.run(program)  # amortized costs: kernel compile, pre-decode

    result = benchmark.pedantic(
        machine.run,
        args=(program,),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert result.instructions == len(program.trace)
    benchmark.extra_info["instructions"] = result.instructions
    benchmark.extra_info["sim_cycles"] = result.cycles


def test_trace_generation_throughput(benchmark):
    program = benchmark.pedantic(
        generate,
        args=("olden.treeadd",),
        kwargs={"seed": 3, "scale": 0.5},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info["instructions"] = len(program.trace)
    assert len(program.trace) > 10_000
